// Datacenter: a FatTree running the §4 permutation workload (TP1),
// comparing single-path TCP over ECMP with MPTCP over 8 random paths.
//
//	go run ./examples/datacenter [-k 8] [-paths 8] [-secs 5]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"mptcp/internal/core"
	"mptcp/internal/metrics"
	"mptcp/internal/model"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/traffic"
	"mptcp/internal/transport"
)

func main() {
	k := flag.Int("k", 4, "fat-tree arity (8 = the paper's 128 hosts)")
	npaths := flag.Int("paths", 8, "subflows per MPTCP connection")
	secs := flag.Int("secs", 5, "simulated seconds")
	flag.Parse()

	for _, multipath := range []bool{false, true} {
		s := sim.New(3)
		nw := netsim.NewNet(s)
		ft := topo.NewFatTree(topo.FatTreeConfig{K: *k})
		rng := rand.New(rand.NewSource(9))
		dsts := traffic.Permutation(rng, ft.NumHosts())

		var conns []*transport.Conn
		for src, dst := range dsts {
			var paths []transport.Path
			var alg core.Algorithm = core.Regular{}
			if multipath {
				paths = ft.Paths(rng, src, dst, *npaths)
				if len(paths) > 1 {
					alg = &core.MPTCP{}
				}
			} else {
				paths = []transport.Path{ft.ECMPPath(rng, src, dst)}
			}
			c := transport.NewConn(nw, transport.Config{Alg: alg, Paths: paths})
			c.Start()
			conns = append(conns, c)
		}
		warm := sim.Time(*secs) * sim.Second / 3
		end := sim.Time(*secs) * sim.Second
		s.RunUntil(warm)
		base := make([]int64, len(conns))
		for i, c := range conns {
			base[i] = c.Delivered()
		}
		s.RunUntil(end)
		rates := make([]float64, len(conns))
		for i, c := range conns {
			rates[i] = metrics.ThroughputMbps(c.Delivered()-base[i], end-warm)
		}
		mode := "single-path TCP over ECMP"
		if multipath {
			mode = fmt.Sprintf("MPTCP over %d random paths", *npaths)
		}
		fmt.Printf("%-28s mean %5.1f Mb/s/host  p10 %5.1f  Jain %.3f\n",
			mode, metrics.Mean(rates), metrics.Percentile(rates, 10), model.JainIndex(rates))
	}
	fmt.Printf("\n(FatTree k=%d: %d hosts; the paper's Fig. 12/13 use k=8 with 8 paths)\n",
		*k, (*k)*(*k)*(*k)/4)
}
