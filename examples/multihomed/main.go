// Multihomed: the §3 server scenario — a dual-homed server with uneven
// client load per access link; multipath flows join and pull the
// congestion back into balance.
//
//	go run ./examples/multihomed
package main

import (
	"fmt"

	"mptcp/internal/core"
	"mptcp/internal/metrics"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func main() {
	s := sim.New(5)
	nw := netsim.NewNet(s)
	d := topo.NewDualHomed(100, 10*sim.Millisecond, topo.BDPPackets(100, 20*sim.Millisecond))

	var link1, link2, multi []*transport.Conn
	add := func(group *[]*transport.Conn, cfg transport.Config) {
		c := transport.NewConn(nw, cfg)
		c.Start()
		*group = append(*group, c)
	}
	for i := 0; i < 5; i++ {
		add(&link1, transport.Config{Paths: d.ClientPath(1)})
	}
	for i := 0; i < 15; i++ {
		add(&link2, transport.Config{Paths: d.ClientPath(2)})
	}

	groupRate := func(g []*transport.Conn, base []int64, dur sim.Time) float64 {
		var tot int64
		for i, c := range g {
			tot += c.Delivered() - base[i]
		}
		return metrics.ThroughputMbps(tot, dur) / float64(len(g))
	}
	snap := func(g []*transport.Conn) []int64 {
		out := make([]int64, len(g))
		for i, c := range g {
			out[i] = c.Delivered()
		}
		return out
	}

	s.RunUntil(20 * sim.Second)
	b1, b2 := snap(link1), snap(link2)
	s.RunUntil(60 * sim.Second)
	fmt.Println("Before multipath joins (per-flow Mb/s):")
	fmt.Printf("  link1 (5 TCPs):  %5.2f\n", groupRate(link1, b1, 40*sim.Second))
	fmt.Printf("  link2 (15 TCPs): %5.2f\n", groupRate(link2, b2, 40*sim.Second))

	// 10 multipath flows join, able to use both access links.
	for i := 0; i < 10; i++ {
		add(&multi, transport.Config{Alg: &core.MPTCP{}, Paths: d.MultipathPaths()})
	}
	s.RunUntil(80 * sim.Second)
	b1, b2, bm := snap(link1), snap(link2), snap(multi)
	s.RunUntil(160 * sim.Second)
	dur := 80 * sim.Second
	fmt.Println("After 10 MPTCP flows join (per-flow Mb/s):")
	fmt.Printf("  link1 (5 TCPs):  %5.2f\n", groupRate(link1, b1, dur))
	fmt.Printf("  link2 (15 TCPs): %5.2f\n", groupRate(link2, b2, dur))
	fmt.Printf("  MPTCP (10):      %5.2f\n", groupRate(multi, bm, dur))
	fmt.Println("\nThe multipath flows gravitate to the emptier link 1, pulling the")
	fmt.Println("two client populations toward the same per-flow rate (§3, Fig. 10).")
}
