// mptcpnet: the userspace MPTCP-over-UDP stack (§6's protocol design with
// real sockets) moving a payload across two emulated paths on loopback —
// a fast lossy "WiFi" and a slow clean "3G" — with coupled congestion
// control.
//
//	go run ./examples/mptcpnet
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"mptcp/internal/mptcpnet"
)

func listen() net.PacketConn {
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	// Two UDP "paths" between sender and receiver, shaped differently.
	sWiFi, rWiFi := listen(), listen()
	s3G, r3G := listen(), listen()

	sndConns := []net.PacketConn{
		mptcpnet.NewEmuPath(sWiFi, 5*time.Millisecond, 0.01, 16e6, 1),
		mptcpnet.NewEmuPath(s3G, 40*time.Millisecond, 0.001, 2e6, 2),
	}
	rcvConns := []net.PacketConn{
		mptcpnet.NewEmuPath(rWiFi, 5*time.Millisecond, 0.002, 0, 3),
		mptcpnet.NewEmuPath(r3G, 40*time.Millisecond, 0, 0, 4),
	}
	remotes := []net.Addr{rWiFi.LocalAddr(), r3G.LocalAddr()}

	const connID = 2011 // NSDI vintage
	rx := mptcpnet.NewReceiver(connID, rcvConns, 512)
	tx := mptcpnet.NewSender(connID, sndConns, remotes, mptcpnet.Config{})

	payload := make([]byte, 2<<20) // 2 MiB
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	go func() {
		if _, err := tx.Write(payload); err != nil {
			log.Fatal(err)
		}
		tx.Close()
	}()

	var got int64
	buf := make([]byte, 64<<10)
	for {
		n, err := rx.Read(buf)
		got += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	el := time.Since(start)
	fmt.Printf("transferred %d bytes in %v (%.2f Mb/s) over 2 emulated paths\n",
		got, el.Round(time.Millisecond), float64(got)*8/el.Seconds()/1e6)
	fmt.Printf("  per-path segments: WiFi %d, 3G %d (distinct data)\n",
		rx.SubflowReceived(0), rx.SubflowReceived(1))
	st := tx.Stats()
	_, dup, _ := rx.Stats()
	fmt.Printf("  retransmissions: %d, reinjections: %d, dup data: %d\n", st.SegsRetx, st.Reinjects, dup)
	fmt.Printf("  final windows: WiFi %.1f segs, 3G %.1f segs\n", tx.Cwnd(0), tx.Cwnd(1))
}
