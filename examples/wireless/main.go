// Wireless: the §5 scenario — a laptop with WiFi and 3G, with a
// competing TCP on each radio, comparing EWTCP, COUPLED, the paper's
// MPTCP and the Linux-kernel successors (OLIA, BALIA, delay-based
// WVEGAS). Only MPTCP and its successors achieve roughly the competing
// WiFi TCP's throughput while still using the 3G path gently.
//
//	go run ./examples/wireless
package main

import (
	"fmt"

	"mptcp/internal/cc"
	"mptcp/internal/metrics"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func main() {
	fmt.Println("WiFi (fast, lossy, short RTT) + 3G (slow, clean, overbuffered),")
	fmt.Println("one competing single-path TCP per radio, 5 simulated minutes:")
	fmt.Println()
	for _, name := range []string{"EWTCP", "COUPLED", "MPTCP", "OLIA", "BALIA", "WVEGAS"} {
		alg, err := cc.New(name)
		if err != nil {
			panic(err)
		}
		s := sim.New(7)
		nw := netsim.NewNet(s)
		wl := topo.NewWireless(topo.WirelessConfig{
			WiFiMbps: 6, WiFiDelay: 8 * sim.Millisecond, WiFiLoss: 0.015, WiFiBuf: 20,
			G3Mbps: 2.0, G3Delay: 60 * sim.Millisecond, G3Buf: 300,
		})
		mp := transport.NewConn(nw, transport.Config{Alg: alg, Paths: wl.Paths()})
		tcpWiFi := transport.NewConn(nw, transport.Config{Paths: wl.Paths()[:1]})
		tcp3G := transport.NewConn(nw, transport.Config{Paths: wl.Paths()[1:]})
		mp.Start()
		tcpWiFi.Start()
		tcp3G.Start()

		s.RunUntil(30 * sim.Second)
		m0, w0, g0 := mp.Delivered(), tcpWiFi.Delivered(), tcp3G.Delivered()
		s.RunUntil(330 * sim.Second)
		dur := 300 * sim.Second
		fmt.Printf("  %-12s multipath %4.2f Mb/s | TCP-WiFi %4.2f | TCP-3G %4.2f\n",
			name,
			metrics.ThroughputMbps(mp.Delivered()-m0, dur),
			metrics.ThroughputMbps(tcpWiFi.Delivered()-w0, dur),
			metrics.ThroughputMbps(tcp3G.Delivered()-g0, dur))
	}
	fmt.Println("\nCOUPLED hides on the 3G path; EWTCP splits evenly; MPTCP matches the")
	fmt.Println("best single-path flow — the incentive to deploy multipath (§2.5).")
}
