// Quickstart: build a two-path network, run an MPTCP flow next to a
// regular TCP flow, and print what each achieves.
//
// This is the smallest end-to-end use of the library: a simulator, two
// bottleneck links, one multipath connection (the paper's coupled
// congestion control) and one single-path competitor sharing path 1.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mptcp/internal/core"
	"mptcp/internal/metrics"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func main() {
	// A deterministic simulation world.
	s := sim.New(1)
	nw := netsim.NewNet(s)

	// Two access links: a fast short-RTT path and a slow long-RTT path.
	fast := topo.NewDuplex("fast", 10, 10*sim.Millisecond, topo.BDPPackets(10, 20*sim.Millisecond))
	slow := topo.NewDuplex("slow", 4, 50*sim.Millisecond, topo.BDPPackets(4, 100*sim.Millisecond))

	// The multipath flow couples its two subflows with the paper's MPTCP
	// algorithm (eq. (1)): it will take the less congested capacity
	// without beating the single-path TCP on the shared fast link.
	mp := transport.NewConn(nw, transport.Config{
		Alg:   &core.MPTCP{},
		Paths: []transport.Path{topo.PathThrough(fast), topo.PathThrough(slow)},
	})
	tcp := transport.NewConn(nw, transport.Config{
		Paths: []transport.Path{topo.PathThrough(fast)},
	})
	mp.Start()
	tcp.Start()

	// Warm up, then measure 60 simulated seconds.
	s.RunUntil(10 * sim.Second)
	mp0, tcp0 := mp.Delivered(), tcp.Delivered()
	s.RunUntil(70 * sim.Second)

	dur := 60 * sim.Second
	fmt.Println("60s of simulated competition on a shared 10 Mb/s link + private 4 Mb/s link:")
	fmt.Printf("  MPTCP (2 subflows): %5.2f Mb/s  (fast path %.2f, slow path %.2f)\n",
		metrics.ThroughputMbps(mp.Delivered()-mp0, dur),
		metrics.ThroughputMbps(mp.SubflowDelivered(0), 70*sim.Second),
		metrics.ThroughputMbps(mp.SubflowDelivered(1), 70*sim.Second))
	fmt.Printf("  TCP  (fast only)  : %5.2f Mb/s\n", metrics.ThroughputMbps(tcp.Delivered()-tcp0, dur))
	fmt.Printf("  MPTCP windows: fast %.1f pkts (srtt %v), slow %.1f pkts (srtt %v)\n",
		mp.Cwnd(0), mp.SRTT(0), mp.Cwnd(1), mp.SRTT(1))
	fmt.Println("\nThe multipath flow fills the private slow link and takes roughly a")
	fmt.Println("fair share of the contended fast link — the §2.5 fairness goals.")
}
