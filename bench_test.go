// Package mptcp's top-level benchmarks regenerate every table and figure
// of the paper's evaluation, one benchmark per experiment (see DESIGN.md
// for the experiment index). Each iteration runs the full scenario at a
// reduced but meaningful scale and reports the headline metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. For paper-fidelity scale use:
//
//	go run ./cmd/mptcp-exp -run all -scale 1
package mptcp

import (
	"testing"

	"mptcp/internal/exp"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// benchScale keeps a full `go test -bench=.` run in the minutes range;
// the shapes (orderings, ratios) are stable at this scale.
const benchScale = 0.15

// singleCell lists the experiments that are one trial cell (a single
// shared-state world): Parallelism cannot change their wall-clock, so
// only the serial mode is measured.
var singleCell = map[string]bool{
	"fig10-server-lb":      true,
	"table-server-poisson": true,
	"sec5-wired-sim":       true,
	"fig17-mobility":       true,
}

// benchExperiment measures each experiment twice: "serial" pins the cell
// runner to one worker, "parallel" lets it use GOMAXPROCS. The ns/op gap
// between the two sub-benchmarks is the wall-clock win of the parallel
// runner; the reported metrics are identical by construction (the
// determinism regression test in internal/exp asserts this).
func benchExperiment(b *testing.B, id string, keys ...string) {
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	scale := benchScale
	if testing.Short() {
		// The -short bench smoke (CI) only checks that every experiment
		// still runs end to end; tiny scale keeps it in seconds.
		scale = 0.02
	}
	for _, mode := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	} {
		if mode.parallelism == 0 && singleCell[id] {
			continue
		}
		b.Run(mode.name, func(b *testing.B) {
			var res *exp.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res = e.Run(exp.Config{
					Seed:        int64(42 + i),
					Scale:       scale,
					Parallelism: mode.parallelism,
				})
			}
			for _, k := range keys {
				if v, ok := res.Metrics[k]; ok {
					b.ReportMetric(v, k)
				}
			}
		})
	}
}

// --- event engine hot paths ---
//
// The BenchmarkEngine* family measures the substrate everything above
// rides on. The packet-hop path and the per-ACK timer rearm are required
// to run at 0 allocs/op (asserted by TestPacketHopZeroAlloc in
// internal/netsim and TestPostZeroAlloc/TestTimerResetZeroAlloc in
// internal/sim); CI additionally records events/sec via
// `mptcp-exp -bench-engine` as BENCH_engine.json.

// BenchmarkEnginePacketHop measures ns and allocations per packet-hop
// event through the full netsim path (queue admission, departure
// accounting, typed forward event, delivery), on the same
// netsim.BenchRing workload the CI engine-bench record uses.
func BenchmarkEnginePacketHop(b *testing.B) {
	s := sim.New(1)
	netsim.NewBenchRing(s, 4, 256)
	b.ReportAllocs()
	b.ResetTimer()
	start := s.Steps()
	for s.Steps()-start < uint64(b.N) {
		s.RunUntil(s.Now() + sim.Second)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Steps()-start)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineTimerRearm measures the per-ACK retransmission-timer
// path: one owned timer rearmed in place per operation.
func BenchmarkEngineTimerRearm(b *testing.B) {
	s := sim.New(1)
	tm := s.NewTimer(func() {})
	tm.Reset(sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(sim.Second)
		if i%64 == 0 {
			s.RunUntil(s.Now() + sim.Millisecond)
		}
	}
}

// --- §2 design-space scenarios ---

func BenchmarkFig2Triangle(b *testing.B) {
	benchExperiment(b, "fig2-triangle", "mptcp_mean_mbps", "ewtcp_mean_mbps", "coupled_mean_mbps")
}

func BenchmarkFig3Mesh(b *testing.B) {
	benchExperiment(b, "fig3-mesh", "mptcp_loss_spread", "ewtcp_loss_spread")
}

func BenchmarkSec23RTTMismatch(b *testing.B) {
	benchExperiment(b, "sec23-wifi3g-model", "mptcp_pktps", "ewtcp_pktps", "coupled_pktps", "tcp_wifi_pktps")
}

func BenchmarkFig5Trap(b *testing.B) {
	benchExperiment(b, "fig5-trap", "mptcp_phaseC_mbps", "coupled_phaseC_mbps")
}

// --- §3 multihomed server ---

func BenchmarkFig8Torus(b *testing.B) {
	benchExperiment(b, "fig8-torus", "mptcp_jain_c100", "ewtcp_jain_c100", "coupled_jain_c100")
}

func BenchmarkTableDynamic(b *testing.B) {
	benchExperiment(b, "table-dynamic", "mptcp_top_mbps", "ewtcp_top_mbps", "coupled_top_mbps")
}

func BenchmarkFig10ServerLB(b *testing.B) {
	benchExperiment(b, "fig10-server-lb", "mptcp_perflow_mbps", "imbalance_after")
}

func BenchmarkTableServerPoisson(b *testing.B) {
	benchExperiment(b, "table-server-poisson", "mptcp_mbps", "ewtcp_mbps", "coupled_mbps")
}

// --- §4 data centres ---

func BenchmarkTableFatTree(b *testing.B) {
	benchExperiment(b, "table-fattree", "MPTCP_TP1_mbps", "SINGLE-PATH_TP1_mbps")
}

func BenchmarkFig12PathCount(b *testing.B) {
	benchExperiment(b, "fig12-paths", "mptcp_paths_1", "mptcp_paths_4")
}

func BenchmarkFig13Distributions(b *testing.B) {
	benchExperiment(b, "fig13-dist", "MPTCP_jain", "SinglePath_jain")
}

func BenchmarkTableBCube(b *testing.B) {
	benchExperiment(b, "table-bcube", "MPTCP_TP1_mbps", "SINGLE-PATH_TP2_mbps")
}

// --- §5 wireless client ---

func BenchmarkTableWirelessStatic(b *testing.B) {
	benchExperiment(b, "table-wireless-static", "mptcp_mbps", "tcp_wifi_mbps", "tcp_3g_mbps")
}

func BenchmarkFig15WirelessCompete(b *testing.B) {
	benchExperiment(b, "fig15-wireless-compete", "mptcp_mp_mbps", "ewtcp_mp_mbps", "coupled_mp_mbps")
}

func BenchmarkSec5WiredSim(b *testing.B) {
	benchExperiment(b, "sec5-wired-sim", "s1_pktps", "s2_pktps", "m_pktps")
}

func BenchmarkFig16RTTSweep(b *testing.B) {
	benchExperiment(b, "fig16-rtt-sweep", "ratio_mean", "ratio_worst")
}

func BenchmarkFig17Mobility(b *testing.B) {
	benchExperiment(b, "fig17-mobility", "phase1_mbps", "phase2_mbps", "phase3_mbps")
}

// --- §6 protocol / ablations of DESIGN.md §4 ---

func BenchmarkSec6Protocol(b *testing.B) {
	benchExperiment(b, "ablation-reinject", "reinject_done", "noreinject_done")
}

func BenchmarkAblationCap(b *testing.B) {
	benchExperiment(b, "ablation-cap", "mptcp_pktps", "semicoupled_pktps")
}

func BenchmarkAblationPerAck(b *testing.B) {
	benchExperiment(b, "ablation-peracck", "peracck_pktps", "cached_pktps")
}

// --- cc registry tournament ---

func BenchmarkTournament(b *testing.B) {
	benchExperiment(b, "tournament",
		"mptcp_torus_mbps", "olia_torus_mbps", "balia_torus_mbps", "wvegas_torus_mbps",
		"mptcp_wifi3g_mbps", "olia_wifi3g_mbps")
}

// --- scenario-engine dynamics grid ---

func BenchmarkDynamics(b *testing.B) {
	benchExperiment(b, "dynamics",
		"mptcp_torus_flap_mbps", "mptcp_wifi3g_handover_mbps",
		"mptcp_dualhomed_churn_mbps", "olia_torus_ramp_mbps")
}

// --- packet-scheduler grid ---

func BenchmarkSchedGrid(b *testing.B) {
	benchExperiment(b, "schedgrid",
		"minrtt_mptcp_wifi3g_buf16_mbps", "minrtt+otr+pen_mptcp_wifi3g_buf16_mbps",
		"redundant_mptcp_torus_buf0_mbps", "blest_mptcp_dualhomed_buf64_mbps")
}
