package workload

import "mptcp/internal/scenario"

// Mice is the mixed mice-and-elephants workload: a Poisson open loop of
// short Pareto-sized transfers (the mice — scenario.FlowChurn reused as
// the arrival process) sharing the transport with a few long bulk
// transfers that run back to back for the whole horizon (the
// elephants). The tension is the classic one: elephants keep queues
// full, and what a good scheduler protects is the mice's completion
// time — Stats.Latency, in seconds per mouse.
//
// Issued/Completed count mice; ElephantPkts counts data packets of
// completed elephant transfers (in-flight elephant remainders are the
// experiment's horizon accounting, not the workload's).
type Mice struct {
	Rate     float64 // mice arrivals per second
	MeanPkts float64 // mean mouse size in packets (Pareto 1.5)

	Elephants    int   // concurrent bulk transfers
	ElephantPkts int64 // packets per elephant transfer; reissued until End
}

func (m Mice) Name() string { return "mice" }

func (m Mice) Install(env *Env) *Stats {
	st := newStats()
	// The mice are FlowChurn's arrival process verbatim, bound to a
	// private scenario Env whose Spawn wraps ours with the completion
	// bookkeeping the scenario layer doesn't have.
	senv := &scenario.Env{Sim: env.Sim}
	senv.Spawn = func(pkts int64) {
		st.Issued++
		start := env.Sim.Now()
		env.Spawn(pkts, func() {
			st.Completed++
			st.Latency.Add((env.Sim.Now() - start).Seconds())
		})
	}
	churn := scenario.Scenario{Name: "mice", Directives: []scenario.Directive{
		scenario.FlowChurn{Start: 0, End: env.End, Rate: m.Rate, MeanPkts: m.MeanPkts},
	}}
	churn.MustInstall(senv)

	for i := 0; i < m.Elephants; i++ {
		e := &elephant{w: m, env: env, st: st}
		e.run()
	}
	return st
}

type elephant struct {
	w   Mice
	env *Env
	st  *Stats
}

func (e *elephant) run() {
	if e.env.Sim.Now() >= e.env.End {
		return
	}
	e.env.Spawn(e.w.ElephantPkts, func() {
		e.st.ElephantPkts += e.w.ElephantPkts
		e.run()
	})
}
