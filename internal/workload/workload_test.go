package workload

import (
	"reflect"
	"testing"

	"mptcp/internal/sim"
)

// fakeEnv is a workload Env over a bare simulator whose spawner
// completes each transfer after pkts × perPkt of simulated time — a
// transport with perfectly deterministic service, so workload
// accounting can be checked by hand.
func fakeEnv(seed int64, end sim.Time, perPkt sim.Time) (*sim.Simulator, *Env, *[]sim.Time) {
	s := sim.New(seed)
	var issuedAt []sim.Time
	env := &Env{Sim: s, End: end}
	env.Spawn = func(pkts int64, done func()) {
		issuedAt = append(issuedAt, s.Now())
		s.After(sim.Time(pkts)*perPkt, done)
	}
	return s, env, &issuedAt
}

func TestRegistry(t *testing.T) {
	want := []string{"mice", "rpc", "video", "web"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	infos := Infos()
	if len(infos) != len(want) {
		t.Fatalf("Infos() has %d entries", len(infos))
	}
	for i, in := range infos {
		if in.Name != want[i] || in.Desc == "" {
			t.Errorf("info %d = %+v", i, in)
		}
	}
	if _, err := Build("bogus", sim.Second); err == nil {
		t.Error("Build(bogus) did not error")
	}
	for _, n := range want {
		if w := MustBuild(n, 30*sim.Second); w.Name() != n {
			t.Errorf("MustBuild(%q).Name() = %q", n, w.Name())
		}
	}
}

// TestFetchPageDependencyOrder: an object is spawned at the instant its
// last dependency completes, never earlier; independent objects fetch
// concurrently.
func TestFetchPageDependencyOrder(t *testing.T) {
	s := sim.New(1)
	var order []int
	pending := map[int]func(){}
	next := 0
	env := &Env{Sim: s, End: sim.Second}
	env.Spawn = func(pkts int64, done func()) {
		order = append(order, next)
		pending[next] = done
		next++
	}
	// Spawn indices follow object indices here because sizes are the
	// object index + 1 — so `order` records which objects were issued.
	p := Page{Objects: []Object{
		{Pkts: 1},                    // 0: root
		{Pkts: 2, Deps: []int{0}},    // 1
		{Pkts: 3, Deps: []int{0}},    // 2
		{Pkts: 4, Deps: []int{1, 2}}, // 3: needs both
	}}
	doneCalled := false
	FetchPage(env, p, func(plt sim.Time) { doneCalled = true })
	if !reflect.DeepEqual(order, []int{0}) {
		t.Fatalf("before root completes, spawned %v, want [0]", order)
	}
	pending[0]()
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("after root, spawned %v, want [0 1 2]", order)
	}
	pending[2]() // only one of object 3's two deps met
	if len(order) != 3 {
		t.Fatalf("object 3 started with an unmet dependency: %v", order)
	}
	pending[1]()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("after both deps, spawned %v, want [0 1 2 3]", order)
	}
	if doneCalled {
		t.Fatal("page done before its last object")
	}
	pending[3]()
	if !doneCalled {
		t.Fatal("page never completed")
	}
}

// TestFetchPagePLTHandComputed: with a transport serving 10 ms per
// packet, a root of 4 packets followed by a dependent object of 2
// packets loads in exactly 40 + 20 ms.
func TestFetchPagePLTHandComputed(t *testing.T) {
	s, env, _ := fakeEnv(1, sim.Second, 10*sim.Millisecond)
	var plt sim.Time
	FetchPage(env, Page{Objects: []Object{
		{Pkts: 4},
		{Pkts: 2, Deps: []int{0}},
	}}, func(d sim.Time) { plt = d })
	s.RunUntil(sim.Second)
	if want := 60 * sim.Millisecond; plt != want {
		t.Fatalf("PLT = %v, want %v", plt, want)
	}
}

func TestFetchPageValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Page
	}{
		{"empty page", Page{}},
		{"zero size", Page{Objects: []Object{{Pkts: 0}}}},
		{"forward dep", Page{Objects: []Object{{Pkts: 1, Deps: []int{1}}, {Pkts: 1}}}},
		{"self dep", Page{Objects: []Object{{Pkts: 1}, {Pkts: 1, Deps: []int{1}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, env, _ := fakeEnv(1, sim.Second, sim.Millisecond)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			FetchPage(env, tc.p, func(sim.Time) {})
		})
	}
}

// TestRPCClosedLoop: every session has at most one request outstanding,
// all issued requests complete (service is finite), nothing is issued
// at or after the horizon, and the latency summary records exactly the
// deterministic service time.
func TestRPCClosedLoop(t *testing.T) {
	s, env, issuedAt := fakeEnv(3, 10*sim.Second, sim.Millisecond)
	st := RPC{Sessions: 4, ThinkMean: 100 * sim.Millisecond, ReqPkts: 8}.Install(env)
	s.RunUntil(20 * sim.Second)
	if st.Issued == 0 {
		t.Fatal("no requests issued")
	}
	if st.Issued != st.Completed {
		t.Fatalf("issued %d != completed %d after the run drained", st.Issued, st.Completed)
	}
	if st.Issued != int64(len(*issuedAt)) {
		t.Fatalf("stats count %d != spawner count %d", st.Issued, len(*issuedAt))
	}
	for _, at := range *issuedAt {
		if at >= env.End {
			t.Fatalf("request issued at %v, at/after the %v horizon", at, env.End)
		}
	}
	want := (8 * sim.Millisecond).Seconds()
	if st.Latency.Min() != want || st.Latency.Max() != want {
		t.Fatalf("latency range [%v, %v], want exactly %v", st.Latency.Min(), st.Latency.Max(), want)
	}
}

// TestVideoRebufferHandComputed traces one player by hand: 1 s chunks
// fetched in a constant 2 s each (a stream at twice the transport's
// rate), startup threshold 2, horizon 12.5 s.
//
//	t=2  chunk1: buffered 1
//	t=4  chunk2: buffered 2 → playback starts
//	t=6  chunk3: played 2 s exactly, buffer hits 0 at arrival — no stall
//	t=8  chunk4: buffer ran dry at t=7 → play 1, stall 1, rebuffer;
//	             refills only to 1 < the threshold 2, still stalled
//	t=10 chunk5: stalled 2 more s; buffered 2 → playback resumes
//	t=12 chunk6: played 2, dry exactly at arrival; buffered 1, playing
//	t=12 chunk7 issued (12 < 12.5), never completes
//	t=12.5 horizon settle: played 0.5 s more
//
// Play 5.5 s, stall 3 s, 1 rebuffer, 7 issued, 6 completed.
func TestVideoRebufferHandComputed(t *testing.T) {
	s, env, _ := fakeEnv(1, 12500*sim.Millisecond, 0)
	env.Spawn = func(pkts int64, done func()) { s.After(2*sim.Second, done) }
	st := Video{Sessions: 1, ChunkPkts: 10, ChunkDur: sim.Second, Startup: 2, AheadMax: 5}.Install(env)
	s.RunUntil(env.End)
	if st.Issued != 7 || st.Completed != 6 {
		t.Errorf("issued %d completed %d, want 7/6", st.Issued, st.Completed)
	}
	if st.PlaySec != 5.5 || st.StallSec != 3 {
		t.Errorf("play %v stall %v, want 5.5/3", st.PlaySec, st.StallSec)
	}
	if st.Rebuffers != 1 {
		t.Errorf("rebuffers %d, want 1", st.Rebuffers)
	}
	if st.Latency.Min() != 2 || st.Latency.Max() != 2 {
		t.Errorf("chunk latency [%v, %v], want exactly 2 s", st.Latency.Min(), st.Latency.Max())
	}
}

// TestVideoSmoothPlayback: when the transport outruns the stream the
// player never stalls, and the buffer cap throttles fetching instead of
// letting it run arbitrarily ahead.
func TestVideoSmoothPlayback(t *testing.T) {
	s, env, _ := fakeEnv(1, 20*sim.Second, 0)
	env.Spawn = func(pkts int64, done func()) { s.After(250*sim.Millisecond, done) }
	st := Video{Sessions: 1, ChunkPkts: 10, ChunkDur: sim.Second, Startup: 2, AheadMax: 4}.Install(env)
	s.RunUntil(env.End)
	if st.StallSec != 0 || st.Rebuffers != 0 {
		t.Errorf("smooth stream stalled: stall %v rebuffers %d", st.StallSec, st.Rebuffers)
	}
	// Playback starts at t=0.5 (two 0.25 s fetches) and never stops:
	// exactly 19.5 s of play by the horizon.
	if st.PlaySec != 19.5 {
		t.Errorf("play %v s, want 19.5", st.PlaySec)
	}
	// The cap bounds issuing: ~1 chunk per played second plus the
	// startup burst, far under the 80 an unthrottled fetcher would do.
	if st.Issued > 25 {
		t.Errorf("issued %d chunks in 20 s with a 4-chunk cap", st.Issued)
	}
}

// TestMiceAndElephants: the Poisson mice all complete with recorded
// latencies, the elephant reissues back to back, and the whole workload
// is deterministic under a fixed seed.
func TestMiceAndElephants(t *testing.T) {
	run := func() *Stats {
		s, env, _ := fakeEnv(9, 10*sim.Second, 100*sim.Microsecond)
		st := Mice{Rate: 3, MeanPkts: 20, Elephants: 1, ElephantPkts: 500}.Install(env)
		s.RunUntil(30 * sim.Second)
		return st
	}
	st := run()
	if st.Issued == 0 {
		t.Fatal("no mice arrived")
	}
	if st.Issued != st.Completed {
		t.Fatalf("mice issued %d != completed %d after drain", st.Issued, st.Completed)
	}
	if st.ElephantPkts == 0 || st.ElephantPkts%500 != 0 {
		t.Fatalf("elephant delivered %d packets, want a positive multiple of 500", st.ElephantPkts)
	}
	if st.Latency.N() != st.Completed || st.Latency.Min() <= 0 {
		t.Fatalf("mouse latency summary n=%d min=%v", st.Latency.N(), st.Latency.Min())
	}
	st2 := run()
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("same-seed runs diverge: %+v vs %+v", st, st2)
	}
}

// TestBuiltinsRunToCompletion: every registered workload installs over
// the fake transport, issues work, completes it, and is deterministic.
func TestBuiltinsRunToCompletion(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			run := func() *Stats {
				T := 10 * sim.Second
				s, env, _ := fakeEnv(5, T, 200*sim.Microsecond)
				st := MustBuild(name, T).Install(env)
				s.RunUntil(2 * T)
				return st
			}
			st := run()
			if st.Issued == 0 || st.Completed == 0 {
				t.Fatalf("%s: issued %d completed %d", name, st.Issued, st.Completed)
			}
			if !reflect.DeepEqual(st, run()) {
				t.Fatalf("%s not deterministic", name)
			}
		})
	}
}
