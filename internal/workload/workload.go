// Package workload is the application layer of the simulator: closed-
// loop request/response traffic, web-page object graphs, chunked video
// streaming and mixed mice-and-elephants file transfer, all expressed
// against one tiny spawning interface so the same workload can run over
// any topology, scheduler and congestion controller.
//
// The paper evaluates congestion control with long-running flows, but
// the dynamics users feel — page-load time, RPC tail latency, video
// rebuffering — emerge from how *applications* issue transfers: think
// times, dependency graphs, playback deadlines, closed loops. A
// Workload encodes that issuing logic as pure simulation events; the
// experiment supplies the transport underneath via Env.Spawn (in
// internal/exp, a transport.ConnPool over the cell's paths).
//
// # Binding and determinism
//
// Install schedules a workload's events on env.Sim and returns the
// Stats the run will fill; drive the simulator afterwards and read the
// stats when it stops. All randomness (think times, page shapes, flow
// sizes, arrival gaps) is drawn from env.Sim.Rand(), the world's single
// seeded source, so a workload is exactly as reproducible as the world
// it runs in. Workloads stop issuing new transfers at env.End; the
// experiment accounts for still-running transfers at the horizon
// separately (transport.ConnPool's live set).
package workload

import (
	"fmt"
	"sort"

	"mptcp/internal/metrics"
	"mptcp/internal/sim"
)

// Spawner starts one application transfer of pkts data packets and
// calls done exactly once, at the simulated instant the final packet is
// cumulatively acknowledged. The workload layer never touches the
// transport directly — this is the whole contract.
type Spawner func(pkts int64, done func())

// Env binds a workload to one simulated world.
type Env struct {
	Sim   *sim.Simulator
	Spawn Spawner

	// End is the issuing horizon: no new transfer starts at or after
	// End. Transfers already in flight are allowed to finish (or not —
	// the caller decides when to stop the simulator).
	End sim.Time
}

// Stats is a workload run's observable outcome, filled in as the
// simulation runs. Which fields are meaningful depends on the workload;
// unused ones stay zero.
type Stats struct {
	// Issued counts transfers started; Completed counts done callbacks.
	// For web, the unit is a whole page, not an object.
	Issued    int64
	Completed int64

	// Latency summarises the workload's headline per-unit time in
	// seconds: RPC request latency, web page-load time, video chunk
	// fetch time, mice flow-completion time.
	Latency *metrics.Summary

	// Video playback accounting: seconds spent playing vs stalled
	// (post-startup), and the number of rebuffering events.
	PlaySec   float64
	StallSec  float64
	Rebuffers int64

	// ElephantPkts counts data packets of completed elephant transfers
	// (mice-and-elephants workload only).
	ElephantPkts int64
}

func newStats() *Stats {
	return &Stats{Latency: metrics.NewSummary()}
}

// Workload is one installable application behaviour.
type Workload interface {
	Name() string
	// Install schedules the workload's events on env.Sim and returns
	// the Stats the run will fill. It must be called before the
	// simulator passes the instants it schedules (time zero, in
	// practice).
	Install(env *Env) *Stats
}

// --- registry of named workload builders -------------------------------

// BuilderInfo describes one registered workload for CLI help.
type BuilderInfo struct {
	Name string
	Desc string
}

type builderEntry struct {
	info  BuilderInfo
	build func(T sim.Time) Workload
}

var (
	builders  = map[string]builderEntry{}
	buildName []string
)

// Register adds a named workload builder. The builder receives the
// run's issuing horizon T (already scaled by the caller) and lays its
// rates and think times out as fractions of T, so the offered load is
// independent of scale. Duplicate names panic; called from init.
func Register(name, desc string, build func(T sim.Time) Workload) {
	if name == "" || build == nil {
		panic("workload: Register needs a name and a builder")
	}
	if _, dup := builders[name]; dup {
		panic("workload: duplicate workload " + name)
	}
	builders[name] = builderEntry{info: BuilderInfo{Name: name, Desc: desc}, build: build}
	buildName = append(buildName, name)
	sort.Strings(buildName)
}

// Names lists the registered workloads in sorted order — the row order
// of the appgrid experiment (sorted, not registration order, so the
// grid layout never depends on package-init sequence).
func Names() []string {
	out := make([]string, len(buildName))
	copy(out, buildName)
	return out
}

// Infos returns the registered workload descriptions in Names order.
func Infos() []BuilderInfo {
	out := make([]BuilderInfo, 0, len(buildName))
	for _, n := range buildName {
		out = append(out, builders[n].info)
	}
	return out
}

// Build constructs the named workload for a run ending at T.
func Build(name string, T sim.Time) (Workload, error) {
	e, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return e.build(T), nil
}

// MustBuild is Build for names known to be registered; it panics on
// unknown names.
func MustBuild(name string, T sim.Time) Workload {
	w, err := Build(name, T)
	if err != nil {
		panic(err.Error())
	}
	return w
}
