package workload

import "mptcp/internal/sim"

// Video is the DASH-style streaming workload: each session fetches
// fixed-size chunks strictly in sequence, buffers them, and plays the
// buffer down in real time. Playback starts once Startup chunks are
// buffered; if the buffer drains mid-stream the player stalls (a
// rebuffering event) until the threshold refills. Fetching pauses when
// AheadMax chunks are buffered and resumes as playback drains.
//
// Stats: PlaySec/StallSec/Rebuffers carry the playback accounting —
// rebuffer ratio = StallSec/(PlaySec+StallSec) — and Latency summarises
// per-chunk fetch time in seconds; Issued/Completed count chunks.
type Video struct {
	Sessions  int
	ChunkPkts int64    // data packets per chunk
	ChunkDur  sim.Time // media duration of one chunk
	Startup   int      // chunks buffered before playback starts/resumes
	AheadMax  int      // buffer cap, in chunks; fetch pauses at the cap
}

func (v Video) Name() string { return "video" }

func (v Video) Install(env *Env) *Stats {
	st := newStats()
	if v.Startup < 1 || v.AheadMax <= v.Startup {
		panic("workload: video needs 1 <= Startup < AheadMax")
	}
	for i := 0; i < v.Sessions; i++ {
		s := &videoSession{w: v, env: env, st: st}
		s.fetch()
		// Settle the playback clock at the horizon: without this, play
		// and stall time since the last chunk arrival would be lost.
		env.Sim.At(env.End, func() { s.advance(env.Sim.Now()) })
	}
	return st
}

type videoSession struct {
	w   Video
	env *Env
	st  *Stats

	buffered sim.Time // media time in the buffer, exact as of lastT
	lastT    sim.Time // when buffered/playing were last reconciled
	playing  bool
	started  bool // playback has begun at least once
}

// advance reconciles the playback clock up to now. Between events the
// buffer drains linearly, so reconciling only at chunk arrivals and the
// horizon is exact: if the buffer ran dry inside the interval, the
// drain instant — and the stall time after it — is recovered here.
func (s *videoSession) advance(now sim.Time) {
	dt := now - s.lastT
	s.lastT = now
	if !s.playing {
		// Pre-start and stalled time before refill both count as stall
		// once playback has begun; startup delay before first play does
		// not.
		if s.started {
			s.st.StallSec += dt.Seconds()
		}
		return
	}
	if dt <= s.buffered {
		s.buffered -= dt
		s.st.PlaySec += dt.Seconds()
		return
	}
	// The buffer ran dry mid-interval: play what was buffered, stall
	// for the rest.
	s.st.PlaySec += s.buffered.Seconds()
	s.st.StallSec += (dt - s.buffered).Seconds()
	s.buffered = 0
	s.playing = false
	s.st.Rebuffers++
}

func (s *videoSession) fetch() {
	if s.env.Sim.Now() >= s.env.End {
		return
	}
	s.st.Issued++
	start := s.env.Sim.Now()
	s.env.Spawn(s.w.ChunkPkts, func() {
		now := s.env.Sim.Now()
		s.st.Completed++
		s.st.Latency.Add((now - start).Seconds())
		s.advance(now)
		s.buffered += s.w.ChunkDur
		if !s.playing && s.buffered >= sim.Time(s.w.Startup)*s.w.ChunkDur {
			s.playing = true
			s.started = true
		}
		if full := sim.Time(s.w.AheadMax) * s.w.ChunkDur; s.buffered >= full {
			// Buffer full: resume fetching once playback has drained
			// one chunk's worth (exact — the drain is linear while
			// playing, and a full buffer implies playing).
			s.env.Sim.After(s.buffered-full+s.w.ChunkDur, s.fetch)
			return
		}
		s.fetch()
	})
}
