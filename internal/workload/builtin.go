package workload

import "mptcp/internal/sim"

// scaledPkts converts a packets-per-second intensity into a per-unit
// size for a unit lasting d, with a floor so tiny scaled runs still
// exchange real transfers.
func scaledPkts(rate float64, d sim.Time, floor int64) int64 {
	p := int64(rate*d.Seconds() + 0.5)
	if p < floor {
		p = floor
	}
	return p
}

func init() {
	// The builders lay their rates and think times out as fractions of
	// the issuing horizon T, so the number of requests/pages/chunks per
	// run — and hence the cost and the statistical weight — is the same
	// at every -scale. Sizes that represent a *rate* (video chunks, the
	// elephant) scale with T instead, keeping the offered load in
	// packets per second meaningful against the fixed link speeds.
	Register("rpc", "closed-loop RPC: 4 clients, 8-packet requests, exponential think (mean T/150); metric: request latency",
		func(T sim.Time) Workload {
			return RPC{Sessions: 4, ThinkMean: T / 150, ReqPkts: 8}
		})
	Register("web", "page browsing: 3 users fetching dependency-ordered object graphs, think mean T/60; metric: page-load time",
		func(T sim.Time) Workload {
			return Web{Sessions: 3, ThinkMean: T / 60}
		})
	Register("video", "DASH streaming: 2 players, chunk = T/30 of media at ~100 pkt/s, startup 2, buffer cap 5 chunks; metric: rebuffer ratio",
		func(T sim.Time) Workload {
			chunk := T / 30
			return Video{Sessions: 2, ChunkPkts: scaledPkts(100, chunk, 2), ChunkDur: chunk, Startup: 2, AheadMax: 5}
		})
	Register("mice", "mice-and-elephants: Poisson mice (60 over T, Pareto mean 30 pkts) vs one back-to-back elephant; metric: mouse completion time",
		func(T sim.Time) Workload {
			return Mice{Rate: 60 / T.Seconds(), MeanPkts: 30, Elephants: 1, ElephantPkts: scaledPkts(70, T, 50)}
		})
}
