package workload

import "mptcp/internal/sim"

// RPC is the closed-loop request/response workload: Sessions
// independent clients, each cycling think → request → response →
// think. A session issues at most one request at a time — the closed
// loop — so offered load self-clocks to the network's service rate,
// and what degrades under a bad scheduler is the *latency* of each
// request, summarised in Stats.Latency (seconds per request).
type RPC struct {
	Sessions  int
	ThinkMean sim.Time // exponential think time between requests
	ReqPkts   int64    // data packets per request
}

func (r RPC) Name() string { return "rpc" }

func (r RPC) Install(env *Env) *Stats {
	st := newStats()
	for i := 0; i < r.Sessions; i++ {
		s := &rpcSession{w: r, env: env, st: st}
		s.think()
	}
	return st
}

type rpcSession struct {
	w   RPC
	env *Env
	st  *Stats
}

func (s *rpcSession) think() {
	gap := sim.Time(s.env.Sim.Rand().ExpFloat64() * float64(s.w.ThinkMean))
	s.env.Sim.After(gap, s.request)
}

func (s *rpcSession) request() {
	if s.env.Sim.Now() >= s.env.End {
		return
	}
	s.st.Issued++
	start := s.env.Sim.Now()
	s.env.Spawn(s.w.ReqPkts, func() {
		s.st.Completed++
		s.st.Latency.Add((s.env.Sim.Now() - start).Seconds())
		s.think()
	})
}
