package workload

import (
	"fmt"
	"math/rand"

	"mptcp/internal/sim"
)

// Object is one fetchable resource of a web page. Deps index objects
// earlier in the page's slice that must complete before this fetch may
// start (the HTML before its stylesheets, a script before the images it
// inserts). Restricting dependencies to earlier indices makes every
// page a DAG by construction.
type Object struct {
	Pkts int64
	Deps []int
}

// Page is one dependency-ordered object graph.
type Page struct {
	Objects []Object
}

// validate panics on malformed pages — a construction bug, not input.
func (p Page) validate() {
	if len(p.Objects) == 0 {
		panic("workload: page has no objects")
	}
	for i, o := range p.Objects {
		if o.Pkts < 1 {
			panic(fmt.Sprintf("workload: page object %d has %d packets", i, o.Pkts))
		}
		for _, d := range o.Deps {
			if d < 0 || d >= i {
				panic(fmt.Sprintf("workload: page object %d depends on %d (deps must point to earlier objects)", i, d))
			}
		}
	}
}

// FetchPage fetches a page's objects through spawn, starting each
// object the instant its dependencies have completed (independent
// objects fetch concurrently, as browsers do), and calls done with the
// page-load time — first fetch issued to last object completed — once
// the whole graph has loaded. One call fetches one page; the caller
// owns pacing and repetition.
func FetchPage(env *Env, p Page, done func(plt sim.Time)) {
	p.validate()
	start := env.Sim.Now()
	waiting := make([]int, len(p.Objects)) // unmet dependency count
	dependents := make([][]int, len(p.Objects))
	for i, o := range p.Objects {
		waiting[i] = len(o.Deps)
		for _, d := range o.Deps {
			dependents[d] = append(dependents[d], i)
		}
	}
	remaining := len(p.Objects)
	var fetch func(i int)
	fetch = func(i int) {
		env.Spawn(p.Objects[i].Pkts, func() {
			remaining--
			if remaining == 0 {
				done(env.Sim.Now() - start)
				return
			}
			for _, j := range dependents[i] {
				waiting[j]--
				if waiting[j] == 0 {
					fetch(j)
				}
			}
		})
	}
	// Issue the roots in index order after wiring the whole graph, so a
	// synchronously-completing spawn (not possible with a real
	// transport, but unit tests fake it) cannot observe a half-built
	// dependency table.
	for i := range p.Objects {
		if waiting[i] == 0 {
			fetch(i)
		}
	}
}

// Web is the page-browsing workload: Sessions independent users, each
// cycling think → load page → think. Stats.Latency summarises page-load
// time in seconds; Issued/Completed count whole pages.
type Web struct {
	Sessions  int
	ThinkMean sim.Time // exponential think time between pages
	// MakePage draws the next page's shape; nil means DefaultPage.
	MakePage func(r *rand.Rand) Page
}

func (w Web) Name() string { return "web" }

func (w Web) Install(env *Env) *Stats {
	st := newStats()
	mk := w.MakePage
	if mk == nil {
		mk = DefaultPage
	}
	for i := 0; i < w.Sessions; i++ {
		s := &webSession{w: w, mk: mk, env: env, st: st}
		s.think()
	}
	return st
}

type webSession struct {
	w   Web
	mk  func(r *rand.Rand) Page
	env *Env
	st  *Stats
}

func (s *webSession) think() {
	gap := sim.Time(s.env.Sim.Rand().ExpFloat64() * float64(s.w.ThinkMean))
	s.env.Sim.After(gap, s.load)
}

func (s *webSession) load() {
	if s.env.Sim.Now() >= s.env.End {
		return
	}
	s.st.Issued++
	FetchPage(s.env, s.mk(s.env.Sim.Rand()), func(plt sim.Time) {
		s.st.Completed++
		s.st.Latency.Add(plt.Seconds())
		s.think()
	})
}

// DefaultPage draws a small web page: one HTML root, a few stylesheets
// and scripts depending on the root, and a handful of images each
// depending on the root plus one random script (the script "inserted"
// it). Sizes and counts are modest so a page is mice-sized — tens of
// packets — which is what makes page-load time scheduler-sensitive.
func DefaultPage(r *rand.Rand) Page {
	objs := []Object{{Pkts: 6}} // the HTML document
	nScript := 2 + r.Intn(3)
	for i := 0; i < nScript; i++ {
		objs = append(objs, Object{Pkts: int64(3 + r.Intn(8)), Deps: []int{0}})
	}
	nImg := 3 + r.Intn(5)
	for i := 0; i < nImg; i++ {
		script := 1 + r.Intn(nScript)
		objs = append(objs, Object{Pkts: int64(2 + r.Intn(12)), Deps: []int{0, script}})
	}
	return Page{Objects: objs}
}
