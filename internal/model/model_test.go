package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mptcp/internal/core"
)

// The §2.3 worked example: WiFi RTT 10 ms at 4 % loss, 3G RTT 100 ms at
// 1 % loss.
var (
	sec23p   = []float64{0.04, 0.01}
	sec23rtt = []float64{0.010, 0.100}
)

func TestTCPFormulaSec23(t *testing.T) {
	// "A single-path wifi flow would get 707 pkt/s, and a single-path 3G
	// flow would get 141 pkt/s."
	wifi := TCPRate(sec23p[0], sec23rtt[0])
	g3 := TCPRate(sec23p[1], sec23rtt[1])
	if math.Abs(wifi-707) > 1 {
		t.Errorf("WiFi TCP rate = %.1f, want ~707", wifi)
	}
	if math.Abs(g3-141) > 1 {
		t.Errorf("3G TCP rate = %.1f, want ~141", g3)
	}
}

func TestEWTCPClosedFormSec23(t *testing.T) {
	// "EWTCP ... will get total throughput (707+141)/2 = 424 pkt/s."
	w := EWTCPWindows(sec23p)
	total := Sum(Rates(w, sec23rtt))
	if math.Abs(total-424) > 2 {
		t.Errorf("EWTCP total = %.1f, want ~424", total)
	}
}

func TestCoupledClosedFormSec23(t *testing.T) {
	// "COUPLED will send all its traffic on the less congested path ...
	// total throughput 141 pkt/s." (plus the 1-packet probe floor on the
	// other path).
	w := CoupledWindows(sec23p)
	if w[0] != core.MinCwnd {
		t.Errorf("WiFi window = %v, want probe floor", w[0])
	}
	rate := w[1] / sec23rtt[1]
	if math.Abs(rate-141) > 2 {
		t.Errorf("COUPLED 3G rate = %.1f, want ~141", rate)
	}
}

func TestFluidMatchesClosedFormEWTCP(t *testing.T) {
	w := Equilibrium(core.EWTCP{}, sec23p, sec23rtt)
	want := EWTCPWindows(sec23p)
	for i := range w {
		if math.Abs(w[i]-want[i])/want[i] > 0.05 {
			t.Errorf("path %d: fluid %v vs closed form %v", i, w[i], want[i])
		}
	}
}

func TestFluidMatchesClosedFormSemiCoupled(t *testing.T) {
	// Loss rates chosen so every window stays above 2 packets — the
	// closed form ignores the MinCwnd floor that binds a loss at w < 2.
	p := []float64{0.005, 0.005, 0.02}
	rtt := []float64{0.1, 0.1, 0.1}
	w := Equilibrium(core.SemiCoupled{A: 1}, p, rtt)
	want := SemiCoupledWindows(1, p)
	for i := range w {
		if math.Abs(w[i]-want[i])/want[i] > 0.08 {
			t.Errorf("path %d: fluid %v vs closed form %v", i, w[i], want[i])
		}
	}
}

func TestSemiCoupledSplitExample(t *testing.T) {
	// §2.4: three paths at 1 %, 1 %, 5 % loss -> 45 %/45 %/10 % split.
	p := []float64{0.01, 0.01, 0.05}
	w := SemiCoupledWindows(1, p)
	tot := Sum(w)
	if frac := w[0] / tot; math.Abs(frac-0.45) > 0.02 {
		t.Errorf("less-congested share = %.3f, want ~0.45", frac)
	}
	if frac := w[2] / tot; math.Abs(frac-0.10) > 0.02 {
		t.Errorf("more-congested share = %.3f, want ~0.10", frac)
	}
}

func TestFluidCoupledPicksLeastCongested(t *testing.T) {
	// With the MinCwnd probing floor (§2.4), a loss on the congested
	// path decreases its window only to the floor, so the fluid
	// equilibrium keeps a small probe window there:
	//   w_total = √(2(1−p_min)/p_min)          (joint balance)
	//   w_0     = 1 + (1−p_0)/(p_0 · w_total)   (probe balance)
	p := []float64{0.02, 0.005}
	rtt := []float64{0.1, 0.1}
	w := Equilibrium(core.Coupled{}, p, rtt)
	wantTotal := math.Sqrt(2 * (1 - p[1]) / p[1])
	wantProbe := 1 + (1-p[0])/(p[0]*wantTotal)
	if math.Abs(w[0]-wantProbe)/wantProbe > 0.05 {
		t.Errorf("probe window = %v, want ~%v", w[0], wantProbe)
	}
	if total := Sum(w); math.Abs(total-wantTotal)/wantTotal > 0.05 {
		t.Errorf("total window = %v, want ~%v", total, wantTotal)
	}
	// The congested path carries a small fraction of the traffic.
	if w[0] > 0.25*w[1] {
		t.Errorf("congested path window %v not small vs %v", w[0], w[1])
	}
}

func TestMPTCPFluidSec23(t *testing.T) {
	// §2.5: MPTCP should achieve the best single-path rate (707 pkt/s)
	// on the WiFi/3G example — unlike EWTCP (424) and COUPLED (141).
	w := Equilibrium(&core.MPTCP{PerAck: true}, sec23p, sec23rtt)
	total, best := GoalThroughput(w, sec23p, sec23rtt)
	if total < best*0.85 {
		t.Errorf("MPTCP total %.1f pkt/s < 85%% of best single-path %.1f", total, best)
	}
	if harm := GoalNoHarm(w, sec23p, sec23rtt); harm > 1.15 {
		t.Errorf("MPTCP exceeds single-path take by %.2fx on some subset", harm)
	}
}

func TestMPTCPFluidEqualPaths(t *testing.T) {
	// n equal paths: MPTCP total should equal one TCP's window.
	for n := 1; n <= 4; n++ {
		p := make([]float64, n)
		rtt := make([]float64, n)
		for i := range p {
			p[i], rtt[i] = 0.01, 0.1
		}
		w := Equilibrium(&core.MPTCP{PerAck: true}, p, rtt)
		want := TCPWindow(0.01)
		if got := Sum(w); math.Abs(got-want)/want > 0.1 {
			t.Errorf("n=%d: total window %v, want ~%v", n, got, want)
		}
	}
}

// Property: across random loss rates and RTTs, the MPTCP fluid equilibrium
// satisfies the §2.5 fairness goals (3) and (4) within tolerance. This is
// the appendix's theorem, checked numerically.
func TestMPTCPFairnessGoalsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("fluid solver sweep is slow")
	}
	rng := rand.New(rand.NewSource(9))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		p := make([]float64, n)
		rtt := make([]float64, n)
		for i := range p {
			p[i] = 0.002 + r.Float64()*0.02  // 0.2%..2.2%
			rtt[i] = 0.02 + r.Float64()*0.48 // 20ms..500ms
		}
		w := Equilibrium(&core.MPTCP{PerAck: true}, p, rtt)
		total, best := GoalThroughput(w, p, rtt)
		if total < best*0.8 {
			t.Logf("goal(3) violated: total %.1f best %.1f p=%v rtt=%v", total, best, p, rtt)
			return false
		}
		if harm := GoalNoHarm(w, p, rtt); harm > 1.25 {
			t.Logf("goal(4) violated: harm %.2f p=%v rtt=%v", harm, p, rtt)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal rates: index %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single user: index %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty: %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all zero: %v, want 1", got)
	}
}

func TestJainIndexRange(t *testing.T) {
	prop := func(xsRaw []uint16) bool {
		xs := make([]float64, len(xsRaw))
		for i, v := range xsRaw {
			xs[i] = float64(v)
		}
		j := JainIndex(xs)
		return j >= 0 && j <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
