// Package model provides the analytic throughput models the paper uses to
// reason about multipath congestion control: the √(2/p) TCP window
// formula (eq. 2), closed-form equilibria for EWTCP/COUPLED/SEMICOUPLED,
// a fluid (expected-drift) Equilibrium solver for arbitrary
// core.Algorithm implementations, Jain's fairness index, and checkers
// for the two fairness goals of §2.5 (GoalThroughput: do at least as
// well as a TCP on the best path; GoalNoHarm: take no more from any
// link than a single TCP would).
//
// The solver treats loss rates as fixed and exogenous, exactly as in the
// paper's §2.3 worked example (WiFi at 4 %, 3G at 1 %); the packet-level
// simulator in internal/netsim is used when losses must emerge from queue
// dynamics. Experiments cross-check the two: the sec23-wifi3g-model
// experiment pits this package's predictions against the simulated
// stack.
package model

import (
	"math"

	"mptcp/internal/core"
)

// TCPWindow returns the equilibrium window √(2/p), in packets, of a
// regular TCP under per-packet loss probability p (paper eq. (2)).
func TCPWindow(p float64) float64 {
	return math.Sqrt(2 / p)
}

// TCPRate returns the equilibrium rate of a regular TCP in packets per
// second: √(2/p)/RTT (§2.3).
func TCPRate(p, rttSec float64) float64 {
	return TCPWindow(p) / rttSec
}

// EWTCPWindows returns the closed-form equilibrium windows of EWTCP with
// per-subflow weight 1/n: w_r = √(2/p_r)/n.
func EWTCPWindows(p []float64) []float64 {
	n := float64(len(p))
	w := make([]float64, len(p))
	for i, pi := range p {
		w[i] = TCPWindow(pi) / n
	}
	return w
}

// SemiCoupledWindows returns §2.4's equilibrium for SEMICOUPLED with
// aggressiveness a: w_r = √(2a) · (1/p_r)/√(Σ 1/p_s).
func SemiCoupledWindows(a float64, p []float64) []float64 {
	sumInv := 0.0
	for _, pi := range p {
		sumInv += 1 / pi
	}
	w := make([]float64, len(p))
	for i, pi := range p {
		w[i] = math.Sqrt(2*a) * (1 / pi) / math.Sqrt(sumInv)
	}
	return w
}

// CoupledWindows returns COUPLED's equilibrium: total window √(2/p_min)
// placed entirely on minimum-loss paths (split equally among ties), floor
// core.MinCwnd elsewhere.
func CoupledWindows(p []float64) []float64 {
	pmin := math.Inf(1)
	for _, pi := range p {
		pmin = math.Min(pmin, pi)
	}
	var ties int
	for _, pi := range p {
		if pi == pmin {
			ties++
		}
	}
	w := make([]float64, len(p))
	total := TCPWindow(pmin)
	for i, pi := range p {
		if pi == pmin {
			w[i] = total / float64(ties)
		} else {
			w[i] = core.MinCwnd
		}
	}
	return w
}

// Rates converts windows (packets) and RTTs (seconds) to rates in packets
// per second.
func Rates(w, rtt []float64) []float64 {
	r := make([]float64, len(w))
	for i := range w {
		r[i] = w[i] / rtt[i]
	}
	return r
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Equilibrium numerically solves the fluid (expected drift) equilibrium of
// alg under fixed per-path loss probabilities p and round-trip times rtt
// (seconds). The drift of subflow r is
//
//	dw_r/dt = (w_r/RTT_r)(1−p_r)·Increase(w, r) − (w_r/RTT_r)·p_r·(w_r − Decrease(w, r))
//
// integrated by damped Euler steps until windows stop moving. Windows are
// clamped at core.MinCwnd, matching the probing floor of §2.4.
func Equilibrium(alg core.Algorithm, p, rtt []float64) []float64 {
	n := len(p)
	subs := make([]core.Subflow, n)
	for i := range subs {
		subs[i] = core.Subflow{Cwnd: 10, SSThresh: math.Inf(1), SRTT: rtt[i]}
	}
	// dt scaled to the fastest control loop.
	minRTT := math.Inf(1)
	for _, r := range rtt {
		minRTT = math.Min(minRTT, r)
	}
	dt := minRTT / 50
	drift := make([]float64, n)
	for iter := 0; iter < 400000; iter++ {
		maxRel := 0.0
		for r := 0; r < n; r++ {
			w := subs[r].Cwnd
			ackRate := w / rtt[r] * (1 - p[r])
			lossRate := w / rtt[r] * p[r]
			inc := alg.Increase(subs, r)
			dec := w - alg.Decrease(subs, r)
			drift[r] = ackRate*inc - lossRate*dec
		}
		for r := 0; r < n; r++ {
			w := subs[r].Cwnd + drift[r]*dt
			if w < core.MinCwnd {
				w = core.MinCwnd
			}
			rel := math.Abs(w-subs[r].Cwnd) / subs[r].Cwnd
			maxRel = math.Max(maxRel, rel)
			subs[r].Cwnd = w
		}
		if maxRel < 1e-9 && iter > 1000 {
			break
		}
	}
	w := make([]float64, n)
	for i := range subs {
		w[i] = subs[i].Cwnd
	}
	return w
}

// GoalThroughput checks §2.5 goal (3): the multipath flow's total rate is
// at least the best single-path TCP's rate, within fractional tolerance
// tol. It returns the two rates.
func GoalThroughput(w, p, rtt []float64) (total, bestTCP float64) {
	for i := range w {
		total += w[i] / rtt[i]
		bestTCP = math.Max(bestTCP, TCPRate(p[i], rtt[i]))
	}
	return total, bestTCP
}

// GoalNoHarm checks §2.5 goal (4) for every subset S: the multipath flow's
// rate summed over S never exceeds the best single-path TCP rate within S.
// It returns the largest violation ratio (≤ 1 means the goal holds).
func GoalNoHarm(w, p, rtt []float64) float64 {
	n := len(w)
	worst := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		var sum, best float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			sum += w[i] / rtt[i]
			best = math.Max(best, TCPRate(p[i], rtt[i]))
		}
		worst = math.Max(worst, sum/best)
	}
	return worst
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) of the rates xs,
// used in §3's torus experiment.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
