package scenario

import "mptcp/internal/sim"

// The builtin scenario library: the churn/mobility cases the ns-3 MPTCP
// studies (Chihani & Collange, arXiv:1112.1932 and 1112.4339) stress and
// the paper's §5 dynamics generalise to. Each builder lays its events
// out as fractions of the run length T, so the script's event count —
// and therefore the record shape of the dynamics grid — is the same at
// every scale. All builtins script links 0 (primary) and 1 (secondary),
// which every dynamics topology exposes.
func init() {
	Register("flap", "primary link flaps periodically (down 1/25th of T every T/10), then stays up for the final fifth",
		func(T sim.Time) Scenario {
			return Scenario{Name: "flap", Directives: []Directive{
				PeriodicFlap{Link: 0, Start: T / 5, End: 4 * T / 5, Period: T / 10, Down: T / 25},
			}}
		})
	Register("ramp", "primary link rate ramps down to 25% and back up in 8 steps while bursty CBR hits the secondary",
		func(T sim.Time) Scenario {
			return Scenario{Name: "ramp", Directives: []Directive{
				RateRamp{Link: 0, Start: T / 5, End: T / 2, From: 1, To: 0.25, Steps: 8},
				RateRamp{Link: 0, Start: 11 * T / 20, End: 17 * T / 20, From: 0.25, To: 1, Steps: 8},
				BackgroundCBR{Link: 1, Start: T / 10, End: 9 * T / 10,
					RateFactor: 1, MeanOn: T / 200, MeanOff: T / 40},
			}}
		})
	Register("churn", "Poisson flow arrivals (rate 40/T over 0.8T: ≈32 expected) with Pareto(1.5) sizes of mean 150 packets — the §3 flash crowd",
		func(T sim.Time) Scenario {
			return Scenario{Name: "churn", Directives: []Directive{
				FlowChurn{Start: T / 10, End: 9 * T / 10, Rate: 40 / T.Seconds(), MeanPkts: 150},
			}}
		})
	Register("handover", "primary dies at 0.4T (secondary congests: delay x2, rate x1.3); at 0.7T a better primary appears (delay x0.5, rate x1.2)",
		func(T sim.Time) Scenario {
			return Scenario{Name: "handover", Directives: []Directive{
				LinkDown{Link: 0, At: 2 * T / 5},
				DelayStep{Link: 1, At: 2 * T / 5, Factor: 2},
				RateRamp{Link: 1, Start: 2 * T / 5, To: 1.3},
				LinkUp{Link: 0, At: 7 * T / 10},
				DelayStep{Link: 0, At: 7 * T / 10, Factor: 0.5},
				DelayStep{Link: 1, At: 7 * T / 10, Factor: 1},
				RateRamp{Link: 0, Start: 7 * T / 10, To: 1.2},
				RateRamp{Link: 1, Start: 7 * T / 10, To: 1},
			}}
		})
}
