package scenario_test

import (
	"strings"
	"testing"

	"mptcp/internal/netsim"
	"mptcp/internal/scenario"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
)

// testEnv builds a world with n duplex links (10 Mb/s, 5 ms, 50-pkt
// buffers) ready for directive scripting.
func testEnv(seed int64, n int) (*sim.Simulator, *scenario.Env) {
	s := sim.New(seed)
	nw := netsim.NewNet(s)
	env := &scenario.Env{Sim: s, Net: nw}
	for i := 0; i < n; i++ {
		env.Links = append(env.Links, topo.NewDuplex("l"+string(rune('0'+i)), 10, 5*sim.Millisecond, 50))
	}
	return s, env
}

func TestRegistryBuiltins(t *testing.T) {
	names := scenario.Names()
	for _, want := range []string{"flap", "ramp", "churn", "handover"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin scenario %q not registered (have %v)", want, names)
		}
	}
	// Names is sorted so the dynamics grid layout never depends on
	// package-init order.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
	if len(scenario.Infos()) != len(names) {
		t.Errorf("Infos/Names length mismatch")
	}
	for _, info := range scenario.Infos() {
		if info.Desc == "" {
			t.Errorf("scenario %s has no description", info.Name)
		}
	}
	if _, err := scenario.Build("nope", sim.Second); err == nil {
		t.Error("unknown scenario name resolved")
	}
	// Every builtin must install cleanly onto a 2-link env with a spawn
	// hook — the contract the dynamics topologies provide.
	for _, name := range names {
		_, env := testEnv(1, 2)
		env.Spawn = func(int64) {}
		sc := scenario.MustBuild(name, 10*sim.Second)
		if sc.Name != name {
			t.Errorf("built scenario named %q, want %q", sc.Name, name)
		}
		if err := sc.Install(env); err != nil {
			t.Errorf("builtin %s failed to install: %v", name, err)
		}
	}
}

func TestInstallValidation(t *testing.T) {
	cases := []struct {
		name string
		d    scenario.Directive
		want string // error substring
	}{
		{"link out of range", scenario.LinkDown{Link: 2, At: sim.Second}, "out of range"},
		{"negative link", scenario.LinkUp{Link: -1}, "out of range"},
		{"bad delay factor", scenario.DelayStep{Link: 0, Factor: 0}, "positive"},
		{"bad loss", scenario.LossStep{Link: 0, Loss: 1.5}, "outside"},
		{"flap down too long", scenario.PeriodicFlap{Link: 0, Period: sim.Second, Down: sim.Second, End: 9 * sim.Second}, "Down < Period"},
		{"flap does not fit", scenario.PeriodicFlap{Link: 0, Start: 9 * sim.Second, End: 9 * sim.Second, Period: sim.Second, Down: 100 * sim.Millisecond}, "no flap fits"},
		{"ramp backwards", scenario.RateRamp{Link: 0, Start: 2 * sim.Second, End: sim.Second, From: 1, To: 0.5, Steps: 4}, "End > Start"},
		{"ramp to zero", scenario.RateRamp{Link: 0, To: 0}, "positive"},
		{"churn without spawn", scenario.FlowChurn{Start: 0, End: sim.Second, Rate: 1, MeanPkts: 10}, "Spawn"},
		{"churn bad shape", scenario.FlowChurn{Start: 0, End: sim.Second, Rate: 1, MeanPkts: 10, Alpha: 0.5}, "exceed 1"},
		{"cbr bad factor", scenario.BackgroundCBR{Link: 0, RateFactor: 0, MeanOn: sim.Second, MeanOff: sim.Second}, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, env := testEnv(1, 2)
			if tc.name != "churn without spawn" {
				env.Spawn = func(int64) {}
			}
			err := scenario.Scenario{Name: "bad", Directives: []scenario.Directive{tc.d}}.Install(env)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Install = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestLinkDownUpSchedule(t *testing.T) {
	s, env := testEnv(1, 1)
	sc := scenario.Scenario{Name: "outage", Directives: []scenario.Directive{
		scenario.LinkDown{Link: 0, At: sim.Second},
		scenario.LinkUp{Link: 0, At: 3 * sim.Second},
	}}
	if err := sc.Install(env); err != nil {
		t.Fatal(err)
	}
	l := env.Links[0]
	s.RunUntil(sim.Second - 1)
	if l.AB.Down() || l.BA.Down() {
		t.Error("link down before the directive instant")
	}
	s.RunUntil(2 * sim.Second)
	if !l.AB.Down() || !l.BA.Down() {
		t.Error("LinkDown did not take both directions down")
	}
	s.RunUntil(4 * sim.Second)
	if l.AB.Down() || l.BA.Down() {
		t.Error("LinkUp did not restore the link")
	}
}

func TestRateRampSteps(t *testing.T) {
	s, env := testEnv(1, 1)
	sc := scenario.Scenario{Name: "ramp", Directives: []scenario.Directive{
		scenario.RateRamp{Link: 0, Start: sim.Second, End: 4 * sim.Second, From: 1, To: 0.25, Steps: 4},
	}}
	if err := sc.Install(env); err != nil {
		t.Fatal(err)
	}
	fwd, rev := env.Links[0].AB, env.Links[0].BA
	// Steps at 1s, 2s, 3s, 4s with factors 1, 0.75, 0.5, 0.25 of 10 Mb/s.
	wants := []struct {
		at   sim.Time
		mbps float64
	}{
		{sim.Second, 10},
		{2 * sim.Second, 7.5},
		{3 * sim.Second, 5},
		{4 * sim.Second, 2.5},
	}
	for _, w := range wants {
		s.RunUntil(w.at)
		if got := fwd.RateBps / 1e6; got != w.mbps {
			t.Errorf("at %v forward rate = %v Mb/s, want %v", w.at, got, w.mbps)
		}
	}
	if rev.RateBps != 10e6 {
		t.Errorf("reverse (ACK) direction rate changed to %v, want untouched", rev.RateBps)
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("%d events left after the ramp finished (timer leaked?)", s.Pending())
	}
}

func TestRateRampAbsolute(t *testing.T) {
	s, env := testEnv(1, 1)
	sc := scenario.Scenario{Name: "abs", Directives: []scenario.Directive{
		scenario.RateRamp{Link: 0, Start: sim.Second, To: 2.8, Abs: true},
	}}
	if err := sc.Install(env); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got := env.Links[0].AB.RateBps; got != 2.8e6 {
		t.Errorf("absolute set gave %v bps, want exactly 2.8e6", got)
	}
}

func TestDelayStepFactors(t *testing.T) {
	s, env := testEnv(1, 2)
	sc := scenario.Scenario{Name: "steps", Directives: []scenario.Directive{
		scenario.DelayStep{Link: 0, At: sim.Second, Factor: 2},
		// Both capture the install-time base: the second step restores it.
		scenario.DelayStep{Link: 0, At: 2 * sim.Second, Factor: 1},
	}}
	if err := sc.Install(env); err != nil {
		t.Fatal(err)
	}
	l := env.Links[0]
	s.RunUntil(sim.Second)
	if l.AB.PropDelay != 10*sim.Millisecond || l.BA.PropDelay != 10*sim.Millisecond {
		t.Errorf("factor 2 gave %v/%v, want 10ms both directions", l.AB.PropDelay, l.BA.PropDelay)
	}
	s.RunUntil(2 * sim.Second)
	if l.AB.PropDelay != 5*sim.Millisecond {
		t.Errorf("factor 1 gave %v, want the install-time 5ms back", l.AB.PropDelay)
	}
}

func TestPeriodicFlapPattern(t *testing.T) {
	s, env := testEnv(1, 1)
	flap := scenario.PeriodicFlap{Link: 0, Start: sim.Second, End: 4 * sim.Second,
		Period: sim.Second, Down: 250 * sim.Millisecond}
	if err := (scenario.Scenario{Name: "flap", Directives: []scenario.Directive{flap}}).Install(env); err != nil {
		t.Fatal(err)
	}
	l := env.Links[0]
	type sample struct {
		at   sim.Time
		down bool
	}
	// Cycles start at 1s, 2s, 3s (a 4s cycle would end its Down past End).
	samples := []sample{
		{900 * sim.Millisecond, false},
		{1100 * sim.Millisecond, true},
		{1300 * sim.Millisecond, false},
		{2100 * sim.Millisecond, true},
		{2600 * sim.Millisecond, false},
		{3100 * sim.Millisecond, true},
		{3300 * sim.Millisecond, false},
		{4100 * sim.Millisecond, false},
		{5 * sim.Second, false},
	}
	for _, smp := range samples {
		s.RunUntil(smp.at)
		if l.AB.Down() != smp.down {
			t.Errorf("at %v link down = %v, want %v", smp.at, l.AB.Down(), smp.down)
		}
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("%d events pending after the flap schedule ended (timer leaked?)", s.Pending())
	}
	if l.AB.Down() {
		t.Error("link must end the scenario up")
	}
}

func TestFlowChurnSpawnsAndCounts(t *testing.T) {
	s, env := testEnv(3, 1)
	var sizes []int64
	env.Spawn = func(pkts int64) { sizes = append(sizes, pkts) }
	churn := scenario.FlowChurn{Start: sim.Second, End: 21 * sim.Second, Rate: 2, MeanPkts: 50}
	if err := (scenario.Scenario{Name: "churn", Directives: []scenario.Directive{churn}}).Install(env); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if env.ChurnArrivals != int64(len(sizes)) {
		t.Errorf("ChurnArrivals %d != spawned %d", env.ChurnArrivals, len(sizes))
	}
	// ~40 expected arrivals over 20 s at 2/s; a seeded run is exact, so
	// bound loosely against distribution bugs only.
	if len(sizes) < 20 || len(sizes) > 80 {
		t.Errorf("spawned %d flows, want roughly 40", len(sizes))
	}
	var mean float64
	for _, sz := range sizes {
		if sz < 1 {
			t.Fatalf("spawned flow of %d packets", sz)
		}
		mean += float64(sz) / float64(len(sizes))
	}
	if mean < 15 || mean > 300 {
		t.Errorf("mean flow size %.1f packets, want in the vicinity of 50 (heavy-tailed)", mean)
	}
	if s.Pending() != 0 {
		t.Errorf("%d events pending after churn ended (timer leaked?)", s.Pending())
	}
}

func TestFlowChurnDeterminism(t *testing.T) {
	run := func() []int64 {
		s, env := testEnv(7, 1)
		var sizes []int64
		env.Spawn = func(pkts int64) { sizes = append(sizes, pkts) }
		churn := scenario.FlowChurn{Start: 0, End: 10 * sim.Second, Rate: 5, MeanPkts: 30}
		if err := (scenario.Scenario{Name: "churn", Directives: []scenario.Directive{churn}}).Install(env); err != nil {
			t.Fatal(err)
		}
		s.Run()
		return sizes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("same-seed churn runs spawned %d vs %d flows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed churn diverged at flow %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBackgroundCBRWindow(t *testing.T) {
	s, env := testEnv(9, 2)
	sc := scenario.Scenario{Name: "cbr", Directives: []scenario.Directive{
		scenario.BackgroundCBR{Link: 1, Start: sim.Second, End: 5 * sim.Second,
			RateFactor: 1, MeanOn: 50 * sim.Millisecond, MeanOff: 100 * sim.Millisecond},
	}}
	if err := sc.Install(env); err != nil {
		t.Fatal(err)
	}
	l := env.Links[1].AB
	s.RunUntil(sim.Second)
	if l.Stats.Arrivals != 0 {
		t.Errorf("CBR sent %d packets before its window opened", l.Stats.Arrivals)
	}
	s.RunUntil(5 * sim.Second)
	inWindow := l.Stats.Arrivals
	if inWindow == 0 {
		t.Error("CBR sent nothing during its window")
	}
	s.RunUntil(20 * sim.Second)
	s.Run()
	if l.Stats.Arrivals != inWindow {
		t.Errorf("CBR kept sending after End: %d -> %d packets", inWindow, l.Stats.Arrivals)
	}
	// The untouched link carries nothing.
	if env.Links[0].AB.Stats.Arrivals != 0 {
		t.Error("CBR leaked onto the wrong link")
	}
}
