package scenario

import (
	"fmt"

	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/traffic"
)

// LinkDown takes link Link (both directions) down at At: arrivals are
// dropped and packets stranded in flight are lost, the §5 radio outage.
type LinkDown struct {
	Link int
	At   sim.Time
}

func (d LinkDown) install(env *Env) error {
	l, err := env.link(d.Link)
	if err != nil {
		return err
	}
	env.Sim.At(d.At, func() { l.SetDown(true) })
	return nil
}

// LinkUp restores link Link at At.
type LinkUp struct {
	Link int
	At   sim.Time
}

func (d LinkUp) install(env *Env) error {
	l, err := env.link(d.Link)
	if err != nil {
		return err
	}
	env.Sim.At(d.At, func() { l.SetDown(false) })
	return nil
}

// DelayStep rescales link Link's propagation delay (both directions) at
// At: the new delay is Factor times the delay the link had when the
// scenario was installed. Packets already accepted keep their old delay
// (netsim.Link.SetDelay). Factor form keeps one script meaningful
// across topologies with very different RTTs.
type DelayStep struct {
	Link   int
	At     sim.Time
	Factor float64
}

func (d DelayStep) install(env *Env) error {
	l, err := env.link(d.Link)
	if err != nil {
		return err
	}
	if d.Factor <= 0 {
		return fmt.Errorf("delay factor %v must be positive", d.Factor)
	}
	base := l.AB.PropDelay // install-time delay; Duplex keeps both directions equal
	env.Sim.At(d.At, func() { l.SetDelay(sim.Time(float64(base) * d.Factor)) })
	return nil
}

// LossStep sets link Link's i.i.d. loss rate (both directions) to Loss
// at At — radio conditions changing mid-walk (§5 Fig. 17).
type LossStep struct {
	Link int
	At   sim.Time
	Loss float64
}

func (d LossStep) install(env *Env) error {
	l, err := env.link(d.Link)
	if err != nil {
		return err
	}
	if d.Loss < 0 || d.Loss > 1 {
		return fmt.Errorf("loss rate %v outside [0,1]", d.Loss)
	}
	env.Sim.At(d.At, func() { l.SetLossRate(d.Loss) })
	return nil
}

// RateRamp reschedules link Link's forward (data-direction) line rate
// through Steps evenly spaced set-points between Start and End,
// interpolating linearly From→To. By default From/To are factors of the
// link's forward rate at install time; with Abs they are absolute Mb/s
// (exact values, used where an experiment reproduces a measured rate).
// Steps <= 1 degenerates to a single set to To at Start (From unused).
// The reverse (ACK) direction is left alone, matching how the paper's
// experiments vary data capacity.
type RateRamp struct {
	Link       int
	Start, End sim.Time
	From, To   float64
	Steps      int
	Abs        bool
}

func (d RateRamp) install(env *Env) error {
	l, err := env.link(d.Link)
	if err != nil {
		return err
	}
	rate := func(f float64) float64 {
		if d.Abs {
			return f
		}
		return l.AB.RateBps / 1e6 * f
	}
	if d.Steps <= 1 {
		target := rate(d.To)
		if target <= 0 {
			return fmt.Errorf("rate %v must be positive", target)
		}
		env.Sim.At(d.Start, func() { l.AB.SetRate(target) })
		return nil
	}
	if d.End <= d.Start {
		return fmt.Errorf("ramp needs End > Start (got %v..%v)", d.Start, d.End)
	}
	if rate(d.From) <= 0 || rate(d.To) <= 0 {
		return fmt.Errorf("ramp endpoints must give positive rates")
	}
	r := &rampRun{link: l, d: d, base: rate(1)}
	if d.Abs {
		r.base = 1 // step() multiplies base by the interpolated value
	}
	r.tm = env.Sim.NewTimer(r.step)
	r.tm.ResetAt(d.Start)
	return nil
}

// rampRun steps one RateRamp through its set-points on a single
// rearm-in-place timer, releasing it after the last step.
type rampRun struct {
	link *topo.Duplex
	d    RateRamp
	base float64 // install-time forward rate in Mb/s (1 when Abs)
	k    int     // next step index, 0..Steps-1
	tm   *sim.Timer
}

func (r *rampRun) step() {
	n := r.d.Steps - 1
	f := r.d.From + (r.d.To-r.d.From)*float64(r.k)/float64(n)
	r.link.AB.SetRate(r.base * f)
	r.k++
	if r.k > n {
		r.tm.Release()
		return
	}
	r.tm.ResetAt(r.d.Start + sim.Time(int64(r.d.End-r.d.Start)*int64(r.k)/int64(n)))
}

// PeriodicFlap takes link Link down for Down at the start of every
// Period, from Start until End — the stairwell walked past repeatedly,
// or an interface that keeps dissociating. The link is always up after
// the final flap; cycles that would not fit a full Down before End are
// not started. Runs on one rearm-in-place timer, released when done.
type PeriodicFlap struct {
	Link       int
	Start, End sim.Time
	Period     sim.Time
	Down       sim.Time
}

func (d PeriodicFlap) install(env *Env) error {
	l, err := env.link(d.Link)
	if err != nil {
		return err
	}
	if d.Period <= 0 || d.Down <= 0 || d.Down >= d.Period {
		return fmt.Errorf("flap needs 0 < Down < Period (got Down %v, Period %v)", d.Down, d.Period)
	}
	if d.Start+d.Down > d.End {
		return fmt.Errorf("no flap fits between Start %v and End %v", d.Start, d.End)
	}
	f := &flapRun{d: d, link: l, cycle: d.Start}
	f.tm = env.Sim.NewTimer(f.step)
	f.tm.ResetAt(d.Start)
	return nil
}

type flapRun struct {
	d     PeriodicFlap
	link  *topo.Duplex
	cycle sim.Time // start of the current flap cycle
	down  bool
	tm    *sim.Timer
}

func (f *flapRun) step() {
	if !f.down {
		f.link.SetDown(true)
		f.down = true
		f.tm.ResetAt(f.cycle + f.d.Down)
		return
	}
	f.link.SetDown(false)
	f.down = false
	f.cycle += f.d.Period
	if f.cycle+f.d.Down > f.d.End {
		f.tm.Release()
		return
	}
	f.tm.ResetAt(f.cycle)
}

// BackgroundCBR attaches a bursty on/off constant-bit-rate interferer
// (traffic.OnOffCBR) to link Link's forward direction between Start and
// End (End 0 = forever). The burst rate is RateFactor times the link's
// forward line rate at install, so the same script saturates a 100 Mb/s
// access link and a 2 Mb/s radio alike; on/off periods are exponential
// with the given means.
type BackgroundCBR struct {
	Link            int
	Start, End      sim.Time
	RateFactor      float64
	MeanOn, MeanOff sim.Time
}

func (d BackgroundCBR) install(env *Env) error {
	l, err := env.link(d.Link)
	if err != nil {
		return err
	}
	if env.Net == nil {
		return fmt.Errorf("BackgroundCBR needs Env.Net")
	}
	if d.RateFactor <= 0 || d.MeanOn <= 0 || d.MeanOff <= 0 {
		return fmt.Errorf("CBR needs positive RateFactor and on/off means")
	}
	if d.End > 0 && d.End <= d.Start {
		return fmt.Errorf("CBR needs End > Start (got %v..%v)", d.Start, d.End)
	}
	cbr := traffic.NewOnOffCBR(env.Net, l.AB.RateBps/1e6*d.RateFactor, d.MeanOn, d.MeanOff, l.AB)
	env.Sim.At(d.Start, cbr.Start)
	if d.End > 0 {
		env.Sim.At(d.End, cbr.Stop)
	}
	return nil
}

// FlowChurn spawns short-lived flows via Env.Spawn as a Poisson process
// of Rate arrivals per second between Start and End, with
// Pareto(Alpha)-distributed sizes of mean MeanPkts packets — the §3
// flash-crowd/server workload as a reusable script. Arrival gaps and
// sizes draw from env.Sim.Rand(); arrivals are counted in
// env.ChurnArrivals. Runs on one rearm-in-place timer, released at End.
type FlowChurn struct {
	Start, End sim.Time
	Rate       float64 // arrivals per second
	MeanPkts   float64 // mean flow size in packets
	Alpha      float64 // Pareto shape; 0 = 1.5 (the paper's file sizes)
}

func (d FlowChurn) install(env *Env) error {
	if env.Spawn == nil {
		return fmt.Errorf("FlowChurn needs Env.Spawn")
	}
	if d.Rate <= 0 || d.MeanPkts < 1 {
		return fmt.Errorf("churn needs positive Rate and MeanPkts >= 1")
	}
	if d.End <= d.Start {
		return fmt.Errorf("churn needs End > Start (got %v..%v)", d.Start, d.End)
	}
	if d.Alpha == 0 {
		d.Alpha = 1.5
	}
	if d.Alpha <= 1 {
		return fmt.Errorf("Pareto shape %v must exceed 1 for the mean to exist", d.Alpha)
	}
	c := &churnRun{env: env, d: d, sizes: traffic.NewParetoMean(d.Alpha, d.MeanPkts)}
	c.tm = env.Sim.NewTimer(c.step)
	c.tm.ResetAt(d.Start)
	return nil
}

type churnRun struct {
	env   *Env
	d     FlowChurn
	sizes traffic.Pareto
	tm    *sim.Timer
}

// step fires once at Start (beginning the process without an arrival)
// and then once per arrival.
func (c *churnRun) step() {
	now := c.env.Sim.Now()
	if now > c.d.Start {
		c.env.ChurnArrivals++
		pkts := int64(c.sizes.Sample(c.env.Sim.Rand()))
		if pkts < 1 {
			pkts = 1
		}
		c.env.Spawn(pkts)
	}
	gap := sim.Time(c.env.Sim.Rand().ExpFloat64() / c.d.Rate * float64(sim.Second))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	next := now + gap
	if next > c.d.End {
		c.tm.Release()
		return
	}
	c.tm.ResetAt(next)
}
