// Package scenario is the declarative network-dynamics engine: a
// Scenario is a named list of typed directives — link flaps, rate ramps,
// delay steps, background interference, flow churn — that compile onto
// the deterministic event engine of internal/sim and drive any
// netsim.Net-backed topology.
//
// The paper's most compelling results (§5: WiFi/3G handover, mobility,
// flash-crowd dynamics) come from *time-varying* networks. Before this
// package those dynamics were hand-coded one-off closures inside
// individual experiments; a Scenario makes them reusable data: the same
// "handover" script can run against the torus, the dual-homed server or
// the wireless client, under every registered congestion-control
// algorithm (the `dynamics` experiment in internal/exp does exactly
// that).
//
// # Binding and determinism
//
// A Scenario is pure data until Install binds it to an Env — one
// simulated world plus the duplex links a topology exposes for scripting
// (by index, in the topology's canonical order) and an optional Spawn
// callback for flow churn. Installing schedules every directive's events
// on env.Sim; periodic directives (PeriodicFlap, RateRamp, FlowChurn)
// compile onto rearm-in-place sim.Timers and release them when they
// finish, so a completed scenario leaves no events behind.
//
// All scenario randomness (churn arrival gaps, Pareto flow sizes, CBR
// burst lengths) is drawn from env.Sim.Rand() — the world's single
// seeded source — so a scenario run is exactly as reproducible as the
// world it runs in: same seed, bit-identical schedule. Directives with
// relative parameters (rate/delay factors) capture their base values at
// install time, which makes one scenario meaningful across topologies
// with very different link speeds.
package scenario

import (
	"fmt"
	"sort"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
)

// Env is the binding target of a scenario: one simulated world and the
// link set a topology exposes for scripting. Directives reference links
// by index into Links (the topology's canonical order, e.g. the torus's
// links A..E, or [WiFi, 3G] for the wireless client).
type Env struct {
	Sim *sim.Simulator
	Net *netsim.Net

	// Links are the scriptable duplex links, in canonical order.
	Links []*topo.Duplex

	// Spawn starts one short-lived flow of the given size in packets;
	// required by FlowChurn, ignored by every other directive. The
	// callee owns the flow (typically a transport.Conn with DataPackets
	// set, which releases its timers on completion).
	Spawn func(pkts int64)

	// ChurnArrivals counts the flows FlowChurn spawned; read it after
	// the run for reporting.
	ChurnArrivals int64
}

func (e *Env) link(i int) (*topo.Duplex, error) {
	if i < 0 || i >= len(e.Links) {
		return nil, fmt.Errorf("link %d out of range (env has %d)", i, len(e.Links))
	}
	return e.Links[i], nil
}

// Directive is one typed entry of a scenario script. Implementations
// validate themselves against the Env and schedule their events; they
// are pure data before install.
type Directive interface {
	install(env *Env) error
}

// Scenario is a named, declarative list of directives. The zero value
// is an empty scenario. Times inside directives are absolute simulated
// instants; builders (see Register) lay them out as fractions of a run
// length so one script scales with the experiment.
type Scenario struct {
	Name       string
	Directives []Directive
}

// Install validates every directive against env and schedules its
// events on env.Sim. It must be called before the instants the
// directives reference (scheduling in the past panics in sim);
// experiments install at time zero, right after building their flows.
func (s Scenario) Install(env *Env) error {
	if env == nil || env.Sim == nil {
		return fmt.Errorf("scenario %s: install needs an Env with a Simulator", s.Name)
	}
	for i, d := range s.Directives {
		if err := d.install(env); err != nil {
			return fmt.Errorf("scenario %s: directive %d (%T): %w", s.Name, i, d, err)
		}
	}
	return nil
}

// MustInstall is Install for static scripts whose validity is a code
// invariant; it panics on error.
func (s Scenario) MustInstall(env *Env) {
	if err := s.Install(env); err != nil {
		panic("scenario: " + err.Error())
	}
}

// --- registry of named scenario builders ------------------------------

// BuilderInfo describes one registered scenario for CLI help.
type BuilderInfo struct {
	Name string
	Desc string
}

type builderEntry struct {
	info  BuilderInfo
	build func(T sim.Time) Scenario
}

var (
	builders  = map[string]builderEntry{}
	buildName []string
)

// Register adds a named scenario builder. The builder receives the
// run's end time T (already scaled by the caller) and lays its
// directive times out as fractions of T, so the script's event count is
// independent of scale. Duplicate names panic; called from init.
func Register(name, desc string, build func(T sim.Time) Scenario) {
	if name == "" || build == nil {
		panic("scenario: Register needs a name and a builder")
	}
	if _, dup := builders[name]; dup {
		panic("scenario: duplicate scenario " + name)
	}
	builders[name] = builderEntry{info: BuilderInfo{Name: name, Desc: desc}, build: build}
	buildName = append(buildName, name)
	sort.Strings(buildName)
}

// Names lists the registered scenarios in sorted order — the column
// order of the dynamics grid (sorted, not registration order, so the
// grid layout never depends on package-init sequence).
func Names() []string {
	out := make([]string, len(buildName))
	copy(out, buildName)
	return out
}

// Infos returns the registered scenario descriptions in Names order.
func Infos() []BuilderInfo {
	out := make([]BuilderInfo, 0, len(buildName))
	for _, n := range buildName {
		out = append(out, builders[n].info)
	}
	return out
}

// Build constructs the named scenario for a run ending at T.
func Build(name string, T sim.Time) (Scenario, error) {
	e, ok := builders[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return e.build(T), nil
}

// MustBuild is Build for names known to be registered; it panics on
// unknown names.
func MustBuild(name string, T sim.Time) Scenario {
	s, err := Build(name, T)
	if err != nil {
		panic(err.Error())
	}
	return s
}
