package scenario_test

import (
	"testing"

	"mptcp/internal/cc"
	"mptcp/internal/netsim"
	"mptcp/internal/scenario"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

// TestFlapRegrowsEveryAlgorithm is the property suite behind the flap
// scenario: every algorithm in the cc registry — including the
// kernel-family successors OLIA, BALIA and the delay-based wVegas — must
// survive a PeriodicFlap on one of its two paths and come back:
//
//   - the connection keeps delivering across the flap phase (the other
//     path plus §6 reinjection must prevent a stall);
//   - after the final flap the flapped path resumes carrying data and
//     its cwnd re-grows — no algorithm may leave a window stuck at the
//     floor once loss stops;
//   - cwnds stay at or above the protocol minimum of 1 throughout;
//   - teardown leaks nothing: once the connection stops, the event queue
//     drains to empty (every scenario and transport timer was released).
func TestFlapRegrowsEveryAlgorithm(t *testing.T) {
	const T = 20 * sim.Second // flaps end at 4T/5 = 16 s; 4 s of recovery
	for _, name := range cc.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := sim.New(11)
			nw := netsim.NewNet(s)
			l0 := topo.NewDuplex("flapped", 8, 10*sim.Millisecond, 40)
			l1 := topo.NewDuplex("steady", 8, 10*sim.Millisecond, 40)
			alg, err := cc.New(name)
			if err != nil {
				t.Fatal(err)
			}
			c := transport.NewConn(nw, transport.Config{
				Alg:   alg,
				Paths: []transport.Path{topo.PathThrough(l0), topo.PathThrough(l1)},
			})
			c.Start()

			env := &scenario.Env{Sim: s, Net: nw, Links: []*topo.Duplex{l0, l1}}
			scenario.MustBuild("flap", T).MustInstall(env)

			// During the flap phase the connection must not stall.
			flapsEnd := 4 * T / 5
			s.RunUntil(T / 5)
			preFlaps := c.Delivered()
			s.RunUntil(flapsEnd)
			inFlaps := c.Delivered()
			if inFlaps <= preFlaps {
				t.Errorf("no data delivered during the flap phase (%d at start, %d at end)", preFlaps, inFlaps)
			}

			// Give the flapped path one backed-off RTO to notice the link
			// is back, then require it to carry fresh data and re-grow.
			s.RunUntil(flapsEnd + (T-flapsEnd)/2)
			sub0 := c.SubflowDelivered(0)
			cwnd0 := c.Cwnd(0)
			s.RunUntil(T)
			if got := c.SubflowDelivered(0); got <= sub0 {
				t.Errorf("flapped path stuck after flaps ended: subflow delivered %d -> %d", sub0, got)
			}
			if got := c.Cwnd(0); got < cwnd0 && got < 2 {
				t.Errorf("flapped path cwnd did not re-grow: %v -> %v", cwnd0, got)
			}
			if c.Delivered() <= inFlaps {
				t.Errorf("connection stopped delivering after the flaps (%d -> %d)", inFlaps, c.Delivered())
			}
			for i := 0; i < 2; i++ {
				if w := c.Cwnd(i); w < 1 {
					t.Errorf("subflow %d cwnd %v below the protocol floor of 1", i, w)
				}
			}

			// No leaked timers: stop the connection, drain in-flight
			// packets, and the queue must be empty — the flap timer was
			// released when the schedule ended, the connection's on Stop.
			c.Stop()
			s.Run()
			if got := s.Pending(); got != 0 {
				t.Errorf("%d events still pending after teardown (leaked timers)", got)
			}
		})
	}
}
