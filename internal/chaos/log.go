package chaos

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one line of the chaos event log: what the director (or the
// harness) did, when, to which path. A failing soak run's JSONL log plus
// the seed is a complete replay recipe.
type Event struct {
	T      float64 `json:"t"` // seconds since the log was opened
	Ev     string  `json:"ev"`
	Path   string  `json:"path,omitempty"`
	Socket int     `json:"socket,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	Bytes  int     `json:"bytes,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// Log is a concurrency-safe JSONL event sink. A nil *Log or a Log with a
// nil writer discards events, so callers never need to guard emission.
type Log struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewLog wraps w (may be nil) as an event sink; timestamps are relative
// to this call.
func NewLog(w io.Writer) *Log {
	return &Log{w: w, start: time.Now()}
}

// Emit writes one event line. Safe on a nil receiver.
func (l *Log) Emit(e Event) {
	if l == nil || l.w == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e.T = time.Since(l.start).Seconds()
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.w.Write(append(b, '\n')) //nolint:errcheck // best-effort telemetry
}
