// Package chaos is the fault-injection layer for the mptcpnet userspace
// transport: a net.PacketConn middleware (Path) that subjects real UDP
// datagrams to the misbehaviour the paper's evaluation leans on — dead
// radios, bursty wireless loss, reordering, duplication, bit corruption,
// partitions — plus the machinery to orchestrate and observe it:
//
//   - Path wraps any net.PacketConn and applies a PathConfig to outgoing
//     datagrams: delay/jitter, i.i.d. loss, Gilbert–Elliott burst loss,
//     reordering, duplication, bit corruption and a token-bucket rate
//     limit, all driven by one seeded rng so a failing run reproduces
//     from its seed. Kill/Heal model a radio vanishing and returning.
//   - Director mutates a fleet of Paths over time — either a scripted
//     kill/heal Schedule or a seeded random walk — logging every action.
//   - Relay is a store-nothing UDP forwarder that interposes a Path
//     between two real processes, so even a sender and receiver that
//     know nothing about this package can be tested under chaos.
//   - Log is a JSONL event stream (one object per line) that soak runs
//     upload as a CI artifact, making a nightly failure replayable.
//
// The companion packages chaos/leak (goroutine snapshot-diff leak
// detector) and chaos/harness (N-socket transfer harness asserting the
// liveness and integrity invariants) complete the test stack; see
// TESTING.md at the repo root.
package chaos

import "time"

// PathConfig is the full fault model one Path applies to its outgoing
// datagrams. The zero value is a transparent path.
type PathConfig struct {
	// Delay is the one-way propagation delay added to every datagram;
	// Jitter adds a uniform random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration

	// LossRate drops datagrams i.i.d. with this probability (0..1).
	LossRate float64

	// GE, when non-nil, runs a Gilbert–Elliott two-state burst-loss chain
	// on top of LossRate: wireless-style clustered losses rather than
	// coin flips.
	GE *GEParams

	// DupRate delivers an extra copy of the datagram with this
	// probability (the copy takes an independent delay draw).
	DupRate float64

	// CorruptRate flips 1–3 random bits in the datagram with this
	// probability before delivery — the wire checksum must catch it.
	CorruptRate float64

	// ReorderRate holds a datagram back by ReorderDelay with this
	// probability, letting later datagrams overtake it.
	ReorderRate  float64
	ReorderDelay time.Duration

	// RateBps, when > 0, serialises datagrams through a token-bucket
	// rate limit of this many bits per second.
	RateBps float64
}

// GEParams parameterises the Gilbert–Elliott burst-loss chain: a two-state
// Markov model where the bad state (deep fade) loses most datagrams and
// the good state almost none. State transitions are evaluated per
// datagram.
type GEParams struct {
	PGoodBad float64 // P(good → bad) per datagram
	PBadGood float64 // P(bad → good) per datagram
	LossGood float64 // loss probability while good
	LossBad  float64 // loss probability while bad
}

// DefaultGE is a wireless-flavoured burst-loss model: fades start rarely,
// last ~5 datagrams, and lose ~70% while they hold.
func DefaultGE() *GEParams {
	return &GEParams{PGoodBad: 0.02, PBadGood: 0.2, LossGood: 0.001, LossBad: 0.7}
}

// Stats is a Path's atomic counter snapshot.
type Stats struct {
	Sent       int64 // datagrams forwarded (including duplicates)
	Dropped    int64 // lost to LossRate/GE or a killed path
	Duplicated int64
	Corrupted  int64
	Reordered  int64
}
