package harness

// The soak tier: hundreds of concurrent sockets, minutes of churn,
// multiple rounds with distinct derived seeds. Gated behind -soak so the
// ordinary test run never pays for it; the nightly CI workflow runs
//
//	go test -race -run Soak -timeout 40m ./internal/chaos/harness -soak
//
// and uploads the JSONL event log (written to $CHAOS_LOG, default
// soak.jsonl) as an artifact when the run fails, alongside the printed
// seed — together they replay the failure.

import (
	"flag"
	"os"
	"testing"
	"time"
)

var soak = flag.Bool("soak", false, "run the multi-minute soak tier")

func TestSoakChurn(t *testing.T) {
	if !*soak {
		t.Skip("soak tier disabled; run with -soak")
	}
	base := seedFor(t)

	logPath := os.Getenv("CHAOS_LOG")
	if logPath == "" {
		logPath = "soak.jsonl"
	}
	logF, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("seed=%d: event log: %v", base, err)
	}
	defer logF.Close()
	t.Logf("soak event log: %s", logPath)

	const (
		rounds  = 6
		sockets = 40 // × rounds = 240 connections, 480 subflows, ~2000 goroutines each round
	)
	for round := 0; round < rounds; round++ {
		seed := base + int64(round)*101
		t.Logf("round %d/%d seed=%d", round+1, rounds, seed)
		start := time.Now()
		res := RunT(t, Config{
			Sockets:     sockets,
			Paths:       2,
			Bytes:       96 << 10,
			Seed:        seed,
			Churn:       20 * time.Second,
			Tick:        10 * time.Millisecond,
			WaitTimeout: 3 * time.Minute,
			LogW:        logF,
		})
		t.Logf("round %d: %d completed, %d errored, %v elapsed",
			round+1, res.Completed, res.Errored, time.Since(start).Round(time.Millisecond))
		if res.Completed != sockets {
			t.Errorf("seed=%d round %d: only %d/%d transfers completed", seed, round+1, res.Completed, sockets)
		}
		if t.Failed() {
			return // keep the log short and the seed obvious
		}
	}
}
