package harness

// The chaos suite: every test here is named TestChaos* so CI's dedicated
// job (`go test -race -run Chaos ./...`) picks up exactly this tier. Each
// run derives its seed from the clock unless -chaos.seed pins it, prints
// the seed, and embeds it in every failure message — a red run anywhere
// is reproducible with:
//
//	go test -race -run TestChaosX ./internal/chaos/harness -chaos.seed=<seed>

import (
	"flag"
	"testing"
	"time"

	"mptcp/internal/chaos"
	"mptcp/internal/mptcpnet"
	"mptcp/internal/sched"
)

var chaosSeed = flag.Int64("chaos.seed", 0,
	"pin the chaos/soak master seed for reproduction (0 = derive from the clock)")

// seedFor picks (and logs) the run's master seed.
func seedFor(t *testing.T) int64 {
	s := *chaosSeed
	if s == 0 {
		s = time.Now().UnixNano()%1_000_000_000 + 1
	}
	t.Logf("chaos seed %d (reproduce with -chaos.seed=%d)", s, s)
	return s
}

// TestChaosTransfersSurviveDirector is the core liveness run: concurrent
// connections over real UDP while the director randomly kills, heals,
// degrades, reorders, duplicates, corrupts and partitions paths. Path 0
// of every connection is protected (never killed, mild faults), so every
// transfer must complete, byte-exact, and teardown must leak nothing.
func TestChaosTransfersSurviveDirector(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	res := RunT(t, Config{
		Sockets: 6,
		Paths:   2,
		Bytes:   64 << 10,
		Seed:    seedFor(t),
		Churn:   1500 * time.Millisecond,
	})
	if res.Completed != 6 {
		t.Errorf("completed %d/6 transfers", res.Completed)
	}
}

// TestChaosThreePathsWithCountermeasures: wider connections, the §6
// receive-buffer countermeasures on, a tighter shared buffer — the
// configuration the paper's robustness story actually runs.
func TestChaosThreePathsWithCountermeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	res := RunT(t, Config{
		Sockets: 4,
		Paths:   3,
		Bytes:   48 << 10,
		Seed:    seedFor(t) + 13,
		Churn:   1500 * time.Millisecond,
		RecvBuf: 128,
		Net: mptcpnet.Config{
			SchedOpts: sched.Options{OpportunisticRetx: true, Penalize: true},
		},
	})
	if res.Completed != 4 {
		t.Errorf("completed %d/4 transfers", res.Completed)
	}
}

// TestChaosAllFaultKindsExercised pins injector coverage independently of
// the director's random walk: every fault class is dialled on at once —
// reordering, duplication, corruption, burst loss — and the transfers
// must still complete exactly while every injector counter and the wire
// checksum's drop counter advance.
func TestChaosAllFaultKindsExercised(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	res := RunT(t, Config{
		Sockets: 3,
		Paths:   2,
		Bytes:   96 << 10,
		Seed:    seedFor(t) + 29,
		Churn:   200 * time.Millisecond, // director mostly idle; faults come from the base model
		SenderPath: &chaos.PathConfig{
			Delay:        time.Millisecond,
			Jitter:       2 * time.Millisecond,
			GE:           chaos.DefaultGE(),
			DupRate:      0.1,
			CorruptRate:  0.05,
			ReorderRate:  0.2,
			ReorderDelay: 5 * time.Millisecond,
		},
	})
	if res.Completed != 3 {
		t.Errorf("completed %d/3 transfers", res.Completed)
	}
	st := res.PathStats
	if st.Dropped == 0 || st.Duplicated == 0 || st.Corrupted == 0 || st.Reordered == 0 {
		t.Errorf("fault coverage gap: %+v (want every injector > 0)", st)
	}
	if st.Corrupted > 0 && res.Corrupted == 0 {
		t.Error("frames were corrupted in flight but no endpoint checksum drop was counted")
	}
}

// TestChaosAllPathsDeadGivesUp is the terminal scenario: every path of
// every connection is killed shortly after start and stays dead. The
// invariant flips — every transfer must FAIL with an explicit error (the
// sender's consecutive-RTO / FIN-retry give-up), nothing may complete,
// nothing may stall silently, and teardown must still leak zero
// goroutines and timers.
func TestChaosAllPathsDeadGivesUp(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second give-up backoff")
	}
	res := RunT(t, Config{
		Sockets: 2,
		Paths:   2,
		Bytes:   32 << 10,
		Seed:    seedFor(t) + 41,
		KillAll: true,
		// ~2 Mb/s per path keeps the transfer in flight (~130ms) well past
		// the kill, so the sender is cut off mid-stream.
		SenderPath:  &chaos.PathConfig{Delay: time.Millisecond, RateBps: 2e6},
		KillDelay:   30 * time.Millisecond,
		WaitTimeout: 90 * time.Second,
		Net:         mptcpnet.Config{MinRTO: 2 * time.Millisecond},
	})
	if res.Errored != 2 || res.Completed != 0 {
		t.Errorf("errored=%d completed=%d, want all 2 to fail explicitly", res.Errored, res.Completed)
	}
}

// TestChaosScriptedPartition uses a deterministic kill/heal script rather
// than the random director: one subflow partitioned for a fixed window
// mid-transfer, exercising reinjection and recovery on a schedule.
func TestChaosScriptedPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	seed := seedFor(t) + 57
	// The harness's random director is disabled by a zero-length churn;
	// the script drives the partition instead.
	res, err := Run(Config{
		Sockets: 2,
		Paths:   2,
		Bytes:   128 << 10,
		Seed:    seed,
		Churn:   time.Millisecond,
		// ~8 Mb/s per path so the transfer spans the partition window.
		SenderPath: &chaos.PathConfig{Delay: time.Millisecond, RateBps: 8e6},
		Script: chaos.Script{
			{At: 15 * time.Millisecond, Kill: true, Name: "s0-p1"},
			{At: 15 * time.Millisecond, Kill: true, Name: "s1-p1"},
			{At: 500 * time.Millisecond, Kill: false, Name: "s0-p1"},
			{At: 500 * time.Millisecond, Kill: false, Name: "s1-p1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.Completed != 2 {
		t.Errorf("completed %d/2 transfers through the scripted partition", res.Completed)
	}
}
