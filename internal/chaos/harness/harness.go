// Package harness runs fleets of concurrent mptcpnet transfers over real
// UDP sockets while a chaos director mutates path conditions, and asserts
// the invariants that make the stack a usable transport rather than a
// demo:
//
//  1. Liveness: every transfer resolves within its deadline — it either
//     completes or fails with an explicit error. Silent stalls are
//     violations.
//  2. Integrity: a completed transfer delivered exactly the bytes that
//     were sent (length and SHA-256).
//  3. Cleanliness: after teardown, zero goroutines and zero scheduled
//     chaos deliveries survive (snapshot-diff leak detector with a retry
//     window).
//
// Every violation string embeds the run's seed, so any failure — local,
// CI `-race` chaos job, or nightly soak — reproduces with
// `-chaos.seed=<seed>`. See TESTING.md at the repo root.
package harness

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"mptcp/internal/chaos"
	"mptcp/internal/chaos/leak"
	"mptcp/internal/mptcpnet"
)

// Config parameterises one harness run. The zero value is filled with
// the fast-tier defaults noted per field.
type Config struct {
	Sockets int   // concurrent connections (default 4)
	Paths   int   // subflows per connection (default 2)
	Bytes   int   // payload per transfer (default 64 KiB)
	Seed    int64 // master seed; every derived rng and message includes it

	Churn       time.Duration // director mutation phase (default 1s)
	Tick        time.Duration // director tick (default 20ms)
	WaitTimeout time.Duration // per-transfer resolution bound (default 60s)

	// KillAll switches to the terminal scenario: after KillDelay every
	// path of every connection is killed and stays dead. The invariant
	// flips — every transfer must FAIL with an explicit error (the
	// sender's give-up paths), and teardown must still leak nothing.
	KillAll   bool
	KillDelay time.Duration // default 50ms

	Net     mptcpnet.Config // per-connection transport config
	RecvBuf int64           // receiver shared buffer, segments (default 512)

	// SenderPath, when non-nil, is the initial fault model for every
	// data-direction path (default: clean 1ms delay). The director still
	// mutates on top of it.
	SenderPath *chaos.PathConfig

	// Script, when non-empty, is a deterministic kill/heal schedule
	// played alongside the director; group names are "s<socket>-p<path>".
	Script chaos.Script

	LogW io.Writer // optional JSONL event sink (chaos.Log schema)
}

// Result is one run's outcome tally.
type Result struct {
	Completed  int
	Errored    int
	Violations []string    // invariant breaches; each embeds the seed
	PathStats  chaos.Stats // summed over every chaos path in the run
	Corrupted  int64       // frames the endpoints' checksums refused
}

func (c *Config) defaults() {
	if c.Sockets <= 0 {
		c.Sockets = 4
	}
	if c.Paths <= 0 {
		c.Paths = 2
	}
	if c.Bytes <= 0 {
		c.Bytes = 64 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Churn <= 0 {
		c.Churn = time.Second
	}
	if c.Tick <= 0 {
		c.Tick = 20 * time.Millisecond
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 60 * time.Second
	}
	if c.KillDelay <= 0 {
		c.KillDelay = 50 * time.Millisecond
	}
	if c.RecvBuf <= 0 {
		c.RecvBuf = 512
	}
}

// socket is one connection under test: the real UDP conns, their chaos
// wrappers, and the endpoints.
type socket struct {
	id     int
	sPaths []*chaos.Path // sender-side (data direction)
	rPaths []*chaos.Path // receiver-side (ACK direction)
	tx     *mptcpnet.Sender
	rx     *mptcpnet.Receiver
	data   []byte
}

// outcome is one transfer's resolution.
type outcome struct {
	socket    int
	err       error // non-nil: failed with an explicit error
	stalled   bool  // neither completed nor errored within the deadline
	got       int
	integrity bool // length and hash matched
}

// Run executes one harness run and reports the outcome. It never calls
// into testing — use RunT in tests for the assertion wrapper.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	snap := leak.Take()
	log := chaos.NewLog(cfg.LogW)
	log.Emit(chaos.Event{Ev: "run-start", Seed: cfg.Seed,
		Detail: fmt.Sprintf("sockets=%d paths=%d bytes=%d killall=%v", cfg.Sockets, cfg.Paths, cfg.Bytes, cfg.KillAll)})

	res := &Result{}
	violate := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		res.Violations = append(res.Violations, fmt.Sprintf("seed=%d: %s", cfg.Seed, msg))
		log.Emit(chaos.Event{Ev: "violation", Seed: cfg.Seed, Detail: msg})
	}

	// Build every socket over real loopback UDP.
	var sockets []*socket
	var groups []chaos.Group
	var allPaths []*chaos.Path
	for k := 0; k < cfg.Sockets; k++ {
		sk, gs, err := buildSocket(k, cfg)
		if err != nil {
			for _, s := range sockets {
				s.teardown()
			}
			return nil, fmt.Errorf("seed=%d: socket %d setup: %w", cfg.Seed, k, err)
		}
		sockets = append(sockets, sk)
		groups = append(groups, gs...)
		for _, g := range gs {
			allPaths = append(allPaths, g.Paths...)
		}
	}

	// Launch the transfers.
	outcomes := make(chan outcome, len(sockets))
	var wg sync.WaitGroup
	for _, sk := range sockets {
		wg.Add(1)
		go func(sk *socket) {
			defer wg.Done()
			outcomes <- sk.run(cfg, log)
		}(sk)
	}

	// Launch the chaos: a random-walk director, or the terminal kill-all.
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	// The script outlives the director's churn window (its own steps say
	// when it ends); scriptStop only unblocks it if the run bails early.
	scriptStop := make(chan struct{})
	if len(cfg.Script) > 0 {
		byName := make(map[string][]*chaos.Path, len(groups))
		for _, g := range groups {
			byName[g.Name] = g.Paths
		}
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			cfg.Script.Play(byName, log, scriptStop)
		}()
	}
	chaosWG.Add(1)
	if cfg.KillAll {
		go func() {
			defer chaosWG.Done()
			select {
			case <-stop:
				return
			case <-time.After(cfg.KillDelay):
			}
			for _, p := range allPaths {
				p.Kill()
			}
			log.Emit(chaos.Event{Ev: "kill-all"})
		}()
	} else {
		d := chaos.NewDirector(groups, cfg.Tick, cfg.Seed*7919+1, log)
		go func() {
			defer chaosWG.Done()
			d.Run(stop)
		}()
		time.AfterFunc(cfg.Churn, func() { close(stop) })
	}

	// Collect resolutions.
	deadline := time.After(cfg.WaitTimeout + cfg.Churn)
	resolved := 0
	for resolved < len(sockets) {
		select {
		case o := <-outcomes:
			resolved++
			switch {
			case o.stalled:
				violate("socket %d stalled silently: %d/%d bytes, no completion and no error within deadline",
					o.socket, o.got, cfg.Bytes)
			case o.err != nil:
				res.Errored++
				log.Emit(chaos.Event{Ev: "xfer-error", Socket: o.socket, Err: o.err.Error()})
				if !cfg.KillAll {
					violate("socket %d failed under survivable chaos (a protected path stayed up): %v", o.socket, o.err)
				}
			case !o.integrity:
				violate("socket %d completed but delivered %d/%d bytes or a corrupted stream", o.socket, o.got, cfg.Bytes)
			default:
				res.Completed++
				log.Emit(chaos.Event{Ev: "xfer-done", Socket: o.socket, Bytes: o.got})
				if cfg.KillAll {
					violate("socket %d completed although every path was killed at %v", o.socket, cfg.KillDelay)
				}
			}
		case <-deadline:
			violate("%d/%d transfers unresolved at harness deadline", len(sockets)-resolved, len(sockets))
			resolved = len(sockets) // bail; teardown below unwedges the stragglers
		}
	}
	if cfg.KillAll {
		close(stop)
	}
	close(scriptStop)

	// Teardown: close every chaos path (and with it the real sockets),
	// then the endpoints; the leak check below proves it all unwound.
	for _, sk := range sockets {
		sk.teardown()
	}
	wg.Wait()
	chaosWG.Wait()

	// Invariant 3a: every delayed chaos delivery drained or cancelled.
	pendingDeadline := time.Now().Add(3 * time.Second)
	for _, p := range allPaths {
		for p.Pending() != 0 {
			if time.Now().After(pendingDeadline) {
				violate("chaos path %s still holds %d scheduled deliveries after close: leaked timers", p.LocalAddr(), p.Pending())
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Invariant 3b: zero goroutines born in this run survive teardown.
	for _, stack := range snap.Leaked(5 * time.Second) {
		violate("leaked goroutine:\n%s", stack)
	}

	for _, p := range allPaths {
		st := p.Stats()
		res.PathStats.Sent += st.Sent
		res.PathStats.Dropped += st.Dropped
		res.PathStats.Duplicated += st.Duplicated
		res.PathStats.Corrupted += st.Corrupted
		res.PathStats.Reordered += st.Reordered
	}
	for _, sk := range sockets {
		res.Corrupted += sk.rx.Corrupted() + sk.tx.Stats().Corrupt
	}
	log.Emit(chaos.Event{Ev: "run-end", Seed: cfg.Seed,
		Detail: fmt.Sprintf("completed=%d errored=%d violations=%d", res.Completed, res.Errored, len(res.Violations))})
	return res, nil
}

// RunT runs the harness and fails t on any violation; every message
// carries the reproducing seed.
func RunT(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	return res
}

// buildSocket opens cfg.Paths real UDP path pairs on loopback, wraps
// each direction in a chaos.Path, and wires up the endpoints. Path 0 of
// every connection is the protected group: the director keeps it
// survivable, anchoring the completion invariant.
func buildSocket(k int, cfg Config) (*socket, []chaos.Group, error) {
	seed := cfg.Seed*1_000_000 + int64(k)*1_000
	sk := &socket{id: k}
	var sConns, rConns []net.PacketConn
	var remotes []net.Addr
	var groups []chaos.Group
	for i := 0; i < cfg.Paths; i++ {
		sRaw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			sk.teardownPaths()
			return nil, nil, err
		}
		rRaw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			sRaw.Close()
			sk.teardownPaths()
			return nil, nil, err
		}
		sCfg := chaos.PathConfig{Delay: time.Millisecond}
		if cfg.SenderPath != nil {
			sCfg = *cfg.SenderPath
		}
		sPath := chaos.New(sRaw, sCfg, seed+int64(i)*2)
		rPath := chaos.New(rRaw, chaos.PathConfig{Delay: time.Millisecond}, seed+int64(i)*2+1)
		sk.sPaths = append(sk.sPaths, sPath)
		sk.rPaths = append(sk.rPaths, rPath)
		sConns = append(sConns, sPath)
		rConns = append(rConns, rPath)
		remotes = append(remotes, rRaw.LocalAddr())
		groups = append(groups, chaos.Group{
			Name:      fmt.Sprintf("s%d-p%d", k, i),
			Paths:     []*chaos.Path{sPath, rPath},
			Protected: i == 0,
		})
	}
	connID := uint64(1000 + k)
	sk.rx = mptcpnet.NewReceiver(connID, rConns, cfg.RecvBuf)
	sk.tx = mptcpnet.NewSender(connID, sConns, remotes, cfg.Net)
	sk.data = make([]byte, cfg.Bytes)
	rand.New(rand.NewSource(seed + 500)).Read(sk.data)
	return sk, groups, nil
}

// run drives one transfer to resolution: sender writes, closes and
// waits; reader drains to EOF and hashes. Returns when the transfer
// completed, failed with an error, or the deadline passed (stall).
func (sk *socket) run(cfg Config, log *chaos.Log) outcome {
	wantSum := sha256.Sum256(sk.data)

	werr := make(chan error, 1)
	go func() {
		if _, err := sk.tx.Write(sk.data); err != nil {
			werr <- err
			return
		}
		sk.tx.Close()
		werr <- sk.tx.Wait(cfg.WaitTimeout)
	}()

	type readResult struct {
		got []byte
		err error
	}
	rres := make(chan readResult, 1)
	go func() {
		var got []byte
		buf := make([]byte, 64<<10)
		for {
			n, err := sk.rx.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				if err == io.EOF {
					err = nil
				}
				rres <- readResult{got, err}
				return
			}
		}
	}()

	deadline := time.After(cfg.WaitTimeout)
	select {
	case err := <-werr:
		if err != nil {
			// Sender gave up (all paths dead, FIN retry budget, socket
			// closed). Release the reader and report the explicit error.
			sk.rx.Close()
			<-rres
			return outcome{socket: sk.id, err: err}
		}
		// Sender finished cleanly: the reader must reach EOF promptly.
		select {
		case r := <-rres:
			if r.err != nil {
				return outcome{socket: sk.id, err: r.err, got: len(r.got)}
			}
			ok := len(r.got) == len(sk.data) && sha256.Sum256(r.got) == wantSum
			return outcome{socket: sk.id, got: len(r.got), integrity: ok}
		case <-deadline:
			return outcome{socket: sk.id, stalled: true}
		}
	case <-deadline:
		// Neither the sender resolved nor ... the writer may be wedged in
		// Write backpressure with no error: the definition of a silent
		// stall.
		return outcome{socket: sk.id, stalled: true}
	}
}

// teardown closes every chaos path (closing the real sockets beneath,
// which releases the endpoint read loops) and the receiver.
func (sk *socket) teardown() {
	sk.teardownPaths()
	if sk.rx != nil {
		sk.rx.Close()
	}
}

func (sk *socket) teardownPaths() {
	for _, p := range sk.sPaths {
		p.Close()
	}
	for _, p := range sk.rPaths {
		p.Close()
	}
}
