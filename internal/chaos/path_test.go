package chaos

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// sink is a minimal net.PacketConn that records every delivered frame;
// ReadFrom blocks until Close.
type sink struct {
	mu     sync.Mutex
	frames [][]byte
	done   chan struct{}
	once   sync.Once
}

func newSink() *sink { return &sink{done: make(chan struct{})} }

func (s *sink) WriteTo(p []byte, _ net.Addr) (int, error) {
	b := append([]byte(nil), p...)
	s.mu.Lock()
	s.frames = append(s.frames, b)
	s.mu.Unlock()
	return len(p), nil
}

func (s *sink) got() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.frames...)
}

func (s *sink) ReadFrom(p []byte) (int, net.Addr, error) {
	<-s.done
	return 0, nil, net.ErrClosed
}
func (s *sink) Close() error {
	s.once.Do(func() { close(s.done) })
	return nil
}
func (s *sink) LocalAddr() net.Addr              { return sinkAddr{} }
func (s *sink) SetDeadline(time.Time) error      { return nil }
func (s *sink) SetReadDeadline(time.Time) error  { return nil }
func (s *sink) SetWriteDeadline(time.Time) error { return nil }

type sinkAddr struct{}

func (sinkAddr) Network() string { return "sink" }
func (sinkAddr) String() string  { return "sink" }

// write pushes n distinct one-byte-tagged frames through p.
func write(t *testing.T, p *Path, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.WriteTo([]byte{byte(i), byte(i >> 8), 0xAA, 0x55}, sinkAddr{}); err != nil {
			t.Fatalf("WriteTo %d: %v", i, err)
		}
	}
}

// TestPathDeterministicBySeed: identical seeds and write sequences make
// identical fault decisions — the property that lets a failing run be
// replayed from its printed seed.
func TestPathDeterministicBySeed(t *testing.T) {
	cfg := PathConfig{LossRate: 0.4, DupRate: 0.2, CorruptRate: 0.3}
	run := func(seed int64) [][]byte {
		s := newSink()
		p := New(s, cfg, seed)
		write(t, p, 500)
		p.Close()
		return s.got()
	}
	a, b := run(77), run(77)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d frames", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("same seed diverged at frame %d: %x vs %x", i, a[i], b[i])
		}
	}
	c := run(78)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if !bytes.Equal(a[i], c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical fault sequences")
		}
	}
}

// TestPathKillHeal: a killed path eats everything (counted as drops); a
// healed one delivers again.
func TestPathKillHeal(t *testing.T) {
	s := newSink()
	p := New(s, PathConfig{}, 1)
	defer p.Close()
	p.Kill()
	write(t, p, 10)
	if n := len(s.got()); n != 0 {
		t.Fatalf("killed path delivered %d frames", n)
	}
	if st := p.Stats(); st.Dropped != 10 {
		t.Errorf("killed path counted %d drops, want 10", st.Dropped)
	}
	p.Heal()
	write(t, p, 5)
	if n := len(s.got()); n != 5 {
		t.Errorf("healed path delivered %d frames, want 5", n)
	}
}

// TestPathCorruption: CorruptRate 1 mangles every frame, and the mangled
// copy differs from the original (the caller's buffer is untouched).
func TestPathCorruption(t *testing.T) {
	s := newSink()
	p := New(s, PathConfig{CorruptRate: 1}, 2)
	defer p.Close()
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sent := append([]byte(nil), orig...)
	p.WriteTo(sent, sinkAddr{}) //nolint:errcheck
	frames := s.got()
	if len(frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(frames))
	}
	if bytes.Equal(frames[0], orig) {
		t.Error("corrupted frame identical to original")
	}
	if !bytes.Equal(sent, orig) {
		t.Error("corruption mutated the caller's buffer")
	}
	if st := p.Stats(); st.Corrupted != 1 {
		t.Errorf("Corrupted = %d, want 1", st.Corrupted)
	}
}

// TestPathDuplication: DupRate 1 delivers every frame twice.
func TestPathDuplication(t *testing.T) {
	s := newSink()
	p := New(s, PathConfig{DupRate: 1}, 3)
	defer p.Close()
	write(t, p, 7)
	if n := len(s.got()); n != 14 {
		t.Errorf("delivered %d frames, want 14 (every one duplicated)", n)
	}
	if st := p.Stats(); st.Duplicated != 7 || st.Sent != 14 {
		t.Errorf("stats = %+v, want Duplicated 7 Sent 14", st)
	}
}

// TestPathReorderHoldsBack: a frame tagged for reordering is overtaken by
// a later untagged one.
func TestPathReorderHoldsBack(t *testing.T) {
	s := newSink()
	p := New(s, PathConfig{ReorderRate: 1, ReorderDelay: 40 * time.Millisecond}, 4)
	defer p.Close()
	p.WriteTo([]byte{1}, sinkAddr{}) //nolint:errcheck — held back 40ms
	p.SetConfig(PathConfig{})
	p.WriteTo([]byte{2}, sinkAddr{}) //nolint:errcheck — direct
	deadline := time.Now().Add(2 * time.Second)
	for len(s.got()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d frames arrived", len(s.got()))
		}
		time.Sleep(time.Millisecond)
	}
	frames := s.got()
	if frames[0][0] != 2 || frames[1][0] != 1 {
		t.Errorf("delivery order %v, want the held-back frame second", frames)
	}
	if st := p.Stats(); st.Reordered != 1 {
		t.Errorf("Reordered = %d, want 1", st.Reordered)
	}
}

// TestPathGilbertElliott: a chain pinned in the bad state after the first
// datagram loses everything from then on — burstiness, not coin flips.
func TestPathGilbertElliott(t *testing.T) {
	s := newSink()
	p := New(s, PathConfig{GE: &GEParams{
		PGoodBad: 1, PBadGood: 0, LossGood: 0, LossBad: 1,
	}}, 5)
	defer p.Close()
	write(t, p, 20)
	if n := len(s.got()); n != 1 {
		t.Errorf("delivered %d frames, want exactly the first (then a permanent fade)", n)
	}
	if st := p.Stats(); st.Dropped != 19 {
		t.Errorf("Dropped = %d, want 19", st.Dropped)
	}
}

// TestPathClosePendingDrains: Close cancels scheduled deliveries and the
// pending count settles to zero — the leaked-timer invariant.
func TestPathClosePendingDrains(t *testing.T) {
	s := newSink()
	p := New(s, PathConfig{Delay: 50 * time.Millisecond}, 6)
	write(t, p, 32)
	if p.Pending() == 0 {
		t.Fatal("delayed writes should be pending before close")
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for p.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d deliveries still pending after close", p.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	if n := len(s.got()); n != 0 {
		t.Errorf("%d frames delivered after close", n)
	}
}

// TestRelayForwardsBothWays: datagrams flow client → target through the
// chaos path and replies return to the client.
func TestRelayForwardsBothWays(t *testing.T) {
	target, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	r, err := NewRelay(target.LocalAddr(), PathConfig{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	client, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.WriteTo([]byte("ping"), r.Addr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	target.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	n, from, err := target.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("target read %q, %v", buf[:n], err)
	}
	if _, err := target.WriteTo([]byte("pong"), from); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	n, _, err = client.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
}

// TestScriptPlaysInOrder: a kill/heal script fires against the named
// groups at its offsets, regardless of declaration order.
func TestScriptPlaysInOrder(t *testing.T) {
	s := newSink()
	p := New(s, PathConfig{}, 8)
	defer p.Close()
	groups := map[string][]*Path{"p0": {p}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		Script{
			{At: 30 * time.Millisecond, Kill: false, Name: "p0"},
			{At: 0, Kill: true, Name: "p0"},
		}.Play(groups, nil, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	if !p.Killed() {
		t.Error("path not killed by the t=0 step")
	}
	<-done
	if p.Killed() {
		t.Error("path not healed by the final step")
	}
}
