package leak

import (
	"strings"
	"testing"
	"time"
)

func blockForever(ch chan struct{}) { <-ch }

// TestDetectsLeakThenClears: a goroutine born after the snapshot is
// reported while alive, and the report clears (within the retry window)
// once it exits.
func TestDetectsLeakThenClears(t *testing.T) {
	snap := Take()
	ch := make(chan struct{})
	go blockForever(ch)

	leaked := snap.Leaked(50 * time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("parked goroutine not reported")
	}
	found := false
	for _, stack := range leaked {
		if strings.Contains(stack, "blockForever") {
			found = true
		}
	}
	if !found {
		t.Errorf("report misses the leaker: %v", leaked)
	}

	close(ch)
	if leaked := snap.Leaked(5 * time.Second); len(leaked) != 0 {
		t.Errorf("goroutine exited but still reported: %v", leaked)
	}
}

// TestPreexistingGoroutinesIgnored: goroutines alive at snapshot time are
// never leaks, however long they run.
func TestPreexistingGoroutinesIgnored(t *testing.T) {
	ch := make(chan struct{})
	go blockForever(ch)
	defer close(ch)
	time.Sleep(10 * time.Millisecond) // let it park

	snap := Take()
	if leaked := snap.Leaked(50 * time.Millisecond); len(leaked) != 0 {
		t.Errorf("pre-snapshot goroutine reported as leak: %v", leaked)
	}
}
