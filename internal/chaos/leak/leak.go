// Package leak is a snapshot-diff goroutine leak detector: capture a
// Snapshot before creating the system under test, then Check after
// tearing it down. Goroutines born since the snapshot that are still
// alive after a retry window are reported with their stacks.
//
// It deliberately has no dependencies beyond the standard library so any
// test package (including internal test packages of code the chaos
// harness itself imports) can use it without import cycles.
package leak

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ignored are stack substrings of goroutines that are never leaks: the
// runtime's own workers, the testing framework, and goroutines that are
// by construction mid-exit.
var ignored = []string{
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runFuzzing",
	"testing.tRunner.func",
	"runtime.goexit0",
	"runtime.gcBgMarkWorker",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
}

// Snapshot is the set of goroutines alive at Take time.
type Snapshot struct {
	ids map[int64]bool
}

// Take captures the current goroutine set.
func Take() *Snapshot {
	s := &Snapshot{ids: make(map[int64]bool)}
	for _, g := range stacks() {
		s.ids[g.id] = true
	}
	return s
}

// Leaked returns the stacks of goroutines that did not exist at Take time
// and are still running after retrying for the given window. The window
// matters: healthy teardown is asynchronous (writer goroutines draining,
// AfterFunc deliveries in flight), so the detector polls until the set is
// clean or time runs out.
func (s *Snapshot) Leaked(within time.Duration) []string {
	deadline := time.Now().Add(within)
	for {
		var leaked []string
		for _, g := range stacks() {
			if s.ids[g.id] || g.ignorable() {
				continue
			}
			leaked = append(leaked, g.stack)
		}
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Check fails t with every leaked goroutine's stack. Use from t.Cleanup,
// registered before the system under test is built so it runs after the
// test's own teardown:
//
//	snap := leak.Take()
//	t.Cleanup(func() { snap.Check(t, 5*time.Second) })
func (s *Snapshot) Check(t testing.TB, within time.Duration) {
	t.Helper()
	leaked := s.Leaked(within)
	for _, stack := range leaked {
		t.Errorf("leaked goroutine:\n%s", stack)
	}
	if len(leaked) > 0 {
		t.Errorf("%d goroutine(s) leaked (did not exit within %v of teardown)", len(leaked), within)
	}
}

// Check is the one-liner for tests: it snapshots the goroutine set now
// and registers a cleanup asserting everything born after this call has
// exited by the end of the test. Call it before building the system
// under test — cleanups run LIFO, so registering first means the
// assertion runs after the test's own teardown cleanups.
func Check(t testing.TB, within time.Duration) {
	t.Helper()
	snap := Take()
	t.Cleanup(func() { snap.Check(t, within) })
}

type goroutine struct {
	id    int64
	stack string
}

func (g goroutine) ignorable() bool {
	for _, pat := range ignored {
		if strings.Contains(g.stack, pat) {
			return true
		}
	}
	return false
}

// stacks parses runtime.Stack(all=true) into per-goroutine records.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var gs []goroutine
	for _, dump := range strings.Split(string(buf), "\n\n") {
		id, err := parseID(dump)
		if err != nil {
			continue
		}
		gs = append(gs, goroutine{id: id, stack: dump})
	}
	return gs
}

// parseID extracts N from a dump starting "goroutine N [state]:".
func parseID(dump string) (int64, error) {
	const prefix = "goroutine "
	if !strings.HasPrefix(dump, prefix) {
		return 0, fmt.Errorf("not a goroutine header")
	}
	rest := dump[len(prefix):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, fmt.Errorf("malformed goroutine header")
	}
	return strconv.ParseInt(rest[:sp], 10, 64)
}
