package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Step is one scripted action against a named path group: at offset At
// from script start, kill or heal every path in the group (a group is
// typically both directions of one subflow, so killing it is a
// partition).
type Step struct {
	At   time.Duration
	Kill bool // true = kill the group, false = heal it
	Name string
}

// Script is a deterministic kill/heal schedule keyed by group name. Play
// sorts steps by time and applies them until done or stopped.
type Script []Step

// Play runs the script against the named groups, blocking until the last
// step fires or stop closes. Unknown group names are ignored (logged).
func (s Script) Play(groups map[string][]*Path, log *Log, stop <-chan struct{}) {
	sorted := append(Script(nil), s...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	start := time.Now()
	for _, st := range sorted {
		wait := time.Until(start.Add(st.At))
		if wait > 0 {
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
		}
		paths, ok := groups[st.Name]
		if !ok {
			log.Emit(Event{Ev: "script-unknown-group", Path: st.Name})
			continue
		}
		ev := "heal"
		for _, p := range paths {
			if st.Kill {
				p.Kill()
				ev = "kill"
			} else {
				p.Heal()
			}
		}
		log.Emit(Event{Ev: ev, Path: st.Name, Detail: "scripted"})
	}
}

// Group is a set of Paths the director treats as one unit — both
// directions of a subflow, so a kill is a partition of that subflow.
type Group struct {
	Name      string
	Paths     []*Path
	Protected bool // never killed, faults kept mild: the liveness anchor
}

// Director drives a seeded random walk over a fleet of path groups:
// every Tick it picks a group and perturbs it — kill, heal, loss step,
// delay step, reorder, duplication, corruption, partition — logging each
// action. Protected groups are never killed and keep loss below ~20%, so
// a run that guarantees one protected group per connection guarantees a
// live path and therefore completion.
type Director struct {
	Groups []Group
	Tick   time.Duration
	Log    *Log

	rng *rand.Rand
}

// NewDirector builds a director over the groups with its own rng stream.
func NewDirector(groups []Group, tick time.Duration, seed int64, log *Log) *Director {
	if tick <= 0 {
		tick = 20 * time.Millisecond
	}
	return &Director{Groups: groups, Tick: tick, Log: log, rng: rand.New(rand.NewSource(seed))}
}

// Run mutates until stop closes, then heals everything it killed so
// in-flight transfers can finish. Call from its own goroutine.
func (d *Director) Run(stop <-chan struct{}) {
	tick := time.NewTicker(d.Tick)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			d.HealAll()
			return
		case <-tick.C:
			d.mutate()
		}
	}
}

// HealAll revives every path and clears loss back to the mild baseline,
// leaving delay/reorder/duplication in place (they threaten no liveness).
func (d *Director) HealAll() {
	for _, g := range d.Groups {
		for _, p := range g.Paths {
			p.Heal()
			p.Update(func(c *PathConfig) {
				c.LossRate = 0
				c.GE = nil
			})
		}
	}
	d.Log.Emit(Event{Ev: "heal-all"})
}

// mutate applies one random perturbation to one random group.
func (d *Director) mutate() {
	if len(d.Groups) == 0 {
		return
	}
	g := d.Groups[d.rng.Intn(len(d.Groups))]
	verb := d.rng.Float64()
	switch {
	case verb < 0.15: // partition: kill the whole group
		if g.Protected {
			return
		}
		for _, p := range g.Paths {
			p.Kill()
		}
		d.Log.Emit(Event{Ev: "kill", Path: g.Name})
	case verb < 0.40: // heal (over-weighted: kills must not accumulate)
		for _, p := range g.Paths {
			p.Heal()
		}
		d.Log.Emit(Event{Ev: "heal", Path: g.Name})
	case verb < 0.55: // loss step, bursty or i.i.d.
		loss := d.rng.Float64() * 0.5
		if g.Protected && loss > 0.2 {
			loss = 0.2
		}
		burst := d.rng.Float64() < 0.5
		for _, p := range g.Paths {
			p.Update(func(c *PathConfig) {
				if burst && !g.Protected {
					c.GE = DefaultGE()
					c.LossRate = 0
				} else {
					c.GE = nil
					c.LossRate = loss
				}
			})
		}
		d.Log.Emit(Event{Ev: "loss", Path: g.Name, Detail: fmt.Sprintf("rate=%.2f burst=%v", loss, burst)})
	case verb < 0.70: // delay step (handover to a farther basestation)
		delay := time.Duration(d.rng.Intn(30)) * time.Millisecond
		for _, p := range g.Paths {
			p.Update(func(c *PathConfig) {
				c.Delay = delay
				c.Jitter = delay / 4
			})
		}
		d.Log.Emit(Event{Ev: "delay", Path: g.Name, Detail: delay.String()})
	case verb < 0.82: // reordering window
		for _, p := range g.Paths {
			p.Update(func(c *PathConfig) {
				c.ReorderRate = d.rng.Float64() * 0.3
				c.ReorderDelay = time.Duration(1+d.rng.Intn(20)) * time.Millisecond
			})
		}
		d.Log.Emit(Event{Ev: "reorder", Path: g.Name})
	case verb < 0.92: // duplication
		for _, p := range g.Paths {
			p.Update(func(c *PathConfig) { c.DupRate = d.rng.Float64() * 0.2 })
		}
		d.Log.Emit(Event{Ev: "duplicate", Path: g.Name})
	default: // bit corruption (the wire checksum turns this into drops)
		rate := d.rng.Float64() * 0.3
		if g.Protected && rate > 0.05 {
			rate = 0.05
		}
		for _, p := range g.Paths {
			p.Update(func(c *PathConfig) { c.CorruptRate = rate })
		}
		d.Log.Emit(Event{Ev: "corrupt", Path: g.Name, Detail: fmt.Sprintf("rate=%.2f", rate)})
	}
}
