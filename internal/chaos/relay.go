package chaos

import (
	"net"
	"sync"
)

// Relay is a userspace UDP forwarder with a chaos Path on the forward
// direction: clients send to Addr(), the relay forwards to the target
// through the Path's fault model, and replies from the target flow back
// to the most recent client untouched. It lets two real processes that
// know nothing about this package (e.g. the mptcp-xfer binary on both
// ends) be exercised under kill/heal flaps, loss and corruption.
//
// The relay learns its client from the first datagram, like a NAT with a
// single binding — one sender per relay.
type Relay struct {
	front net.PacketConn // clients talk to this
	path  *Path          // wraps the back conn; faults on forward writes
	tgt   net.Addr

	mu     sync.Mutex
	client net.Addr
	closed bool
	wg     sync.WaitGroup
}

// NewRelay opens a relay on loopback toward target, applying cfg (seeded
// by seed) to the forward direction.
func NewRelay(target net.Addr, cfg PathConfig, seed int64) (*Relay, error) {
	front, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	back, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		front.Close()
		return nil, err
	}
	r := &Relay{front: front, path: New(back, cfg, seed), tgt: target}
	r.wg.Add(2)
	go r.forward()
	go r.backward()
	return r, nil
}

// Addr is the relay's client-facing address.
func (r *Relay) Addr() net.Addr { return r.front.LocalAddr() }

// Path exposes the forward fault model for mid-run mutation (flap the
// relay to flap the path between the two real processes).
func (r *Relay) Path() *Path { return r.path }

// Close tears both sockets down and waits for the pump goroutines.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.front.Close()
	r.path.Close()
	r.wg.Wait()
	return nil
}

// forward pumps client → target through the chaos path.
func (r *Relay) forward() {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := r.front.ReadFrom(buf)
		if err != nil {
			return
		}
		r.mu.Lock()
		r.client = from
		r.mu.Unlock()
		r.path.WriteTo(buf[:n], r.tgt) //nolint:errcheck // lossy path semantics
	}
}

// backward pumps target → client, unshaped.
func (r *Relay) backward() {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := r.path.ReadFrom(buf)
		if err != nil {
			return
		}
		r.mu.Lock()
		client := r.client
		r.mu.Unlock()
		if client == nil {
			continue // no client yet: nowhere to deliver
		}
		r.front.WriteTo(buf[:n], client) //nolint:errcheck
	}
}
