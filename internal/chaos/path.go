package chaos

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Path wraps a net.PacketConn and applies a PathConfig's faults to every
// outgoing datagram. Reads pass through untouched (wrap the peer's conn
// to shape the reverse direction). All randomness comes from the seeded
// rng handed to New, so a run's behaviour reproduces from its seed plus
// the (logged) schedule of configuration changes.
//
// Path is safe for concurrent use; configuration may be mutated while
// writers are in flight (that is the point).
type Path struct {
	conn net.PacketConn

	mu       sync.Mutex
	cfg      PathConfig
	killed   bool
	geBad    bool
	nextFree time.Time // token-bucket serialisation horizon
	rng      *rand.Rand
	closed   bool
	timers   map[int64]*time.Timer // outstanding delayed deliveries
	timerSeq int64

	sent       atomic.Int64
	dropped    atomic.Int64
	duplicated atomic.Int64
	corrupted  atomic.Int64
	reordered  atomic.Int64
	pending    atomic.Int64 // scheduled-but-undelivered datagrams
}

// New wraps conn in a chaos Path with the given fault model and seed.
// The Path owns conn: Close closes it and cancels pending deliveries.
func New(conn net.PacketConn, cfg PathConfig, seed int64) *Path {
	return &Path{
		conn:   conn,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		timers: make(map[int64]*time.Timer),
	}
}

// Kill makes the path eat every datagram — the radio is gone. Reads still
// pass through (a dead transmitter does not deafen the receiver).
func (p *Path) Kill() {
	p.mu.Lock()
	p.killed = true
	p.mu.Unlock()
}

// Heal reverses Kill.
func (p *Path) Heal() {
	p.mu.Lock()
	p.killed = false
	p.mu.Unlock()
}

// Killed reports whether the path is currently dead.
func (p *Path) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// SetConfig replaces the whole fault model. Datagrams already scheduled
// keep the faults drawn at write time.
func (p *Path) SetConfig(cfg PathConfig) {
	p.mu.Lock()
	p.cfg = cfg
	p.mu.Unlock()
}

// Update mutates the fault model in place under the lock — for tweaking
// one knob without racing another mutator's read-modify-write.
func (p *Path) Update(f func(*PathConfig)) {
	p.mu.Lock()
	f(&p.cfg)
	p.mu.Unlock()
}

// Config returns a copy of the current fault model.
func (p *Path) Config() PathConfig {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg
}

// Stats returns the counter snapshot. Safe while writers run.
func (p *Path) Stats() Stats {
	return Stats{
		Sent:       p.sent.Load(),
		Dropped:    p.dropped.Load(),
		Duplicated: p.duplicated.Load(),
		Corrupted:  p.corrupted.Load(),
		Reordered:  p.reordered.Load(),
	}
}

// Pending returns the number of datagrams scheduled for delayed delivery
// that have not yet hit (or been cancelled from) the wire. The harness
// asserts this drains to zero at teardown — a non-zero residue after
// Close would be a leaked timer.
func (p *Path) Pending() int64 { return p.pending.Load() }

// WriteTo applies the fault model and forwards (or eats) the datagram.
// It always reports success for datagrams the chaos layer consumed: to
// the caller a lost datagram is indistinguishable from a delivered one,
// exactly as over a real lossy path.
func (p *Path) WriteTo(b []byte, addr net.Addr) (int, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, net.ErrClosed
	}
	if p.killed || p.lostLocked() {
		p.dropped.Add(1)
		p.mu.Unlock()
		return len(b), nil
	}
	delay := p.delayLocked(len(b))
	if p.cfg.ReorderRate > 0 && p.rng.Float64() < p.cfg.ReorderRate {
		delay += p.cfg.ReorderDelay
		p.reordered.Add(1)
	}
	dup := p.cfg.DupRate > 0 && p.rng.Float64() < p.cfg.DupRate
	var dupDelay time.Duration
	if dup {
		dupDelay = p.delayLocked(len(b))
		p.duplicated.Add(1)
	}

	buf := make([]byte, len(b))
	copy(buf, b)
	if p.cfg.CorruptRate > 0 && p.rng.Float64() < p.cfg.CorruptRate {
		p.corruptLocked(buf)
		p.corrupted.Add(1)
	}
	p.sent.Add(1)
	if dup {
		p.sent.Add(1)
	}
	p.scheduleLocked(buf, addr, delay)
	if dup {
		p.scheduleLocked(buf, addr, dupDelay)
	}
	p.mu.Unlock()
	return len(b), nil
}

// lostLocked draws the loss verdict: the Gilbert–Elliott chain first
// (advancing its state), then the i.i.d. rate.
func (p *Path) lostLocked() bool {
	lost := false
	if ge := p.cfg.GE; ge != nil {
		rate := ge.LossGood
		if p.geBad {
			rate = ge.LossBad
		}
		lost = p.rng.Float64() < rate
		if p.geBad {
			if p.rng.Float64() < ge.PBadGood {
				p.geBad = false
			}
		} else if p.rng.Float64() < ge.PGoodBad {
			p.geBad = true
		}
	}
	if !lost && p.cfg.LossRate > 0 {
		lost = p.rng.Float64() < p.cfg.LossRate
	}
	return lost
}

// delayLocked computes this datagram's delivery delay: propagation +
// jitter + token-bucket serialisation.
func (p *Path) delayLocked(size int) time.Duration {
	d := p.cfg.Delay
	if p.cfg.Jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(p.cfg.Jitter)))
	}
	if p.cfg.RateBps > 0 {
		tx := time.Duration(float64(size*8) / p.cfg.RateBps * float64(time.Second))
		now := time.Now()
		if p.nextFree.Before(now) {
			p.nextFree = now
		}
		p.nextFree = p.nextFree.Add(tx)
		d += p.nextFree.Sub(now)
	}
	return d
}

// corruptLocked flips 1–3 random bits in buf.
func (p *Path) corruptLocked(buf []byte) {
	if len(buf) == 0 {
		return
	}
	for n := 1 + p.rng.Intn(3); n > 0; n-- {
		i := p.rng.Intn(len(buf))
		buf[i] ^= 1 << uint(p.rng.Intn(8))
	}
}

// scheduleLocked delivers buf after delay (immediately when zero),
// tracking the timer so Close can cancel it.
func (p *Path) scheduleLocked(buf []byte, addr net.Addr, delay time.Duration) {
	if delay <= 0 {
		p.conn.WriteTo(buf, addr) //nolint:errcheck // lossy path semantics
		return
	}
	p.pending.Add(1)
	id := p.timerSeq
	p.timerSeq++
	p.timers[id] = time.AfterFunc(delay, func() {
		p.mu.Lock()
		_, live := p.timers[id]
		delete(p.timers, id)
		closed := p.closed
		p.mu.Unlock()
		if live && !closed {
			p.conn.WriteTo(buf, addr) //nolint:errcheck
		}
		// If this callback runs at all, Close's Stop() either never
		// happened or returned false (and so did not settle the count):
		// the decrement is always ours.
		p.pending.Add(-1)
	})
}

// ReadFrom passes through to the wrapped conn: faults apply on the write
// side only.
func (p *Path) ReadFrom(b []byte) (int, net.Addr, error) { return p.conn.ReadFrom(b) }

// Close cancels pending deliveries and closes the wrapped conn.
func (p *Path) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for id, tm := range p.timers {
		if tm.Stop() {
			// Stopped before firing: settle its pending count here. A
			// timer that already fired settles its own (it will find its
			// id gone from the map).
			p.pending.Add(-1)
		}
		delete(p.timers, id)
	}
	p.mu.Unlock()
	return p.conn.Close()
}

func (p *Path) LocalAddr() net.Addr                { return p.conn.LocalAddr() }
func (p *Path) SetDeadline(t time.Time) error      { return p.conn.SetDeadline(t) }
func (p *Path) SetReadDeadline(t time.Time) error  { return p.conn.SetReadDeadline(t) }
func (p *Path) SetWriteDeadline(t time.Time) error { return p.conn.SetWriteDeadline(t) }

var _ net.PacketConn = (*Path)(nil)
