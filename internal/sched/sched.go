// Package sched is the pluggable packet-scheduler subsystem: a registry
// of named scheduler constructors with per-scheduler metadata, the
// scheduler contract both endpoint stacks dispatch through, and the
// paper's two receive-buffer-blocking countermeasures (opportunistic
// retransmission and subflow penalization) as composable options.
//
// The paper's implementation section (§6) shows that coupled congestion
// control alone is not enough on real paths: with a single shared
// receive buffer, a segment sent on a slow subflow head-of-line-blocks
// the whole connection once the buffer fills behind it. Which subflow a
// segment is assigned to — the scheduler — is therefore a co-equal
// design axis to the congestion controller (Hurtig et al.; the
// congestion-control-and-scheduling survey in PAPERS.md), and the two
// countermeasures the paper deploys when blocking happens anyway are
// scheduler-adjacent machinery:
//
//   - opportunistic retransmission: re-send the segment the receive
//     window is stuck on (the data-level cumulative ack) on a faster
//     subflow, so the buffer drains without waiting for the slow path;
//   - subflow penalization: halve the congestion window of the subflow
//     that caused the blocking, rate-limited to once per RTT, so it
//     stops re-filling the buffer with far-ahead segments.
//
// The package mirrors internal/cc's shape deliberately: schedulers
// self-register a constructor and an Info record in their file's init,
// New resolves names (and aliases) case-insensitively, and
// Names/Infos/Help drive CLI help and the schedgrid experiment, so
// adding a scheduler file is the only step needed to appear everywhere.
//
// A Scheduler sees subflows as neutral View records (window, in-flight,
// smoothed RTT, sendability) plus a connection-level Ctx (the shared
// receive buffer's remaining headroom), so one implementation serves
// both the simulator stack (internal/transport) and the UDP userspace
// stack (internal/mptcpnet). Scheduler instances returned by New are
// fresh per call and owned by exactly one connection; implementations
// that keep state must never be shared across connections.
package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// View is the scheduler-visible state of one subflow. Both endpoint
// stacks translate their internal subflow records into Views before
// every Pick, so schedulers stay stack-agnostic.
type View struct {
	// Cwnd is the congestion window in packets (fractional during
	// congestion avoidance).
	Cwnd float64
	// Inflight is the number of unacknowledged packets outstanding.
	Inflight int64
	// SRTT is the smoothed round-trip estimate in seconds; 0 means no
	// sample has been taken yet (schedulers treat unmeasured as slowest,
	// matching the Linux minRTT scheduler).
	SRTT float64
	// Sendable reports whether the subflow may carry *new* data at all:
	// false while it is in fast recovery or post-RTO repair, when its
	// transmissions are loss-recovery machinery, not scheduling.
	Sendable bool
	// Sent is the cumulative count of segments ever assigned to the
	// subflow (its sndNxt) — the round-robin fairness measure.
	Sent int64
}

// window is the effective congestion window in whole packets, never
// below one (a subflow may always keep one packet in flight).
func (v View) window() int64 {
	w := int64(v.Cwnd)
	if w < 1 {
		w = 1
	}
	return w
}

// Space reports whether the subflow can accept a new segment right now:
// sendable and with congestion-window room.
func (v View) Space() bool {
	return v.Sendable && v.Inflight < v.window()
}

// Ctx is the connection-level state shared by all subflows of a Pick.
type Ctx struct {
	// Window is the connection-level flow-control headroom in segments:
	// how many new data segments may still be assigned before the shared
	// receive buffer binds. Very large when the buffer is unconstrained.
	// Blocking-aware schedulers (BLEST) compare it against what a slow
	// subflow would strand in the buffer.
	Window int64
}

// Scheduler selects which subflow carries the next new data segment.
type Scheduler interface {
	// Name returns the canonical registry name.
	Name() string
	// Pick returns the index of the subflow to assign the next segment
	// to, or -1 when no subflow should send now (every subflow is
	// window-limited, in recovery, or sending would head-of-line-block
	// the shared receive buffer). Pick must not retain subs.
	Pick(ctx Ctx, subs []View) int
}

// Duplicator is an optional extension of Scheduler: schedulers that
// return true from Duplicates ask the sender to transmit every new
// segment on *all* subflows with window space, not only the picked one
// (the redundant scheduler). The duplicates consume no extra receive
// buffer — receivers count them as duplicate data — and trade goodput
// for latency and loss-resilience.
type Duplicator interface {
	Duplicates() bool
}

// Options are the receive-buffer-blocking countermeasures of the
// paper's §6, composable with any scheduler. Both endpoint stacks apply
// them when the connection is flow-control-blocked on the shared
// receive buffer.
type Options struct {
	// OpportunisticRetx re-sends the segment the receive window is stuck
	// on (the data-level cumulative ack) on the fastest other subflow
	// with window space, at most once per blocking segment.
	OpportunisticRetx bool
	// Penalize halves the congestion window of the subflow whose
	// un-delivered segment is blocking the receive buffer, at most once
	// per that subflow's smoothed RTT.
	Penalize bool
}

// Any reports whether at least one countermeasure is enabled.
func (o Options) Any() bool { return o.OpportunisticRetx || o.Penalize }

// String renders the canonical spec suffix ("", "+otr", "+pen",
// "+otr+pen"); Parse accepts it back.
func (o Options) String() string {
	var sb strings.Builder
	if o.OpportunisticRetx {
		sb.WriteString("+otr")
	}
	if o.Penalize {
		sb.WriteString("+pen")
	}
	return sb.String()
}

// Info is the registry metadata of one scheduler.
type Info struct {
	// Name is the canonical (lower-case) scheduler name.
	Name string
	// Aliases are alternative names accepted by New. Lookup of names
	// and aliases is case-insensitive.
	Aliases []string
	// Desc is a one-line description for CLI help and docs.
	Desc string
	// Ref names the scheduler's origin (Linux scheduler module, paper).
	Ref string
	// Redundant marks schedulers that duplicate segments across
	// subflows. Filled in by Register from the constructed type; never
	// hand-maintained.
	Redundant bool
	// Provenance documents what a learned scheduler was trained on —
	// model version, training corpus and seed — so CLI -list shows
	// where a policy's behaviour comes from. Empty for classical
	// (hand-written) schedulers.
	Provenance string
	// Rank orders Names/Infos for presentation.
	Rank int
}

type entry struct {
	info Info
	ctor func() (Scheduler, error)
}

var (
	mu      sync.RWMutex
	byName  = map[string]*entry{}
	entries []*entry
)

// Register adds a scheduler constructor under info.Name and its
// aliases. It is called from init functions; duplicate names
// (case-insensitive, across names and aliases) panic. The constructor
// must return a fresh instance on every call. Register fills
// info.Redundant by probing the constructed type.
func Register(info Info, ctor func() Scheduler) {
	if ctor == nil {
		panic("sched: Register needs a constructor")
	}
	RegisterErr(info, func() (Scheduler, error) {
		s := ctor()
		if s == nil {
			panic("sched: constructor for " + info.Name + " returned nil")
		}
		return s, nil
	})
}

// RegisterErr is Register for schedulers whose construction can fail —
// a learned scheduler must load (and validate) its model. A
// construction error is not a registration error: the entry still
// appears in Names/Infos/Help, and New surfaces the error to its
// caller instead of panicking, so a damaged model file degrades into a
// clean lookup failure rather than an init-time crash.
func RegisterErr(info Info, ctor func() (Scheduler, error)) {
	if info.Name == "" || ctor == nil {
		panic("sched: Register needs a name and a constructor")
	}
	if probe, err := ctor(); err == nil {
		if probe.Name() != info.Name {
			panic(fmt.Sprintf("sched: %s constructor builds scheduler named %q", info.Name, probe.Name()))
		}
		if d, ok := probe.(Duplicator); ok {
			info.Redundant = d.Duplicates()
		}
	}

	mu.Lock()
	defer mu.Unlock()
	e := &entry{info: info, ctor: ctor}
	for _, key := range append([]string{info.Name}, info.Aliases...) {
		k := strings.ToLower(key)
		if _, dup := byName[k]; dup {
			panic("sched: duplicate scheduler name " + key)
		}
		byName[k] = e
	}
	entries = append(entries, e)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].info.Rank != entries[j].info.Rank {
			return entries[i].info.Rank < entries[j].info.Rank
		}
		return entries[i].info.Name < entries[j].info.Name
	})
}

// New constructs a fresh instance of the scheduler registered under
// name (or one of its aliases). Lookup is case-insensitive and ignores
// surrounding whitespace.
func New(name string) (Scheduler, error) {
	mu.RLock()
	e, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %s)", name, strings.Join(Names(), ", "))
	}
	s, err := e.ctor()
	if err != nil {
		return nil, fmt.Errorf("sched: constructing %s: %w", e.info.Name, err)
	}
	return s, nil
}

// MustNew is New for callers with a statically known name; it panics on
// lookup failure.
func MustNew(name string) Scheduler {
	s, err := New(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Parse resolves a scheduler spec of the form
//
//	name[+otr][+pen]
//
// into a fresh scheduler instance and the countermeasure options, e.g.
// "minrtt+otr+pen" (the paper's §6 configuration) or plain "redundant".
// Option tokens — otr/oppretx (opportunistic retransmission) and
// pen/penalize (subflow penalization) — may appear in any order after
// the scheduler name; everything is case-insensitive.
func Parse(spec string) (Scheduler, Options, error) {
	parts := strings.Split(strings.TrimSpace(spec), "+")
	s, err := New(parts[0])
	if err != nil {
		return nil, Options{}, err
	}
	var o Options
	for _, tok := range parts[1:] {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "otr", "oppretx", "opportunistic":
			o.OpportunisticRetx = true
		case "pen", "penalize", "penalty":
			o.Penalize = true
		default:
			return nil, Options{}, fmt.Errorf("sched: unknown option %q in spec %q (have otr, pen)", tok, spec)
		}
	}
	return s, o, nil
}

// Canonical resolves a spec to its canonical form — the registered
// scheduler's canonical name plus the option suffix in fixed order —
// so aliases, case variants and reordered options compare equal:
// "RR+pen+otr" → "roundrobin+otr+pen". Grid filters canonicalise user
// input with this before matching column names.
func Canonical(spec string) (string, error) {
	s, opts, err := Parse(spec)
	if err != nil {
		return "", err
	}
	return s.Name() + opts.String(), nil
}

// Lookup returns the Info registered under name (or an alias),
// case-insensitively.
func Lookup(name string) (Info, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Info{}, false
	}
	return e.info, true
}

// Names lists the canonical scheduler names in Rank order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.info.Name
	}
	return out
}

// Infos returns the registered metadata in the same order as Names.
func Infos() []Info {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = e.info
	}
	return out
}

// Help renders a one-line-per-scheduler summary for CLI usage text,
// with a provenance line under learned entries documenting the model
// version, training corpus and seed the policy came from.
func Help() string {
	var sb strings.Builder
	for _, info := range Infos() {
		fmt.Fprintf(&sb, "  %-12s %s (%s)\n", info.Name, info.Desc, info.Ref)
		if info.Provenance != "" {
			fmt.Fprintf(&sb, "  %-12s trained: %s\n", "", info.Provenance)
		}
	}
	return sb.String()
}
