package sched_test

import (
	"fmt"
	"strings"

	"mptcp/internal/sched"
)

// Constructing a scheduler by registry name: lookup is case-insensitive
// and accepts aliases (rr names roundrobin, dup names redundant).
func ExampleNew() {
	s, err := sched.New("rr")
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name())
	// Output:
	// roundrobin
}

// The registry drives every scheduler list in the repo — the CLI help
// and the schedgrid experiment's scheduler axis — so registering a new
// scheduler file is the only step needed to appear everywhere.
func ExampleNames() {
	fmt.Println(strings.Join(sched.Names(), " "))
	// Output:
	// firstfit minrtt roundrobin wcwnd redundant blest bandit
}

// A spec composes a scheduler with the §6 receive-buffer-blocking
// countermeasures: opportunistic retransmission (+otr) and subflow
// penalization (+pen). "minrtt+otr+pen" is the paper's configuration.
func ExampleParse() {
	s, opts, err := sched.Parse("minrtt+otr+pen")
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name(), opts.OpportunisticRetx, opts.Penalize)
	fmt.Println("spec:", s.Name()+opts.String())
	// Output:
	// minrtt true true
	// spec: minrtt+otr+pen
}
