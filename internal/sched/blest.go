package sched

func init() {
	Register(Info{
		Name:    "blest",
		Aliases: []string{"blocking-estimation"},
		Desc:    "minRTT that skips a slow subflow when sending on it would HoL-block the shared receive buffer",
		Ref:     "Ferlin et al., BLEST (IFIP Networking 2016)",
		Rank:    5,
	}, func() Scheduler { return &BLEST{} })
}

// blestLambda is the window-growth slack factor of the blocking
// estimate: the fast subflow is assumed to grow its window by up to
// this factor while the slow subflow's segment is in flight (BLEST's λ;
// the original adapts it, we keep the recommended starting value).
const blestLambda = 1.25

// BLEST is a blocking-estimation scheduler in the style of Ferlin et
// al.: it behaves like MinRTT while the fast subflow has window space,
// but when only a slower subflow could send, it first estimates whether
// parking a segment on the slow path would head-of-line-block the
// shared receive buffer.
//
// The estimate: a segment sent on the slow subflow occupies the receive
// buffer for about one slow-path RTT. During that time the fast subflow
// can deliver roughly cwnd_fast × (srtt_slow / srtt_fast) × λ segments,
// all of which must also fit in the buffer behind the slow segment. If
// the slow subflow's in-flight data plus that estimate exceed the
// connection's remaining flow-control headroom (Ctx.Window), sending
// now would stall the fast path — so BLEST sends nothing and waits for
// the fast subflow's window to reopen instead.
//
// Two practical guards keep BLEST live: a fast subflow that is in loss
// recovery or post-RTO repair (View.Sendable false) is not worth
// waiting for, and when either RTT is still unmeasured the estimate is
// skipped. With an unconstrained receive buffer the estimate never
// binds and BLEST degenerates to MinRTT exactly.
type BLEST struct{}

// Name implements Scheduler.
func (*BLEST) Name() string { return "blest" }

// Pick implements Scheduler.
func (*BLEST) Pick(ctx Ctx, subs []View) int {
	cand := PickMinRTT(subs, -1)
	if cand < 0 {
		return -1
	}
	// The fast subflow we might be blocking: minimum SRTT among sendable
	// subflows, whether or not they have window space right now.
	fast := -1
	for i, v := range subs {
		if !v.Sendable {
			continue
		}
		if fast < 0 {
			fast = i
			continue
		}
		if v.SRTT > 0 && (subs[fast].SRTT == 0 || v.SRTT < subs[fast].SRTT) {
			fast = i
		}
	}
	if fast < 0 || fast == cand {
		return cand
	}
	vf, vc := subs[fast], subs[cand]
	if vf.Space() {
		// Unreachable in practice (cand is the min-RTT subflow *with*
		// space), kept for robustness against future pick changes.
		return fast
	}
	if vf.SRTT <= 0 || vc.SRTT <= 0 {
		return cand // no estimate without both RTTs
	}
	est := vf.Cwnd * (vc.SRTT / vf.SRTT) * blestLambda
	if float64(vc.Inflight+1)+est > float64(ctx.Window) {
		return -1 // would HoL-block the shared buffer: wait for fast path
	}
	return cand
}
