package sched

import (
	"fmt"
	"math/rand"
	"sync"

	"mptcp/internal/learn"
)

func init() {
	RegisterErr(Info{
		Name:       "bandit",
		Aliases:    []string{"learned"},
		Desc:       "offline-trained contextual bandit over SRTT ratio, cwnd headroom and receive-window pressure",
		Ref:        "learned scheduling, cf. arXiv:2309.09372",
		Provenance: banditProvenance(),
		Rank:       6,
	}, func() (Scheduler, error) { return NewBandit() })
}

// banditProvenance renders the registry Provenance line from the
// embedded model's header. It is lenient by design: listing the
// catalogue must work even when the model file is damaged (loading it
// is where the error surfaces).
func banditProvenance() string {
	meta := learn.MetaOf(learn.EmbeddedBytes())
	if !meta.OK {
		return "embedded model unreadable"
	}
	return fmt.Sprintf("%s, corpus %s, seed %d, %d episodes", meta.Version, meta.Corpus, meta.Seed, meta.Episodes)
}

// The embedded model is parsed once and shared read-only by every
// Bandit instance; banditReset (tests only) swaps the bytes and drops
// the cache.
var (
	banditMu     sync.Mutex
	banditBytes  []byte // nil means learn.EmbeddedBytes()
	banditModel  *learn.Model
	banditLoaded bool
)

func loadBanditModel() (*learn.Model, error) {
	banditMu.Lock()
	defer banditMu.Unlock()
	if !banditLoaded {
		b := banditBytes
		if b == nil {
			b = learn.EmbeddedBytes()
		}
		var err error
		banditModel, err = learn.Parse(b)
		if err != nil {
			return nil, err
		}
		banditLoaded = true
	}
	return banditModel, nil
}

// banditReset (tests only) swaps the model bytes behind New("bandit")
// and invalidates the cache; nil restores the embedded model.
func banditReset(b []byte) {
	banditMu.Lock()
	defer banditMu.Unlock()
	banditBytes = b
	banditModel, banditLoaded = nil, false
}

// Bandit is the learned scheduler: a contextual bandit whose policy
// table was trained offline over the schedgrid corpus (see
// internal/learn and the trainer in internal/exp). Each Pick classifies
// every subflow with window space into a feature bucket — RTT class
// relative to the fastest sendable subflow, congestion-window headroom
// class, and the connection's flow-control pressure class — and picks
// the candidate whose bucket has the highest trained value; a trained
// wait bucket can instead return -1 (send nothing now), the BLEST
// decision learned rather than estimated from a hand-tuned λ.
//
// A frozen Bandit (everything sched.New returns) is pure: the policy
// table is read-only, Pick draws no randomness, and equal inputs
// always produce equal picks. Exploration exists only in the trainer's
// explorer instances, whose ε-greedy randomness comes from a seeded
// generator injected at construction — never from a world rng, and
// never at inference.
//
// Two liveness guards bound the learned wait: the policy may only
// decline to send when the connection is under flow-control pressure
// (pressure class ≤ 1, i.e. fewer than learn.PressLow segments of
// headroom) and when at least one subflow has data in flight — so a
// future ACK, loss or RTO event is guaranteed to re-invoke the
// scheduler and the connection can never park itself forever. And when
// no candidate's bucket has any training data the pick falls back to
// PickMinRTT, so an untrained (or out-of-distribution) model degrades
// to the Linux default rather than to arbitrary ties.
type Bandit struct {
	model *learn.Model

	// Exploration state — nil/zero on frozen instances.
	rng *rand.Rand
	eps float64
	ep  *learn.Episode
}

// NewBandit returns a frozen greedy Bandit over the embedded trained
// model. The model is parsed once and shared; a damaged model file is
// an error (sched.New("bandit") reports it instead of panicking).
func NewBandit() (*Bandit, error) {
	m, err := loadBanditModel()
	if err != nil {
		return nil, err
	}
	return NewBanditFrom(m), nil
}

// NewBanditFrom returns a frozen greedy Bandit over an explicit model
// (the trainer's evaluation passes and tests use it). The model must
// not be mutated while the scheduler is in use.
func NewBanditFrom(m *learn.Model) *Bandit {
	return &Bandit{model: m}
}

// NewBanditExplorer returns a training-time Bandit: with probability
// eps a Pick chooses uniformly among the sendable candidates (plus the
// wait action when the liveness guards allow it) using rng, otherwise
// it exploits greedily; either way the decision's bucket usage is
// recorded into ep for the trainer's post-episode Update. rng is owned
// by the caller and must be seeded deterministically; one explorer may
// be shared by every connection of a single-threaded simulation
// episode (its state is only touched from Pick).
func NewBanditExplorer(m *learn.Model, rng *rand.Rand, eps float64, ep *learn.Episode) *Bandit {
	return &Bandit{model: m, rng: rng, eps: eps, ep: ep}
}

// Name implements Scheduler.
func (b *Bandit) Name() string { return "bandit" }

// Pick implements Scheduler.
func (b *Bandit) Pick(ctx Ctx, subs []View) int {
	press := learn.PressureClass(ctx.Window)

	// Connection-wide signals: the fastest measured SRTT among sendable
	// subflows anchors the RTT classes, and the wait action is only
	// live while some subflow has data in flight (its ACK re-invokes
	// the scheduler, so declining now can never deadlock).
	minSRTT := 0.0
	anyInflight := false
	for _, v := range subs {
		if v.Inflight > 0 {
			anyInflight = true
		}
		if v.Sendable && v.SRTT > 0 && (minSRTT == 0 || v.SRTT < minSRTT) {
			minSRTT = v.SRTT
		}
	}
	waitOK := press <= 1 && anyInflight

	// Classify the candidates (subflows with window space).
	var (
		cands   [16]int // scratch: candidate subflow indices (append spills past 16)
		buckets [16]int
	)
	candIdx, bucketOf := cands[:0], buckets[:0]
	for i, v := range subs {
		if !v.Space() {
			continue
		}
		w := v.window()
		bkt := learn.ActionIndex(
			learn.RTTClass(v.SRTT, minSRTT),
			learn.HeadroomClass(w-v.Inflight, w),
			press,
		)
		candIdx = append(candIdx, i)
		bucketOf = append(bucketOf, bkt)
	}
	nc := len(candIdx)
	if nc == 0 {
		return -1
	}

	// Explore: ε-greedy over candidates plus (when live) the wait arm.
	if b.rng != nil && b.rng.Float64() < b.eps {
		arms := nc
		if waitOK {
			arms++
		}
		k := b.rng.Intn(arms)
		if k == nc {
			b.ep.Wait[learn.WaitIndex(press)]++
			return -1
		}
		b.ep.Action[bucketOf[k]]++
		return candIdx[k]
	}

	// Exploit: greedy argmax over trained candidate buckets; ties go to
	// the lower subflow index. With no trained candidate at all, fall
	// back to minRTT.
	best, bestBkt := -1, -1
	bestQ := 0.0
	trained := false
	for k := 0; k < nc; k++ {
		bkt := bucketOf[k]
		if b.model.QN[bkt] == 0 {
			continue
		}
		if q := b.model.Q[bkt]; !trained || q > bestQ {
			best, bestBkt, bestQ = candIdx[k], bkt, q
			trained = true
		}
	}
	if !trained {
		i := PickMinRTT(subs, -1)
		if i >= 0 && b.ep != nil {
			// Record the fallback's bucket too: early training rounds
			// take this path, and the episode reward must still reach
			// the buckets the episode actually exercised.
			for k := 0; k < nc; k++ {
				if candIdx[k] == i {
					b.ep.Action[bucketOf[k]]++
				}
			}
		}
		return i
	}
	// The learned wait: under pressure, a trained wait bucket that
	// outscores every sendable candidate declines to send.
	if waitOK {
		wi := learn.WaitIndex(press)
		if b.model.WN[wi] > 0 && b.model.W[wi] > bestQ {
			if b.ep != nil {
				b.ep.Wait[wi]++
			}
			return -1
		}
	}
	if b.ep != nil {
		b.ep.Action[bestBkt]++
	}
	return best
}
