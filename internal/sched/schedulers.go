package sched

func init() {
	Register(Info{
		Name:    "firstfit",
		Aliases: []string{"stripe", "fill"},
		Desc:    "fill subflows with window space in configuration order",
		Ref:     "paper §6 striping",
		Rank:    0,
	}, func() Scheduler { return FirstFit{} })
	Register(Info{
		Name:    "minrtt",
		Aliases: []string{"lowrtt", "default"},
		Desc:    "prefer the subflow with the smallest smoothed RTT",
		Ref:     "Linux mptcp_sched default",
		Rank:    1,
	}, func() Scheduler { return MinRTT{} })
	Register(Info{
		Name:    "roundrobin",
		Aliases: []string{"rr"},
		Desc:    "rotate segments across subflows by least segments assigned",
		Ref:     "Linux mptcp_rr",
		Rank:    2,
	}, func() Scheduler { return RoundRobin{} })
	Register(Info{
		Name:    "wcwnd",
		Aliases: []string{"weighted", "maxspace"},
		Desc:    "prefer the subflow with the most free congestion-window space",
		Ref:     "cwnd-weighted striping",
		Rank:    3,
	}, func() Scheduler { return WeightedCwnd{} })
	Register(Info{
		Name:    "redundant",
		Aliases: []string{"dup"},
		Desc:    "duplicate every segment on all subflows with window space",
		Ref:     "Linux mptcp_redundant",
		Rank:    4,
	}, func() Scheduler { return Redundant{} })
}

// FirstFit fills subflows in configuration order: the next segment goes
// to the lowest-indexed subflow with window space. This is the
// simulator transport's historical striping order ("stripes packets
// across these subflows as space in the subflow windows becomes
// available") and the behaviour-preserving default there.
type FirstFit struct{}

// Name implements Scheduler.
func (FirstFit) Name() string { return "firstfit" }

// Pick implements Scheduler.
func (FirstFit) Pick(_ Ctx, subs []View) int {
	for i, v := range subs {
		if v.Space() {
			return i
		}
	}
	return -1
}

// MinRTT prefers the subflow with the smallest smoothed RTT among those
// with window space — the Linux MPTCP default scheduler. Subflows with
// no RTT sample yet (SRTT 0) rank slowest, so measured paths win until
// the unmeasured ones produce a sample; ties go to the lower index.
type MinRTT struct{}

// Name implements Scheduler.
func (MinRTT) Name() string { return "minrtt" }

// Pick implements Scheduler.
func (MinRTT) Pick(_ Ctx, subs []View) int {
	return PickMinRTT(subs, -1)
}

// PickMinRTT returns the min-SRTT subflow with space, skipping index
// skip (-1 to skip none); SRTT 0 (unmeasured) counts as slowest, ties
// go to the lower index. Besides MinRTT.Pick and BLEST, the endpoint
// stacks use it (with skip = the blocking subflow) to choose the target
// of an opportunistic retransmission, so the tie-breaking subtleties
// live in exactly one place.
func PickMinRTT(subs []View, skip int) int {
	best := -1
	for i, v := range subs {
		if i == skip || !v.Space() {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		if v.SRTT > 0 && (subs[best].SRTT == 0 || v.SRTT < subs[best].SRTT) {
			best = i
		}
	}
	return best
}

// RoundRobin rotates across subflows: the next segment goes to the
// subflow with the fewest segments assigned so far among those with
// window space. On homogeneous paths this converges to an even split;
// on heterogeneous paths the windows still bound each subflow's share
// (it is the classic ablation baseline, not a throughput maximiser).
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "roundrobin" }

// Pick implements Scheduler.
func (RoundRobin) Pick(_ Ctx, subs []View) int {
	best := -1
	for i, v := range subs {
		if !v.Space() {
			continue
		}
		if best < 0 || v.Sent < subs[best].Sent {
			best = i
		}
	}
	return best
}

// WeightedCwnd weights the striping by congestion-window state: the
// next segment goes to the subflow with the largest free window
// (cwnd − inflight), i.e. proportionally more traffic is steered onto
// the paths the congestion controller has grown the most. Ties go to
// the lower index.
type WeightedCwnd struct{}

// Name implements Scheduler.
func (WeightedCwnd) Name() string { return "wcwnd" }

// Pick implements Scheduler.
func (WeightedCwnd) Pick(_ Ctx, subs []View) int {
	best, bestFree := -1, int64(0)
	for i, v := range subs {
		if !v.Space() {
			continue
		}
		free := v.window() - v.Inflight
		if best < 0 || free > bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// Redundant duplicates every new segment on all subflows with window
// space (it implements Duplicator); the pick itself is first-fit, and
// the sender copies the segment to the other sendable subflows. The
// first copy to arrive delivers the data, the rest count as duplicate
// data and consume no receive buffer — so as long as one path is up,
// the stream never stalls, at the cost of sending every byte on every
// path.
type Redundant struct{}

// Name implements Scheduler.
func (Redundant) Name() string { return "redundant" }

// Pick implements Scheduler.
func (Redundant) Pick(ctx Ctx, subs []View) int { return FirstFit{}.Pick(ctx, subs) }

// Duplicates implements Duplicator.
func (Redundant) Duplicates() bool { return true }
