package sched

import (
	"reflect"
	"strings"
	"testing"
)

// wantNames is the canonical catalogue in presentation order.
var wantNames = []string{"firstfit", "minrtt", "roundrobin", "wcwnd", "redundant", "blest", "bandit"}

func TestNamesOrder(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, wantNames) {
		t.Errorf("Names() = %v, want %v", got, wantNames)
	}
}

func TestNewByCanonicalName(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
}

func TestLookupIsCaseInsensitive(t *testing.T) {
	for _, name := range []string{"MinRTT", " MINRTT ", "RR", "rr", "Stripe", "dup", "BLEST", "Weighted"} {
		if _, err := New(name); err != nil {
			t.Errorf("New(%q): %v", name, err)
		}
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
}

func TestAliasesResolveToCanonical(t *testing.T) {
	for alias, want := range map[string]string{"rr": "roundrobin", "dup": "redundant", "stripe": "firstfit", "lowrtt": "minrtt", "default": "minrtt", "learned": "bandit"} {
		info, ok := Lookup(alias)
		if !ok || info.Name != want {
			t.Errorf("Lookup(%q) = (%v, %v), want canonical %q", alias, info.Name, ok, want)
		}
		s, err := New(alias)
		if err != nil || s.Name() != want {
			t.Errorf("New(%q) = (%v, %v), want scheduler %q", alias, s, err, want)
		}
	}
}

func TestUnknownNameListsCatalogue(t *testing.T) {
	_, err := New("bogus")
	if err == nil {
		t.Fatal("New(bogus) should fail")
	}
	if !strings.Contains(err.Error(), "minrtt") || !strings.Contains(err.Error(), "blest") {
		t.Errorf("error should list the catalogue, got: %v", err)
	}
}

func TestInfoMetadataComplete(t *testing.T) {
	infos := Infos()
	if len(infos) != len(wantNames) {
		t.Fatalf("Infos() has %d entries, want %d", len(infos), len(wantNames))
	}
	for _, info := range infos {
		if info.Desc == "" || info.Ref == "" {
			t.Errorf("%s: metadata incomplete: %+v", info.Name, info)
		}
		if got := info.Redundant; got != (info.Name == "redundant") {
			t.Errorf("%s: Redundant = %v", info.Name, got)
		}
		// Provenance marks learned schedulers only: the bandit must say
		// what it was trained on, classical entries must stay blank.
		if learned := info.Name == "bandit"; learned != (info.Provenance != "") {
			t.Errorf("%s: Provenance = %q, learned = %v", info.Name, info.Provenance, learned)
		}
	}
	help := Help()
	for _, name := range wantNames {
		if !strings.Contains(help, name) {
			t.Errorf("Help() misses %s", name)
		}
	}
	if !strings.Contains(help, "trained: mptcp-bandit v1") {
		t.Errorf("Help() misses the bandit provenance line:\n%s", help)
	}
}

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec string
		name string
		opts Options
	}{
		{"minrtt", "minrtt", Options{}},
		{"minrtt+otr", "minrtt", Options{OpportunisticRetx: true}},
		{"MinRTT+PEN", "minrtt", Options{Penalize: true}},
		{"minrtt+otr+pen", "minrtt", Options{OpportunisticRetx: true, Penalize: true}},
		{"rr+pen+otr", "roundrobin", Options{OpportunisticRetx: true, Penalize: true}},
		{"redundant", "redundant", Options{}},
	}
	for _, tc := range cases {
		s, opts, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if s.Name() != tc.name || opts != tc.opts {
			t.Errorf("Parse(%q) = (%s, %+v), want (%s, %+v)", tc.spec, s.Name(), opts, tc.name, tc.opts)
		}
	}
	for _, bad := range []string{"minrtt+bogus", "nope+otr", "+otr"} {
		if _, _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCanonicalNormalisesSpecs(t *testing.T) {
	for spec, want := range map[string]string{
		"RR":             "roundrobin",
		"MinRTT+pen+otr": "minrtt+otr+pen",
		"dup":            "redundant",
		"minrtt+otr+pen": "minrtt+otr+pen",
	} {
		got, err := Canonical(spec)
		if err != nil || got != want {
			t.Errorf("Canonical(%q) = (%q, %v), want %q", spec, got, err, want)
		}
	}
	if _, err := Canonical("bogus+otr"); err == nil {
		t.Error("Canonical(bogus+otr) should fail")
	}
}

func TestOptionsStringRoundTrips(t *testing.T) {
	for _, o := range []Options{{}, {OpportunisticRetx: true}, {Penalize: true}, {OpportunisticRetx: true, Penalize: true}} {
		spec := "minrtt" + o.String()
		_, got, err := Parse(spec)
		if err != nil || got != o {
			t.Errorf("Parse(%q) = (%+v, %v), want %+v", spec, got, err, o)
		}
	}
}
