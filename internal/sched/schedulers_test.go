package sched

import "testing"

// v is a test-view shorthand: a sendable subflow with the given window,
// in-flight count and smoothed RTT.
func v(cwnd float64, inflight int64, srtt float64) View {
	return View{Cwnd: cwnd, Inflight: inflight, SRTT: srtt, Sendable: true}
}

func pick(t *testing.T, s Scheduler, ctx Ctx, subs []View) int {
	t.Helper()
	return s.Pick(ctx, subs)
}

func TestViewSpace(t *testing.T) {
	if !(View{Cwnd: 2, Inflight: 1, Sendable: true}).Space() {
		t.Error("room in window should have space")
	}
	if (View{Cwnd: 2, Inflight: 2, Sendable: true}).Space() {
		t.Error("full window should not have space")
	}
	if (View{Cwnd: 8, Inflight: 0, Sendable: false}).Space() {
		t.Error("unsendable subflow should not have space")
	}
	// Fractional windows floor, but never below one packet.
	if !(View{Cwnd: 0.3, Inflight: 0, Sendable: true}).Space() {
		t.Error("sub-packet cwnd still permits one in flight")
	}
	if (View{Cwnd: 0.3, Inflight: 1, Sendable: true}).Space() {
		t.Error("sub-packet cwnd permits only one in flight")
	}
}

func TestFirstFitPicksLowestIndexWithSpace(t *testing.T) {
	s := FirstFit{}
	if got := pick(t, s, Ctx{}, []View{v(2, 2, 0.01), v(2, 0, 0.5)}); got != 1 {
		t.Errorf("full sf0 should be skipped: got %d", got)
	}
	if got := pick(t, s, Ctx{}, []View{v(2, 1, 0.5), v(2, 0, 0.01)}); got != 0 {
		t.Errorf("firstfit ignores RTT: got %d", got)
	}
	if got := pick(t, s, Ctx{}, []View{v(2, 2, 0), v(1, 1, 0)}); got != -1 {
		t.Errorf("no space anywhere: got %d", got)
	}
}

func TestMinRTTPrefersLowerSRTT(t *testing.T) {
	s := MinRTT{}
	if got := pick(t, s, Ctx{}, []View{v(4, 0, 0.100), v(4, 0, 0.010)}); got != 1 {
		t.Errorf("lower srtt should win: got %d", got)
	}
	// Unmeasured (SRTT 0) ranks slowest.
	if got := pick(t, s, Ctx{}, []View{v(4, 0, 0), v(4, 0, 0.2)}); got != 1 {
		t.Errorf("measured beats unmeasured: got %d", got)
	}
	// All unmeasured: lowest index.
	if got := pick(t, s, Ctx{}, []View{v(4, 0, 0), v(4, 0, 0)}); got != 0 {
		t.Errorf("tie goes to lowest index: got %d", got)
	}
	// The fast subflow without space loses to a slower one with space.
	if got := pick(t, s, Ctx{}, []View{v(2, 2, 0.010), v(4, 0, 0.100)}); got != 1 {
		t.Errorf("window-limited fast path must be skipped: got %d", got)
	}
}

func TestRoundRobinBalancesBySent(t *testing.T) {
	s := RoundRobin{}
	a, b := v(8, 0, 0.01), v(8, 0, 0.5)
	a.Sent, b.Sent = 10, 3
	if got := pick(t, s, Ctx{}, []View{a, b}); got != 1 {
		t.Errorf("least-sent should win: got %d", got)
	}
	b.Sent = 10
	if got := pick(t, s, Ctx{}, []View{a, b}); got != 0 {
		t.Errorf("tie goes to lowest index: got %d", got)
	}
}

func TestWeightedCwndPrefersMostFreeWindow(t *testing.T) {
	s := WeightedCwnd{}
	if got := pick(t, s, Ctx{}, []View{v(4, 3, 0.01), v(10, 2, 0.5)}); got != 1 {
		t.Errorf("largest free window should win: got %d", got)
	}
	if got := pick(t, s, Ctx{}, []View{v(6, 1, 0.5), v(6, 3, 0.01)}); got != 0 {
		t.Errorf("free window 5 beats 3: got %d", got)
	}
}

func TestRedundantDuplicatesAndPicksFirstFit(t *testing.T) {
	s := Redundant{}
	if d, ok := any(s).(Duplicator); !ok || !d.Duplicates() {
		t.Fatal("redundant must implement Duplicator")
	}
	if got := pick(t, s, Ctx{}, []View{v(2, 0, 0.5), v(2, 0, 0.01)}); got != 0 {
		t.Errorf("redundant pick is first-fit: got %d", got)
	}
}

func TestBLESTDegeneratesToMinRTTWhenUnconstrained(t *testing.T) {
	s := MustNew("blest")
	wide := Ctx{Window: 1 << 20}
	if got := pick(t, s, wide, []View{v(4, 0, 0.100), v(4, 0, 0.010)}); got != 1 {
		t.Errorf("blest should behave like minrtt: got %d", got)
	}
	// Fast path window-limited, huge buffer headroom: send on slow path.
	if got := pick(t, s, wide, []View{v(2, 2, 0.010), v(4, 0, 0.100)}); got != 1 {
		t.Errorf("unconstrained blest must not wait: got %d", got)
	}
}

func TestBLESTWaitsWhenSlowPathWouldBlock(t *testing.T) {
	s := MustNew("blest")
	// Fast subflow full (cwnd 10, 10 in flight, 10 ms); slow subflow has
	// space but 10× the RTT. While a slow segment is in flight the fast
	// path wants ~10 × 10 × 1.25 = 125 buffer slots; headroom of 20 is
	// not enough, so BLEST must send nothing.
	subs := []View{v(10, 10, 0.010), v(4, 0, 0.100)}
	if got := pick(t, s, Ctx{Window: 20}, subs); got != -1 {
		t.Errorf("blest should wait for the fast path: got %d", got)
	}
	// With generous headroom the same pick proceeds on the slow path.
	if got := pick(t, s, Ctx{Window: 500}, subs); got != 1 {
		t.Errorf("ample headroom should send on the slow path: got %d", got)
	}
}

func TestBLESTDoesNotWaitForUnsendableFastPath(t *testing.T) {
	s := MustNew("blest")
	// The fast subflow is in loss recovery (Sendable false): it is not
	// worth waiting for, even under a tight buffer — otherwise a dead
	// fast path would stall new data forever.
	fast := View{Cwnd: 10, Inflight: 1, SRTT: 0.010, Sendable: false}
	if got := pick(t, s, Ctx{Window: 20}, []View{fast, v(4, 0, 0.100)}); got != 1 {
		t.Errorf("blest must not wait for a recovering subflow: got %d", got)
	}
}

func TestBLESTSkipsEstimateWithoutRTTs(t *testing.T) {
	s := MustNew("blest")
	// No RTT samples anywhere: no estimate is possible, send on the
	// candidate rather than stall a cold connection.
	if got := pick(t, s, Ctx{Window: 4}, []View{v(2, 2, 0), v(4, 0, 0)}); got != 1 {
		t.Errorf("cold blest should send: got %d", got)
	}
}
