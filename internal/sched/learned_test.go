package sched

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mptcp/internal/learn"
)

// randViews builds a random subflow slate: mixed measured/unmeasured
// RTTs, sendable and recovering subflows, full and free windows.
func randViews(rng *rand.Rand) []View {
	n := 1 + rng.Intn(5)
	subs := make([]View, n)
	for i := range subs {
		subs[i] = View{
			Cwnd:     float64(rng.Intn(40)),
			Inflight: int64(rng.Intn(40)),
			SRTT:     []float64{0, 0.01, 0.05, 0.3}[rng.Intn(4)] * (1 + rng.Float64()),
			Sendable: rng.Intn(4) != 0,
			Sent:     int64(rng.Intn(1000)),
		}
	}
	return subs
}

func randCtx(rng *rand.Rand) Ctx {
	return Ctx{Window: []int64{0, 1, 3, 5, 12, 40, 1 << 30}[rng.Intn(7)]}
}

// TestBanditNeverPicksBlockedSubflow is the core safety property: over a
// large random slate of states, Pick returns either -1 or a subflow with
// window space, never a blocked one — for the embedded model, an
// untrained model, and an exploring instance.
func TestBanditNeverPicksBlockedSubflow(t *testing.T) {
	embedded, err := NewBandit()
	if err != nil {
		t.Fatalf("NewBandit: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	explorer := NewBanditExplorer(&learn.Model{}, rand.New(rand.NewSource(2)), 0.5, &learn.Episode{})
	for _, b := range []*Bandit{embedded, NewBanditFrom(&learn.Model{}), explorer} {
		for trial := 0; trial < 20000; trial++ {
			ctx, subs := randCtx(rng), randViews(rng)
			i := b.Pick(ctx, subs)
			if i == -1 {
				continue
			}
			if i < 0 || i >= len(subs) {
				t.Fatalf("Pick returned out-of-range index %d for %d subflows", i, len(subs))
			}
			if !subs[i].Space() {
				t.Fatalf("Pick chose blocked subflow %d: %+v (ctx %+v)", i, subs[i], ctx)
			}
		}
	}
}

// TestBanditReturnsMinusOneWhenNothingSendable pins the no-candidate
// contract directly.
func TestBanditReturnsMinusOneWhenNothingSendable(t *testing.T) {
	b, err := NewBandit()
	if err != nil {
		t.Fatalf("NewBandit: %v", err)
	}
	cases := [][]View{
		{},
		{{Cwnd: 10, Inflight: 10, SRTT: 0.01, Sendable: true}},           // window full
		{{Cwnd: 10, Inflight: 2, SRTT: 0.01, Sendable: false}},           // in recovery
		{{Cwnd: 0, Inflight: 1, Sendable: true}, {Cwnd: 4, Inflight: 4, SRTT: 0.1, Sendable: true}}, // all bound
	}
	for i, subs := range cases {
		if got := b.Pick(Ctx{Window: 100}, subs); got != -1 {
			t.Errorf("case %d: Pick = %d, want -1", i, got)
		}
	}
}

// TestBanditFrozenInferenceIsPure: a frozen bandit is a function — the
// same (ctx, subs) always yields the same pick, across repeated calls
// and across independently constructed instances, and Pick does not
// mutate its inputs.
func TestBanditFrozenInferenceIsPure(t *testing.T) {
	b1, err1 := NewBandit()
	b2, err2 := NewBandit()
	if err1 != nil || err2 != nil {
		t.Fatalf("NewBandit: %v, %v", err1, err2)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		ctx, subs := randCtx(rng), randViews(rng)
		saved := append([]View(nil), subs...)
		first := b1.Pick(ctx, subs)
		for k := 0; k < 3; k++ {
			if got := b1.Pick(ctx, subs); got != first {
				t.Fatalf("repeat Pick differs: %d then %d (ctx %+v subs %+v)", first, got, ctx, subs)
			}
			if got := b2.Pick(ctx, subs); got != first {
				t.Fatalf("sibling instance differs: %d vs %d", got, first)
			}
		}
		if !reflect.DeepEqual(saved, subs) {
			t.Fatalf("Pick mutated subs: %+v -> %+v", saved, subs)
		}
	}
}

// TestBanditUntrainedFallsBackToMinRTT: with an empty table every pick
// must match the Linux default scheduler.
func TestBanditUntrainedFallsBackToMinRTT(t *testing.T) {
	b := NewBanditFrom(&learn.Model{})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		ctx, subs := randCtx(rng), randViews(rng)
		if got, want := b.Pick(ctx, subs), PickMinRTT(subs, -1); got != want {
			t.Fatalf("untrained bandit = %d, PickMinRTT = %d (subs %+v)", got, want, subs)
		}
	}
}

// TestBanditWaitRequiresInflight: the learned wait may never park a
// connection with nothing in flight — there would be no future ACK to
// wake it. Build a model where waiting dominates every action bucket
// and check the guard holds.
func TestBanditWaitRequiresInflight(t *testing.T) {
	m := &learn.Model{}
	for i := range m.Q {
		m.Q[i], m.QN[i] = 0.1, 1
	}
	for i := range m.W {
		m.W[i], m.WN[i] = 100, 1 // wait looks infinitely attractive
	}
	b := NewBanditFrom(m)
	idle := []View{{Cwnd: 10, Inflight: 0, SRTT: 0.01, Sendable: true}}
	if got := b.Pick(Ctx{Window: 2}, idle); got != 0 {
		t.Errorf("wait with nothing in flight: Pick = %d, want 0", got)
	}
	// With traffic in flight and tight pressure the learned wait may fire.
	busy := []View{
		{Cwnd: 10, Inflight: 5, SRTT: 0.01, Sendable: true},
		{Cwnd: 10, Inflight: 3, SRTT: 0.3, Sendable: true},
	}
	if got := b.Pick(Ctx{Window: 2}, busy); got != -1 {
		t.Errorf("dominant wait bucket under pressure: Pick = %d, want -1", got)
	}
	// Without flow-control pressure the wait arm is dead even when its
	// value dominates: unconstrained connections always send.
	if got := b.Pick(Ctx{Window: 1 << 20}, busy); got == -1 {
		t.Error("wait fired without flow-control pressure")
	}
}

// TestBanditExplorerDeterministicBySeed: two explorers over the same
// model with equal seeds reproduce identical pick sequences and episode
// counters; a different seed diverges.
func TestBanditExplorerDeterministicBySeed(t *testing.T) {
	model, err := loadBanditModel()
	if err != nil {
		t.Fatalf("loadBanditModel: %v", err)
	}
	run := func(seed int64) ([]int, *learn.Episode) {
		ep := &learn.Episode{}
		b := NewBanditExplorer(model, rand.New(rand.NewSource(seed)), 0.3, ep)
		states := rand.New(rand.NewSource(99)) // same state stream for all runs
		picks := make([]int, 0, 2000)
		for trial := 0; trial < 2000; trial++ {
			picks = append(picks, b.Pick(randCtx(states), randViews(states)))
		}
		return picks, ep
	}
	p1, e1 := run(5)
	p2, e2 := run(5)
	if !reflect.DeepEqual(p1, p2) || *e1 != *e2 {
		t.Fatal("same-seed explorers diverged")
	}
	p3, _ := run(6)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different-seed explorers picked identically (rng unused?)")
	}
}

// TestBanditCorruptModelFailsCleanly: damaged or truncated embedded
// bytes must turn New("bandit") into a clean error — no panic — while
// the registry listing keeps working; restoring the bytes restores the
// scheduler.
func TestBanditCorruptModelFailsCleanly(t *testing.T) {
	defer banditReset(nil)
	good := learn.EmbeddedBytes()
	for name, bad := range map[string][]byte{
		"garbage":   []byte("not a model at all"),
		"truncated": good[:len(good)/2],
		"empty":     {},
		"skewed":    []byte("mptcp-bandit v0\n"),
	} {
		banditReset(bad)
		s, err := New("bandit")
		if err == nil {
			t.Fatalf("%s: New(bandit) = %v, want error", name, s)
		}
		if !strings.Contains(err.Error(), "bandit") {
			t.Errorf("%s: error does not name the scheduler: %v", name, err)
		}
		// The catalogue must still list the entry (Help, -list).
		if _, ok := Lookup("bandit"); !ok {
			t.Errorf("%s: bandit vanished from the registry", name)
		}
	}
	banditReset(nil)
	if _, err := New("bandit"); err != nil {
		t.Fatalf("restoring the embedded model did not recover: %v", err)
	}
}

// TestBanditEmbeddedModelLoads pins that the checked-in model behind
// sched.New("bandit") parses and is actually trained.
func TestBanditEmbeddedModelLoads(t *testing.T) {
	s, err := New("bandit")
	if err != nil {
		t.Fatalf("New(bandit): %v", err)
	}
	if s.Name() != "bandit" {
		t.Errorf("Name() = %q", s.Name())
	}
	m, err := loadBanditModel()
	if err != nil {
		t.Fatalf("loadBanditModel: %v", err)
	}
	if m.Episodes == 0 {
		t.Fatal("embedded model is untrained")
	}
	info, _ := Lookup("bandit")
	if !strings.Contains(info.Provenance, m.Corpus) {
		t.Errorf("Provenance %q does not name the corpus %q", info.Provenance, m.Corpus)
	}
}
