package learn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestClassifierRanges(t *testing.T) {
	// Every classifier output must be a legal index for its dimension,
	// over a sweep of adversarial inputs.
	for _, srtt := range []float64{-1, 0, 0.001, 0.05, 0.2, 10} {
		for _, min := range []float64{-1, 0, 0.001, 0.05, 0.2} {
			if c := RTTClass(srtt, min); c < 0 || c >= NRTT {
				t.Fatalf("RTTClass(%g, %g) = %d out of range", srtt, min, c)
			}
		}
	}
	for _, free := range []int64{-5, 0, 1, 2, 7, 100} {
		for _, w := range []int64{-1, 0, 1, 4, 10, 1 << 40} {
			if c := HeadroomClass(free, w); c < 0 || c >= NHeadroom {
				t.Fatalf("HeadroomClass(%d, %d) = %d out of range", free, w, c)
			}
		}
	}
	for _, w := range []int64{-10, 0, 3, 4, 15, 16, 63, 64, 1 << 50} {
		if c := PressureClass(w); c < 0 || c >= NPressure {
			t.Fatalf("PressureClass(%d) = %d out of range", w, c)
		}
	}
}

func TestClassifierBoundaries(t *testing.T) {
	// The documented thresholds, exactly.
	if got := RTTClass(0, 0.1); got != 0 {
		t.Errorf("unmeasured RTT class = %d, want 0", got)
	}
	if got := RTTClass(0.1, 0); got != 1 {
		t.Errorf("only-measured RTT class = %d, want 1", got)
	}
	if got := RTTClass(RTTNear*0.1, 0.1); got != 1 {
		t.Errorf("ratio == RTTNear class = %d, want 1", got)
	}
	if got := RTTClass(RTTFar*0.1, 0.1); got != 2 {
		t.Errorf("ratio == RTTFar class = %d, want 2", got)
	}
	if got := RTTClass(RTTFar*0.1*1.01, 0.1); got != 3 {
		t.Errorf("ratio > RTTFar class = %d, want 3", got)
	}
	if got := PressureClass(PressTight - 1); got != 0 {
		t.Errorf("PressureClass(%d) = %d, want 0", PressTight-1, got)
	}
	if got := PressureClass(PressLow - 1); got != 1 {
		t.Errorf("PressureClass(%d) = %d, want 1", PressLow-1, got)
	}
	if got := PressureClass(PressMid); got != 3 {
		t.Errorf("PressureClass(%d) = %d, want 3", PressMid, got)
	}
	if got := HeadroomClass(1, 4); got != 0 {
		t.Errorf("HeadroomClass(1, 4) = %d, want 0", got)
	}
	if got := HeadroomClass(2, 4); got != 1 {
		t.Errorf("HeadroomClass(2, 4) = %d, want 1", got)
	}
	if got := HeadroomClass(3, 4); got != 2 {
		t.Errorf("HeadroomClass(3, 4) = %d, want 2", got)
	}
}

func TestActionIndexBijective(t *testing.T) {
	seen := map[int]bool{}
	for r := 0; r < NRTT; r++ {
		for h := 0; h < NHeadroom; h++ {
			for p := 0; p < NPressure; p++ {
				idx := ActionIndex(r, h, p)
				if idx < 0 || idx >= NActions {
					t.Fatalf("ActionIndex(%d,%d,%d) = %d out of range", r, h, p, idx)
				}
				if seen[idx] {
					t.Fatalf("ActionIndex(%d,%d,%d) = %d collides", r, h, p, idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != NActions {
		t.Fatalf("ActionIndex covers %d of %d buckets", len(seen), NActions)
	}
}

func TestActionIndexPanicsOutOfRange(t *testing.T) {
	for _, tc := range [][3]int{{-1, 0, 0}, {NRTT, 0, 0}, {0, NHeadroom, 0}, {0, 0, NPressure}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ActionIndex(%v) should panic", tc)
				}
			}()
			ActionIndex(tc[0], tc[1], tc[2])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WaitIndex(NPressure) should panic")
			}
		}()
		WaitIndex(NPressure)
	}()
}

// randomModel builds a model with irrational-ish float values so the
// round-trip test exercises the full mantissa, not friendly decimals.
func randomModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Corpus: "test-corpus", Seed: seed, Episodes: rng.Int63n(1000)}
	for b := 0; b < NActions; b++ {
		if rng.Intn(3) == 0 {
			continue // leave some buckets untrained
		}
		m.QN[b] = rng.Int63n(1 << 40)
		m.Q[b] = rng.NormFloat64() * 3
	}
	for b := 0; b < NWait; b++ {
		m.WN[b] = rng.Int63n(1 << 20)
		m.W[b] = rng.ExpFloat64()
	}
	return m
}

func TestMarshalParseRoundTripsExactly(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		m := randomModel(seed)
		data := m.Marshal()
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("seed %d: Parse(Marshal): %v", seed, err)
		}
		if *got != *m {
			t.Fatalf("seed %d: round-trip changed the model:\n got %+v\nwant %+v", seed, got, m)
		}
		// Marshal ∘ Parse ∘ Marshal must be the identity on bytes, or
		// the train-determinism cmp gate is meaningless.
		if again := got.Marshal(); !bytes.Equal(again, data) {
			t.Fatalf("seed %d: re-marshal differs from original bytes", seed)
		}
	}
}

func TestMarshalCanonical(t *testing.T) {
	m := randomModel(7)
	if !bytes.Equal(m.Marshal(), m.Clone().Marshal()) {
		t.Fatal("equal models marshal differently")
	}
	if !bytes.HasPrefix(m.Marshal(), []byte(modelVersion+"\n")) {
		t.Fatal("marshal does not start with the version line")
	}
	if !bytes.HasSuffix(m.Marshal(), []byte("end\n")) {
		t.Fatal("marshal does not finish with the end marker")
	}
}

func TestUpdateIsUsageWeightedMean(t *testing.T) {
	m := &Model{}
	ep1 := &Episode{}
	ep1.Action[5] = 3
	ep1.Wait[1] = 1
	m.Update(ep1, 2.0)
	ep2 := &Episode{}
	ep2.Action[5] = 1
	m.Update(ep2, 6.0)

	// Bucket 5 saw 3 uses at reward 2 and 1 use at reward 6: mean 3.
	if m.QN[5] != 4 || m.Q[5] != 3.0 {
		t.Errorf("Q[5] = (%g, n=%d), want (3, 4)", m.Q[5], m.QN[5])
	}
	if m.WN[1] != 1 || m.W[1] != 2.0 {
		t.Errorf("W[1] = (%g, n=%d), want (2, 1)", m.W[1], m.WN[1])
	}
	if m.Episodes != 2 {
		t.Errorf("Episodes = %d, want 2", m.Episodes)
	}
	// Untouched buckets stay untrained.
	if m.QN[0] != 0 || m.Q[0] != 0 {
		t.Errorf("Q[0] = (%g, n=%d), want untouched", m.Q[0], m.QN[0])
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := randomModel(3)
	c := m.Clone()
	ep := &Episode{}
	ep.Action[0] = 1
	c.Update(ep, 99)
	if m.Q[0] == c.Q[0] && m.QN[0] == c.QN[0] && m.Episodes == c.Episodes {
		t.Fatal("Clone shares state with the original")
	}
}

func TestParseRejectsDamage(t *testing.T) {
	good := string(randomModel(11).Marshal())
	cases := map[string]string{
		"empty":             "",
		"wrong version":     strings.Replace(good, "v1", "v9", 1),
		"no version":        strings.TrimPrefix(good, modelVersion+"\n"),
		"missing corpus":    strings.Replace(good, "corpus test-corpus\n", "", 1),
		"bad seed":          strings.Replace(good, "seed 11", "seed eleven", 1),
		"bad episodes":      strings.Replace(good, "episodes", "episodes x", 1),
		"dims mismatch":     strings.Replace(good, "dims 4 3 4", "dims 5 3 4", 1),
		"truncated":         good[:len(good)-len("end\n")],
		"half a line":       good[:len(good)/2],
		"trailing garbage":  good + "q 0 1 0x1p+00\n",
		"q index range":     strings.Replace(good, "\nend", "\nq 48 1 0x1p+00\nend", 1),
		"w index range":     strings.Replace(good, "\nend", "\nw 4 1 0x1p+00\nend", 1),
		"negative count":    strings.Replace(good, "\nend", "\nq 0 -1 0x1p+00\nend", 1),
		"NaN value":         strings.Replace(good, "\nend", "\nq 0 1 NaN\nend", 1),
		"malformed entry":   strings.Replace(good, "\nend", "\nq 0 1\nend", 1),
		"unknown entry tag": strings.Replace(good, "\nend", "\nz 0 1 0x1p+00\nend", 1),
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
	// Sanity: the undamaged bytes do parse.
	if _, err := Parse([]byte(good)); err != nil {
		t.Fatalf("pristine model failed to parse: %v", err)
	}
}

func TestEmbeddedModelIsTrained(t *testing.T) {
	m, err := Parse(EmbeddedBytes())
	if err != nil {
		t.Fatalf("embedded model does not parse: %v", err)
	}
	if m.Episodes == 0 {
		t.Fatal("embedded model is untrained (0 episodes) — re-run the pinned -train-sched command")
	}
	meta := MetaOf(EmbeddedBytes())
	if !meta.OK || meta.Version != modelVersion || meta.Corpus != m.Corpus || meta.Episodes != m.Episodes {
		t.Errorf("MetaOf disagrees with Parse: %+v vs %+v", meta, m)
	}
	if bad := MetaOf([]byte("garbage")); bad.OK {
		t.Error("MetaOf(garbage) should not be OK")
	}
}

// FuzzParse asserts the no-panic contract: arbitrary bytes either parse
// or error, and anything that parses re-marshals canonically.
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add(randomModel(1).Marshal())
	f.Add([]byte(modelVersion + "\n"))
	f.Add([]byte(modelVersion + "\ncorpus c\nseed 1\nepisodes 0\ndims 4 3 4\nend\n"))
	f.Add([]byte(modelVersion + "\ncorpus c\nseed 1\nepisodes 0\ndims 4 3 4\nq 0 1 0x1p+00\nend\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// A successful parse must round-trip through the canonical form.
		again, err := Parse(m.Marshal())
		if err != nil {
			t.Fatalf("canonical re-marshal does not parse: %v", err)
		}
		if *again != *m {
			t.Fatal("canonical round-trip changed the model")
		}
	})
}
