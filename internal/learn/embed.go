package learn

import _ "embed"

// bandit.model is the checked-in trained policy behind sched.New
// ("bandit"). It is produced by the deterministic offline trainer —
// the exact pinned command is documented in DESIGN.md §14 — and
// re-running that command must reproduce the file byte-for-byte.
//
//go:embed bandit.model
var embedded []byte

// EmbeddedBytes returns the checked-in trained model file. Callers
// parse it with Parse; internal/sched caches the result behind the
// "bandit" registry entry.
func EmbeddedBytes() []byte { return embedded }

// Meta is the provenance header of a model file, extracted leniently:
// MetaOf never fails, it reports whatever headers it could read (a
// registry Info line must be buildable even from a damaged file —
// loading, not listing, is where corruption must error).
type Meta struct {
	Version  string
	Corpus   string
	Seed     int64
	Episodes int64
	OK       bool // true when the full header parsed
}

// MetaOf scans the provenance header of a serialized model.
func MetaOf(data []byte) Meta {
	m, err := Parse(data)
	if err != nil {
		return Meta{}
	}
	return Meta{Version: modelVersion, Corpus: m.Corpus, Seed: m.Seed, Episodes: m.Episodes, OK: true}
}
