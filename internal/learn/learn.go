// Package learn holds the offline-trained contextual-bandit policy
// behind the "bandit" packet scheduler (internal/sched's learned
// registry entry): the discretized feature space, the value tables, the
// Monte-Carlo update rule the offline trainer applies between episodes,
// and a byte-exact serialization so a trained model can be checked in,
// embedded, and reproduced bit-for-bit.
//
// The split with internal/sched is deliberate and keeps the import
// graph acyclic: this package knows nothing about subflows or the
// Pick(Ctx, []View) contract — it scores *feature buckets* (plain
// integers) and updates bucket values from episode rewards. The adapter
// in internal/sched/learned.go translates scheduler Views into bucket
// indices via the classifier functions here, and the offline trainer in
// internal/exp replays simulation episodes and feeds the rewards back
// through Model.Update. The ML-vs-classical scheduling survey in
// PAPERS.md (arXiv:2309.09372) frames this design point: a learned
// policy over the same observables hand-tuned schedulers use (SRTT,
// cwnd, in-flight, buffer headroom), trained offline, deterministic at
// inference.
//
// Determinism contract: a frozen Model is read-only — scoring draws no
// randomness and mutates nothing, so one parsed model may back every
// connection of a simulation concurrently. All training randomness
// comes from seeded generators owned by the trainer; Update applies an
// episode's bucket-usage counts in fixed index order. Marshal renders
// floats as Go hex-float literals ('x' format), which round-trip
// exactly, so Marshal ∘ Parse ∘ Marshal is the identity and two
// same-seed training runs serialize byte-identically.
package learn

import (
	"fmt"
	"strconv"
	"strings"
)

// The discretized feature space. A scheduling decision scores each
// candidate subflow by three features, each bucketed coarsely enough
// that a few hundred training episodes populate the table:
//
//   - RTT class: how the candidate's smoothed RTT compares to the
//     fastest currently-sendable subflow (the minRTT scheduler's
//     ordering, made categorical);
//   - headroom class: what fraction of the candidate's congestion
//     window is still free (the wcwnd scheduler's signal);
//   - pressure class: how much connection-level flow-control headroom
//     (sched.Ctx.Window) remains — the signal BLEST thresholds by hand.
//
// The wait table scores the BLEST-style "send nothing now" action,
// indexed by pressure class alone.
const (
	// NRTT: 0 = no sample yet, 1 = fastest (≤ RTTNear × min),
	// 2 = moderate (≤ RTTFar × min), 3 = slow (> RTTFar × min).
	NRTT = 4
	// NHeadroom: 0 = nearly full window (≤ ¼ free), 1 = half free,
	// 2 = mostly free (> ½).
	NHeadroom = 3
	// NPressure: 0 = < PressTight segments of headroom, 1 = < PressLow,
	// 2 = < PressMid, 3 = unconstrained.
	NPressure = 4
	// NActions is the size of the per-candidate value table.
	NActions = NRTT * NHeadroom * NPressure
	// NWait is the size of the wait-action value table.
	NWait = NPressure
)

// Classifier thresholds (see the constants above). Exported so the
// docs, tests and DESIGN.md speak about the same numbers as the code.
const (
	RTTNear    = 1.15
	RTTFar     = 2.5
	PressTight = 4
	PressLow   = 16
	PressMid   = 64
)

// RTTClass buckets a candidate subflow's smoothed RTT against the
// minimum measured SRTT among sendable subflows (0 when none is
// measured). An unmeasured candidate is class 0 — distinct from slow,
// because probing an unmeasured path and parking data on a known-slow
// one are different decisions.
func RTTClass(srtt, minSRTT float64) int {
	if srtt <= 0 {
		return 0
	}
	if minSRTT <= 0 {
		return 1 // the only measured subflow is, trivially, the fastest
	}
	switch ratio := srtt / minSRTT; {
	case ratio <= RTTNear:
		return 1
	case ratio <= RTTFar:
		return 2
	default:
		return 3
	}
}

// HeadroomClass buckets the candidate's free congestion window (free =
// window − inflight) as a fraction of the window.
func HeadroomClass(free, window int64) int {
	if window < 1 {
		window = 1
	}
	switch {
	case free*4 <= window:
		return 0
	case free*2 <= window:
		return 1
	default:
		return 2
	}
}

// PressureClass buckets the connection-level flow-control headroom
// (sched.Ctx.Window): how many segments may still be assigned before
// the shared receive buffer binds.
func PressureClass(window int64) int {
	switch {
	case window < PressTight:
		return 0
	case window < PressLow:
		return 1
	case window < PressMid:
		return 2
	default:
		return 3
	}
}

// ActionIndex flattens an (RTT class, headroom class, pressure class)
// triple into the action-table index. Out-of-range classes panic: they
// are programming errors, not data.
func ActionIndex(rtt, headroom, pressure int) int {
	if rtt < 0 || rtt >= NRTT || headroom < 0 || headroom >= NHeadroom || pressure < 0 || pressure >= NPressure {
		panic(fmt.Sprintf("learn: feature classes out of range (%d, %d, %d)", rtt, headroom, pressure))
	}
	return (rtt*NHeadroom+headroom)*NPressure + pressure
}

// WaitIndex is the wait-table index for a pressure class.
func WaitIndex(pressure int) int {
	if pressure < 0 || pressure >= NPressure {
		panic(fmt.Sprintf("learn: pressure class out of range (%d)", pressure))
	}
	return pressure
}

// Model is a trained (or in-training) bandit policy: a value per action
// bucket, a value per wait bucket, and the usage counts the incremental
// update rule needs. Values are average normalized episode rewards —
// "episodes that picked subflows looking like this delivered r× the
// minrtt baseline" — so greedy argmax over candidate buckets prefers
// the bucket with the best track record.
type Model struct {
	// Corpus names the training corpus (provenance, serialized).
	Corpus string
	// Seed is the training base seed (provenance, serialized).
	Seed int64
	// Episodes is the number of training episodes applied.
	Episodes int64
	// Q and QN are the per-action-bucket value and usage count.
	Q  [NActions]float64
	QN [NActions]int64
	// W and WN are the per-wait-bucket value and usage count.
	W  [NWait]float64
	WN [NWait]int64
}

// Clone returns an independent copy (the trainer snapshots the policy
// at the start of each round so a round's episodes can run in
// parallel against a frozen view).
func (m *Model) Clone() *Model {
	c := *m
	return &c
}

// Episode accumulates one training episode's decisions: how many times
// each action bucket was picked and each wait bucket chosen. The
// explorer scheduler fills it; Update consumes it.
type Episode struct {
	Action [NActions]int64
	Wait   [NWait]int64
}

// Update folds one finished episode into the model: every bucket the
// episode used moves toward the episode's reward, weighted by how often
// the episode used it — the usage-weighted incremental mean
//
//	n[b] += uses;  q[b] += (reward − q[b]) · uses / n[b]
//
// so q[b] is exactly the usage-weighted average reward of all episodes
// that ever used bucket b. Buckets are applied in fixed index order and
// the rule touches no randomness, so training is deterministic given
// the episode sequence.
func (m *Model) Update(ep *Episode, reward float64) {
	for b := 0; b < NActions; b++ {
		if n := ep.Action[b]; n > 0 {
			m.QN[b] += n
			m.Q[b] += (reward - m.Q[b]) * float64(n) / float64(m.QN[b])
		}
	}
	for b := 0; b < NWait; b++ {
		if n := ep.Wait[b]; n > 0 {
			m.WN[b] += n
			m.W[b] += (reward - m.W[b]) * float64(n) / float64(m.WN[b])
		}
	}
	m.Episodes++
}

// modelVersion is the serialization format tag; bump it when the
// feature space or file shape changes incompatibly.
const modelVersion = "mptcp-bandit v1"

// Marshal renders the model in the versioned text format New("bandit")
// loads. The encoding is canonical: fixed header order, only buckets
// with a non-zero count or value, fixed index order, hex-float values
// (exact round-trip), and a trailing "end" line so truncation is
// detectable. Two equal models marshal to identical bytes.
func (m *Model) Marshal() []byte {
	var sb strings.Builder
	sb.WriteString(modelVersion + "\n")
	fmt.Fprintf(&sb, "corpus %s\n", m.Corpus)
	fmt.Fprintf(&sb, "seed %d\n", m.Seed)
	fmt.Fprintf(&sb, "episodes %d\n", m.Episodes)
	fmt.Fprintf(&sb, "dims %d %d %d\n", NRTT, NHeadroom, NPressure)
	for b := 0; b < NActions; b++ {
		if m.QN[b] != 0 || m.Q[b] != 0 {
			fmt.Fprintf(&sb, "q %d %d %s\n", b, m.QN[b], strconv.FormatFloat(m.Q[b], 'x', -1, 64))
		}
	}
	for b := 0; b < NWait; b++ {
		if m.WN[b] != 0 || m.W[b] != 0 {
			fmt.Fprintf(&sb, "w %d %d %s\n", b, m.WN[b], strconv.FormatFloat(m.W[b], 'x', -1, 64))
		}
	}
	sb.WriteString("end\n")
	return []byte(sb.String())
}

// Parse decodes a model serialized by Marshal. It never panics on bad
// input: corrupted, truncated or version-skewed bytes yield an error,
// which sched.New("bandit") surfaces to its caller.
func Parse(data []byte) (*Model, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != modelVersion {
		return nil, fmt.Errorf("learn: not a %q model file", modelVersion)
	}
	m := &Model{}
	i := 1
	// Fixed header: corpus, seed, episodes, dims.
	header := func(key string) (string, error) {
		if i >= len(lines) {
			return "", fmt.Errorf("learn: truncated model: missing %s header", key)
		}
		val, ok := strings.CutPrefix(lines[i], key+" ")
		if !ok {
			return "", fmt.Errorf("learn: model line %d: want %q header, got %q", i+1, key, lines[i])
		}
		i++
		return val, nil
	}
	corpus, err := header("corpus")
	if err != nil {
		return nil, err
	}
	m.Corpus = corpus
	seedS, err := header("seed")
	if err != nil {
		return nil, err
	}
	if m.Seed, err = strconv.ParseInt(seedS, 10, 64); err != nil {
		return nil, fmt.Errorf("learn: bad seed %q: %v", seedS, err)
	}
	epS, err := header("episodes")
	if err != nil {
		return nil, err
	}
	if m.Episodes, err = strconv.ParseInt(epS, 10, 64); err != nil {
		return nil, fmt.Errorf("learn: bad episodes %q: %v", epS, err)
	}
	dims, err := header("dims")
	if err != nil {
		return nil, err
	}
	if want := fmt.Sprintf("%d %d %d", NRTT, NHeadroom, NPressure); dims != want {
		return nil, fmt.Errorf("learn: model feature space %q does not match this build (%q)", dims, want)
	}
	// Table entries, then the end marker.
	done := false
	for ; i < len(lines); i++ {
		line := lines[i]
		if line == "" {
			continue // tolerate a trailing newline only
		}
		if done {
			return nil, fmt.Errorf("learn: model line %d: content after end marker", i+1)
		}
		if line == "end" {
			done = true
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 || (f[0] != "q" && f[0] != "w") {
			return nil, fmt.Errorf("learn: model line %d: malformed entry %q", i+1, line)
		}
		idx, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("learn: model line %d: bad index %q", i+1, f[1])
		}
		n, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("learn: model line %d: bad count %q", i+1, f[2])
		}
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil || v != v || v > 1e308 || v < -1e308 {
			return nil, fmt.Errorf("learn: model line %d: bad value %q", i+1, f[3])
		}
		switch f[0] {
		case "q":
			if idx < 0 || idx >= NActions {
				return nil, fmt.Errorf("learn: model line %d: q index %d out of range", i+1, idx)
			}
			m.Q[idx], m.QN[idx] = v, n
		case "w":
			if idx < 0 || idx >= NWait {
				return nil, fmt.Errorf("learn: model line %d: w index %d out of range", i+1, idx)
			}
			m.W[idx], m.WN[idx] = v, n
		}
	}
	if !done {
		return nil, fmt.Errorf("learn: truncated model: no end marker")
	}
	return m, nil
}
