package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func subs(cwnds ...float64) []Subflow {
	s := make([]Subflow, len(cwnds))
	for i, w := range cwnds {
		s[i] = Subflow{Cwnd: w, SSThresh: math.Inf(1), SRTT: 0.1}
	}
	return s
}

func withRTT(s []Subflow, rtts ...float64) []Subflow {
	for i := range s {
		s[i].SRTT = rtts[i]
	}
	return s
}

func TestRegularIsTCP(t *testing.T) {
	var alg Regular
	s := subs(10)
	if got := alg.Increase(s, 0); got != 0.1 {
		t.Errorf("increase = %v, want 1/10", got)
	}
	if got := alg.Decrease(s, 0); got != 5 {
		t.Errorf("decrease -> %v, want 5", got)
	}
}

func TestRegularFloor(t *testing.T) {
	var alg Regular
	s := subs(1.2)
	if got := alg.Decrease(s, 0); got != MinCwnd {
		t.Errorf("decrease -> %v, want floor %v", got, MinCwnd)
	}
}

func TestEWTCPWeighting(t *testing.T) {
	alg := EWTCP{} // default weight 1/n
	s := subs(10, 10)
	// weight 1/2 -> increase (1/4)/10
	if got := alg.Increase(s, 0); math.Abs(got-0.025) > 1e-12 {
		t.Errorf("increase = %v, want 0.025", got)
	}
	explicit := EWTCP{Weight: 0.5}
	if got := explicit.Increase(s, 0); math.Abs(got-0.025) > 1e-12 {
		t.Errorf("explicit weight increase = %v, want 0.025", got)
	}
}

func TestEWTCPSinglePathEqualsTCP(t *testing.T) {
	alg := EWTCP{}
	s := subs(20)
	if got, want := alg.Increase(s, 0), (Regular{}).Increase(s, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("single-path EWTCP increase = %v, want TCP's %v", got, want)
	}
}

func TestCoupledIncreaseUsesTotal(t *testing.T) {
	var alg Coupled
	s := subs(10, 30)
	if got := alg.Increase(s, 0); got != 1.0/40 {
		t.Errorf("increase = %v, want 1/40", got)
	}
	if got := alg.Increase(s, 1); got != 1.0/40 {
		t.Errorf("increase on other path = %v, want 1/40", got)
	}
}

func TestCoupledDecreaseTotalHalf(t *testing.T) {
	var alg Coupled
	s := subs(10, 30)
	// w_0 - w_total/2 = 10 - 20 < 1 -> floor
	if got := alg.Decrease(s, 0); got != MinCwnd {
		t.Errorf("decrease -> %v, want floor", got)
	}
	if got := alg.Decrease(s, 1); got != 10 {
		t.Errorf("decrease -> %v, want 30-20=10", got)
	}
}

// Regression for the skewed-window clamp: the intended decrement is
// w_total/2, but a subflow can only give up what it holds above the
// MinCwnd probe floor — the raw subtraction w_r − w_total/2 (deeply
// negative for a small subflow of a large connection) must never leak
// into the result, and the unclamped arithmetic must be exact whenever
// the subflow can absorb the full decrement.
func TestCoupledDecreaseClampSkewed(t *testing.T) {
	var alg Coupled
	// w_0 − w_total/2 = 2 − 321 = −319 raw: clamps to the probe floor.
	s := subs(2, 640)
	if got := alg.Decrease(s, 0); got != MinCwnd {
		t.Errorf("skewed decrease -> %v, want probe floor %v", got, MinCwnd)
	}
	// The big subflow absorbs the full halving decrement exactly.
	if got, want := alg.Decrease(s, 1), 640-321.0; got != want {
		t.Errorf("decrease -> %v, want %v", got, want)
	}
	prop := func(raw []uint16, rsel uint8) bool {
		n := len(raw)
		if n == 0 || n > 8 {
			return true
		}
		s := make([]Subflow, n)
		for i := range s {
			s[i] = Subflow{Cwnd: 0.5 + float64(raw[i]%4000)/3, SRTT: 0.1}
		}
		r := int(rsel) % n
		got := alg.Decrease(s, r)
		if got < MinCwnd || math.IsNaN(got) {
			return false
		}
		// Never larger than the pre-loss window (no jump up on loss).
		if got > math.Max(s[r].Cwnd, MinCwnd)+1e-9 {
			return false
		}
		// When w_r − w_total/2 stays above the floor, the paper's
		// arithmetic applies unmodified.
		if exact := s[r].Cwnd - TotalCwnd(s)/2; exact >= MinCwnd && math.Abs(got-exact) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestCoupledSinglePathReducesToTCP(t *testing.T) {
	var alg Coupled
	s := subs(16)
	if got := alg.Increase(s, 0); got != 1.0/16 {
		t.Errorf("increase = %v, want 1/16", got)
	}
	if got := alg.Decrease(s, 0); got != 8 {
		t.Errorf("decrease -> %v, want 8", got)
	}
}

func TestSemiCoupled(t *testing.T) {
	alg := SemiCoupled{} // a = 1/n
	s := subs(10, 10)
	if got := alg.Increase(s, 0); math.Abs(got-0.5/20) > 1e-12 {
		t.Errorf("increase = %v, want 0.025", got)
	}
	if got := alg.Decrease(s, 0); got != 5 {
		t.Errorf("decrease -> %v, want w_r/2 = 5", got)
	}
}

func TestMPTCPSinglePathReducesToTCP(t *testing.T) {
	alg := &MPTCP{PerAck: true}
	for _, w := range []float64{1, 2, 10, 100.5} {
		s := subs(w)
		want := 1 / w
		if got := alg.Increase(s, 0); math.Abs(got-want) > 1e-12 {
			t.Errorf("w=%v: increase = %v, want %v", w, got, want)
		}
	}
}

func TestMPTCPEqualRTTEqualWindows(t *testing.T) {
	// With equal windows and RTTs, eq. (1) minimises at the full set:
	// (w/RTT²)/(n·w/RTT)² = 1/(n²w).
	alg := &MPTCP{PerAck: true}
	s := subs(10, 10)
	want := 1.0 / (4 * 10)
	if got := alg.Increase(s, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("increase = %v, want %v", got, want)
	}
}

func TestMPTCPCapAtSingletonSet(t *testing.T) {
	// A subflow with tiny window but huge RTT: the singleton/prefix sets
	// cap its increase at 1/w_r.
	alg := &MPTCP{PerAck: true}
	s := withRTT(subs(2, 100), 1.0, 0.01)
	inc := alg.Increase(s, 0)
	if inc > 1.0/2+1e-12 {
		t.Errorf("increase %v exceeds 1/w_r cap", inc)
	}
}

func TestMPTCPIncreaseMatchesBruteForce(t *testing.T) {
	// The appendix claims the min over all subsets S ∋ r equals the min
	// over prefix sets of the √w/RTT ordering. Verify against brute
	// force over all 2^n subsets.
	brute := func(s []Subflow, r int) float64 {
		n := len(s)
		best := math.Inf(1)
		for mask := 1; mask < 1<<n; mask++ {
			if mask&(1<<r) == 0 {
				continue
			}
			num := 0.0
			den := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) == 0 {
					continue
				}
				w := s[i].Cwnd
				if w < MinCwnd {
					w = MinCwnd
				}
				rtt := s[i].SRTT
				num = math.Max(num, w/(rtt*rtt))
				den += w / rtt
			}
			if v := num / (den * den); v < best {
				best = v
			}
		}
		return best
	}
	alg := &MPTCP{PerAck: true}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(5)
		s := make([]Subflow, n)
		for i := range s {
			s[i] = Subflow{
				Cwnd: 1 + rng.Float64()*99,
				SRTT: 0.01 + rng.Float64()*0.99,
			}
		}
		for r := 0; r < n; r++ {
			got := alg.Increase(s, r)
			want := brute(s, r)
			if math.Abs(got-want) > 1e-9*want {
				t.Fatalf("trial %d subflow %d: linear search %v != brute force %v (state %+v)",
					trial, r, got, want, s)
			}
		}
	}
}

func TestMPTCPCachedMatchesPerAck(t *testing.T) {
	cached := &MPTCP{}
	perAck := &MPTCP{PerAck: true}
	s := withRTT(subs(10, 20), 0.05, 0.2)
	for r := 0; r < 2; r++ {
		if got, want := cached.Increase(s, r), perAck.Increase(s, r); math.Abs(got-want) > 1e-12 {
			t.Errorf("cached increase differs: %v vs %v", got, want)
		}
	}
	// Small window drift (< 1 packet total) keeps the cache.
	s[0].Cwnd += 0.3
	before := cached.Increase(s, 0)
	s[0].Cwnd += 0.3
	if got := cached.Increase(s, 0); got != before {
		t.Error("cache should not recompute for sub-packet growth")
	}
	// A full packet of growth triggers recomputation.
	s[0].Cwnd += 1.0
	if got, want := cached.Increase(s, 0), perAck.Increase(s, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("after growth: cached %v vs fresh %v", got, want)
	}
}

func TestMPTCPDecreaseInvalidatesCache(t *testing.T) {
	cached := &MPTCP{}
	s := withRTT(subs(10, 20), 0.05, 0.2)
	cached.Increase(s, 0)
	s[1].Cwnd = cached.Decrease(s, 1)
	perAck := &MPTCP{PerAck: true}
	if got, want := cached.Increase(s, 0), perAck.Increase(s, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("after loss: cached %v vs fresh %v", got, want)
	}
}

func TestMPTCPNoRTTSampleFallback(t *testing.T) {
	alg := &MPTCP{PerAck: true}
	s := []Subflow{{Cwnd: 10}, {Cwnd: 10}}
	inc := alg.Increase(s, 0)
	if math.IsNaN(inc) || math.IsInf(inc, 0) || inc <= 0 {
		t.Errorf("increase with no RTT samples = %v", inc)
	}
}

// Property: every algorithm's increase is positive and finite, and its
// decrease is within [MinCwnd, w_r] — windows never jump up on loss.
func TestIncreaseDecreaseSanityProperty(t *testing.T) {
	algs := []Algorithm{Regular{}, EWTCP{}, Coupled{}, SemiCoupled{}, &MPTCP{PerAck: true}, &MPTCP{}}
	prop := func(raw []uint16, rttRaw []uint16, rsel uint8) bool {
		n := len(raw)
		if n == 0 || n > 8 {
			return true
		}
		s := make([]Subflow, n)
		for i := range s {
			s[i] = Subflow{
				Cwnd: 1 + float64(raw[i]%2000)/7,
				SRTT: 0.001 + float64(rttRaw[i%max(1, len(rttRaw))]%2000)/1000,
			}
		}
		r := int(rsel) % n
		for _, alg := range algs {
			inc := alg.Increase(s, r)
			if !(inc > 0) || math.IsInf(inc, 0) || math.IsNaN(inc) {
				return false
			}
			dec := alg.Decrease(s, r)
			if dec < MinCwnd || dec > math.Max(s[r].Cwnd, MinCwnd)+1e-9 || math.IsNaN(dec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: MPTCP's increase never exceeds 1/w_r (§2.5's cap, via the
// singleton subset in eq. (1)) and never exceeds REGULAR TCP's increase.
func TestMPTCPCapProperty(t *testing.T) {
	alg := &MPTCP{PerAck: true}
	prop := func(wRaw, rttRaw []uint16, rsel uint8) bool {
		n := len(wRaw)
		if n == 0 || n > 8 || len(rttRaw) < n {
			return true
		}
		s := make([]Subflow, n)
		for i := range s {
			s[i] = Subflow{
				Cwnd: 1 + float64(wRaw[i]%5000)/11,
				SRTT: 0.001 + float64(rttRaw[i]%3000)/1000,
			}
		}
		r := int(rsel) % n
		inc := alg.Increase(s, r)
		w := s[r].Cwnd
		if w < MinCwnd {
			w = MinCwnd
		}
		return inc <= 1/w+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: MPTCP's increase is monotone in the sense that adding an extra
// path never raises the increase of an existing path (more coupling can
// only damp aggressiveness).
func TestMPTCPExtraPathDampsProperty(t *testing.T) {
	alg := &MPTCP{PerAck: true}
	prop := func(wRaw, rttRaw []uint16, extraW, extraRTT uint16) bool {
		n := len(wRaw)
		if n == 0 || n > 6 || len(rttRaw) < n {
			return true
		}
		s := make([]Subflow, n)
		for i := range s {
			s[i] = Subflow{
				Cwnd: 1 + float64(wRaw[i]%5000)/11,
				SRTT: 0.001 + float64(rttRaw[i]%3000)/1000,
			}
		}
		base := alg.Increase(s, 0)
		s2 := append(append([]Subflow{}, s...), Subflow{
			Cwnd: 1 + float64(extraW%5000)/11,
			SRTT: 0.001 + float64(extraRTT%3000)/1000,
		})
		withExtra := alg.Increase(s2, 0)
		return withExtra <= base+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkMPTCPIncreasePerAck(b *testing.B) {
	alg := &MPTCP{PerAck: true}
	s := withRTT(subs(10, 20, 30, 40, 15, 25, 35, 45), 0.01, 0.02, 0.05, 0.1, 0.015, 0.025, 0.04, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Increase(s, i%8)
	}
}

func BenchmarkMPTCPIncreaseCached(b *testing.B) {
	alg := &MPTCP{}
	s := withRTT(subs(10, 20, 30, 40, 15, 25, 35, 45), 0.01, 0.02, 0.05, 0.1, 0.015, 0.025, 0.04, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Increase(s, i%8)
	}
}
