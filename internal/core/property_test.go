package core

import (
	"math"
	"math/rand"
	"testing"
)

// aimdEquilibrium drives alg through a simple per-round AIMD loss model
// and returns each subflow's time-averaged window over the second half
// of the run. Per round and per subflow, a loss event arrives with
// probability 1-(1-p_r)^w_r (at least one of the w_r packets in flight
// is dropped); on loss the window takes alg.Decrease, otherwise it earns
// w_r per-ACK increases. The seeded generator makes the trajectory
// deterministic, so thresholds asserted against it are stable.
func aimdEquilibrium(alg Algorithm, loss, rtt []float64, rounds int, seed int64) []float64 {
	s := make([]Subflow, len(loss))
	for i := range s {
		s[i] = Subflow{Cwnd: 1, SSThresh: math.Inf(1), SRTT: rtt[i]}
	}
	rng := rand.New(rand.NewSource(seed))
	avg := make([]float64, len(s))
	samples := 0
	for round := 0; round < rounds; round++ {
		for r := range s {
			w := int(s[r].Cwnd)
			if w < 1 {
				w = 1
			}
			if rng.Float64() < 1-math.Pow(1-loss[r], float64(w)) {
				s[r].Cwnd = alg.Decrease(s, r)
			} else {
				for k := 0; k < w; k++ {
					s[r].Cwnd += alg.Increase(s, r)
				}
			}
		}
		if round >= rounds/2 {
			for r := range s {
				avg[r] += s[r].Cwnd
			}
			samples++
		}
	}
	for r := range avg {
		avg[r] /= float64(samples)
	}
	return avg
}

// TestAlgorithmProperties checks the paper's defining behavioural claim
// for each algorithm, one subtest per algorithm: MPTCP's increase obeys
// the 1/w_r cap of eq. (1) (§2.5), COUPLED moves its window onto the
// least-congested path (§2.2), and EWTCP splits evenly across symmetric
// paths (§2.1).
func TestAlgorithmProperties(t *testing.T) {
	tests := []struct {
		name  string
		check func(t *testing.T)
	}{
		{
			name: "MPTCP/increase-never-exceeds-1-over-wr",
			check: func(t *testing.T) {
				rng := rand.New(rand.NewSource(11))
				for _, alg := range []*MPTCP{{PerAck: true}, {}} {
					for trial := 0; trial < 500; trial++ {
						n := 1 + rng.Intn(4)
						s := make([]Subflow, n)
						for i := range s {
							s[i] = Subflow{
								Cwnd: 0.5 + rng.Float64()*200,
								SRTT: 0.005 + rng.Float64()*0.8,
							}
						}
						for r := 0; r < n; r++ {
							inc := alg.Increase(s, r)
							w := s[r].Cwnd
							if w < MinCwnd {
								w = MinCwnd
							}
							if inc > 1/w+1e-12 {
								t.Fatalf("PerAck=%v trial %d subflow %d: increase %v exceeds cap 1/w=%v (state %+v)",
									alg.PerAck, trial, r, inc, 1/w, s)
							}
						}
					}
				}
			},
		},
		{
			name: "COUPLED/shifts-window-to-least-congested-path",
			check: func(t *testing.T) {
				// Path 0 is 10× less congested than path 1; at COUPLED's
				// equilibrium essentially all window sits on path 0, with
				// path 1 pinned near the MinCwnd probe floor (§2.4).
				avg := aimdEquilibrium(Coupled{}, []float64{0.002, 0.02}, []float64{0.1, 0.1}, 40000, 5)
				if avg[0] < 4*avg[1] {
					t.Errorf("windows (%.2f, %.2f): least-congested path should dominate", avg[0], avg[1])
				}
				// Flipping the loss rates must flip the allocation: the
				// shift tracks congestion, not path index.
				flipped := aimdEquilibrium(Coupled{}, []float64{0.02, 0.002}, []float64{0.1, 0.1}, 40000, 5)
				if flipped[1] < 4*flipped[0] {
					t.Errorf("flipped windows (%.2f, %.2f): allocation did not follow congestion", flipped[0], flipped[1])
				}
			},
		},
		{
			name: "EWTCP/splits-equally-on-symmetric-paths",
			check: func(t *testing.T) {
				avg := aimdEquilibrium(EWTCP{}, []float64{0.01, 0.01}, []float64{0.1, 0.1}, 40000, 7)
				ratio := avg[0] / avg[1]
				if ratio < 0.75 || ratio > 1/0.75 {
					t.Errorf("windows (%.2f, %.2f), ratio %.2f: symmetric paths should split evenly", avg[0], avg[1], ratio)
				}
				// And each path carries a real share, not a probe floor.
				for r, w := range avg {
					if w < 2*MinCwnd {
						t.Errorf("path %d window %.2f stuck at the floor", r, w)
					}
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, tc.check)
	}
}
