// Package core implements the multipath congestion-control algorithms of
// "Design, implementation and evaluation of congestion control for
// multipath TCP" (Wischik, Raiciu, Greenhalgh, Handley — NSDI 2011):
//
//   - REGULAR (uncoupled): independent TCP NewReno on every subflow,
//   - EWTCP (§2.1): equally-weighted TCP,
//   - COUPLED (§2.2): fully coupled increase/decrease, moves all traffic
//     to the least-congested path,
//   - SEMICOUPLED (§2.4): coupled increase, per-subflow decrease,
//   - MPTCP (§2, eq. (1)): SEMICOUPLED with RTT compensation and the
//     1/w_r cap, the paper's final algorithm (standardised as RFC 6356).
//
// The algorithms are pure window arithmetic with no dependency on the
// simulator or on real sockets, so the identical code drives both the
// packet-level simulation (internal/tcpsim, internal/mptcpsim) and the
// userspace UDP protocol stack (internal/mptcpnet).
//
// Windows are measured in packets, as in the paper. An Algorithm only
// governs congestion avoidance; slow start, fast recovery and timeouts are
// the transport's business (they are identical across the algorithms
// evaluated in the paper).
//
// Construction by name lives in internal/cc: every algorithm — these
// five and the Linux-kernel successors implemented there — registers a
// named constructor plus metadata in that package's registry, and the
// optional hook interfaces (RTT samples, per-loss-event state) extending
// this package's Algorithm contract are defined there too.
package core

import (
	"math"
	"sort"
)

// MinCwnd is the floor on any subflow's congestion window, in packets.
// §2.4: "our implementation of COUPLED keeps window sizes ≥ 1pkt, so it
// always does some probing". We apply the same floor to every algorithm.
const MinCwnd = 1.0

// DefaultSRTT is used for a subflow that has no RTT sample yet (e.g. in
// the first round trip). MPTCP's increase formula needs an RTT for every
// subflow; before the first measurement the transport has nothing better.
const DefaultSRTT = 0.1 // seconds

// Subflow is the congestion state of one subflow as seen by an Algorithm.
type Subflow struct {
	Cwnd     float64 // congestion window, packets
	SSThresh float64 // slow-start threshold, packets
	SRTT     float64 // smoothed RTT, seconds; 0 means no sample yet
}

func (s *Subflow) rtt() float64 {
	if s.SRTT > 0 {
		return s.SRTT
	}
	return DefaultSRTT
}

// Algorithm computes congestion-avoidance window adjustments for the set
// of subflows of one connection. Implementations may keep scratch state
// and are not safe for concurrent use by multiple goroutines.
type Algorithm interface {
	// Name returns the algorithm's name as used in the paper.
	Name() string
	// Increase returns the window increment, in packets, applied to
	// subflow r upon one ACKed packet during congestion avoidance.
	Increase(subs []Subflow, r int) float64
	// Decrease returns the new congestion window for subflow r after a
	// loss event on r (the multiplicative-decrease step). The result is
	// already floored at MinCwnd.
	Decrease(subs []Subflow, r int) float64
}

// TotalCwnd returns the sum of the subflow windows ("w_total").
func TotalCwnd(subs []Subflow) float64 {
	t := 0.0
	for i := range subs {
		t += subs[i].Cwnd
	}
	return t
}

func floorMin(w float64) float64 {
	if w < MinCwnd {
		return MinCwnd
	}
	return w
}

// Regular implements uncoupled NewReno on every subflow: increase 1/w_r
// per ACK, halve on loss. With more than one subflow this is the unfair
// strawman of §2.1; with a single subflow it is the paper's REGULAR TCP
// and the single-path baseline of every experiment.
type Regular struct{}

func (Regular) Name() string { return "REGULAR" }

func (Regular) Increase(subs []Subflow, r int) float64 {
	return 1 / floorMin(subs[r].Cwnd)
}

func (Regular) Decrease(subs []Subflow, r int) float64 {
	return floorMin(subs[r].Cwnd / 2)
}

// EWTCP implements the equally-weighted TCP of §2.1: each subflow runs a
// weighted AIMD such that its equilibrium window is Weight × the window a
// regular TCP would achieve at the same loss rate. With Weight = 1/n the
// connection takes one regular TCP's share through a shared bottleneck
// and, per §2.3, achieves the arithmetic mean of the single-path rates on
// heterogeneous paths.
//
// Note on the paper's text: §2.1 prints the increase as "a/w_r with
// a = 1/√n", but its own worked examples (§2.1 fairness, §2.3's
// "(707+141)/2 = 424 pkt/s") require the equilibrium window on each path
// to be exactly 1/n of a regular TCP's, which with halving decrease needs
// a per-ACK increase of (1/n)²/w_r. We implement the behaviour the paper
// evaluates: increase Weight²/w_r, so that w_r = Weight·√(2/p_r).
type EWTCP struct {
	// Weight is the per-subflow weight; if zero, 1/n is used, matching
	// the paper's a = 1/√n convention (equilibrium window ∝ a²).
	Weight float64
}

func (EWTCP) Name() string { return "EWTCP" }

func (e EWTCP) weight(n int) float64 {
	if e.Weight > 0 {
		return e.Weight
	}
	return 1 / float64(n)
}

func (e EWTCP) Increase(subs []Subflow, r int) float64 {
	w := e.weight(len(subs))
	return w * w / floorMin(subs[r].Cwnd)
}

func (EWTCP) Decrease(subs []Subflow, r int) float64 {
	return floorMin(subs[r].Cwnd / 2)
}

// Coupled implements the fully coupled algorithm of §2.2, adapted from
// Kelly & Voice and Han et al.: increase 1/w_total per ACK on any
// subflow, decrease w_total/2 on any loss. At equilibrium only the
// least-congested paths carry traffic, so COUPLED balances congestion
// perfectly (Fig. 8) but gets trapped when path qualities change (§2.4,
// Fig. 5) and collapses onto high-RTT paths under RTT mismatch (§2.3).
type Coupled struct{}

func (Coupled) Name() string { return "COUPLED" }

func (Coupled) Increase(subs []Subflow, r int) float64 {
	return 1 / floorMin(TotalCwnd(subs))
}

func (Coupled) Decrease(subs []Subflow, r int) float64 {
	// The loss halves the aggregate: the intended decrement, w_total/2,
	// is spread across the subflows by landing on whichever subflow the
	// loss hits. With skewed windows the raw subtraction w_r − w_total/2
	// can be deeply negative, so the decrement is clamped to what
	// subflow r can actually give up before reaching the MinCwnd probe
	// floor (§2.4: "always does some probing"); the remainder of the
	// halving falls on the subflows the next losses hit. The result is
	// max(MinCwnd, w_r − w_total/2), written out so the clamp semantics
	// are explicit and pinned by TestCoupledDecreaseClampSkewed.
	dec := TotalCwnd(subs) / 2
	if room := subs[r].Cwnd - MinCwnd; dec > room {
		dec = room
	}
	if dec < 0 {
		dec = 0
	}
	return floorMin(subs[r].Cwnd - dec)
}

// SemiCoupled implements §2.4's compromise: increase a/w_total per ACK,
// halve w_r on loss. It keeps probe traffic on every path while still
// favouring the less congested ones; equilibrium splits windows in
// proportion to 1/p_r.
type SemiCoupled struct {
	// A is the aggressiveness constant. If zero, 1/n is used, which
	// makes the aggregate equal to one regular TCP when all paths have
	// equal loss rates and RTTs.
	A float64
}

func (SemiCoupled) Name() string { return "SEMICOUPLED" }

func (s SemiCoupled) a(n int) float64 {
	if s.A > 0 {
		return s.A
	}
	return 1 / float64(n)
}

func (s SemiCoupled) Increase(subs []Subflow, r int) float64 {
	return s.a(len(subs)) / floorMin(TotalCwnd(subs))
}

func (SemiCoupled) Decrease(subs []Subflow, r int) float64 {
	return floorMin(subs[r].Cwnd / 2)
}

// MPTCP is the paper's final algorithm (§2): upon each ACK on subflow r,
// increase w_r by
//
//	min over S ⊆ R, r ∈ S of   max_{s∈S} w_s/RTT_s²  /  (Σ_{s∈S} w_s/RTT_s)²
//
// and halve w_r on loss. The min over subsets embeds both the
// SEMICOUPLED-style preference for less-congested paths and the 1/w_r cap
// of §2.5 (the singleton S = {r} bounds the increase by 1/w_r), and the
// RTT terms implement §2.5's RTT compensation, so the connection takes at
// least as much as the best single-path TCP (goal (3)) and no more than a
// single-path TCP on any bottleneck (goal (4)).
//
// Following the appendix, the minimum is found with a linear search: order
// subflows by √w_s/RTT_s ascending; then only the "prefix" sets
// {1..u} for u ≥ position(r) can attain the minimum.
type MPTCP struct {
	// PerAck, if true, recomputes the increase on every call. If false
	// (the default), the increase is cached and recomputed only when the
	// total window has grown by at least one packet since the last
	// computation — the optimisation described in §2: "we compute the
	// increase parameter only when the congestion windows grow to
	// accommodate one more packet, rather than every ACK".
	PerAck bool

	// scratch state (single connection, single goroutine).
	ord        []int
	cached     []float64
	cacheTotal float64
	cacheN     int
}

func (*MPTCP) Name() string { return "MPTCP" }

// rawIncrease computes eq. (1) for subflow r by the appendix's linear
// search.
func (m *MPTCP) rawIncrease(subs []Subflow, r int) float64 {
	n := len(subs)
	if n == 1 {
		return 1 / floorMin(subs[0].Cwnd)
	}
	if cap(m.ord) < n {
		m.ord = make([]int, n)
	}
	ord := m.ord[:n]
	for i := range ord {
		ord[i] = i
	}
	// Ascending √w/RTT ⇔ ascending w/RTT².
	key := func(i int) float64 {
		s := &subs[i]
		rtt := s.rtt()
		return floorMin(s.Cwnd) / (rtt * rtt)
	}
	sort.Slice(ord, func(a, b int) bool { return key(ord[a]) < key(ord[b]) })

	pos := 0
	for i, idx := range ord {
		if idx == r {
			pos = i
			break
		}
	}
	best := math.Inf(1)
	sum := 0.0
	for u := 0; u < n; u++ {
		s := &subs[ord[u]]
		w := floorMin(s.Cwnd)
		rtt := s.rtt()
		sum += w / rtt
		if u < pos {
			continue
		}
		cand := (w / (rtt * rtt)) / (sum * sum)
		if cand < best {
			best = cand
		}
	}
	return best
}

func (m *MPTCP) Increase(subs []Subflow, r int) float64 {
	if m.PerAck {
		return m.rawIncrease(subs, r)
	}
	n := len(subs)
	total := TotalCwnd(subs)
	if m.cacheN != n || total >= m.cacheTotal+1 || total < m.cacheTotal-1 {
		if cap(m.cached) < n {
			m.cached = make([]float64, n)
		}
		m.cached = m.cached[:n]
		for i := 0; i < n; i++ {
			m.cached[i] = m.rawIncrease(subs, i)
		}
		m.cacheTotal = total
		m.cacheN = n
	}
	return m.cached[r]
}

func (m *MPTCP) Decrease(subs []Subflow, r int) float64 {
	// Window state changed: invalidate the cache.
	m.cacheN = 0
	return floorMin(subs[r].Cwnd / 2)
}
