package metrics

import (
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory
// using the P² algorithm (Jain & Chlamtac, "The P² Algorithm for
// Dynamic Calculation of Quantiles and Histograms Without Storing
// Observations", CACM 1985): five markers track the minimum, the
// target quantile, the midpoints and the maximum, and each observation
// nudges the inner markers toward their ideal positions with a
// piecewise-parabolic height update. The estimator is deterministic —
// same observation sequence, same estimate — so it composes with the
// repo's bit-identical-results contract, and it lets -analyze digest
// traces and grids of any size without holding every sample.
type P2Quantile struct {
	p     float64    // target quantile in (0,1)
	n     int64      // observations seen
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments per observation
	init  []float64  // first five observations, before the markers exist
}

// NewP2Quantile returns an estimator for quantile p in (0,1), e.g. 0.95.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("metrics: P² quantile must be in (0,1)")
	}
	return &P2Quantile{
		p:     p,
		dwant: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
		init:  make([]float64, 0, 5),
	}
}

// Add folds one observation into the estimate.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if len(e.init) < 5 {
		// Keep the buffered prefix sorted as it grows (one insertion-sort
		// step), so Value reads the order statistic in place instead of
		// copying and re-sorting on every call.
		i := sort.SearchFloat64s(e.init, x)
		e.init = append(e.init, 0)
		copy(e.init[i+1:], e.init[i:len(e.init)-1])
		e.init[i] = x
		if len(e.init) == 5 {
			copy(e.q[:], e.init)
			e.pos = [5]float64{1, 2, 3, 4, 5}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}

	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.dwant[i]
	}

	// Nudge each inner marker toward its desired position.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sgn := 1.0
			if d < 0 {
				sgn = -1.0
			}
			// Piecewise-parabolic (P²) height prediction; fall back to
			// linear interpolation when it would break monotonicity.
			qp := e.parabolic(i, sgn)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, sgn)
			}
			e.pos[i] += sgn
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic of what has
// been seen (0 when empty). It never allocates: the buffered prefix is
// kept sorted by Add.
func (e *P2Quantile) Value() float64 {
	if e.n >= 5 {
		return e.q[2]
	}
	if len(e.init) == 0 {
		return 0
	}
	idx := int(math.Ceil(e.p*float64(len(e.init)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.init[idx]
}

// N returns the number of observations folded in.
func (e *P2Quantile) N() int64 { return e.n }

// Merge folds estimator o's state into e, for combining per-shard
// estimates into a cell total. P² keeps no samples, so an exact merge
// is impossible in general; instead o is replayed into e as synthetic
// observations drawn from o's piecewise-linear inverse CDF (the five
// markers define cumulative fractions (pos[i]-1)/(n-1) at heights
// q[i]), one sample per original observation at the mid-rank points
// u = (k+0.5)/n. When o has fewer than five observations its buffered
// exact values are replayed verbatim (in ascending order — Add keeps
// the buffer sorted). The merge is deterministic — same inputs, same
// result — and o is left untouched.
func (e *P2Quantile) Merge(o *P2Quantile) {
	if o == nil || o.n == 0 {
		return
	}
	if o.n < 5 {
		for _, x := range o.init {
			e.Add(x)
		}
		return
	}
	// Cumulative fraction reached at each marker of o.
	var frac [5]float64
	for i := range frac {
		frac[i] = (o.pos[i] - 1) / float64(o.n-1)
	}
	for k := int64(0); k < o.n; k++ {
		u := (float64(k) + 0.5) / float64(o.n)
		e.Add(invCDF(u, frac, o.q))
	}
}

// invCDF linearly interpolates the piecewise-linear inverse CDF defined
// by cumulative fractions frac (ascending, frac[0]=0, frac[4]=1) and
// heights q.
func invCDF(u float64, frac, q [5]float64) float64 {
	if u <= frac[0] {
		return q[0]
	}
	for i := 0; i < 4; i++ {
		if u <= frac[i+1] {
			span := frac[i+1] - frac[i]
			if span <= 0 {
				return q[i+1]
			}
			t := (u - frac[i]) / span
			return q[i] + t*(q[i+1]-q[i])
		}
	}
	return q[4]
}

// Summary is the streaming aggregate -analyze reports per metric: count,
// mean/stddev (Welford's single-pass update), extremes, and P² estimates
// of the median and tail quantiles. Memory is O(1) per metric regardless
// of how many cell records or trace events feed it. The zero value is
// not usable; construct with NewSummary.
type Summary struct {
	n             int64
	mean, m2      float64
	min, max      float64
	p50, p95, p99 *P2Quantile
}

// NewSummary returns an empty streaming summary.
func NewSummary() *Summary {
	return &Summary{
		min: math.Inf(1), max: math.Inf(-1),
		p50: NewP2Quantile(0.50),
		p95: NewP2Quantile(0.95),
		p99: NewP2Quantile(0.99),
	}
}

// Add folds one observation in.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.p50.Add(x)
	s.p95.Add(x)
	s.p99.Add(x)
}

// Merge folds summary o into s, combining per-shard aggregates into a
// cell total. Count, mean and m2 merge exactly (the parallel-variance
// update of Chan, Golub & LeVeque: the cross-term d²·n_a·n_b/n adds the
// between-stream contribution), as do min and max; the quantile
// estimators merge approximately via P2Quantile.Merge. o is left
// untouched. Merging in a fixed order keeps results deterministic.
func (s *Summary) Merge(o *Summary) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.mean, s.m2, s.min, s.max = o.n, o.mean, o.m2, o.min, o.max
	} else {
		d := o.mean - s.mean
		n := s.n + o.n
		s.mean += d * float64(o.n) / float64(n)
		s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
		s.n = n
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.p50.Merge(o.p50)
	s.p95.Merge(o.p95)
	s.p99.Merge(o.p99)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Stddev returns the population standard deviation (0 for n < 2).
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// Min returns the smallest observation, or NaN when the summary is
// empty: a genuine 0 observation and "no observations" must stay
// distinguishable (renderers show NaN as "-", JSONL emitters drop it).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN when the summary is
// empty — same contract as Min.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// P50 returns the streaming median estimate.
func (s *Summary) P50() float64 { return s.p50.Value() }

// P95 returns the streaming 95th-percentile estimate.
func (s *Summary) P95() float64 { return s.p95.Value() }

// P99 returns the streaming 99th-percentile estimate.
func (s *Summary) P99() float64 { return s.p99.Value() }
