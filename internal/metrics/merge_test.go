package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestSummaryMergeExactMoments: splitting a stream across shards and
// merging must reproduce the single-stream count, mean, variance and
// extremes exactly (up to float round-off) — the Welford/Chan combine
// is algebraically exact, unlike the quantile part.
func TestSummaryMergeExactMoments(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7, 16} {
		r := rand.New(rand.NewSource(5))
		single := NewSummary()
		parts := make([]*Summary, shards)
		for i := range parts {
			parts[i] = NewSummary()
		}
		for i := 0; i < 20000; i++ {
			x := 100 + 15*r.NormFloat64()
			single.Add(x)
			parts[i%shards].Add(x)
		}
		merged := NewSummary()
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.N() != single.N() {
			t.Fatalf("shards=%d: N %d != %d", shards, merged.N(), single.N())
		}
		if d := math.Abs(merged.Mean() - single.Mean()); d > 1e-9*math.Abs(single.Mean()) {
			t.Errorf("shards=%d: mean %v != %v", shards, merged.Mean(), single.Mean())
		}
		if d := math.Abs(merged.Stddev() - single.Stddev()); d > 1e-9*single.Stddev() {
			t.Errorf("shards=%d: stddev %v != %v", shards, merged.Stddev(), single.Stddev())
		}
		if merged.Min() != single.Min() || merged.Max() != single.Max() {
			t.Errorf("shards=%d: extremes (%v,%v) != (%v,%v)",
				shards, merged.Min(), merged.Max(), single.Min(), single.Max())
		}
	}
}

// TestSummaryMergeQuantiles: merged quantile estimates must land close
// to the exact batch percentile — the P² merge replays the shard's
// piecewise-linear inverse CDF, so it is approximate, but for smooth
// distributions the error stays within a few percent of the spread.
func TestSummaryMergeQuantiles(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	parts := make([]*Summary, 8)
	for i := range parts {
		parts[i] = NewSummary()
	}
	xs := make([]float64, 0, 40000)
	for i := 0; i < 40000; i++ {
		x := 50 + 10*r.NormFloat64()
		parts[i%len(parts)].Add(x)
		xs = append(xs, x)
	}
	merged := NewSummary()
	for _, p := range parts {
		merged.Merge(p)
	}
	spread := Percentile(xs, 99) - Percentile(xs, 1)
	for _, q := range []struct {
		got, want float64
		name      string
	}{
		{merged.P50(), Percentile(xs, 50), "p50"},
		{merged.P95(), Percentile(xs, 95), "p95"},
		{merged.P99(), Percentile(xs, 99), "p99"},
	} {
		if math.Abs(q.got-q.want) > 0.05*spread {
			t.Errorf("%s: merged %v, exact %v (spread %v)", q.name, q.got, q.want, spread)
		}
	}
}

// TestSummaryMergeSmall: shards with fewer than five observations hold
// their exact values, so merging them must be exact end to end.
func TestSummaryMergeSmall(t *testing.T) {
	a, b := NewSummary(), NewSummary()
	for _, x := range []float64{3, 1} {
		a.Add(x)
	}
	for _, x := range []float64{4, 1, 5} {
		b.Add(x)
	}
	m := NewSummary()
	m.Merge(a)
	m.Merge(b)
	single := NewSummary()
	for _, x := range []float64{3, 1, 4, 1, 5} {
		single.Add(x)
	}
	if m.N() != 5 || m.Min() != 1 || m.Max() != 5 {
		t.Fatalf("merged n=%d min=%v max=%v", m.N(), m.Min(), m.Max())
	}
	if math.Abs(m.Mean()-single.Mean()) > 1e-12 {
		t.Fatalf("mean %v != %v", m.Mean(), single.Mean())
	}
	if m.P50() != single.P50() {
		t.Fatalf("p50 %v != %v (small shards replay exact values, so the merge must match)", m.P50(), single.P50())
	}
}

// TestSummaryMergeEmptyAndNil: merging empty or nil summaries is a
// no-op in both directions.
func TestSummaryMergeEmptyAndNil(t *testing.T) {
	s := NewSummary()
	s.Add(2)
	s.Merge(NewSummary())
	s.Merge(nil)
	if s.N() != 1 || s.Mean() != 2 || s.Min() != 2 || s.Max() != 2 {
		t.Fatalf("merge of empty perturbed state: n=%d mean=%v", s.N(), s.Mean())
	}
	e := NewSummary()
	e.Merge(s)
	if e.N() != 1 || e.Mean() != 2 || e.Min() != 2 || e.Max() != 2 {
		t.Fatalf("merge into empty lost state: n=%d mean=%v", e.N(), e.Mean())
	}
}

// TestSummaryMergeDeterministic: merging the same shard summaries in
// the same order twice gives bit-equal results.
func TestSummaryMergeDeterministic(t *testing.T) {
	build := func() float64 {
		r := rand.New(rand.NewSource(23))
		parts := make([]*Summary, 4)
		for i := range parts {
			parts[i] = NewSummary()
		}
		for i := 0; i < 8000; i++ {
			parts[i%4].Add(r.ExpFloat64() * 7)
		}
		m := NewSummary()
		for _, p := range parts {
			m.Merge(p)
		}
		return m.P95() + m.Mean() + m.Stddev()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("merge not deterministic: %v vs %v", a, b)
	}
}
