// Package metrics provides the measurement utilities the experiments in
// internal/exp build their tables and figures from:
//
//   - Series, a sampled time series with mean/warm-up helpers and a
//     Rate derivative (per-interval deltas);
//   - Sampler, which probes named quantities (cwnd, delivered packets,
//     link stats) on a fixed simulated-time tick, driving one
//     rearm-in-place sim.Timer so sampling stays off the allocation
//     hot path;
//   - conversions (ThroughputMbps, PktPerSec) pinned to the 1500-byte
//     data-packet size the paper's wired figures use;
//   - order statistics (Rank, Percentile) for the §4 distribution
//     plots, plus Sum/Mean/Stddev and the fixed-width Fmt used by the
//     rendered report tables.
//
// Everything is computation over values the caller snapshots; nothing
// here touches simulation state or global clocks, so metrics code is
// safe in the parallel runner's concurrently executing cells.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// Series is a sampled time series.
type Series struct {
	Name  string
	Times []sim.Time
	Vals  []float64
}

// Add appends one sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Vals = append(s.Vals, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Vals) }

// Mean returns the mean of the sampled values (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Vals) == 0 {
		return 0
	}
	return Sum(s.Vals) / float64(len(s.Vals))
}

// MeanAfter returns the mean of samples taken at or after t, discarding
// warm-up transients.
func (s *Series) MeanAfter(t sim.Time) float64 {
	var sum float64
	var n int
	for i, at := range s.Times {
		if at >= t {
			sum += s.Vals[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Sampler periodically evaluates probes and records them into series.
type Sampler struct {
	s        *sim.Simulator
	interval sim.Time
	probes   []func() (string, float64)
	series   map[string]*Series
	order    []string
	timer    *sim.Timer
	stopped  bool
}

// NewSampler creates a sampler that fires every interval once Start is
// called.
func NewSampler(s *sim.Simulator, interval sim.Time) *Sampler {
	sa := &Sampler{s: s, interval: interval, series: make(map[string]*Series)}
	// One owned timer rearmed per tick: the sampler creates no timer
	// garbage over a run, however long.
	sa.timer = s.NewTimer(sa.tick)
	return sa
}

// Probe registers a named probe function evaluated at every tick.
func (sa *Sampler) Probe(name string, fn func() float64) {
	sa.probes = append(sa.probes, func() (string, float64) { return name, fn() })
	sa.series[name] = &Series{Name: name}
	sa.order = append(sa.order, name)
}

// Start schedules the first tick.
func (sa *Sampler) Start() {
	sa.timer.Reset(sa.interval)
}

// Stop halts sampling and removes the pending tick from the event queue.
func (sa *Sampler) Stop() {
	sa.stopped = true
	sa.timer.Stop()
}

func (sa *Sampler) tick() {
	if sa.stopped {
		return
	}
	now := sa.s.Now()
	for _, p := range sa.probes {
		name, v := p()
		sa.series[name].Add(now, v)
	}
	sa.timer.Reset(sa.interval)
}

// Series returns the series recorded under name, or nil.
func (sa *Sampler) Series(name string) *Series { return sa.series[name] }

// Names returns the probe names in registration order.
func (sa *Sampler) Names() []string { return sa.order }

// Rate derives a rate (units/second) series from successive samples of
// a cumulative counter series.
func (s *Series) Rate() *Series {
	out := &Series{Name: s.Name + "/rate"}
	for i := 1; i < len(s.Vals); i++ {
		dt := (s.Times[i] - s.Times[i-1]).Seconds()
		if dt <= 0 {
			continue
		}
		out.Add(s.Times[i], (s.Vals[i]-s.Vals[i-1])/dt)
	}
	return out
}

// ThroughputMbps converts a count of data packets transferred during dur
// into megabits per second, using the standard 1500-byte packet.
func ThroughputMbps(pkts int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(pkts) * netsim.DataPacketSize * 8 / dur.Seconds() / 1e6
}

// PktPerSec converts a packet count over dur to packets per second.
func PktPerSec(pkts int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(pkts) / dur.Seconds()
}

// Rank returns xs sorted descending — the "rank of flow/link"
// distribution plots of Fig. 13.
func Rank(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank on a
// sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Fmt renders a float compactly for experiment tables.
func Fmt(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
