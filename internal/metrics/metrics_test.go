package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"mptcp/internal/sim"
)

func TestSamplerTicks(t *testing.T) {
	s := sim.New(1)
	sa := NewSampler(s, sim.Second)
	x := 0.0
	sa.Probe("x", func() float64 { x++; return x })
	sa.Start()
	s.RunUntil(10500 * sim.Millisecond)
	ser := sa.Series("x")
	if ser.Len() != 10 {
		t.Fatalf("samples = %d, want 10", ser.Len())
	}
	if ser.Vals[0] != 1 || ser.Vals[9] != 10 {
		t.Errorf("sample values wrong: %v", ser.Vals)
	}
	if ser.Times[0] != sim.Second {
		t.Errorf("first sample at %v, want 1s", ser.Times[0])
	}
}

func TestSamplerStop(t *testing.T) {
	s := sim.New(1)
	sa := NewSampler(s, sim.Second)
	sa.Probe("x", func() float64 { return 1 })
	sa.Start()
	s.RunUntil(3500 * sim.Millisecond)
	sa.Stop()
	s.RunUntil(10 * sim.Second)
	if got := sa.Series("x").Len(); got > 4 {
		t.Errorf("sampler kept running after Stop: %d samples", got)
	}
}

func TestSeriesMeanAfter(t *testing.T) {
	var ser Series
	for i := 1; i <= 10; i++ {
		ser.Add(sim.Time(i)*sim.Second, float64(i))
	}
	if got := ser.MeanAfter(6 * sim.Second); got != 8 {
		t.Errorf("MeanAfter = %v, want mean(6..10)=8", got)
	}
	if got := ser.Mean(); got != 5.5 {
		t.Errorf("Mean = %v, want 5.5", got)
	}
}

func TestSeriesRate(t *testing.T) {
	var ser Series
	ser.Add(0, 0)
	ser.Add(sim.Second, 100)
	ser.Add(2*sim.Second, 300)
	r := ser.Rate()
	if r.Len() != 2 || r.Vals[0] != 100 || r.Vals[1] != 200 {
		t.Errorf("rate series = %v", r.Vals)
	}
}

func TestThroughputMbps(t *testing.T) {
	// 1000 packets of 1500B in 1.2 s = 10 Mb/s.
	got := ThroughputMbps(1000, 1200*sim.Millisecond)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("throughput = %v, want 10", got)
	}
	if ThroughputMbps(10, 0) != 0 {
		t.Error("zero duration should yield 0")
	}
}

func TestRank(t *testing.T) {
	got := Rank([]float64{3, 1, 2})
	if got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Errorf("rank = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant stddev = %v", got)
	}
	got := Stddev([]float64{1, 3})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("stddev = %v, want 1", got)
	}
}

// Property: Rank preserves multiset and is monotone nonincreasing.
func TestRankProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		sum := 0.0
		for i, v := range raw {
			xs[i] = float64(v)
			sum += float64(v)
		}
		r := Rank(xs)
		if len(r) != len(xs) {
			return false
		}
		rsum := 0.0
		for i, v := range r {
			rsum += v
			if i > 0 && r[i] > r[i-1] {
				return false
			}
		}
		return math.Abs(rsum-sum) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
