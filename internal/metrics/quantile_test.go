package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestP2SmallInputs: below five observations the estimator answers with
// the exact order statistic.
func TestP2SmallInputs(t *testing.T) {
	e := NewP2Quantile(0.5)
	if v := e.Value(); v != 0 {
		t.Fatalf("empty estimator = %v, want 0", v)
	}
	for _, x := range []float64{5, 1, 3} {
		e.Add(x)
	}
	if v := e.Value(); v != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", v)
	}
	if e.N() != 3 {
		t.Fatalf("N = %d, want 3", e.N())
	}
}

// TestP2Accuracy: against known distributions the P² estimate must land
// within a few percent of the exact percentile.
func TestP2Accuracy(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"normal", func(r *rand.Rand) float64 { return 50 + 10*r.NormFloat64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 10 }},
	}
	for _, tc := range cases {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			r := rand.New(rand.NewSource(42))
			e := NewP2Quantile(p)
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := tc.gen(r)
				e.Add(x)
				xs = append(xs, x)
			}
			exact := Percentile(xs, p*100)
			got := e.Value()
			// Relative to the distribution's spread, not the value: the
			// exponential p50 is small but the tail is long.
			spread := Percentile(xs, 99) - Percentile(xs, 1)
			if math.Abs(got-exact) > 0.05*spread {
				t.Errorf("%s p%g: P²=%.3f exact=%.3f (spread %.3f)", tc.name, p*100, got, exact, spread)
			}
		}
	}
}

// TestP2Deterministic: identical observation sequences give bit-equal
// estimates (no internal randomness).
func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		r := rand.New(rand.NewSource(7))
		e := NewP2Quantile(0.95)
		for i := 0; i < 5000; i++ {
			e.Add(r.ExpFloat64())
		}
		return e.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("P² not deterministic: %v vs %v", a, b)
	}
}

// TestP2Monotone: the estimate stays within the observed range.
func TestP2Monotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	e := NewP2Quantile(0.95)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10000; i++ {
		x := r.NormFloat64()
		lo, hi = math.Min(lo, x), math.Max(hi, x)
		e.Add(x)
		if i >= 5 {
			if v := e.Value(); v < lo || v > hi {
				t.Fatalf("estimate %v escaped observed range [%v,%v] at n=%d", v, lo, hi, i+1)
			}
		}
	}
}

// TestP2BadQuantile: quantiles outside (0,1) are a construction error.
func TestP2BadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

// TestSummary: Welford mean/stddev agree with the exact batch formulas,
// extremes are exact, quantiles near-exact.
func TestSummary(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := NewSummary()
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		x := 100 + 15*r.NormFloat64()
		s.Add(x)
		xs = append(xs, x)
	}
	if s.N() != 10000 {
		t.Fatalf("N = %d", s.N())
	}
	if m := Mean(xs); math.Abs(s.Mean()-m) > 1e-9*math.Abs(m) {
		t.Errorf("mean %v, exact %v", s.Mean(), m)
	}
	if sd := Stddev(xs); math.Abs(s.Stddev()-sd) > 1e-6*sd {
		t.Errorf("stddev %v, exact %v", s.Stddev(), sd)
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	if s.Min() != min || s.Max() != max {
		t.Errorf("extremes (%v,%v), exact (%v,%v)", s.Min(), s.Max(), min, max)
	}
	if p95 := Percentile(xs, 95); math.Abs(s.P95()-p95) > 0.5 {
		t.Errorf("p95 %v, exact %v", s.P95(), p95)
	}
}

// TestSummaryEmpty: the empty summary reports zeros, not infinities.
func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.P50() != 0 {
		t.Fatalf("empty summary leaks state: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
}
