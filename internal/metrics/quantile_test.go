package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestP2SmallInputs: below five observations the estimator answers with
// the exact order statistic.
func TestP2SmallInputs(t *testing.T) {
	e := NewP2Quantile(0.5)
	if v := e.Value(); v != 0 {
		t.Fatalf("empty estimator = %v, want 0", v)
	}
	for _, x := range []float64{5, 1, 3} {
		e.Add(x)
	}
	if v := e.Value(); v != 3 {
		t.Fatalf("median of {5,1,3} = %v, want 3", v)
	}
	if e.N() != 3 {
		t.Fatalf("N = %d, want 3", e.N())
	}
}

// TestP2Accuracy: against known distributions the P² estimate must land
// within a few percent of the exact percentile.
func TestP2Accuracy(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"normal", func(r *rand.Rand) float64 { return 50 + 10*r.NormFloat64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 10 }},
	}
	for _, tc := range cases {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			r := rand.New(rand.NewSource(42))
			e := NewP2Quantile(p)
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := tc.gen(r)
				e.Add(x)
				xs = append(xs, x)
			}
			exact := Percentile(xs, p*100)
			got := e.Value()
			// Relative to the distribution's spread, not the value: the
			// exponential p50 is small but the tail is long.
			spread := Percentile(xs, 99) - Percentile(xs, 1)
			if math.Abs(got-exact) > 0.05*spread {
				t.Errorf("%s p%g: P²=%.3f exact=%.3f (spread %.3f)", tc.name, p*100, got, exact, spread)
			}
		}
	}
}

// TestP2Deterministic: identical observation sequences give bit-equal
// estimates (no internal randomness).
func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		r := rand.New(rand.NewSource(7))
		e := NewP2Quantile(0.95)
		for i := 0; i < 5000; i++ {
			e.Add(r.ExpFloat64())
		}
		return e.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("P² not deterministic: %v vs %v", a, b)
	}
}

// TestP2Monotone: the estimate stays within the observed range.
func TestP2Monotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	e := NewP2Quantile(0.95)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10000; i++ {
		x := r.NormFloat64()
		lo, hi = math.Min(lo, x), math.Max(hi, x)
		e.Add(x)
		if i >= 5 {
			if v := e.Value(); v < lo || v > hi {
				t.Fatalf("estimate %v escaped observed range [%v,%v] at n=%d", v, lo, hi, i+1)
			}
		}
	}
}

// TestP2BadQuantile: quantiles outside (0,1) are a construction error.
func TestP2BadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

// TestSummary: Welford mean/stddev agree with the exact batch formulas,
// extremes are exact, quantiles near-exact.
func TestSummary(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := NewSummary()
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		x := 100 + 15*r.NormFloat64()
		s.Add(x)
		xs = append(xs, x)
	}
	if s.N() != 10000 {
		t.Fatalf("N = %d", s.N())
	}
	if m := Mean(xs); math.Abs(s.Mean()-m) > 1e-9*math.Abs(m) {
		t.Errorf("mean %v, exact %v", s.Mean(), m)
	}
	if sd := Stddev(xs); math.Abs(s.Stddev()-sd) > 1e-6*sd {
		t.Errorf("stddev %v, exact %v", s.Stddev(), sd)
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	if s.Min() != min || s.Max() != max {
		t.Errorf("extremes (%v,%v), exact (%v,%v)", s.Min(), s.Max(), min, max)
	}
	if p95 := Percentile(xs, 95); math.Abs(s.P95()-p95) > 0.5 {
		t.Errorf("p95 %v, exact %v", s.P95(), p95)
	}
}

// TestSummaryEmpty: the empty summary reports zero counts and moments,
// and NaN extremes — never the sentinel infinities it is seeded with.
func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.P50() != 0 {
		t.Fatalf("empty summary leaks state: n=%d mean=%v", s.N(), s.Mean())
	}
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatalf("empty summary Min/Max = %v/%v, want NaN (must be distinguishable from a real 0 observation)", s.Min(), s.Max())
	}
}

// TestSummaryZeroObservationDistinguishable is the regression test for
// Min/Max returning 0 on an empty summary: a summary holding a genuine
// 0 must report 0, an empty one must not.
func TestSummaryZeroObservationDistinguishable(t *testing.T) {
	s := NewSummary()
	s.Add(0)
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("summary of {0}: Min/Max = %v/%v, want 0/0", s.Min(), s.Max())
	}
}

// TestP2QuantileValueSmallNAllocFree pins the fix for Value()
// re-allocating and re-sorting the init buffer on every call before the
// markers exist: Add keeps the buffer sorted, Value reads it in place.
func TestP2QuantileValueSmallNAllocFree(t *testing.T) {
	e := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 4, 2} { // deliberately unsorted
		e.Add(x)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = e.Value() }); allocs != 0 {
		t.Errorf("Value() allocates %v times per call with n<5, want 0", allocs)
	}
	// The exact order statistic must survive the in-place rewrite:
	// ceil(0.5*4)-1 = index 1 of {1,2,4,5} = 2.
	if got := e.Value(); got != 2 {
		t.Errorf("median of {5,1,4,2} = %v, want 2", got)
	}
}

// TestP2QuantileSortedInsertMatchesOldPath: the incremental insertion
// must hand the marker initialisation the same sorted five values the
// old sort-on-fifth-Add did, for any insertion order.
func TestP2QuantileSortedInsertMatchesOldPath(t *testing.T) {
	perm := []float64{3, 1, 5, 4, 2}
	a := NewP2Quantile(0.9)
	b := NewP2Quantile(0.9)
	for _, x := range perm {
		a.Add(x)
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		b.Add(x)
	}
	for i := int64(6); i <= 300; i++ {
		a.Add(float64(i))
		b.Add(float64(i))
	}
	if a.Value() != b.Value() {
		t.Errorf("marker state depends on pre-marker insertion order: %v vs %v", a.Value(), b.Value())
	}
}
