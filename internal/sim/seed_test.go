package sim

import "testing"

// TestMixSeedPinned pins the mix constants: every golden in the repo is
// derived through MixSeed, so an accidental change to the finalizer
// must fail loudly here, not as a mysterious mass golden drift.
func TestMixSeedPinned(t *testing.T) {
	cases := []struct {
		base int64
		idx  int
		want int64
	}{
		{42, 0, 1391454601869358542},
		{42, 7, -1478861097467027511},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := MixSeed(c.base, c.idx); got != c.want {
			t.Errorf("MixSeed(%d, %d) = %d, want %d", c.base, c.idx, got, c.want)
		}
	}
}

// TestMixSeedInjectivePerBase: for a fixed base the idx → seed map must
// be injective (the documented contract that lets experiments add cells
// without perturbing earlier ones), across a range far wider than any
// real grid.
func TestMixSeedInjectivePerBase(t *testing.T) {
	for _, base := range []int64{0, 42, -1, 9_200_000, 1 << 62} {
		seen := make(map[int64]int, 100_000)
		for idx := 0; idx < 100_000; idx++ {
			s := MixSeed(base, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: idx %d and %d both derive %d", base, prev, idx, s)
			}
			seen[s] = idx
		}
	}
}
