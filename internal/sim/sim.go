// Package sim provides a deterministic discrete-event simulation engine.
//
// It is the substrate under the packet-level network simulator used to
// reproduce the evaluation of "Design, implementation and evaluation of
// congestion control for multipath TCP" (Wischik et al., NSDI 2011). The
// engine is single-threaded and fully deterministic: events firing at the
// same instant are executed in scheduling order, and all randomness flows
// from one seeded source.
//
// # Zero-allocation scheduling
//
// The event queue is a binary min-heap of event records stored by value —
// a tagged union of {typed handler callback, rearmable timer, one-shot
// function}. Scheduling therefore never allocates per event: the heap's
// backing array is the event pool (a popped slot is reused by the next
// push), typed events (Post) carry a pre-built handler interface plus a
// pointer-sized argument, and rearmable timers (NewTimer) are rearmed in
// place with Reset, which re-keys the queued record and restores heap
// order instead of abandoning a dead entry. Cancelled events are removed
// eagerly, so the heap holds live events only. A Timer freelist owned by
// the Simulator (mirroring netsim's packet freelist) recycles timer
// objects across short-lived connections via NewTimer/Release.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a simulated instant measured in integer nanoseconds since the
// start of the simulation. Integer time keeps the engine exactly
// reproducible across runs and platforms.
type Time int64

// Duration constants, mirroring package time but in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts a floating-point number of seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Handler consumes a typed event posted with Simulator.Post. Implementing
// it lets an object (a network, an endpoint) receive scheduled callbacks
// without a per-event closure: the packet-forward hot path schedules
// {handler, argument} pairs that are stored by value in the event heap.
type Handler interface {
	OnEvent(arg any)
}

// evKind tags the event union.
type evKind uint8

const (
	evFunc    evKind = iota // one-shot function (At/After)
	evHandler               // typed callback: h.OnEvent(arg)
	evTimer                 // rearmable Timer: tm.fn()
)

// event is one scheduled occurrence, stored by value in the heap. Exactly
// one of {fn, h/arg, tm} is meaningful, per kind.
type event struct {
	at   Time
	seq  uint64
	kind evKind
	fn   func()
	h    Handler
	arg  any
	tm   *Timer
}

// Timer is a rearmable handle to a scheduled event, created with
// Simulator.NewTimer. Reset rearms it in place: if the timer is queued,
// its event record is re-keyed and the heap repaired (heap fix), so
// stop-and-rearm cycles — a retransmission timer touched on every ACK —
// create no garbage and leave no dead entries in the queue.
type Timer struct {
	s     *Simulator
	fn    func()
	at    Time
	index int // position of the timer's event in the heap, -1 when idle
}

// Stop cancels the timer, removing its event from the queue. It is safe
// to call on a timer that has already fired or been stopped. It reports
// whether the call prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.index < 0 {
		return false
	}
	t.s.remove(t.index)
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.index >= 0 }

// When returns the instant the timer is (or was last) scheduled to fire.
func (t *Timer) When() Time { return t.at }

// Reset (re)arms the timer to fire d from now. If the timer is already
// queued its event is rearmed in place; otherwise a fresh event is
// pushed. Like the initial scheduling, a rearm counts as a new scheduling
// for same-instant ordering purposes.
func (t *Timer) Reset(d Time) { t.ResetAt(t.s.now + d) }

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	s := t.s
	if at < s.now {
		panic(fmt.Sprintf("sim: rearming timer at %v before now %v", at, s.now))
	}
	t.at = at
	s.seq++
	if t.index >= 0 {
		e := &s.ev[t.index]
		e.at = at
		e.seq = s.seq
		s.fix(t.index)
		return
	}
	s.push(event{at: at, seq: s.seq, kind: evTimer, tm: t})
}

// Release stops the timer and returns it to the simulator's freelist for
// reuse by a later NewTimer. The caller must not touch the handle
// afterwards; owners release their timers on teardown (e.g. a completed
// connection) so workloads that churn connections recycle timer objects.
func (t *Timer) Release() {
	if t == nil || t.fn == nil {
		return // nil or already released: never double-insert in the freelist
	}
	t.Stop()
	t.fn = nil
	t.s.free = append(t.s.free, t)
}

// Simulator is a discrete-event scheduler. The zero value is not usable;
// construct with New.
type Simulator struct {
	now    Time
	ev     []event // binary min-heap ordered by (at, seq)
	seq    uint64
	rng    *rand.Rand
	nsteps uint64
	free   []*Timer // Timer freelist (NewTimer / Release)
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events executed so far. It is useful for
// reporting simulator throughput in benchmarks.
func (s *Simulator) Steps() uint64 { return s.nsteps }

// NewTimer returns an idle rearmable timer that runs fn when it fires;
// arm it with Reset. The timer comes from the simulator's freelist when
// one is available.
func (s *Simulator) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil function")
	}
	if n := len(s.free); n > 0 {
		t := s.free[n-1]
		s.free = s.free[:n-1]
		t.fn = fn
		t.index = -1
		return t
	}
	return &Timer{s: s, fn: fn, index: -1}
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it is always a bug in the caller. For an event that must be
// cancelled or rearmed later, use NewTimer instead.
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, kind: evFunc, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Simulator) After(d Time, fn func()) {
	s.At(s.now+d, fn)
}

// Post schedules h.OnEvent(arg) at absolute time t. This is the
// allocation-free path used for packet-hop events: the handler interface
// and the (pointer-sized) argument are stored by value in the event
// record, so the per-hop cost is one heap insert and nothing for the
// garbage collector.
func (s *Simulator) Post(t Time, h Handler, arg any) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, kind: evHandler, h: h, arg: arg})
}

// RunUntil executes events in timestamp order until the event queue is
// exhausted or the next event is later than end. The clock is left at the
// time of the last executed event, or at end if no event at or before end
// remains.
func (s *Simulator) RunUntil(end Time) {
	for len(s.ev) > 0 && s.ev[0].at <= end {
		e := s.pop()
		s.now = e.at
		s.dispatch(e)
		s.nsteps++
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes events until the queue empties.
func (s *Simulator) Run() {
	for len(s.ev) > 0 {
		e := s.pop()
		s.now = e.at
		s.dispatch(e)
		s.nsteps++
	}
}

func (s *Simulator) dispatch(e event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evHandler:
		e.h.OnEvent(e.arg)
	case evTimer:
		e.tm.fn()
	}
}

// Pending returns the number of events in the queue. Cancelled events are
// removed eagerly, so every pending event is live.
func (s *Simulator) Pending() int { return len(s.ev) }

// --- event heap: binary min-heap over []event ordered by (at, seq).
// Implemented directly (not via container/heap) so records stay by value
// and pushes never box through an interface.

func (s *Simulator) less(i, j int) bool {
	if s.ev[i].at != s.ev[j].at {
		return s.ev[i].at < s.ev[j].at
	}
	return s.ev[i].seq < s.ev[j].seq
}

func (s *Simulator) swap(i, j int) {
	s.ev[i], s.ev[j] = s.ev[j], s.ev[i]
	if t := s.ev[i].tm; t != nil {
		t.index = i
	}
	if t := s.ev[j].tm; t != nil {
		t.index = j
	}
}

func (s *Simulator) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

// down sifts the element at i toward the leaves; it reports whether the
// element moved.
func (s *Simulator) down(i int) bool {
	start := i
	n := len(s.ev)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && s.less(r, l) {
			j = r
		}
		if !s.less(j, i) {
			break
		}
		s.swap(i, j)
		i = j
	}
	return i > start
}

func (s *Simulator) fix(i int) {
	if !s.down(i) {
		s.up(i)
	}
}

func (s *Simulator) push(e event) {
	s.ev = append(s.ev, e)
	i := len(s.ev) - 1
	if t := e.tm; t != nil {
		t.index = i
	}
	s.up(i)
}

// pop removes and returns the minimum event. If the event belongs to a
// timer, the timer is detached (index -1) before return so its callback
// may rearm it immediately.
func (s *Simulator) pop() event {
	e := s.ev[0]
	n := len(s.ev) - 1
	if n > 0 {
		s.ev[0] = s.ev[n]
		if t := s.ev[0].tm; t != nil {
			t.index = 0
		}
	}
	s.ev[n] = event{} // release fn/handler/arg references
	s.ev = s.ev[:n]
	if n > 1 {
		s.down(0)
	}
	if t := e.tm; t != nil {
		t.index = -1
	}
	return e
}

// remove deletes the event at heap position i (a cancelled timer).
func (s *Simulator) remove(i int) {
	if t := s.ev[i].tm; t != nil {
		t.index = -1
	}
	n := len(s.ev) - 1
	if i != n {
		s.ev[i] = s.ev[n]
		if t := s.ev[i].tm; t != nil {
			t.index = i
		}
	}
	s.ev[n] = event{}
	s.ev = s.ev[:n]
	if i < n {
		s.fix(i)
	}
}
