// Package sim provides a deterministic discrete-event simulation engine.
//
// It is the substrate under the packet-level network simulator used to
// reproduce the evaluation of "Design, implementation and evaluation of
// congestion control for multipath TCP" (Wischik et al., NSDI 2011). The
// engine is single-threaded and fully deterministic: events firing at the
// same instant are executed in scheduling order, and all randomness flows
// from one seeded source.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulated instant measured in integer nanoseconds since the
// start of the simulation. Integer time keeps the engine exactly
// reproducible across runs and platforms.
type Time int64

// Duration constants, mirroring package time but in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts a floating-point number of seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Timer is a handle to a scheduled event. It may be stopped before it fires.
type Timer struct {
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	fn    func()
}

// Stop cancels the timer. It is safe to call on a timer that has already
// fired or been stopped. It reports whether the call prevented the event
// from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.fn == nil {
		return false
	}
	t.fn = nil
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.fn != nil }

// When returns the instant the timer is scheduled to fire at.
func (t *Timer) When() Time { return t.at }

// Simulator is a discrete-event scheduler. The zero value is not usable;
// construct with New.
type Simulator struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	nsteps uint64
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps returns the number of events executed so far. It is useful for
// reporting simulator throughput in benchmarks.
func (s *Simulator) Steps() uint64 { return s.nsteps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a bug in the caller.
func (s *Simulator) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, tm)
	return tm
}

// After schedules fn to run d nanoseconds from now.
func (s *Simulator) After(d Time, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// RunUntil executes events in timestamp order until the event queue is
// exhausted or the next event is later than end. The clock is left at the
// time of the last executed event, or at end if no event at or before end
// remains.
func (s *Simulator) RunUntil(end Time) {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > end {
			break
		}
		heap.Pop(&s.events)
		if next.fn == nil {
			continue // cancelled
		}
		s.now = next.at
		fn := next.fn
		next.fn = nil
		fn()
		s.nsteps++
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes events until the queue empties.
func (s *Simulator) Run() {
	for len(s.events) > 0 {
		next := heap.Pop(&s.events).(*Timer)
		if next.fn == nil {
			continue
		}
		s.now = next.at
		fn := next.fn
		next.fn = nil
		fn()
		s.nsteps++
	}
}

// Pending returns the number of events in the queue, including cancelled
// entries that have not yet been reaped.
func (s *Simulator) Pending() int { return len(s.events) }

// eventHeap is a min-heap ordered by (at, seq) so that simultaneous events
// fire in scheduling order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
