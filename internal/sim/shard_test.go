package sim

import (
	"testing"
)

// shardNode is one domain's workload in the sharded tests: a periodic
// local event that mixes the domain's own randomness into a running
// hash and forwards the hash to the next domain over a pipe, plus a
// Handler that folds received cross-domain values in. The final hash is
// sensitive to both event ordering and rng draws, so any divergence in
// scheduling or merge order across shard counts shows up immediately.
type shardNode struct {
	s    *Simulator
	hash uint64
	recv int
}

func (n *shardNode) OnEvent(arg any) {
	v := arg.(uint64)
	n.hash = n.hash*1099511628211 ^ v
	n.recv++
}

// runRing wires nDom domains into a ring of pipes (node i ticks every
// millisecond and sends its hash to node i+1 over a 5ms pipe), runs to
// end with the given shard count, and returns each node's final hash,
// receive count, and the engine's total step count.
func runRing(shards int, seed int64, nDom int, end Time) ([]uint64, []int, uint64) {
	sh := NewSharded(seed, nDom)
	nodes := make([]*shardNode, nDom)
	for i := range nodes {
		nodes[i] = &shardNode{s: sh.Domain(i)}
	}
	type edge struct {
		p   *Pipe
		dst *shardNode
	}
	edges := make([]edge, nDom)
	for i := range nodes {
		j := (i + 1) % nDom
		edges[i] = edge{p: sh.NewPipe(i, j, 5*Millisecond), dst: nodes[j]}
	}
	for i := range nodes {
		node := nodes[i]
		e := edges[i]
		var tick func()
		tick = func() {
			r := uint64(node.s.Rand().Int63())
			node.hash = node.hash*31 + r ^ uint64(node.s.Now())
			e.p.Send(e.dst, node.hash)
			node.s.After(Millisecond, tick)
		}
		node.s.After(Millisecond, tick)
	}
	sh.SetShards(shards)
	sh.Run(end)
	hashes := make([]uint64, nDom)
	recvs := make([]int, nDom)
	for i, n := range nodes {
		hashes[i] = n.hash
		recvs[i] = n.recv
	}
	return hashes, recvs, sh.Steps()
}

// TestShardCountInvariance pins the tentpole contract: a pipe-coupled
// multi-domain workload produces bit-identical state at shards = 1, 2,
// 4 and the default (GOMAXPROCS).
func TestShardCountInvariance(t *testing.T) {
	const nDom, seed = 8, int64(7)
	end := 200 * Millisecond
	refHash, refRecv, refSteps := runRing(1, seed, nDom, end)
	for _, shards := range []int{2, 4, 0} {
		h, r, steps := runRing(shards, seed, nDom, end)
		for i := range h {
			if h[i] != refHash[i] {
				t.Fatalf("shards=%d: domain %d hash %x != shards=1 hash %x", shards, i, h[i], refHash[i])
			}
			if r[i] != refRecv[i] {
				t.Fatalf("shards=%d: domain %d recv %d != shards=1 recv %d", shards, i, r[i], refRecv[i])
			}
		}
		if steps != refSteps {
			t.Fatalf("shards=%d: %d steps != shards=1 %d steps", shards, steps, refSteps)
		}
	}
	// The workload must actually exercise cross-domain delivery, or the
	// invariance above is vacuous.
	for i, r := range refRecv {
		if r == 0 {
			t.Fatalf("domain %d received no cross-domain messages", i)
		}
	}
}

// TestShardedRepeatedRun checks Run can be called with increasing
// horizons and the split makes no difference to the final state.
func TestShardedRepeatedRun(t *testing.T) {
	const nDom, seed = 4, int64(11)
	oneShot, _, _ := runRing(2, seed, nDom, 100*Millisecond)

	// Same build, run in two stretches.
	sh := NewSharded(seed, nDom)
	nodes := make([]*shardNode, nDom)
	for i := range nodes {
		nodes[i] = &shardNode{s: sh.Domain(i)}
	}
	for i := range nodes {
		j := (i + 1) % nDom
		p := sh.NewPipe(i, j, 5*Millisecond)
		node := nodes[i]
		dst := nodes[j]
		var tick func()
		tick = func() {
			r := uint64(node.s.Rand().Int63())
			node.hash = node.hash*31 + r ^ uint64(node.s.Now())
			p.Send(dst, node.hash)
			node.s.After(Millisecond, tick)
		}
		node.s.After(Millisecond, tick)
	}
	sh.SetShards(2)
	sh.Run(40 * Millisecond)
	sh.Run(100 * Millisecond)
	for i, n := range nodes {
		if n.hash != oneShot[i] {
			t.Fatalf("domain %d: split run hash %x != one-shot %x", i, n.hash, oneShot[i])
		}
	}
}

// TestShardedNoPipes: independent domains run straight to the horizon.
func TestShardedNoPipes(t *testing.T) {
	sh := NewSharded(3, 3)
	fired := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		sh.Domain(i).After(Time(i+1)*Millisecond, func() { fired[i]++ })
	}
	sh.Run(10 * Millisecond)
	for i, f := range fired {
		if f != 1 {
			t.Fatalf("domain %d fired %d times, want 1", i, f)
		}
		if now := sh.Domain(i).Now(); now != 10*Millisecond {
			t.Fatalf("domain %d clock %v, want 10ms", i, now)
		}
	}
}

// TestDomainSeed pins the derived-seed discipline (mirrors CellSeed).
func TestDomainSeed(t *testing.T) {
	if got, want := DomainSeed(42, 0), MixSeed(42, 0); got != want {
		t.Fatalf("DomainSeed(42,0) = %d, want MixSeed's %d", got, want)
	}
	if got, want := DomainSeed(42, 7), MixSeed(42, 7); got != want {
		t.Fatalf("DomainSeed(42,7) = %d, want MixSeed's %d", got, want)
	}
	// Large bases must not wrap into colliding seed ranges (the old
	// stride scheme overflowed int64 here).
	if DomainSeed(9_200_000_000_000, 0) == DomainSeed(9_200_000_000_001, 0) {
		t.Fatal("adjacent huge bases collide")
	}
	sh := NewSharded(42, 2)
	a := sh.Domain(0).Rand().Int63()
	b := sh.Domain(1).Rand().Int63()
	if a == b {
		t.Fatalf("domains share a random stream: %d == %d", a, b)
	}
}

// TestPipeValidation: out-of-range endpoints and non-positive latency
// are caller bugs and must panic.
func TestPipeValidation(t *testing.T) {
	sh := NewSharded(1, 2)
	for _, fn := range []func(){
		func() { sh.NewPipe(0, 2, Millisecond) },
		func() { sh.NewPipe(-1, 1, Millisecond) },
		func() { sh.NewPipe(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}
