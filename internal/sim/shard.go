// Sharded multi-core execution of partitioned simulations.
//
// A Sharded engine runs many independent Simulator partitions
// ("domains") — one per topology component or connection group — in
// lock-step epochs across a bounded set of worker goroutines
// ("shards"). Within an epoch every domain advances its own event heap
// alone; packets that cross a domain boundary travel through a Pipe and
// are held back until the epoch barrier, where the coordinator merges
// them into the destination domains in a fixed order. Because every
// domain owns its randomness (DomainSeed, the same derived-seed
// discipline as internal/exp's CellSeed) and sees cross-domain events
// in an order that depends only on pipe identity and send time — never
// on goroutine scheduling — the whole simulation is bit-identical for
// every shard count, including 1. The epoch length is the minimum pipe
// latency (the classic conservative lookahead of parallel discrete-
// event simulation): a message sent during an epoch can never be due
// before the next barrier, so no domain ever receives an event in its
// past.
package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// DomainSeed derives the simulator seed for domain idx of a sharded
// engine whose base seed is base — the same discipline (MixSeed) as the
// parallel runner's CellSeed, so adding domains never perturbs the
// seeds of the domains before them, and chaining the two derivations
// (a sharded engine inside an experiment cell) never overflows.
func DomainSeed(base int64, idx int) int64 {
	return MixSeed(base, idx)
}

// Sharded coordinates n domain Simulators. Construct with NewSharded,
// wire cross-domain traffic with NewPipe, then Run. The zero value is
// not usable.
type Sharded struct {
	doms   []*Simulator
	pipes  []*Pipe
	epoch  Time // barrier interval = min pipe latency; 0 until a pipe exists
	shards int
}

// NewSharded creates an engine of n domains; domain i is seeded with
// DomainSeed(seed, i).
func NewSharded(seed int64, n int) *Sharded {
	if n < 1 {
		panic("sim: sharded engine needs at least one domain")
	}
	sh := &Sharded{doms: make([]*Simulator, n)}
	for i := range sh.doms {
		sh.doms[i] = New(DomainSeed(seed, i))
	}
	return sh
}

// Domain returns domain i's Simulator. Everything a domain simulates —
// its network, endpoints, timers, randomness — must live on this
// Simulator and never touch another domain's state except through a
// Pipe.
func (sh *Sharded) Domain(i int) *Simulator { return sh.doms[i] }

// NumDomains returns the number of domains.
func (sh *Sharded) NumDomains() int { return len(sh.doms) }

// SetShards bounds how many domains run concurrently during an epoch.
// Zero or negative means runtime.GOMAXPROCS(0). Results are
// bit-identical for every value; shards only trades wall-clock time.
func (sh *Sharded) SetShards(n int) { sh.shards = n }

// Steps returns the total number of events executed across all domains.
func (sh *Sharded) Steps() uint64 {
	var total uint64
	for _, d := range sh.doms {
		total += d.Steps()
	}
	return total
}

// msg is one cross-domain event in flight: deliver h.OnEvent(arg) at
// time at in the pipe's destination domain.
type msg struct {
	at  Time
	h   Handler
	arg any
}

// Pipe is a unidirectional cross-domain channel with a fixed latency.
// The source domain calls Send during its epoch; the engine injects the
// message into the destination domain at the next barrier. Latency must
// be at least the engine's epoch (enforced at Run), which guarantees a
// message is never due before the barrier that merges it.
type Pipe struct {
	sh       *Sharded
	id       int
	src, dst int
	latency  Time
	buf      []msg // messages sent this epoch; single writer (src domain)

	// Sent counts messages carried over the pipe's lifetime.
	Sent int64
}

// NewPipe creates a pipe from domain src to domain dst with the given
// delivery latency. The engine's epoch shrinks to the smallest pipe
// latency.
func (sh *Sharded) NewPipe(src, dst int, latency Time) *Pipe {
	if src < 0 || src >= len(sh.doms) || dst < 0 || dst >= len(sh.doms) {
		panic(fmt.Sprintf("sim: pipe %d->%d outside domain range [0,%d)", src, dst, len(sh.doms)))
	}
	if latency <= 0 {
		panic("sim: pipe latency must be positive")
	}
	p := &Pipe{sh: sh, id: len(sh.pipes), src: src, dst: dst, latency: latency}
	sh.pipes = append(sh.pipes, p)
	if sh.epoch == 0 || latency < sh.epoch {
		sh.epoch = latency
	}
	return p
}

// Send schedules h.OnEvent(arg) in the pipe's destination domain at the
// source domain's current time plus the pipe latency. It must be called
// from code executing inside the source domain (an event handler or
// timer of that domain's Simulator); the message is buffered until the
// epoch barrier and injected there, so the destination's heap is never
// touched concurrently.
func (p *Pipe) Send(h Handler, arg any) {
	p.buf = append(p.buf, msg{at: p.sh.doms[p.src].Now() + p.latency, h: h, arg: arg})
	p.Sent++
}

// Run advances every domain to absolute time end. With pipes, execution
// proceeds in epochs of the minimum pipe latency, merging cross-domain
// messages at each barrier in (pipe id, send order) — an ordering that
// depends only on the wiring, never on goroutine scheduling. Without
// pipes the domains are fully independent and each runs to end in one
// stretch. Run may be called repeatedly with increasing horizons.
func (sh *Sharded) Run(end Time) {
	if len(sh.pipes) == 0 {
		sh.runEpoch(end)
		return
	}
	// All domains share one clock frontier: any domain that has already
	// passed a barrier time simply no-ops its RunUntil.
	for {
		t := sh.frontier()
		if t >= end {
			return
		}
		next := t + sh.epoch
		if next > end {
			next = end
		}
		sh.runEpoch(next)
		sh.barrier()
	}
}

// frontier returns the common epoch clock — the minimum domain time.
func (sh *Sharded) frontier() Time {
	t := sh.doms[0].Now()
	for _, d := range sh.doms[1:] {
		if d.Now() < t {
			t = d.Now()
		}
	}
	return t
}

// barrier merges the epoch's cross-domain messages into their
// destination domains. Messages are injected pipe by pipe in creation
// order, and within a pipe in send order; injections allocate fresh
// sequence numbers in the destination, so same-instant ordering in the
// destination heap is a pure function of the wiring. A message can
// never be due before the destination's clock: send time is at most the
// epoch boundary, and latency >= epoch (checked here).
func (sh *Sharded) barrier() {
	for _, p := range sh.pipes {
		if p.latency < sh.epoch {
			panic(fmt.Sprintf("sim: pipe %d latency %v below epoch %v", p.id, p.latency, sh.epoch))
		}
		dst := sh.doms[p.dst]
		for _, m := range p.buf {
			dst.Post(m.at, m.h, m.arg)
		}
		p.buf = p.buf[:0]
	}
}

// runEpoch advances every domain to until, fanning the domains across
// the shard worker pool. Domains share no state (pipes buffer on the
// source side), so the assignment of domains to workers cannot affect
// results.
func (sh *Sharded) runEpoch(until Time) {
	w := sh.shards
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(sh.doms) {
		w = len(sh.doms)
	}
	if w <= 1 {
		for _, d := range sh.doms {
			d.RunUntil(until)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				sh.doms[i].RunUntil(until)
			}
		}()
	}
	for i := range sh.doms {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
