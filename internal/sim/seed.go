// Derived-seed discipline shared by the parallel cell runner
// (internal/exp.CellSeed) and the sharded engine (DomainSeed).
package sim

// MixSeed derives the child seed for unit idx of a run whose base seed
// is base, with a splitmix64-style 64-bit finalizer. Two properties the
// callers rely on:
//
//   - For a fixed base the map idx → seed is injective (the pre-mix is
//     base*φ64 + idx, injective in idx, and the finalizer is a bijection
//     on 64-bit words), so adding cells or domains to an experiment
//     never perturbs — or collides with — the seeds before them.
//   - Chained derivations MixSeed(MixSeed(base, i), j) stay well spread
//     for every int64 base. The previous stride scheme (base*1e6 + idx)
//     silently wrapped int64 once the intermediate seed reached ~9.2e18
//     — i.e. for -seed ≥ ~9.2e6 after one level of chaining — and
//     wrapped seeds from different cells could collide.
//
// The finalizer is the splitmix64 mix of Steele, Lea & Flood ("Fast
// splittable pseudorandom number generators", OOPSLA 2014); φ64 is the
// 64-bit golden-ratio increment.
func MixSeed(base int64, idx int) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(idx)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
