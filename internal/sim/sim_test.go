package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis() = %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v, want 250ms", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", order)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("clock = %v, want 30ms", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(10*Millisecond, func() { fired++ })
	s.At(20*Millisecond, func() { fired++ })
	s.RunUntil(15 * Millisecond)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 15*Millisecond {
		t.Errorf("clock = %v, want 15ms", s.Now())
	}
	s.RunUntil(25 * Millisecond)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.NewTimer(func() { fired = true })
	if tm.Active() {
		t.Error("new timer should be idle until Reset")
	}
	tm.Reset(10 * Millisecond)
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	if s.Pending() != 0 {
		t.Errorf("stopped timer left %d events queued, want 0", s.Pending())
	}
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Active() {
		t.Error("stopped timer reports active")
	}
}

func TestTimerStopNil(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Error("Stop on nil timer should be false")
	}
	if tm.Active() {
		t.Error("nil timer should not be active")
	}
}

func TestTimerResetRearmsInPlace(t *testing.T) {
	s := New(1)
	var firedAt []Time
	tm := s.NewTimer(func() { firedAt = append(firedAt, s.Now()) })
	tm.Reset(10 * Millisecond)
	// Rearm while queued: the original 10 ms firing must not happen.
	tm.Reset(30 * Millisecond)
	if got := s.Pending(); got != 1 {
		t.Fatalf("rearm left %d events queued, want 1 (in-place)", got)
	}
	s.Run()
	if len(firedAt) != 1 || firedAt[0] != 30*Millisecond {
		t.Errorf("fired at %v, want [30ms]", firedAt)
	}
	// Rearm after firing: pushes a fresh event.
	tm.Reset(5 * Millisecond)
	s.Run()
	if len(firedAt) != 2 || firedAt[1] != 35*Millisecond {
		t.Errorf("fired at %v, want second firing at 35ms", firedAt)
	}
}

func TestTimerResetEarlierAndLater(t *testing.T) {
	s := New(1)
	var order []string
	s.At(20*Millisecond, func() { order = append(order, "mid") })
	tm := s.NewTimer(func() { order = append(order, "timer") })
	tm.Reset(40 * Millisecond)
	tm.Reset(10 * Millisecond) // move earlier, past the queued fn event
	s.Run()
	if len(order) != 2 || order[0] != "timer" || order[1] != "mid" {
		t.Errorf("order = %v, want [timer mid]", order)
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tm *Timer
	tm = s.NewTimer(func() {
		n++
		if n < 5 {
			tm.Reset(Millisecond)
		}
	})
	tm.Reset(Millisecond)
	s.Run()
	if n != 5 {
		t.Errorf("periodic timer fired %d times, want 5", n)
	}
	if s.Now() != 5*Millisecond {
		t.Errorf("clock = %v, want 5ms", s.Now())
	}
}

func TestTimerReleaseRecycles(t *testing.T) {
	s := New(1)
	t1 := s.NewTimer(func() {})
	t1.Reset(Second)
	t1.Release()
	if s.Pending() != 0 {
		t.Error("Release should stop the timer")
	}
	t2 := s.NewTimer(func() {})
	if t1 != t2 {
		t.Error("freelist did not recycle the released timer")
	}
}

type probeHandler struct {
	got []any
	at  []Time
	s   *Simulator
}

func (p *probeHandler) OnEvent(arg any) {
	p.got = append(p.got, arg)
	p.at = append(p.at, p.s.Now())
}

func TestPostDispatchesHandler(t *testing.T) {
	s := New(1)
	h := &probeHandler{s: s}
	x, y := new(int), new(int)
	s.Post(20*Millisecond, h, y)
	s.Post(10*Millisecond, h, x)
	s.Run()
	if len(h.got) != 2 || h.got[0] != x || h.got[1] != y {
		t.Fatalf("handler got %v, want [x y] in time order", h.got)
	}
	if h.at[0] != 10*Millisecond || h.at[1] != 20*Millisecond {
		t.Errorf("handler fired at %v, want [10ms 20ms]", h.at)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var trace []Time
	s.At(10*Millisecond, func() {
		trace = append(trace, s.Now())
		s.After(5*Millisecond, func() {
			trace = append(trace, s.Now())
		})
	})
	s.Run()
	if len(trace) != 2 || trace[0] != 10*Millisecond || trace[1] != 15*Millisecond {
		t.Errorf("trace = %v, want [10ms 15ms]", trace)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(5*Millisecond, func() {})
	})
	s.Run()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		s := New(seed)
		var out []int
		var step func()
		n := 0
		step = func() {
			out = append(out, s.Rand().Intn(1000))
			n++
			if n < 50 {
				s.After(Time(1+s.Rand().Intn(100))*Millisecond, step)
			}
		}
		s.After(0, step)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different traces at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the clock never goes backwards.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := New(7)
		var fired []Time
		for _, d := range delays {
			s.At(Time(d)*Microsecond, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(0))}); err != nil {
		t.Error(err)
	}
}

// Property: stopping a random subset of timers fires exactly the others,
// and the queue holds live events only at every point.
func TestStopSubsetProperty(t *testing.T) {
	prop := func(delays []uint16, stopMask []bool) bool {
		s := New(3)
		fired := make(map[int]bool)
		timers := make([]*Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = s.NewTimer(func() { fired[i] = true })
			timers[i].Reset(Time(d) * Microsecond)
		}
		want := make(map[int]bool)
		stopped := 0
		for i := range delays {
			if i < len(stopMask) && stopMask[i] {
				timers[i].Stop()
				stopped++
			} else {
				want[i] = true
			}
		}
		if s.Pending() != len(delays)-stopped {
			return false // cancelled events must leave the heap eagerly
		}
		s.Run()
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved rearms preserve (time, scheduling-order) firing.
func TestResetOrderingProperty(t *testing.T) {
	prop := func(moves []uint16) bool {
		s := New(9)
		const n = 8
		var fired []Time
		timers := make([]*Timer, n)
		for i := range timers {
			timers[i] = s.NewTimer(func() { fired = append(fired, s.Now()) })
			timers[i].Reset(Time(i+1) * Millisecond)
		}
		for k, m := range moves {
			timers[k%n].Reset(Time(m) * Microsecond)
		}
		s.Run()
		if len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// The packet-hop path (Post) must not allocate once the heap is warm.
func TestPostZeroAlloc(t *testing.T) {
	s := New(1)
	h := &countHandler{}
	arg := new(int)
	for i := 0; i < 1024; i++ { // warm the heap's backing array
		s.Post(s.Now()+Time(i), h, arg)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		s.Post(s.Now()+Microsecond, h, arg)
		s.RunUntil(s.Now() + Millisecond)
	})
	if allocs != 0 {
		t.Errorf("Post+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// Rearming a live timer must not allocate.
func TestTimerResetZeroAlloc(t *testing.T) {
	s := New(1)
	tm := s.NewTimer(func() {})
	tm.Reset(Second)
	allocs := testing.AllocsPerRun(100, func() {
		tm.Reset(Second)
	})
	if allocs != 0 {
		t.Errorf("Reset allocated %.1f objects/op, want 0", allocs)
	}
}

type countHandler struct{ n int }

func (c *countHandler) OnEvent(arg any) { c.n++ }

func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(0, tick)
	s.Run()
}

// BenchmarkTimerChurn is the legacy stop-and-recreate pattern, kept for
// comparison against the rearm-in-place path (BenchmarkEngineTimerRearm
// at the repository root).
func BenchmarkTimerChurn(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	var prev *Timer
	for i := 0; i < b.N; i++ {
		prev.Stop()
		prev = s.NewTimer(func() {})
		prev.Reset(Second)
		if i%16 == 0 {
			s.RunUntil(s.Now() + Millisecond)
		}
	}
}

// BenchmarkPostHop measures the typed-event scheduling path in isolation.
func BenchmarkPostHop(b *testing.B) {
	s := New(1)
	h := &countHandler{}
	arg := new(int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Post(s.Now()+Microsecond, h, arg)
		if i%16 == 0 {
			s.RunUntil(s.Now() + Millisecond)
		}
	}
	s.Run()
}
