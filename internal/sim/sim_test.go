package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis() = %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v, want 250ms", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", order)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("clock = %v, want 30ms", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(10*Millisecond, func() { fired++ })
	s.At(20*Millisecond, func() { fired++ })
	s.RunUntil(15 * Millisecond)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 15*Millisecond {
		t.Errorf("clock = %v, want 15ms", s.Now())
	}
	s.RunUntil(25 * Millisecond)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.At(10*Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Active() {
		t.Error("stopped timer reports active")
	}
}

func TestTimerStopNil(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Error("Stop on nil timer should be false")
	}
	if tm.Active() {
		t.Error("nil timer should not be active")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var trace []Time
	s.At(10*Millisecond, func() {
		trace = append(trace, s.Now())
		s.After(5*Millisecond, func() {
			trace = append(trace, s.Now())
		})
	})
	s.Run()
	if len(trace) != 2 || trace[0] != 10*Millisecond || trace[1] != 15*Millisecond {
		t.Errorf("trace = %v, want [10ms 15ms]", trace)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(5*Millisecond, func() {})
	})
	s.Run()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		s := New(seed)
		var out []int
		var step func()
		n := 0
		step = func() {
			out = append(out, s.Rand().Intn(1000))
			n++
			if n < 50 {
				s.After(Time(1+s.Rand().Intn(100))*Millisecond, step)
			}
		}
		s.After(0, step)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different traces at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the clock never goes backwards.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := New(7)
		var fired []Time
		for _, d := range delays {
			s.At(Time(d)*Microsecond, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(0))}); err != nil {
		t.Error(err)
	}
}

// Property: stopping a random subset of timers fires exactly the others.
func TestStopSubsetProperty(t *testing.T) {
	prop := func(delays []uint16, stopMask []bool) bool {
		s := New(3)
		fired := make(map[int]bool)
		timers := make([]*Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = s.At(Time(d)*Microsecond, func() { fired[i] = true })
		}
		want := make(map[int]bool)
		for i := range delays {
			stopped := i < len(stopMask) && stopMask[i]
			if stopped {
				timers[i].Stop()
			} else {
				want[i] = true
			}
		}
		s.Run()
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(0, tick)
	s.Run()
}

func BenchmarkTimerChurn(b *testing.B) {
	// Models RTO timers: most timers are cancelled before firing.
	s := New(1)
	b.ResetTimer()
	var prev *Timer
	for i := 0; i < b.N; i++ {
		prev.Stop()
		prev = s.At(s.Now()+Second, func() {})
		if i%16 == 0 {
			s.RunUntil(s.Now() + Millisecond)
		}
	}
}
