package cc

import (
	"reflect"
	"strings"
	"testing"

	"mptcp/internal/core"
)

// wantNames is the canonical catalogue: the paper's five algorithms in
// presentation order, then the Linux-kernel successor family.
var wantNames = []string{"REGULAR", "EWTCP", "COUPLED", "SEMICOUPLED", "MPTCP", "OLIA", "BALIA", "WVEGAS"}

func TestNamesOrder(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, wantNames) {
		t.Errorf("Names() = %v, want %v", got, wantNames)
	}
}

func TestNewByCanonicalName(t *testing.T) {
	for _, name := range Names() {
		alg, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if alg.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, alg.Name())
		}
	}
}

func TestLookupIsCaseInsensitive(t *testing.T) {
	for _, name := range []string{"mptcp", "Mptcp", " MPTCP ", "olia", "Balia", "wvegas", "uncoupled", "tcp", "Vegas"} {
		if _, err := New(name); err != nil {
			t.Errorf("New(%q): %v", name, err)
		}
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
}

func TestAliasesResolveToCanonical(t *testing.T) {
	for alias, want := range map[string]string{"UNCOUPLED": "REGULAR", "tcp": "REGULAR", "vegas": "WVEGAS"} {
		info, ok := Lookup(alias)
		if !ok || info.Name != want {
			t.Errorf("Lookup(%q) = (%v, %v), want canonical %q", alias, info.Name, ok, want)
		}
		alg, err := New(alias)
		if err != nil || alg.Name() != want {
			t.Errorf("New(%q) = (%v, %v), want algorithm %q", alias, alg, err, want)
		}
	}
}

func TestUnknownNameListsCatalogue(t *testing.T) {
	_, err := New("bogus")
	if err == nil {
		t.Fatal("New(bogus) should fail")
	}
	if !strings.Contains(err.Error(), "MPTCP") || !strings.Contains(err.Error(), "OLIA") {
		t.Errorf("error should list the catalogue, got: %v", err)
	}
}

func TestNewReturnsFreshInstances(t *testing.T) {
	// Stateful algorithms are owned by one connection each; the
	// constructor must never hand out a shared instance.
	for _, name := range []string{"MPTCP", "OLIA", "WVEGAS"} {
		a, _ := New(name)
		b, _ := New(name)
		if a == b {
			t.Errorf("New(%q) returned the same instance twice", name)
		}
	}
}

func TestInfoMetadataComplete(t *testing.T) {
	infos := Infos()
	if len(infos) != len(wantNames) {
		t.Fatalf("got %d infos, want %d", len(infos), len(wantNames))
	}
	for _, info := range infos {
		if info.Desc == "" || info.Ref == "" {
			t.Errorf("%s: missing Desc/Ref metadata", info.Name)
		}
	}
}

func TestHooksMetadataMatchesImplementations(t *testing.T) {
	want := map[string][]string{
		"REGULAR":     nil,
		"EWTCP":       nil,
		"COUPLED":     nil,
		"SEMICOUPLED": nil,
		"MPTCP":       nil,
		"OLIA":        {"OnLoss"},
		"BALIA":       nil,
		"WVEGAS":      {"OnRTTSample", "OnLoss"},
	}
	for _, info := range Infos() {
		if !reflect.DeepEqual(info.Hooks, want[info.Name]) {
			t.Errorf("%s hooks = %v, want %v", info.Name, info.Hooks, want[info.Name])
		}
	}
	if info, _ := Lookup("WVEGAS"); !info.DelayBased {
		t.Error("WVEGAS should be marked delay-based")
	}
}

func TestHelpMentionsEveryAlgorithm(t *testing.T) {
	h := Help()
	for _, name := range Names() {
		if !strings.Contains(h, name) {
			t.Errorf("Help() omits %s", name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Info{Name: "MPTCP"}, func() core.Algorithm { return &core.MPTCP{} })
}

func TestRegisterRejectsNameMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched constructor name did not panic")
		}
	}()
	Register(Info{Name: "NOT-REGULAR"}, func() core.Algorithm { return core.Regular{} })
}
