package cc

import "mptcp/internal/core"

// The paper's five algorithms, implemented in internal/core, register
// here so every consumer — CLIs, the tournament grid, tests — sees one
// uniform catalogue. Ranks 0–4 keep the paper's presentation order
// ahead of the kernel successor family (ranks 5+).
func init() {
	Register(Info{
		Name:    "REGULAR",
		Aliases: []string{"UNCOUPLED", "TCP"},
		Desc:    "uncoupled NewReno on every subflow (single-path baseline; unfair strawman with >1)",
		Ref:     "NSDI'11 §2.1",
		Rank:    0,
	}, func() core.Algorithm { return core.Regular{} })
	Register(Info{
		Name: "EWTCP",
		Desc: "equally-weighted TCP: each subflow runs weighted AIMD at 1/n of a TCP's share",
		Ref:  "NSDI'11 §2.1",
		Rank: 1,
	}, func() core.Algorithm { return core.EWTCP{} })
	Register(Info{
		Name: "COUPLED",
		Desc: "fully coupled increase/decrease; moves all traffic to the least-congested path",
		Ref:  "NSDI'11 §2.2",
		Rank: 2,
	}, func() core.Algorithm { return core.Coupled{} })
	Register(Info{
		Name: "SEMICOUPLED",
		Desc: "coupled increase, per-subflow decrease; splits windows in proportion to 1/p_r",
		Ref:  "NSDI'11 §2.4",
		Rank: 3,
	}, func() core.Algorithm { return core.SemiCoupled{} })
	Register(Info{
		Name: "MPTCP",
		Desc: "the paper's eq. (1): semicoupled with RTT compensation and the 1/w_r cap",
		Ref:  "NSDI'11 §2, RFC 6356",
		Rank: 4,
	}, func() core.Algorithm { return &core.MPTCP{} })
}
