// Package cc is the pluggable congestion-control subsystem: a registry
// of named algorithm constructors with per-algorithm metadata, plus the
// extended algorithm contract (optional hooks) that post-paper
// algorithms need.
//
// internal/core keeps the paper's pure window arithmetic and defines the
// base core.Algorithm contract (Increase/Decrease); this package owns
//
//   - construction by name: algorithms self-register a constructor and
//     an Info record in their file's init, and New resolves names (and
//     aliases) case-insensitively. Callers — the CLI tools, the
//     experiment registry, tests — never hard-code the algorithm list;
//     they derive it from Names/Infos.
//   - the optional hooks RTTObserver and LossObserver, which both
//     endpoint stacks (internal/transport and internal/mptcpnet) probe
//     for once at connection setup and invoke on the corresponding
//     protocol events. Loss-based AIMD algorithms ignore them;
//     delay-based ones (wVegas) and algorithms with per-loss-event state
//     (OLIA) need them.
//
// Besides the paper's five algorithms (registered from internal/core),
// the package implements the Linux-kernel successor family surveyed by
// Kimura & Loureiro, "MPTCP Linux Kernel Congestion Controls": OLIA
// (olia.go), BALIA (balia.go) and the delay-based wVegas (wvegas.go).
//
// Algorithm instances returned by New are fresh per call and, like
// core's, are owned by exactly one connection: stateful algorithms
// (MPTCP's cache, OLIA's inter-loss counters, wVegas's per-path epochs)
// must never be shared across connections or goroutines.
package cc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mptcp/internal/core"
)

// RTTObserver is an optional extension of core.Algorithm: OnRTTSample is
// invoked for every new RTT measurement taken on subflow r, before any
// congestion-avoidance Increase calls for the ACK that carried the
// sample. subs is the connection's live congestion state (read-only for
// the observer) and rtt is the raw, unsmoothed sample in seconds.
// Delay-based algorithms use the stream of samples to estimate
// propagation delay (their minimum) and queuing delay (the excess).
type RTTObserver interface {
	OnRTTSample(subs []core.Subflow, r int, rtt float64)
}

// LossObserver is an optional extension of core.Algorithm: OnLoss is
// invoked once per loss event on subflow r — fast-retransmit entry or a
// retransmission timeout — immediately before the algorithm's Decrease
// is applied for that event. Algorithms that keep per-loss-event state
// (e.g. OLIA's inter-loss ACK counters) update it here; Decrease stays
// pure window arithmetic.
type LossObserver interface {
	OnLoss(subs []core.Subflow, r int)
}

// Info is the registry metadata of one algorithm.
type Info struct {
	// Name is the canonical (upper-case) algorithm name.
	Name string
	// Aliases are alternative names accepted by New (e.g. REGULAR's
	// UNCOUPLED and TCP). Lookup of names and aliases is
	// case-insensitive.
	Aliases []string
	// Desc is a one-line description for CLI help and docs.
	Desc string
	// Ref names the algorithm's origin (paper section, RFC, kernel
	// module).
	Ref string
	// DelayBased marks algorithms driven by queuing delay rather than
	// loss.
	DelayBased bool
	// Hooks lists the optional hook interfaces the algorithm
	// implements ("OnRTTSample", "OnLoss"). Filled in by Register from
	// the constructor's concrete type; never hand-maintained.
	Hooks []string
	// Rank orders Names/Infos for presentation: the paper's five
	// algorithms in presentation order, then the kernel successors.
	Rank int
}

type entry struct {
	info Info
	ctor func() core.Algorithm
}

var (
	mu      sync.RWMutex
	byName  = map[string]*entry{}
	entries []*entry
)

// Register adds an algorithm constructor under info.Name and its
// aliases. It is called from init functions; duplicate names (case-
// insensitive, across names and aliases) panic. The constructor must
// return a fresh instance on every call. Register fills info.Hooks by
// probing which optional interfaces the constructed type implements.
func Register(info Info, ctor func() core.Algorithm) {
	if info.Name == "" || ctor == nil {
		panic("cc: Register needs a name and a constructor")
	}
	probe := ctor()
	if probe == nil {
		panic("cc: constructor for " + info.Name + " returned nil")
	}
	if probe.Name() != info.Name {
		panic(fmt.Sprintf("cc: %s constructor builds algorithm named %q", info.Name, probe.Name()))
	}
	info.Hooks = hooksOf(probe)

	mu.Lock()
	defer mu.Unlock()
	e := &entry{info: info, ctor: ctor}
	for _, key := range append([]string{info.Name}, info.Aliases...) {
		k := strings.ToLower(key)
		if _, dup := byName[k]; dup {
			panic("cc: duplicate algorithm name " + key)
		}
		byName[k] = e
	}
	entries = append(entries, e)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].info.Rank != entries[j].info.Rank {
			return entries[i].info.Rank < entries[j].info.Rank
		}
		return entries[i].info.Name < entries[j].info.Name
	})
}

// hooksOf reports which optional hook interfaces a implements.
func hooksOf(a core.Algorithm) []string {
	var h []string
	if _, ok := a.(RTTObserver); ok {
		h = append(h, "OnRTTSample")
	}
	if _, ok := a.(LossObserver); ok {
		h = append(h, "OnLoss")
	}
	return h
}

// New constructs a fresh instance of the algorithm registered under
// name (or one of its aliases). Lookup is case-insensitive and ignores
// surrounding whitespace.
func New(name string) (core.Algorithm, error) {
	mu.RLock()
	e, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cc: unknown algorithm %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return e.ctor(), nil
}

// Lookup returns the Info registered under name (or an alias),
// case-insensitively.
func Lookup(name string) (Info, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Info{}, false
	}
	return e.info, true
}

// Names lists the canonical algorithm names in Rank order (the paper's
// five, then the kernel successor family).
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.info.Name
	}
	return out
}

// Infos returns the registered metadata in the same order as Names.
func Infos() []Info {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = e.info
	}
	return out
}

// Help renders a one-line-per-algorithm summary for CLI usage text.
func Help() string {
	var sb strings.Builder
	for _, info := range Infos() {
		fmt.Fprintf(&sb, "  %-12s %s (%s)\n", info.Name, info.Desc, info.Ref)
	}
	return sb.String()
}
