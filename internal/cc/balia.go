package cc

import "mptcp/internal/core"

// BALIA is the Balanced Linked Adaptation algorithm of Peng, Walid,
// Hickey & Low ("Multipath TCP: Analysis, Design, and Implementation",
// ToN 2016; Linux mptcp_balia.c), designed to balance TCP-friendliness
// against responsiveness between LIA's and OLIA's operating points.
// With per-path rates x_k = w_k/rtt_k and α_r = max_k(x_k)/x_r (α_r ≥ 1,
// equal to 1 on the fastest path), each ACK on subflow r increases the
// window by
//
//	w_r/rtt_r² / (Σ_k x_k)² · (1+α_r)/2 · (4+α_r)/5
//
// and each loss on r decreases it to
//
//	w_r · (1 − min(α_r, 1.5)/2).
//
// The increase factor (1+α)(4+α)/10 is exactly 1 on the best path
// (recovering the RTT-compensated coupled increase) and grows for
// slower paths, keeping probe traffic alive there; the decrease removes
// a min(α,1.5)/2 ∈ [1/2, 3/4] fraction of the window, so the window
// left after a loss is between w_r/4 and w_r/2 — slower paths back off
// harder. With a single subflow both rules reduce to
// NewReno (increase 1/w, halve on loss). BALIA is stateless — pure
// window arithmetic over the shared congestion state, no hooks.
type BALIA struct{}

func (BALIA) Name() string { return "BALIA" }

// alphaAndSum returns α_r = max_k(x_k)/x_r and Σ_k x_k.
func (BALIA) alphaAndSum(subs []core.Subflow, r int) (alpha, sum float64) {
	maxX := 0.0
	for i := range subs {
		x := flooredCwnd(&subs[i]) / subflowRTT(&subs[i])
		sum += x
		if x > maxX {
			maxX = x
		}
	}
	xr := flooredCwnd(&subs[r]) / subflowRTT(&subs[r])
	return maxX / xr, sum
}

func (b BALIA) Increase(subs []core.Subflow, r int) float64 {
	if len(subs) == 1 {
		return 1 / flooredCwnd(&subs[0])
	}
	alpha, sum := b.alphaAndSum(subs, r)
	wr := flooredCwnd(&subs[r])
	rtt := subflowRTT(&subs[r])
	return (wr / (rtt * rtt)) / (sum * sum) * ((1 + alpha) / 2) * ((4 + alpha) / 5)
}

func (b BALIA) Decrease(subs []core.Subflow, r int) float64 {
	w := subs[r].Cwnd
	if len(subs) == 1 {
		w /= 2
	} else {
		alpha, _ := b.alphaAndSum(subs, r)
		if alpha > 1.5 {
			alpha = 1.5
		}
		w *= 1 - alpha/2
	}
	if w < core.MinCwnd {
		w = core.MinCwnd
	}
	return w
}

func init() {
	Register(Info{
		Name: "BALIA",
		Desc: "balanced linked adaptation: trades off TCP-friendliness vs responsiveness between LIA and OLIA",
		Ref:  "Peng et al. ToN'16, Linux mptcp_balia",
		Rank: 6,
	}, func() core.Algorithm { return BALIA{} })
}
