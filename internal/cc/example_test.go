package cc_test

import (
	"fmt"
	"strings"

	"mptcp/internal/cc"
)

// Constructing an algorithm by registry name: lookup is case-
// insensitive and accepts aliases (TCP and UNCOUPLED both name the
// single-path baseline REGULAR).
func ExampleNew() {
	alg, err := cc.New("olia")
	if err != nil {
		panic(err)
	}
	fmt.Println(alg.Name())
	tcp, _ := cc.New("TCP")
	fmt.Println(tcp.Name())
	// Output:
	// OLIA
	// REGULAR
}

// The registry drives every algorithm list in the repo — the CLI help,
// the tournament/dynamics/schedgrid grids, the property suites — so
// registering a new algorithm file is the only step needed to appear
// everywhere. Names are in presentation order: the paper's five, then
// the Linux-kernel successor family.
func ExampleNames() {
	fmt.Println(strings.Join(cc.Names(), " "))
	// Output:
	// REGULAR EWTCP COUPLED SEMICOUPLED MPTCP OLIA BALIA WVEGAS
}

// Per-algorithm metadata records which optional hooks an implementation
// uses; the endpoint stacks resolve the same interfaces by type
// assertion at connection setup.
func ExampleLookup() {
	info, _ := cc.Lookup("wvegas")
	fmt.Println(info.Name, info.DelayBased, strings.Join(info.Hooks, ","))
	// Output:
	// WVEGAS true OnRTTSample,OnLoss
}
