package cc

import "mptcp/internal/core"

// OLIA is the Opportunistic Linked-Increases Algorithm of Khalili,
// Gast, Popović & Le Boudec ("MPTCP is not Pareto-optimal", CoNEXT'12;
// Linux mptcp_olia.c). It fixes LIA/MPTCP's non-Pareto-optimality: upon
// each ACK on subflow r the window grows by
//
//	w_r/rtt_r² / (Σ_k w_k/rtt_k)²  +  α_r/w_r
//
// and halves on loss. The first term is the RTT-compensated coupled
// increase (it balances congestion); α_r opportunistically re-routes
// window between paths. With B the set of presumed-best paths (largest
// inter-loss distance per RTT, i.e. lowest estimated loss rate ℓ_r ≈
// 1/p_r, ranked by ℓ_r²/rtt_r²) and M the set of paths with the largest
// window:
//
//	α_r = +1/(n·|B\M|)  if r is a best path without a maximal window,
//	α_r = −1/(n·|M|)    if r has a maximal window and B\M is non-empty,
//	α_r = 0             otherwise.
//
// Best paths with small windows get extra probe traffic; saturated
// paths give a little back — so every path keeps measurable probe
// traffic while the windows drift toward the best paths.
//
// OLIA estimates ℓ_r from per-loss-event state: the ACKs counted since
// the last loss on r and between the two preceding losses (the larger
// of the two, so a path is not written off the instant a loss hits). It
// therefore implements the LossObserver hook; RTTs come from the
// smoothed estimates the transport already maintains in core.Subflow.
type OLIA struct {
	l1 []float64 // packets ACKed on r since the last loss on r
	l0 []float64 // packets ACKed between the two preceding losses on r
}

func (*OLIA) Name() string { return "OLIA" }

func (o *OLIA) ensure(n int) {
	for len(o.l1) < n {
		o.l1 = append(o.l1, 0)
		o.l0 = append(o.l0, 0)
	}
}

// interLoss is the inter-loss distance estimate ℓ_r in packets, at
// least 1 so a freshly started path ranks by RTT alone.
func (o *OLIA) interLoss(r int) float64 {
	l := o.l1[r]
	if o.l0[r] > l {
		l = o.l0[r]
	}
	if l < 1 {
		l = 1
	}
	return l
}

func subflowRTT(s *core.Subflow) float64 {
	if s.SRTT > 0 {
		return s.SRTT
	}
	return core.DefaultSRTT
}

func flooredCwnd(s *core.Subflow) float64 {
	if s.Cwnd < core.MinCwnd {
		return core.MinCwnd
	}
	return s.Cwnd
}

func (o *OLIA) Increase(subs []core.Subflow, r int) float64 {
	n := len(subs)
	o.ensure(n)
	o.l1[r]++ // one more ACK since the last loss on r
	if n == 1 {
		return 1 / flooredCwnd(&subs[0])
	}
	den := 0.0
	for i := range subs {
		den += flooredCwnd(&subs[i]) / subflowRTT(&subs[i])
	}
	wr := flooredCwnd(&subs[r])
	rtt := subflowRTT(&subs[r])
	return (wr/(rtt*rtt))/(den*den) + o.alpha(subs, r)/wr
}

// alpha computes α_r from the current best-path and max-window sets.
// Set membership uses a small relative tolerance so exactly-equal
// floating-point windows tie rather than flap.
func (o *OLIA) alpha(subs []core.Subflow, r int) float64 {
	const tol = 1 - 1e-9
	n := len(subs)
	bestQual, maxW := 0.0, 0.0
	for i := range subs {
		if q := o.quality(subs, i); q > bestQual {
			bestQual = q
		}
		if w := flooredCwnd(&subs[i]); w > maxW {
			maxW = w
		}
	}
	var nBnotM, nM int
	rInBnotM, rInM := false, false
	for i := range subs {
		inM := flooredCwnd(&subs[i]) >= maxW*tol
		inB := o.quality(subs, i) >= bestQual*tol
		if inM {
			nM++
			if i == r {
				rInM = true
			}
		}
		if inB && !inM {
			nBnotM++
			if i == r {
				rInBnotM = true
			}
		}
	}
	if nBnotM == 0 {
		return 0
	}
	switch {
	case rInBnotM:
		return 1 / (float64(n) * float64(nBnotM))
	case rInM:
		return -1 / (float64(n) * float64(nM))
	}
	return 0
}

// quality ranks paths by ℓ_r²/rtt_r², proportional to the square of the
// rate a single-path TCP would achieve there (√(2/p_r)/rtt_r with
// p_r ≈ 1/ℓ_r) — the OLIA paper's "best paths" criterion.
func (o *OLIA) quality(subs []core.Subflow, i int) float64 {
	l := o.interLoss(i)
	rtt := subflowRTT(&subs[i])
	return (l * l) / (rtt * rtt)
}

func (o *OLIA) Decrease(subs []core.Subflow, r int) float64 {
	w := subs[r].Cwnd / 2
	if w < core.MinCwnd {
		w = core.MinCwnd
	}
	return w
}

// OnLoss rotates the inter-loss counters: the window that just ended
// becomes the previous one and a new count starts.
func (o *OLIA) OnLoss(subs []core.Subflow, r int) {
	o.ensure(len(subs))
	o.l0[r] = o.l1[r]
	o.l1[r] = 0
}

var _ LossObserver = (*OLIA)(nil)

func init() {
	Register(Info{
		Name: "OLIA",
		Desc: "opportunistic linked increases: Pareto-optimality fix, probe traffic steered to the best paths",
		Ref:  "Khalili et al. CoNEXT'12, Linux mptcp_olia",
		Rank: 5,
	}, func() core.Algorithm { return &OLIA{} })
}
