package cc

import (
	"math"
	"math/rand"
	"testing"

	"mptcp/internal/core"
)

// aimdEquilibrium drives alg through the same per-round loss model as
// internal/core's property tests and returns each subflow's
// time-averaged window over the second half of the run — extended for
// this package's hook contract: every round feeds the path RTT through
// OnRTTSample and every loss event fires OnLoss before Decrease,
// mirroring the transport's wiring.
func aimdEquilibrium(alg core.Algorithm, loss, rtt []float64, rounds int, seed int64) []float64 {
	s := make([]core.Subflow, len(loss))
	for i := range s {
		s[i] = core.Subflow{Cwnd: 1, SSThresh: math.Inf(1), SRTT: rtt[i]}
	}
	rttObs, _ := alg.(RTTObserver)
	lossObs, _ := alg.(LossObserver)
	rng := rand.New(rand.NewSource(seed))
	avg := make([]float64, len(s))
	samples := 0
	for round := 0; round < rounds; round++ {
		for r := range s {
			if rttObs != nil {
				rttObs.OnRTTSample(s, r, rtt[r])
			}
			w := int(s[r].Cwnd)
			if w < 1 {
				w = 1
			}
			if rng.Float64() < 1-math.Pow(1-loss[r], float64(w)) {
				if lossObs != nil {
					lossObs.OnLoss(s, r)
				}
				s[r].Cwnd = alg.Decrease(s, r)
			} else {
				for k := 0; k < w; k++ {
					s[r].Cwnd += alg.Increase(s, r)
				}
				if s[r].Cwnd < core.MinCwnd {
					s[r].Cwnd = core.MinCwnd
				}
			}
		}
		if round >= rounds/2 {
			for r := range s {
				avg[r] += s[r].Cwnd
			}
			samples++
		}
	}
	for r := range avg {
		avg[r] /= float64(samples)
	}
	return avg
}

// TestOLIAProperties checks OLIA's defining behaviour: it favours the
// best (least-congested) paths without starving the others — every path
// keeps real probe traffic, unlike COUPLED, which pins losers at the
// window floor.
func TestOLIAProperties(t *testing.T) {
	t.Run("single-path-reduces-to-TCP", func(t *testing.T) {
		alg := &OLIA{}
		s := []core.Subflow{{Cwnd: 16, SRTT: 0.1}}
		if got := alg.Increase(s, 0); math.Abs(got-1.0/16) > 1e-12 {
			t.Errorf("increase = %v, want 1/16", got)
		}
		if got := alg.Decrease(s, 0); got != 8 {
			t.Errorf("decrease -> %v, want 8", got)
		}
	})
	t.Run("favours-least-congested-path", func(t *testing.T) {
		// Path 0 is 10× less congested: its window must dominate, and
		// flipping the loss rates must flip the allocation.
		avg := aimdEquilibrium(&OLIA{}, []float64{0.002, 0.02}, []float64{0.1, 0.1}, 40000, 5)
		if avg[0] < 1.5*avg[1] {
			t.Errorf("windows (%.2f, %.2f): best path should dominate", avg[0], avg[1])
		}
		flipped := aimdEquilibrium(&OLIA{}, []float64{0.02, 0.002}, []float64{0.1, 0.1}, 40000, 5)
		if flipped[1] < 1.5*flipped[0] {
			t.Errorf("flipped windows (%.2f, %.2f): allocation did not follow congestion", flipped[0], flipped[1])
		}
	})
	t.Run("keeps-probe-traffic-on-the-worse-path", func(t *testing.T) {
		// The 10×-worse path must still carry a measurable window above
		// the MinCwnd probe floor: OLIA halves on loss instead of
		// slamming to the floor, so the path keeps oscillating and its
		// loss rate stays observable (never write a path off).
		avg := aimdEquilibrium(&OLIA{}, []float64{0.002, 0.02}, []float64{0.1, 0.1}, 40000, 5)
		if avg[1] < 1.4*core.MinCwnd {
			t.Errorf("worse path window %.2f stuck at the probe floor", avg[1])
		}
	})
	t.Run("alpha-steers-window-toward-best-small-path", func(t *testing.T) {
		// The Pareto fix itself: when the presumed-best path (largest
		// inter-loss distance) does not hold the largest window, it gets
		// the +1/(n·|B\M|) boost and the max-window path pays
		// −1/(n·|M|), re-routing window toward the better path.
		alg := &OLIA{}
		s := []core.Subflow{{Cwnd: 50, SRTT: 0.1}, {Cwnd: 2, SRTT: 0.1}}
		for i := 0; i < 10; i++ {
			alg.Increase(s, 0)
		}
		for i := 0; i < 100; i++ {
			alg.Increase(s, 1) // path 1: 10× the inter-loss distance, tiny window
		}
		if got, want := alg.alpha(s, 1), 0.5; math.Abs(got-want) > 1e-12 {
			t.Errorf("best small path alpha = %v, want +1/(n·|B\\M|) = %v", got, want)
		}
		if got, want := alg.alpha(s, 0), -0.5; math.Abs(got-want) > 1e-12 {
			t.Errorf("max-window path alpha = %v, want −1/(n·|M|) = %v", got, want)
		}
		// With the best path also holding the largest window, B\M is
		// empty and no window is re-routed.
		alg2 := &OLIA{}
		for i := 0; i < 100; i++ {
			alg2.Increase(s, 0)
		}
		if got := alg2.alpha(s, 0); got != 0 {
			t.Errorf("alpha = %v when B ⊆ M, want 0", got)
		}
	})
	t.Run("splits-equally-on-symmetric-paths", func(t *testing.T) {
		avg := aimdEquilibrium(&OLIA{}, []float64{0.01, 0.01}, []float64{0.1, 0.1}, 40000, 7)
		ratio := avg[0] / avg[1]
		if ratio < 0.7 || ratio > 1/0.7 {
			t.Errorf("windows (%.2f, %.2f), ratio %.2f: symmetric paths should split evenly", avg[0], avg[1], ratio)
		}
	})
	t.Run("interloss-state-follows-losses", func(t *testing.T) {
		alg := &OLIA{}
		s := []core.Subflow{{Cwnd: 10, SRTT: 0.1}, {Cwnd: 10, SRTT: 0.1}}
		for i := 0; i < 5; i++ {
			alg.Increase(s, 0)
		}
		if alg.interLoss(0) != 5 {
			t.Fatalf("interLoss = %v after 5 ACKs, want 5", alg.interLoss(0))
		}
		alg.OnLoss(s, 0)
		// The previous inter-loss window is retained (max of the two),
		// so one loss does not write the path's estimate off.
		if alg.interLoss(0) != 5 {
			t.Errorf("interLoss = %v right after a loss, want previous window 5", alg.interLoss(0))
		}
		for i := 0; i < 9; i++ {
			alg.Increase(s, 0)
		}
		if alg.interLoss(0) != 9 {
			t.Errorf("interLoss = %v, want the larger recent window 9", alg.interLoss(0))
		}
	})
}

// TestBALIAProperties pins BALIA to its documented bounds: the increase
// is the RTT-compensated coupled term scaled by (1+α)(4+α)/10 ≥ 1
// (exactly 1 on the fastest path), the decrease removes between a
// quarter and half of the window (multiplier min(α,1.5)/2 ∈ [1/2,3/4]),
// and a single subflow behaves exactly like NewReno.
func TestBALIAProperties(t *testing.T) {
	alg := BALIA{}
	t.Run("single-path-reduces-to-TCP", func(t *testing.T) {
		s := []core.Subflow{{Cwnd: 20, SRTT: 0.05}}
		if got := alg.Increase(s, 0); math.Abs(got-1.0/20) > 1e-12 {
			t.Errorf("increase = %v, want 1/20", got)
		}
		if got := alg.Decrease(s, 0); got != 10 {
			t.Errorf("decrease -> %v, want 10", got)
		}
	})
	t.Run("symmetric-paths-closed-form", func(t *testing.T) {
		// Equal windows and RTTs: α = 1 for every path, the scale factor
		// is exactly 1, and the RTTs cancel, leaving 1/(n²·w) — the same
		// value MPTCP's eq. (1) gives on symmetric paths.
		s := []core.Subflow{{Cwnd: 10, SRTT: 0.1}, {Cwnd: 10, SRTT: 0.1}}
		want := 1.0 / (4 * 10)
		for r := 0; r < 2; r++ {
			if got := alg.Increase(s, r); math.Abs(got-want) > 1e-12 {
				t.Errorf("subflow %d increase = %v, want %v", r, got, want)
			}
		}
	})
	t.Run("bounds-hold-on-random-states", func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 500; trial++ {
			n := 2 + rng.Intn(3)
			s := make([]core.Subflow, n)
			for i := range s {
				s[i] = core.Subflow{
					Cwnd: 1 + rng.Float64()*199,
					SRTT: 0.01 + rng.Float64()*0.49,
				}
			}
			// The fastest path (max w/rtt) has α = 1: its increase is
			// exactly the coupled base term.
			best, bestX := 0, 0.0
			for i := range s {
				if x := s[i].Cwnd / s[i].SRTT; x > bestX {
					best, bestX = i, x
				}
			}
			sum := 0.0
			for i := range s {
				sum += s[i].Cwnd / s[i].SRTT
			}
			for r := 0; r < n; r++ {
				base := (s[r].Cwnd / (s[r].SRTT * s[r].SRTT)) / (sum * sum)
				inc := alg.Increase(s, r)
				if inc < base-1e-12 {
					t.Fatalf("trial %d subflow %d: increase %v below coupled base %v", trial, r, inc, base)
				}
				if r == best && math.Abs(inc-base) > 1e-9*base {
					t.Fatalf("trial %d: fastest path increase %v != base %v", trial, inc, base)
				}
				dec := alg.Decrease(s, r)
				lo := math.Max(core.MinCwnd, s[r].Cwnd/4)
				hi := math.Max(core.MinCwnd, s[r].Cwnd/2)
				if dec < lo-1e-9 || dec > hi+1e-9 {
					t.Fatalf("trial %d subflow %d: decrease -> %v outside [%v, %v]", trial, r, dec, lo, hi)
				}
			}
		}
	})
	t.Run("splits-equally-on-symmetric-paths", func(t *testing.T) {
		avg := aimdEquilibrium(BALIA{}, []float64{0.01, 0.01}, []float64{0.1, 0.1}, 40000, 11)
		ratio := avg[0] / avg[1]
		if ratio < 0.7 || ratio > 1/0.7 {
			t.Errorf("windows (%.2f, %.2f), ratio %.2f: symmetric paths should split evenly", avg[0], avg[1], ratio)
		}
	})
}

// TestWVegasQueuingDelayBackoff drives wVegas directly through its
// hook + epoch machinery: while RTT samples sit at the propagation
// delay the window gains one packet per RTT; once queuing delay pushes
// the estimated backlog past the path's α share, the epoch's net window
// delta turns negative, stepping down to w·baseRTT/rtt.
func TestWVegasQueuingDelayBackoff(t *testing.T) {
	alg := &WVegas{}
	s := []core.Subflow{
		{Cwnd: 20, SSThresh: math.Inf(1), SRTT: 0.1},
		{Cwnd: 20, SSThresh: math.Inf(1), SRTT: 0.1},
	}
	epoch := func(rtt float64) float64 {
		for i := 0; i < 5; i++ {
			alg.OnRTTSample(s, 0, rtt)
		}
		delta := 0.0
		for i := 0; i < int(s[0].Cwnd); i++ {
			delta += alg.Increase(s, 0)
		}
		return delta
	}

	// Epoch 1 pins baseRTT at 100 ms; with zero queuing delay the window
	// grows by exactly one packet per RTT.
	if d := epoch(0.1); d != 1 {
		t.Errorf("no-queue epoch delta = %v, want +1", d)
	}
	// Mild queuing (2 ms) stays below the α share: still growing.
	if d := epoch(0.102); d != 1 {
		t.Errorf("mild-queue epoch delta = %v, want +1", d)
	}
	// Heavy queuing: rtt 2.5× baseRTT means diff = 20·0.15/0.25 = 12
	// packets queued, past α = weight·TotalAlpha = 5; the window steps
	// down to w·baseRTT/rtt = 8.
	d := epoch(0.25)
	if d >= 0 {
		t.Fatalf("queue-growth epoch delta = %v, want negative backoff", d)
	}
	if want := 20*0.1/0.25 - 20; math.Abs(d-want) > 1e-9 {
		t.Errorf("backoff delta = %v, want %v", d, want)
	}

	t.Run("loss-resets-the-epoch", func(t *testing.T) {
		fresh := &WVegas{}
		ss := []core.Subflow{{Cwnd: 4, SSThresh: math.Inf(1), SRTT: 0.1}}
		fresh.OnRTTSample(ss, 0, 0.1)
		fresh.Increase(ss, 0) // partial epoch: 1 of 4 ACKs
		fresh.OnLoss(ss, 0)
		if st := fresh.st[0]; st.acked != 0 || st.cnt != 0 || st.sumRTT != 0 {
			t.Errorf("epoch state %+v not reset on loss", st)
		}
		if got := fresh.Decrease(ss, 0); got != 2 {
			t.Errorf("loss decrease -> %v, want halving to 2", got)
		}
	})

	t.Run("single-path-epoch-matches-vegas", func(t *testing.T) {
		// One path owns the whole TotalAlpha budget: backoff only when
		// more than 10 packets sit queued.
		one := &WVegas{}
		ss := []core.Subflow{{Cwnd: 30, SSThresh: math.Inf(1), SRTT: 0.1}}
		for i := 0; i < 3; i++ {
			one.OnRTTSample(ss, 0, 0.1)
		}
		for i := 0; i < 30; i++ {
			one.Increase(ss, 0)
		}
		// diff = 30·(0.12−0.1)/0.12 = 5 < 10: keep growing.
		for i := 0; i < 3; i++ {
			one.OnRTTSample(ss, 0, 0.12)
		}
		delta := 0.0
		for i := 0; i < 30; i++ {
			delta += one.Increase(ss, 0)
		}
		if delta != 1 {
			t.Errorf("below-budget epoch delta = %v, want +1", delta)
		}
	})
}
