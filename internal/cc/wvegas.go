package cc

import "mptcp/internal/core"

// DefaultTotalAlpha is wVegas's default target for the total number of
// packets the connection keeps queued across all its paths (the kernel
// module's total_alpha).
const DefaultTotalAlpha = 10

// WVegas is the weighted Vegas algorithm of Cao, Xu & Fu ("Delay-based
// congestion control for multipath TCP", ICNP 2012; Linux
// mptcp_wvegas.c): a delay-based controller that uses queuing delay,
// not loss, as its congestion signal, and shifts traffic between paths
// by adapting per-path weights.
//
// Per subflow r it tracks baseRTT_r (the minimum RTT observed, an
// estimate of the propagation delay, via the OnRTTSample hook) and,
// once per RTT of ACKs in congestion avoidance, estimates its backlog
// in the path's queue:
//
//	diff_r = w_r · (rtt_r − baseRTT_r) / rtt_r   [packets queued]
//
// The connection aims to keep TotalAlpha packets queued in total,
// apportioned by each path's share of the aggregate rate: α_r =
// max(1, weight_r·TotalAlpha) with weight_r = (w_r/baseRTT_r) / Σ_k
// (w_k/baseRTT_k). While diff_r ≤ α_r the window grows by one packet
// per RTT; when diff_r exceeds α_r the window steps down to
// w_r·baseRTT_r/rtt_r, the value that would drain r's queue share —
// the queuing-delay backoff that lets wVegas yield before any queue
// overflows. Packet loss still halves the window (the delay signal is
// advisory; loss is authoritative), and a loss resets the measurement
// epoch via OnLoss.
type WVegas struct {
	// TotalAlpha is the connection-wide queued-packet target; 0 means
	// DefaultTotalAlpha.
	TotalAlpha float64

	st []wvState
}

type wvState struct {
	baseRTT float64 // minimum RTT sample seen, seconds; 0 = none yet
	sumRTT  float64 // sum of samples in the current epoch
	cnt     int     // samples in the current epoch
	acked   float64 // congestion-avoidance ACKs in the current epoch
}

func (*WVegas) Name() string { return "WVEGAS" }

func (v *WVegas) ensure(n int) {
	for len(v.st) < n {
		v.st = append(v.st, wvState{})
	}
}

func (v *WVegas) totalAlpha() float64 {
	if v.TotalAlpha > 0 {
		return v.TotalAlpha
	}
	return DefaultTotalAlpha
}

// OnRTTSample feeds one raw RTT measurement on subflow r.
func (v *WVegas) OnRTTSample(subs []core.Subflow, r int, rtt float64) {
	if rtt <= 0 {
		return
	}
	v.ensure(len(subs))
	st := &v.st[r]
	if st.baseRTT == 0 || rtt < st.baseRTT {
		st.baseRTT = rtt
	}
	st.sumRTT += rtt
	st.cnt++
}

// OnLoss discards the current epoch's measurements: the queue state
// that produced them died with the lost packet's window.
func (v *WVegas) OnLoss(subs []core.Subflow, r int) {
	v.ensure(len(subs))
	v.st[r].sumRTT, v.st[r].cnt, v.st[r].acked = 0, 0, 0
}

// Increase accumulates one congestion-avoidance ACK; at each epoch
// boundary (one window's worth of ACKs ≈ one RTT) it runs the Vegas
// update and returns the whole epoch's window delta — +1 while the
// path's queue share is below α_r, or a negative step down to
// w_r·baseRTT_r/rtt_r when queuing delay has grown past it. Between
// boundaries it returns 0.
func (v *WVegas) Increase(subs []core.Subflow, r int) float64 {
	v.ensure(len(subs))
	st := &v.st[r]
	st.acked++
	w := flooredCwnd(&subs[r])
	if st.acked < w {
		return 0
	}
	rtt := v.epochRTT(subs, r)
	st.sumRTT, st.cnt, st.acked = 0, 0, 0
	if st.baseRTT == 0 || rtt <= st.baseRTT {
		return 1 // no queuing observed: linear growth, one packet per RTT
	}
	diff := w * (rtt - st.baseRTT) / rtt
	if diff > v.alphaFor(subs, r) {
		target := w * st.baseRTT / rtt
		if target < core.MinCwnd {
			target = core.MinCwnd
		}
		return target - w // ≤ 0: back off to drain the excess queue
	}
	return 1
}

// epochRTT is the epoch's mean RTT sample, falling back to the smoothed
// estimate when the epoch carried no samples.
func (v *WVegas) epochRTT(subs []core.Subflow, r int) float64 {
	st := &v.st[r]
	if st.cnt > 0 {
		return st.sumRTT / float64(st.cnt)
	}
	return subflowRTT(&subs[r])
}

// alphaFor is subflow r's share of the connection's queued-packet
// budget, proportional to its share of the aggregate rate and at least
// one packet so every path keeps probing.
func (v *WVegas) alphaFor(subs []core.Subflow, r int) float64 {
	sum := 0.0
	for i := range subs {
		sum += v.rate(subs, i)
	}
	a := v.rate(subs, r) / sum * v.totalAlpha()
	if a < 1 {
		a = 1
	}
	return a
}

// rate estimates subflow i's throughput from its window and propagation
// delay (baseRTT when known, smoothed RTT otherwise).
func (v *WVegas) rate(subs []core.Subflow, i int) float64 {
	rtt := subflowRTT(&subs[i])
	if i < len(v.st) && v.st[i].baseRTT > 0 {
		rtt = v.st[i].baseRTT
	}
	return flooredCwnd(&subs[i]) / rtt
}

// Decrease halves the window: loss overrides the delay signal.
func (v *WVegas) Decrease(subs []core.Subflow, r int) float64 {
	w := subs[r].Cwnd / 2
	if w < core.MinCwnd {
		w = core.MinCwnd
	}
	return w
}

var (
	_ RTTObserver  = (*WVegas)(nil)
	_ LossObserver = (*WVegas)(nil)
)

func init() {
	Register(Info{
		Name:       "WVEGAS",
		Aliases:    []string{"VEGAS"},
		Desc:       "weighted Vegas: delay-based, backs off on queuing delay before queues overflow",
		Ref:        "Cao et al. ICNP'12, Linux mptcp_wvegas",
		DelayBased: true,
		Rank:       7,
	}, func() core.Algorithm { return &WVegas{} })
}
