package analyze

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"mptcp/internal/metrics"
)

// Diff compares two reports cell-by-cell: for every dimension tuple
// present in either input and every metric recorded under it, the diff
// reports both sides' mean and tail quantiles plus their absolute and
// relative deltas. Cells or metrics present on only one side render "-"
// on the missing side, so an A/B comparison surfaces coverage drift as
// loudly as value drift. Ordering is deterministic (group key, then
// metric name), matching the report's own contract.
func Diff(a, b *Report) []Section {
	var out []Section
	if sec, ok := diffGroups(
		fmt.Sprintf("Grid cell diff (A: %d records, B: %d records)", a.CellLines, b.CellLines),
		cellHeader[:7], a.cells, b.cells); ok {
		out = append(out, sec)
	}
	if sec, ok := diffGroups(
		fmt.Sprintf("Trial diff (A: %d records, B: %d records)", a.TrialLines, b.TrialLines),
		trialHeader[:1], a.trials, b.trials); ok {
		out = append(out, sec)
	}
	return out
}

var diffValueHeader = []string{"metric", "n_a", "n_b",
	"mean_a", "mean_b", "dmean", "dmean_pct",
	"p50_a", "p50_b", "dp50", "p99_a", "p99_b", "dp99"}

func diffGroups(title string, dimHeader []string, am, bm map[string]*group) (Section, bool) {
	if len(am) == 0 && len(bm) == 0 {
		return Section{}, false
	}
	keys := make([]string, 0, len(am)+len(bm))
	for k := range am {
		keys = append(keys, k)
	}
	for k := range bm {
		if _, dup := am[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	sec := Section{Title: title, Header: append(append([]string(nil), dimHeader...), diffValueHeader...)}
	for _, k := range keys {
		ga, gb := am[k], bm[k]
		dims := ga
		if dims == nil {
			dims = gb
		}
		for _, name := range unionMetricNames(ga, gb) {
			row := append([]string(nil), dims.dims...)
			row = append(row, name)
			var sa, sb *summaryView
			if ga != nil {
				sa = viewOf(ga.mets[name])
			}
			if gb != nil {
				sb = viewOf(gb.mets[name])
			}
			row = append(row, countCell(sa), countCell(sb))
			row = append(row, deltaCells(sa, sb, (*summaryView).mean)...)
			row = append(row, relCell(sa, sb))
			row = append(row, deltaCells(sa, sb, (*summaryView).p50)...)
			row = append(row, deltaCells(sa, sb, (*summaryView).p99)...)
			sec.Rows = append(sec.Rows, row)
		}
	}
	return sec, true
}

// summaryView adapts a metrics.Summary for the diff columns; a nil view
// is a metric absent on that side.
type summaryView struct {
	n               int64
	vMean, v50, v99 float64
}

func viewOf(s *metrics.Summary) *summaryView {
	if s == nil || s.N() == 0 {
		return nil
	}
	return &summaryView{n: s.N(), vMean: s.Mean(), v50: s.P50(), v99: s.P99()}
}

func (v *summaryView) mean() float64 { return v.vMean }
func (v *summaryView) p50() float64  { return v.v50 }
func (v *summaryView) p99() float64  { return v.v99 }

func countCell(v *summaryView) string {
	if v == nil {
		return "-"
	}
	return strconv.FormatInt(v.n, 10)
}

// deltaCells renders [a, b, b−a] for one statistic, "-" where a side is
// missing.
func deltaCells(a, b *summaryView, stat func(*summaryView) float64) []string {
	ca, cb, d := "-", "-", "-"
	if a != nil {
		ca = fmtG(stat(a))
	}
	if b != nil {
		cb = fmtG(stat(b))
	}
	if a != nil && b != nil {
		d = fmtG(stat(b) - stat(a))
	}
	return []string{ca, cb, d}
}

// relCell renders the mean's relative change in percent; "-" when either
// side is missing or the baseline mean is zero.
func relCell(a, b *summaryView) string {
	if a == nil || b == nil || a.vMean == 0 {
		return "-"
	}
	return fmtG((b.vMean - a.vMean) / math.Abs(a.vMean) * 100)
}

func unionMetricNames(ga, gb *group) []string {
	seen := map[string]bool{}
	var names []string
	add := func(g *group) {
		if g == nil {
			return
		}
		for k := range g.mets {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	add(ga)
	add(gb)
	sort.Strings(names)
	return names
}

// RenderSections writes sections in the report's fixed-width table
// style; RenderDiff and Report.Render share it, so diffs inherit the
// byte-determinism contract.
func RenderSections(w io.Writer, secs []Section) error {
	for si, sec := range secs {
		if si > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := renderSection(w, sec); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVSections writes sections as CSV, the same shape Report.WriteCSV
// produces for its own sections.
func WriteCSVSections(w io.Writer, secs []Section) error {
	for si, sec := range secs {
		if si > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := csvRow(w, sec.Header); err != nil {
			return err
		}
		for _, row := range sec.Rows {
			if err := csvRow(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}
