// Package analyze turns the JSONL artifacts this repo produces — grid
// cell records, per-trial records (cmd/mptcp-exp -json) and protocol
// traces (internal/trace) — into summary tables and CSV, so the
// paper-style figures reproduce from checked-in artifacts alone,
// without ad-hoc scripts. It is the consumer half of the ROADMAP's
// "perf trajectory in-repo + analysis pipeline" item.
//
// Input lines are classified by shape, not by file: a line with an
// "ev" field is a trace record, one with an "algorithm" field a grid
// cell record, and one with an "id" field a trial record; anything
// else is counted and skipped. Files of different kinds can therefore
// be concatenated and fed through in one pass.
//
// Aggregation is streaming (metrics.Summary: Welford moments + P²
// quantiles), so memory stays O(groups × metrics) no matter how many
// trials or trace events flow through. Output ordering is fully
// deterministic — groups sort by their dimension key, metrics
// alphabetically — so two runs over the same input render identical
// bytes, which CI asserts.
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"mptcp/internal/metrics"
)

// line is the union of every JSONL shape the repo emits; unused fields
// stay zero. Pointer-free numeric fields suffice because zero values
// are never ambiguous with real dimensions here (a trial is identified
// by ID, a trace record by Ev).
type line struct {
	// Trace records (internal/trace).
	Ev      string  `json:"ev"`
	T       int64   `json:"t"`
	Label   string  `json:"label"` // meta lines: cell label
	Dropped int64   `json:"dropped"`
	RTTSec  float64 `json:"rtt_s"`
	Cwnd    float64 `json:"cwnd"`

	// Grid cell records and trial records (cmd/mptcp-exp -json).
	ID        string             `json:"id"`
	Trial     int                `json:"trial"`
	Algorithm string             `json:"algorithm"`
	Topology  string             `json:"topology"`
	Scenario  string             `json:"scenario"`
	Scheduler string             `json:"scheduler"`
	Workload  string             `json:"workload"`
	RecvBuf   int64              `json:"recv_buf"`
	Metrics   map[string]float64 `json:"metrics"`
	WallSec   float64            `json:"wall_s"`
}

// group is one aggregation bucket: all records sharing the same
// dimension tuple, each metric summarised across them.
type group struct {
	key  string // rendered dimension tuple, also the sort key
	dims []string
	mets map[string]*metrics.Summary
	n    int64 // records folded in
}

func (g *group) met(name string) *metrics.Summary {
	m := g.mets[name]
	if m == nil {
		m = metrics.NewSummary()
		g.mets[name] = m
	}
	return m
}

// Report is the aggregate of one analysis pass.
type Report struct {
	// Cells aggregates grid cell records by (id, algorithm, topology,
	// scenario, scheduler, workload, recv_buf); Trials aggregates
	// per-trial records by id; Traces aggregates trace events by
	// (label, ev).
	cells  map[string]*group
	trials map[string]*group
	traces map[string]*group

	// CellLines/TrialLines/TraceLines/Skipped count the classified
	// input; surfacing them keeps silent truncation impossible.
	CellLines  int64
	TrialLines int64
	TraceLines int64
	Skipped    int64

	// traceLabel is the current cell label while scanning a trace file:
	// meta lines carry it, subsequent event lines inherit it.
	traceLabel string
}

// NewReport returns an empty report ready to Read input into.
func NewReport() *Report {
	return &Report{
		cells:  map[string]*group{},
		trials: map[string]*group{},
		traces: map[string]*group{},
	}
}

// Read consumes one JSONL stream, classifying and folding in every
// line. It may be called once per input file; aggregation spans calls.
func (r *Report) Read(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			r.Skipped++
			continue
		}
		switch {
		case l.Ev != "":
			r.addTrace(&l)
		case l.Algorithm != "":
			r.addCell(&l)
		case l.ID != "":
			r.addTrial(&l)
		default:
			r.Skipped++
		}
	}
	return sc.Err()
}

func getGroup(m map[string]*group, dims []string) *group {
	key := strings.Join(dims, "\x00")
	g := m[key]
	if g == nil {
		g = &group{key: key, dims: append([]string(nil), dims...), mets: map[string]*metrics.Summary{}}
		m[key] = g
	}
	return g
}

func (r *Report) addCell(l *line) {
	r.CellLines++
	g := getGroup(r.cells, []string{
		l.ID, l.Algorithm, l.Topology, l.Scenario, l.Scheduler, l.Workload,
		strconv.FormatInt(l.RecvBuf, 10),
	})
	g.n++
	for k, v := range l.Metrics {
		g.met(k).Add(v)
	}
}

func (r *Report) addTrial(l *line) {
	r.TrialLines++
	g := getGroup(r.trials, []string{l.ID})
	g.n++
	for k, v := range l.Metrics {
		g.met(k).Add(v)
	}
	if l.WallSec > 0 {
		g.met("wall_s").Add(l.WallSec)
	}
}

func (r *Report) addTrace(l *line) {
	r.TraceLines++
	if l.Ev == "meta" {
		r.traceLabel = l.Label
		if l.Dropped > 0 {
			g := getGroup(r.traces, []string{r.traceLabel, "(dropped)"})
			g.n += l.Dropped
		}
		return
	}
	g := getGroup(r.traces, []string{r.traceLabel, l.Ev})
	g.n++
	switch l.Ev {
	case "rtt":
		g.met("rtt_s").Add(l.RTTSec)
	case "cwnd", "penalty":
		g.met("cwnd").Add(l.Cwnd)
	}
}

// sortedGroups returns m's groups in deterministic key order.
func sortedGroups(m map[string]*group) []*group {
	out := make([]*group, 0, len(m))
	for _, g := range m {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func sortedMetricNames(g *group) []string {
	names := make([]string, 0, len(g.mets))
	for k := range g.mets {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// fmtG renders a float with strconv's shortest round-trippable form —
// the same convention as the repo's other deterministic encoders. NaN
// (metrics.Summary's "no observations" sentinel, e.g. Min/Max of an
// empty summary) renders as "-".
func fmtG(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func summaryCols(s *metrics.Summary) []string {
	return []string{
		strconv.FormatInt(s.N(), 10),
		fmtG(s.Mean()), fmtG(s.Stddev()),
		fmtG(s.Min()), fmtG(s.P50()), fmtG(s.P95()), fmtG(s.P99()), fmtG(s.Max()),
	}
}

var cellHeader = []string{"id", "algorithm", "topology", "scenario", "scheduler", "workload", "recv_buf",
	"metric", "n", "mean", "stddev", "min", "p50", "p95", "p99", "max"}
var trialHeader = []string{"id",
	"metric", "n", "mean", "stddev", "min", "p50", "p95", "p99", "max"}
var traceHeader = []string{"label", "ev", "count",
	"metric", "n", "mean", "stddev", "min", "p50", "p95", "p99", "max"}

// rows flattens a group map to table rows: one row per (group, metric),
// or a single count-only row for metric-less groups (trace event
// counts).
func rows(m map[string]*group, pad int, countCol bool) [][]string {
	var out [][]string
	for _, g := range sortedGroups(m) {
		base := append([]string(nil), g.dims...)
		if countCol {
			base = append(base, strconv.FormatInt(g.n, 10))
		}
		names := sortedMetricNames(g)
		if len(names) == 0 {
			row := append(append([]string(nil), base...), make([]string, pad)...)
			out = append(out, row)
			continue
		}
		for _, name := range names {
			row := append(append([]string(nil), base...), name)
			row = append(row, summaryCols(g.mets[name])...)
			out = append(out, row)
		}
	}
	return out
}

// Sections returns the report as titled tables, empty sections omitted:
// grid cells, trials, then traces.
func (r *Report) Sections() []Section {
	var out []Section
	if len(r.cells) > 0 {
		out = append(out, Section{
			Title:  fmt.Sprintf("Grid cells (%d records)", r.CellLines),
			Header: cellHeader,
			Rows:   rows(r.cells, 9, false),
		})
	}
	if len(r.trials) > 0 {
		out = append(out, Section{
			Title:  fmt.Sprintf("Trials (%d records)", r.TrialLines),
			Header: trialHeader,
			Rows:   rows(r.trials, 9, false),
		})
	}
	if len(r.traces) > 0 {
		out = append(out, Section{
			Title:  fmt.Sprintf("Trace events (%d records)", r.TraceLines),
			Header: traceHeader,
			Rows:   rows(r.traces, 9, true),
		})
	}
	return out
}

// Section is one titled table of the report.
type Section struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the report as fixed-width text tables. Output is a pure
// function of the aggregated input.
func (r *Report) Render(w io.Writer) error {
	if err := RenderSections(w, r.Sections()); err != nil {
		return err
	}
	if r.Skipped > 0 {
		fmt.Fprintf(w, "\n(%d unrecognised lines skipped)\n", r.Skipped)
	}
	return nil
}

// renderSection writes one titled fixed-width table.
func renderSection(w io.Writer, sec Section) error {
	fmt.Fprintf(w, "== %s ==\n", sec.Title)
	widths := make([]int, len(sec.Header))
	for i, h := range sec.Header {
		widths[i] = len(h)
	}
	for _, row := range sec.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	emit := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := emit(sec.Header); err != nil {
		return err
	}
	for _, row := range sec.Rows {
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes every section as CSV, sections separated by a blank
// line, each starting with its header row. Same determinism contract as
// Render.
func (r *Report) WriteCSV(w io.Writer) error {
	return WriteCSVSections(w, r.Sections())
}

func csvRow(w io.Writer, cells []string) error {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		quoted[i] = c
	}
	_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
	return err
}
