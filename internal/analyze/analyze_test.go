package analyze

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

// readTestdata aggregates the checked-in tournament smoke artifact.
func readTestdata(t *testing.T) *Report {
	t.Helper()
	f, err := os.Open("testdata/tournament_smoke.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep := NewReport()
	if err := rep.Read(f); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFmtGNaN: NaN — metrics.Summary's "no observations" sentinel —
// renders as "-" in tables and diffs, never as the string "NaN".
func TestFmtGNaN(t *testing.T) {
	if got := fmtG(math.NaN()); got != "-" {
		t.Errorf("fmtG(NaN) = %q, want \"-\"", got)
	}
	if got := fmtG(1.5); got != "1.5" {
		t.Errorf("fmtG(1.5) = %q", got)
	}
}

// TestGoldenTournamentTable: the analyzer reproduces the checked-in
// fig8-style summary table — algorithm × topology rows with streaming
// statistics — from the checked-in JSONL alone, byte for byte.
func TestGoldenTournamentTable(t *testing.T) {
	rep := readTestdata(t)
	if rep.CellLines != 64 || rep.Skipped != 0 {
		t.Fatalf("classified %d cell lines (%d skipped), want 64 (0)", rep.CellLines, rep.Skipped)
	}
	var got bytes.Buffer
	if err := rep.Render(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/tournament_smoke.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("rendered table differs from golden\n--- got ---\n%s\n--- want ---\n%s", got.Bytes(), want)
	}
}

// TestAnalyzeDeterministic: two independent passes over the same input
// render identical bytes, table and CSV alike — the contract CI's
// stability step asserts end to end.
func TestAnalyzeDeterministic(t *testing.T) {
	render := func() (string, string) {
		rep := readTestdata(t)
		var tab, csv bytes.Buffer
		if err := rep.Render(&tab); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return tab.String(), csv.String()
	}
	t1, c1 := render()
	t2, c2 := render()
	if t1 != t2 {
		t.Error("table output not deterministic")
	}
	if c1 != c2 {
		t.Error("CSV output not deterministic")
	}
	if !strings.HasPrefix(c1, "id,algorithm,topology,scenario,scheduler,workload,recv_buf,metric,n,mean,stddev,min,p50,p95,p99,max\n") {
		t.Errorf("CSV header wrong:\n%s", c1[:min(len(c1), 200)])
	}
}

// TestTraceAggregation: trace JSONL (as internal/trace flushes it) is
// classified by the "ev" field, grouped by (label from the enclosing
// meta line, event kind), and rtt/cwnd values are summarised.
func TestTraceAggregation(t *testing.T) {
	in := strings.Join([]string{
		`{"ev":"meta","conn":-1,"label":"MPTCP/torus/flap","events":2,"dropped":0}`,
		`{"ev":"link","t":100,"name":"A/ab","what":"down","v":0}`,
		`{"ev":"link","t":200,"name":"A/ab","what":"up","v":0}`,
		`{"ev":"meta","conn":0,"label":"MPTCP/torus/flap","events":3,"dropped":5}`,
		`{"ev":"rtt","t":300,"conn":0,"sub":0,"rtt_s":0.1}`,
		`{"ev":"rtt","t":400,"conn":0,"sub":1,"rtt_s":0.3}`,
		`{"ev":"cwnd","t":500,"conn":0,"sub":0,"cwnd":12}`,
	}, "\n")
	rep := NewReport()
	if err := rep.Read(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if rep.TraceLines != 7 || rep.Skipped != 0 {
		t.Fatalf("trace lines %d (skipped %d), want 7 (0)", rep.TraceLines, rep.Skipped)
	}
	secs := rep.Sections()
	if len(secs) != 1 || !strings.HasPrefix(secs[0].Title, "Trace events") {
		t.Fatalf("sections = %+v, want one trace section", secs)
	}
	// Rows sort by (label, ev): (dropped), cwnd, link, rtt.
	find := func(ev string) []string {
		for _, r := range secs[0].Rows {
			if r[1] == ev {
				return r
			}
		}
		t.Fatalf("no row for ev %q in %v", ev, secs[0].Rows)
		return nil
	}
	if r := find("link"); r[0] != "MPTCP/torus/flap" || r[2] != "2" {
		t.Errorf("link row = %v", r)
	}
	if r := find("(dropped)"); r[2] != "5" {
		t.Errorf("dropped row = %v, want count 5", r)
	}
	rtt := find("rtt")
	if rtt[2] != "2" || rtt[3] != "rtt_s" || rtt[5] != "0.2" {
		t.Errorf("rtt row = %v, want count 2, metric rtt_s, mean 0.2", rtt)
	}
	cwnd := find("cwnd")
	if cwnd[3] != "cwnd" || cwnd[5] != "12" {
		t.Errorf("cwnd row = %v, want metric cwnd mean 12", cwnd)
	}
}

// TestMixedAndMalformedInput: trial records, blank lines and garbage
// coexist; garbage is counted, never fatal.
func TestMixedAndMalformedInput(t *testing.T) {
	in := strings.Join([]string{
		`{"id":"fig8-torus","ref":"fig 8","trial":0,"seed":42,"scale":1,"wall_s":1.5,"metrics":{"mbps":10}}`,
		``,
		`not json at all`,
		`{"unrelated":true}`,
		`{"id":"fig8-torus","trial":1,"seed":43,"scale":1,"wall_s":1.7,"metrics":{"mbps":14}}`,
	}, "\n")
	rep := NewReport()
	if err := rep.Read(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if rep.TrialLines != 2 || rep.Skipped != 2 {
		t.Fatalf("trials %d skipped %d, want 2 and 2", rep.TrialLines, rep.Skipped)
	}
	var out bytes.Buffer
	if err := rep.Render(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Trials (2 records)", "fig8-torus", "wall_s", "(2 unrecognised lines skipped)"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

// TestCSVQuoting: cells containing separators are quoted per RFC 4180.
func TestCSVQuoting(t *testing.T) {
	var b bytes.Buffer
	if err := csvRow(&b, []string{`plain`, `a,b`, `he said "hi"`}); err != nil {
		t.Fatal(err)
	}
	want := "plain,\"a,b\",\"he said \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Errorf("csvRow = %q, want %q", b.String(), want)
	}
}
