package analyze

import (
	"strings"
	"testing"
)

const diffA = `{"id":"fleet","algorithm":"MPTCP","topology":"fleet32","scenario":"churn","scheduler":"minrtt","recv_buf":64,"metrics":{"fct_p50_s":0.10,"completed":500}}
{"id":"fleet","algorithm":"EWTCP","topology":"fleet32","scenario":"churn","scheduler":"minrtt","recv_buf":64,"metrics":{"fct_p50_s":0.20}}
`

const diffB = `{"id":"fleet","algorithm":"MPTCP","topology":"fleet32","scenario":"churn","scheduler":"minrtt","recv_buf":64,"metrics":{"fct_p50_s":0.15,"completed":500}}
{"id":"fleet","algorithm":"OLIA","topology":"fleet32","scenario":"churn","scheduler":"minrtt","recv_buf":64,"metrics":{"fct_p50_s":0.30}}
`

func readReport(t *testing.T, in string) *Report {
	t.Helper()
	r := NewReport()
	if err := r.Read(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	return r
}

func findRow(sec Section, contains ...string) []string {
	for _, row := range sec.Rows {
		joined := strings.Join(row, "\x00")
		ok := true
		for _, c := range contains {
			if !strings.Contains(joined, c) {
				ok = false
				break
			}
		}
		if ok {
			return row
		}
	}
	return nil
}

func TestDiffDeltas(t *testing.T) {
	secs := Diff(readReport(t, diffA), readReport(t, diffB))
	if len(secs) != 1 {
		t.Fatalf("got %d sections, want 1 (grid cells only)", len(secs))
	}
	sec := secs[0]

	// Shared cell: mean delta and relative delta are computed. The
	// fct_p50_s columns are mean_a=0.1, mean_b=0.15, dmean=0.05,
	// dmean_pct=50.
	row := findRow(sec, "MPTCP", "fct_p50_s")
	if row == nil {
		t.Fatal("no row for MPTCP fct_p50_s")
	}
	got := strings.Join(row, " ")
	for _, want := range []string{"0.1 ", "0.15", "0.05", "50"} {
		if !strings.Contains(got, want) {
			t.Errorf("MPTCP row %q missing %q", got, want)
		}
	}

	// A-only cell: B side and deltas are "-".
	row = findRow(sec, "EWTCP", "fct_p50_s")
	if row == nil || row[len(row)-1] != "-" {
		t.Errorf("EWTCP (A-only) row should end with '-': %v", row)
	}
	// B-only cell appears too.
	if findRow(sec, "OLIA", "fct_p50_s") == nil {
		t.Error("OLIA (B-only) cell missing from diff")
	}
}

func TestDiffDeterministicRender(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := RenderSections(&sb, Diff(readReport(t, diffA), readReport(t, diffB))); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if render() != first {
			t.Fatal("diff render is not byte-deterministic")
		}
	}
	if !strings.Contains(first, "Grid cell diff") {
		t.Errorf("missing section title in:\n%s", first)
	}
}

func TestDiffCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSVSections(&sb, Diff(readReport(t, diffA), readReport(t, diffB))); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "id,algorithm,topology,scenario,scheduler,workload,recv_buf,metric,") {
		t.Errorf("unexpected CSV header: %q", strings.SplitN(out, "\n", 2)[0])
	}
}
