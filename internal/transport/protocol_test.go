package transport

import (
	"testing"

	"mptcp/internal/core"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// These tests pin down protocol details of §6 and the loss-recovery
// machinery: SACK bookkeeping, duplicate-ACK semantics, persist probing,
// retransmission-timer behaviour and cross-subflow coupling.

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		e := newEnv(77)
		l1 := netsim.NewLink("p1", 10, 5*sim.Millisecond, 30)
		l2 := netsim.NewLink("p2", 5, 30*sim.Millisecond, 30)
		l1.LossRate = 0.01
		c := NewConn(e.n, Config{
			Alg:   &core.MPTCP{},
			Paths: []Path{e.path(l1), e.path(l2)},
		})
		c.Start()
		e.s.RunUntil(30 * sim.Second)
		return c.Delivered(), c.Subflows()[0].PktsRetx
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Errorf("same seed diverged: delivered %d/%d retx %d/%d", d1, d2, r1, r2)
	}
	if d1 == 0 {
		t.Error("no progress")
	}
}

func TestRetransmissionsAreBounded(t *testing.T) {
	// On a clean dedicated link, retransmissions come only from buffer
	// overflow at the sawtooth peaks — they must be a small fraction of
	// traffic, or recovery is misfiring (the spurious-retransmission
	// feedback loop this implementation explicitly guards against).
	e := newEnv(21)
	l := netsim.NewLink("l", 10, 10*sim.Millisecond, bdp(10, 20*sim.Millisecond))
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	c.Start()
	e.s.RunUntil(60 * sim.Second)
	sf := c.Subflows()[0]
	frac := float64(sf.PktsRetx) / float64(sf.PktsSent)
	if frac > 0.03 {
		t.Errorf("retransmitted %.1f%% of packets on a clean link (spurious recovery?)", frac*100)
	}
	if got := throughputMbps(c.Delivered(), e.s.Now()); got < 9.0 {
		t.Errorf("throughput %.2f Mb/s, want ~9.5+", got)
	}
}

func TestNoRTOsOnCleanLink(t *testing.T) {
	// Steady-state AIMD on a BDP-buffered link recovers every loss via
	// SACK fast recovery; timeouts would indicate broken recovery.
	e := newEnv(22)
	l := netsim.NewLink("l", 10, 10*sim.Millisecond, bdp(10, 20*sim.Millisecond))
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	c.Start()
	e.s.RunUntil(60 * sim.Second)
	sf := c.Subflows()[0]
	// The slow-start overshoot may cost one tail-loss RTO; none after.
	if sf.RTOs > 1 {
		t.Errorf("%d RTOs on a clean link (fast recovery broken?)", sf.RTOs)
	}
	if sf.FastRetx == 0 {
		t.Error("expected sawtooth loss events via fast retransmit")
	}
}

func TestCouplingVisibleAcrossSubflows(t *testing.T) {
	// COUPLED's decrease on one subflow depends on the other's window:
	// verify the transport feeds the full state vector to the algorithm.
	e := newEnv(23)
	l1 := netsim.NewLink("p1", 10, 10*sim.Millisecond, 100)
	l2 := netsim.NewLink("p2", 10, 10*sim.Millisecond, 100)
	c := NewConn(e.n, Config{
		Alg:   core.Coupled{},
		Paths: []Path{e.path(l1), e.path(l2)},
	})
	c.Start()
	e.s.RunUntil(5 * sim.Second)
	// Force a loss event on subflow 0 via its CC hooks directly.
	w0, w1 := c.Cwnd(0), c.Cwnd(1)
	dec := c.Alg().Decrease(c.cc, 0)
	want := w0 - (w0+w1)/2
	if want < core.MinCwnd {
		want = core.MinCwnd
	}
	if dec != want {
		t.Errorf("coupled decrease = %v, want w0 - wtotal/2 = %v (w0=%v w1=%v)", dec, want, w0, w1)
	}
}

func TestMPTCPPrefersShorterRTTForEqualLoss(t *testing.T) {
	// Two equal-capacity paths with very different RTTs, no competition:
	// MPTCP fills both (goal (3): at least best single path; here both
	// are bottlenecked by their own capacity).
	e := newEnv(24)
	short := netsim.NewLink("short", 8, 5*sim.Millisecond, bdp(8, 10*sim.Millisecond))
	long := netsim.NewLink("long", 8, 100*sim.Millisecond, bdp(8, 200*sim.Millisecond))
	c := NewConn(e.n, Config{Alg: &core.MPTCP{}, Paths: []Path{e.path(short), e.path(long)}})
	c.Start()
	e.s.RunUntil(20 * sim.Second)
	base := c.Delivered()
	e.s.RunUntil(60 * sim.Second)
	got := throughputMbps(c.Delivered()-base, 40*sim.Second)
	if got < 0.8*16 {
		t.Errorf("MPTCP on idle 8+8 Mb/s paths = %.2f Mb/s, want ~16", got)
	}
	// The long path needs a much larger window for the same rate: RTT
	// compensation must not starve it.
	if c.Cwnd(1) < 2*c.Cwnd(0) {
		t.Errorf("long-RTT window %v should far exceed short-RTT window %v at equal rate",
			c.Cwnd(1), c.Cwnd(0))
	}
}

func TestPersistProbeRecoversLostWindowUpdate(t *testing.T) {
	// Stall the app until the window closes, then drop the reopening
	// window-update ACKs: the sender's persist timer must still recover.
	e := newEnv(25)
	l := netsim.NewLink("l", 10, 10*sim.Millisecond, 100)
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}, RecvBuf: 32})
	c.Start()
	e.s.RunUntil(2 * sim.Second)
	c.Receiver().SetAppStalled(true)
	e.s.RunUntil(6 * sim.Second)
	// Take the ACK path down over the moment of the window update so the
	// update is lost, then restore it.
	ackLink := c.recv.rev[0].Links[0]
	ackLink.SetDown(true)
	c.Receiver().SetAppStalled(false) // window update lost
	e.s.RunUntil(6500 * sim.Millisecond)
	ackLink.SetDown(false)
	before := c.Delivered()
	e.s.RunUntil(12 * sim.Second)
	if c.Delivered()-before < 50 {
		t.Errorf("sender stayed wedged after lost window update (persist probe broken): +%d pkts",
			c.Delivered()-before)
	}
}

func TestSubflowStatsAccounting(t *testing.T) {
	e := newEnv(26)
	l := netsim.NewLink("l", 10, 10*sim.Millisecond, 50)
	l.LossRate = 0.02
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}, DataPackets: 3000})
	c.Start()
	e.s.RunUntil(120 * sim.Second)
	sf := c.Subflows()[0]
	if !c.Done() {
		t.Fatalf("flow incomplete: %d/3000", c.Delivered())
	}
	if sf.PktsSent < 3000 {
		t.Errorf("sent %d < 3000 data packets", sf.PktsSent)
	}
	if sf.PktsSent-sf.PktsRetx > 3000+10 {
		t.Errorf("original transmissions %d exceed data size", sf.PktsSent-sf.PktsRetx)
	}
	if sf.PktsRetx == 0 {
		t.Error("2% loss should force retransmissions")
	}
}

func TestDupDataCountedOnce(t *testing.T) {
	// Reinjection after an RTO can deliver the same data twice; the
	// receiver must count it as duplicate, not deliver it again.
	e := newEnv(27)
	l1 := netsim.NewLink("p1", 10, 10*sim.Millisecond, 50)
	l2 := netsim.NewLink("p2", 10, 10*sim.Millisecond, 50)
	c := NewConn(e.n, Config{
		Alg:         &core.MPTCP{},
		Paths:       []Path{e.path(l1), e.path(l2)},
		DataPackets: 4000,
	})
	c.Start()
	e.s.RunUntil(1 * sim.Second)
	l2.SetDown(true)
	e.s.RunUntil(3 * sim.Second)
	l2.SetDown(false) // path returns: its go-back-N repair duplicates reinjected data
	e.s.RunUntil(120 * sim.Second)
	if !c.Done() {
		t.Fatalf("flow incomplete: %d/4000", c.Delivered())
	}
	if got := c.Delivered(); got != 4000 {
		t.Errorf("delivered %d, want exactly 4000", got)
	}
	if c.recv.DupData == 0 {
		t.Error("outage + reinjection + repair should produce duplicate data arrivals")
	}
}

func TestEWTCPLessAggressiveThanTCPPerSubflow(t *testing.T) {
	// One EWTCP subflow (weight 1/2) against one regular TCP on a shared
	// bottleneck: the weighted flow must get materially less.
	e := newEnv(28)
	l := netsim.NewLink("shared", 12, 25*sim.Millisecond, bdp(12, 50*sim.Millisecond))
	ew := NewConn(e.n, Config{Alg: core.EWTCP{Weight: 0.5}, Paths: []Path{e.path(l)}})
	tcp := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	ew.Start()
	tcp.Start()
	e.s.RunUntil(20 * sim.Second)
	e0, t0 := ew.Delivered(), tcp.Delivered()
	e.s.RunUntil(120 * sim.Second)
	eRate := float64(ew.Delivered() - e0)
	tRate := float64(tcp.Delivered() - t0)
	if eRate > 0.8*tRate {
		t.Errorf("half-weight EWTCP got %.0f vs TCP %.0f — weighting ineffective", eRate, tRate)
	}
	if eRate < 0.1*tRate {
		t.Errorf("half-weight EWTCP starved: %.0f vs %.0f", eRate, tRate)
	}
}

func TestRecvWindowAdvertisement(t *testing.T) {
	e := newEnv(29)
	l := netsim.NewLink("l", 10, 10*sim.Millisecond, 100)
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}, RecvBuf: 48})
	c.Start()
	e.s.RunUntil(1 * sim.Second)
	if w := c.Receiver().Window(); w != 48 {
		t.Errorf("instant-read receiver should advertise the full buffer, got %d", w)
	}
	c.Receiver().SetAppStalled(true)
	e.s.RunUntil(5 * sim.Second)
	if w := c.Receiver().Window(); w >= 48 {
		t.Errorf("stalled receiver still advertises %d", w)
	}
}
