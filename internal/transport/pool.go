package transport

import "mptcp/internal/netsim"

// ConnPool recycles completed connections across the lifetime of one
// simulated world. Connection-churn workloads (scenario.FlowChurn, the
// fleet experiment) create tens of thousands of short flows; without
// pooling every flow allocates subflow meta rings, receiver maps and
// scratch slices that become garbage seconds later. A pooled connection
// is rebuilt by Conn.init, which reuses those allocations: the i-th
// flow through a pool behaves exactly like a fresh NewConn with the
// same Config (same transmissions, same completion time), so pooling is
// a pure allocation optimisation.
//
// The pool is keyed by path count, the one shape parameter Conn.init
// cannot convert in place. It is single-world and not goroutine-safe,
// like everything else owned by one simulator.
type ConnPool struct {
	nw   *netsim.Net
	free map[int][]*Conn
	live map[*Conn]struct{}

	// Gets counts Get calls; Reuses the subset served from the pool.
	Gets, Reuses int64
}

// NewConnPool returns an empty pool over nw.
func NewConnPool(nw *netsim.Net) *ConnPool {
	return &ConnPool{nw: nw, free: make(map[int][]*Conn), live: make(map[*Conn]struct{})}
}

// Get returns a connection configured with cfg — recycled when a
// completed connection with the same path count is available, fresh
// otherwise. The caller still calls Start, and should hand the
// connection back with Put once it completes.
func (p *ConnPool) Get(cfg Config) *Conn {
	p.Gets++
	k := len(cfg.Paths)
	if l := p.free[k]; len(l) > 0 {
		c := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[k] = l[:len(l)-1]
		p.Reuses++
		c.init(p.nw, cfg)
		p.live[c] = struct{}{}
		return c
	}
	c := NewConn(p.nw, cfg)
	p.live[c] = struct{}{}
	return c
}

// Put hands a finished connection back for recycling. Only completed
// (or Stopped) connections may be pooled: a live connection still owns
// timers and in-flight state that recycling would corrupt. Calling Put
// from Config.OnComplete is safe — the completion path releases the
// connection's timers before invoking the callback.
func (p *ConnPool) Put(c *Conn) {
	if !c.done {
		panic("transport: pooling a connection that has not completed")
	}
	delete(p.live, c)
	k := len(c.cfg.Paths)
	p.free[k] = append(p.free[k], c)
}

// LiveCount returns the number of connections handed out by Get and not
// yet returned by Put. Provided every completion path calls Put (the
// pooled-workload convention), at a simulation horizon these are
// exactly the flows still in flight.
func (p *ConnPool) LiveCount() int64 { return int64(len(p.live)) }

// LiveDelivered sums Delivered across the live connections: the data
// packets already delivered by flows that have not completed. Workloads
// add this to their completed-flow totals so goodput at a horizon does
// not undercount in-flight transfers. Map iteration order is irrelevant
// because the result is a sum.
func (p *ConnPool) LiveDelivered() int64 {
	var pkts int64
	for c := range p.live {
		pkts += c.Delivered()
	}
	return pkts
}
