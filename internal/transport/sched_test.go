package transport

import (
	"testing"

	"mptcp/internal/netsim"
	"mptcp/internal/sched"
	"mptcp/internal/sim"
)

// twoPathConn builds a two-path connection over fresh disjoint 8 Mb/s
// links with the given one-way delays, returning the connection.
func twoPathConn(e *env, cfg Config, d0, d1 sim.Time) *Conn {
	l0 := netsim.NewLink("p0", 8, d0, bdp(8, 4*d0)+8)
	l1 := netsim.NewLink("p1", 8, d1, bdp(8, 4*d1)+8)
	cfg.Paths = []Path{e.path(l0), e.path(l1)}
	c := NewConn(e.n, cfg)
	c.Start()
	return c
}

// TestMinRTTPrefersLowerSRTTSubflow: when the connection cannot fill
// both pipes (a constrained shared receive buffer — on a bulk transfer
// with unlimited buffering any scheduler eventually fills both), the
// minrtt scheduler must place the stream on the low-RTT subflow and
// only spill onto the slow path when the fast window is full. The
// round-robin scheduler on the identical setup splits far more evenly,
// pinning that the preference comes from the scheduler, not the paths.
func TestMinRTTPrefersLowerSRTTSubflow(t *testing.T) {
	run := func(s sched.Scheduler) (fast, slow int64) {
		e := newEnv(11)
		c := twoPathConn(e, Config{Sched: s, RecvBuf: 16}, 5*sim.Millisecond, 50*sim.Millisecond)
		e.s.RunUntil(30 * sim.Second)
		return c.SubflowDelivered(0), c.SubflowDelivered(1)
	}
	fast, slow := run(sched.MinRTT{})
	if fast == 0 {
		t.Fatal("the fast path carried nothing")
	}
	if fast < 4*slow {
		t.Errorf("minrtt should strongly prefer the low-RTT subflow: fast=%d slow=%d", fast, slow)
	}
	rrFast, rrSlow := run(sched.RoundRobin{})
	if rrSlow == 0 || rrFast > 4*rrSlow {
		t.Errorf("round-robin control should not show the same skew: fast=%d slow=%d", rrFast, rrSlow)
	}
}

// TestRoundRobinSplitsEvenlyOnTwinPaths: identical paths under the
// round-robin scheduler carry near-equal shares.
func TestRoundRobinSplitsEvenlyOnTwinPaths(t *testing.T) {
	e := newEnv(12)
	c := twoPathConn(e, Config{Sched: sched.RoundRobin{}}, 10*sim.Millisecond, 10*sim.Millisecond)
	e.s.RunUntil(30 * sim.Second)
	a, b := float64(c.SubflowDelivered(0)), float64(c.SubflowDelivered(1))
	if a == 0 || b == 0 {
		t.Fatalf("a subflow carried nothing: %v/%v", a, b)
	}
	if ratio := a / b; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("round-robin split %v/%v is too skewed", a, b)
	}
}

// TestRedundantNeverStallsWhenOnePathIsUp: the property the redundant
// scheduler buys — every segment rides every subflow with window space,
// so a finite flow completes even when the other path is dead from the
// start and data-level reinjection is disabled. A single-copy scheduler
// in the same setup strands the stream.
func TestRedundantNeverStallsWhenOnePathIsUp(t *testing.T) {
	for _, dead := range []int{0, 1} {
		e := newEnv(int64(13 + dead))
		l0 := netsim.NewLink("p0", 8, 10*sim.Millisecond, 40)
		l1 := netsim.NewLink("p1", 8, 10*sim.Millisecond, 40)
		cfg := Config{
			Sched:           sched.Redundant{},
			DisableReinject: true,
			DataPackets:     400,
		}
		cfg.Paths = []Path{e.path(l0), e.path(l1)}
		links := []*netsim.Link{l0, l1}
		links[dead].SetDown(true)
		c := NewConn(e.n, cfg)
		c.Start()
		e.s.RunUntil(60 * sim.Second)
		if !c.Done() {
			t.Errorf("dead path %d: redundant flow stranded at %d/400 delivered", dead, c.Delivered())
		}
	}
}

// TestRedundantDuplicatesOnHealthyPaths: on two healthy paths the
// receiver sees nearly every data packet twice — once as delivery, once
// as duplicate data that consumes no buffer.
func TestRedundantDuplicatesOnHealthyPaths(t *testing.T) {
	e := newEnv(15)
	c := twoPathConn(e, Config{Sched: sched.Redundant{}, DataPackets: 300}, 10*sim.Millisecond, 12*sim.Millisecond)
	e.s.RunUntil(60 * sim.Second)
	if !c.Done() {
		t.Fatalf("finite flow did not complete: %d/300", c.Delivered())
	}
	if dup := c.Receiver().DupData; dup < 200 {
		t.Errorf("redundant transmission should produce heavy duplicate data, got %d", dup)
	}
}

// TestCountermeasuresFireUnderConstrainedBuffer: a tiny shared receive
// buffer over one fast and one slow-overbuffered path makes the slow
// subflow head-of-line-block the connection; with SchedOpts enabled the
// sender must detect it, opportunistically retransmit and penalize.
func TestCountermeasuresFireUnderConstrainedBuffer(t *testing.T) {
	e := newEnv(16)
	// Slow path with a deep queue: its RTT inflates far beyond the fast
	// path's once the window grows, parking segments for seconds.
	l0 := netsim.NewLink("fast", 8, 5*sim.Millisecond, 40)
	l1 := netsim.NewLink("slow", 2, 60*sim.Millisecond, 300)
	cfg := Config{
		Sched:     sched.MinRTT{},
		SchedOpts: sched.Options{OpportunisticRetx: true, Penalize: true},
		RecvBuf:   16,
	}
	cfg.Paths = []Path{e.path(l0), e.path(l1)}
	c := NewConn(e.n, cfg)
	c.Start()
	e.s.RunUntil(30 * sim.Second)
	if c.OppRetx == 0 {
		t.Error("opportunistic retransmission never fired under a blocking buffer")
	}
	if c.Penalties == 0 {
		t.Error("subflow penalization never fired under a blocking buffer")
	}
}

// TestCountermeasuresIdleWithoutBlocking: with the default unconstrained
// buffer the countermeasures never trigger, even when enabled — they are
// a blocking remedy, not a scheduling policy.
func TestCountermeasuresIdleWithoutBlocking(t *testing.T) {
	e := newEnv(17)
	c := twoPathConn(e, Config{
		Sched:     sched.MinRTT{},
		SchedOpts: sched.Options{OpportunisticRetx: true, Penalize: true},
	}, 5*sim.Millisecond, 50*sim.Millisecond)
	e.s.RunUntil(20 * sim.Second)
	if c.OppRetx != 0 || c.Penalties != 0 {
		t.Errorf("countermeasures fired without receive-buffer blocking: otr=%d pen=%d", c.OppRetx, c.Penalties)
	}
}

// TestCountermeasuresRecoverThroughput: the end-to-end payoff on the
// transport stack, in the paper's §5 radio conditions — a lossy WiFi
// path next to a slow, deeply overbuffered 3G path. Loss pauses the
// fast subflow, the 3G path grabs segments and parks them for seconds,
// and a 16-packet shared buffer then blocks behind them; opportunistic
// retransmission plus penalization must clearly outdeliver plain
// minRTT under the identical seed. (The pinned grid-cell regression
// lives in internal/exp; this covers the stack mechanics in isolation.)
func TestCountermeasuresRecoverThroughput(t *testing.T) {
	run := func(opts sched.Options) int64 {
		e := newEnv(18) // same seed: paired comparison
		wifi := netsim.NewLink("wifi", 6, 8*sim.Millisecond, 20)
		wifi.LossRate = 0.015
		g3 := netsim.NewLink("3g", 2, 60*sim.Millisecond, 300)
		cfg := Config{Sched: sched.MinRTT{}, SchedOpts: opts, RecvBuf: 16}
		cfg.Paths = []Path{e.path(wifi), e.path(g3)}
		c := NewConn(e.n, cfg)
		c.Start()
		e.s.RunUntil(30 * sim.Second)
		return c.Delivered()
	}
	plain := run(sched.Options{})
	cured := run(sched.Options{OpportunisticRetx: true, Penalize: true})
	if cured < plain*3/2 {
		t.Errorf("countermeasures should recover throughput: plain=%d cured=%d", plain, cured)
	}
}

// TestSchedulerDefaultsPreserved: a nil Sched resolves to the historical
// first-fit striping, and every registered scheduler completes a finite
// transfer on healthy paths.
func TestSchedulerDefaultsPreserved(t *testing.T) {
	e := newEnv(19)
	c := twoPathConn(e, Config{DataPackets: 200}, 10*sim.Millisecond, 10*sim.Millisecond)
	if c.cfg.Sched.Name() != "firstfit" {
		t.Errorf("default scheduler = %q, want firstfit", c.cfg.Sched.Name())
	}
	e.s.RunUntil(30 * sim.Second)
	if !c.Done() {
		t.Fatal("default transfer did not complete")
	}
	for _, name := range sched.Names() {
		e := newEnv(20)
		c := twoPathConn(e, Config{Sched: sched.MustNew(name), DataPackets: 200}, 10*sim.Millisecond, 30*sim.Millisecond)
		e.s.RunUntil(60 * sim.Second)
		if !c.Done() {
			t.Errorf("%s: finite transfer did not complete (%d/200)", name, c.Delivered())
		}
	}
}
