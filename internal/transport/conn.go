// Package transport implements the TCP and MPTCP endpoint models that run
// over the packet-level network of internal/netsim.
//
// A Conn is a connection with one or more subflows, each taking its own
// route. Single-path TCP is simply a Conn with one subflow driven by
// core.Regular — exactly how the paper treats it. Each subflow runs
// NewReno-style machinery (slow start, fast retransmit/recovery, RFC 6298
// retransmission timer); congestion avoidance window arithmetic is
// delegated to a core.Algorithm, so REGULAR/EWTCP/COUPLED/SEMICOUPLED/
// MPTCP all share identical loss detection, exactly as in the paper's
// Linux implementation.
//
// New data is assigned to subflows by a pluggable packet scheduler from
// internal/sched (default: the historical first-fit striping; minRTT,
// round-robin, cwnd-weighted, redundant and BLEST are registered), and
// the §6 receive-buffer-blocking countermeasures — opportunistic
// retransmission and subflow penalization — compose with any scheduler
// via Config.SchedOpts. Loss-recovery transmissions never go through
// the scheduler.
//
// The protocol model follows §6 of the paper:
//
//   - separate sequence spaces: per-subflow sequence numbers for loss
//     detection, and connection-level data sequence numbers for stream
//     reassembly, carried on every data packet;
//   - explicit data acknowledgments carried on every ACK (the paper shows
//     inferring the data ack from subflow acks is unsound when ACKs
//     arrive out of order across subflows);
//   - a single shared receive buffer, its window advertised relative to
//     the data-level cumulative ack (per-subflow buffers can deadlock).
//
// Sequence numbers count packets, not bytes, and windows are maintained
// in packets, as the paper presents them.
package transport

import (
	"fmt"
	"math"
	"sync/atomic"

	"mptcp/internal/cc"
	"mptcp/internal/core"
	"mptcp/internal/netsim"
	"mptcp/internal/sched"
	"mptcp/internal/sim"
	"mptcp/internal/trace"
)

// Infinite marks an unlimited data supply (a long-lived flow).
const Infinite int64 = -1

// Path is the pair of routes used by one subflow: Fwd carries data from
// sender to receiver, Rev carries ACKs back.
type Path struct {
	Fwd []*netsim.Link
	Rev []*netsim.Link
}

// Config parameterises a connection.
type Config struct {
	// Alg is the congestion-avoidance algorithm. Defaults to
	// &core.MPTCP{} for multiple paths and core.Regular{} for one.
	Alg core.Algorithm

	// Sched assigns new data segments to subflows. Defaults to
	// sched.FirstFit — fill subflows in configuration order, the
	// historical striping of this stack (and of the paper's "stripes
	// packets across these subflows as space in the subflow windows
	// becomes available"). Loss-recovery transmissions never go through
	// the scheduler.
	Sched sched.Scheduler

	// SchedOpts enables the §6 receive-buffer-blocking countermeasures
	// (opportunistic retransmission, subflow penalization); both default
	// off.
	SchedOpts sched.Options

	// Paths lists one Path per subflow; at least one is required.
	Paths []Path

	// DataPackets is the number of data packets the application wants to
	// transfer; Infinite for a long-lived flow.
	DataPackets int64

	// RecvBuf is the shared receive buffer in packets (§6). Defaults to
	// a window large enough never to bind (1<<20).
	RecvBuf int64

	// InitialCwnd is the initial congestion window in packets
	// (default 2, as in Linux of the paper's era).
	InitialCwnd float64

	// MinRTO is the lower bound on the retransmission timeout
	// (default 200 ms, Linux's RTO_MIN).
	MinRTO sim.Time

	// DisableReinject turns off data-level reinjection: after an RTO on
	// one subflow, outstanding data is normally also made available to
	// other subflows so a dead path cannot strand the stream.
	DisableReinject bool

	// SendJitter is the maximum uniform random delay added to each data
	// packet transmission (FIFO order within a subflow is preserved). A
	// small jitter breaks the drop-tail phase locking that plagues
	// deterministic simulations of flows with identical RTTs (Floyd &
	// Jacobson, "On Traffic Phase Effects in Packet-Switched Gateways").
	// Defaults to 100 µs; set negative to disable.
	SendJitter sim.Time

	// OnComplete, if set, is invoked once the final data packet is
	// cumulatively acknowledged (finite flows only).
	OnComplete func()

	// Tracer, when non-nil, records the connection's protocol events —
	// cwnd changes, RTT samples, losses, retransmissions, scheduler
	// picks, §6 countermeasures — into internal/trace ring buffers. The
	// default nil disables tracing: every trace site is guarded by one
	// pointer test, the hot path stays allocation-free, and simulation
	// results are bit-identical with tracing on or off (the tracer never
	// touches the world's random source).
	Tracer *trace.Tracer
}

// Conn is the sender side of a (multipath) connection together with its
// receiver model. Create with NewConn, then Start.
type Conn struct {
	ID   int
	net  *netsim.Net
	cfg  Config
	alg  core.Algorithm
	subs []*Subflow
	cc   []core.Subflow
	recv *Receiver

	// Optional algorithm hooks (internal/cc's extended contract),
	// resolved once at construction so the per-ACK path pays no type
	// assertion: nil when the algorithm does not implement them.
	rttObs  cc.RTTObserver
	lossObs cc.LossObserver

	// tracer is nil unless Config.Tracer enabled tracing; traceID is
	// this connection's tracer-scoped ID, allocated in construction
	// order (deterministic within a world, unlike the diagnostic global
	// ID below).
	tracer  *trace.Tracer
	traceID int32

	// Scheduler state: the configured scheduler, whether it duplicates
	// segments (resolved once, like the cc hooks), and a scratch View
	// slice reused across pumps so the per-ACK path allocates nothing.
	sched     sched.Scheduler
	redundant bool
	views     []sched.View
	// dupNxt is the redundant scheduler's per-subflow replay frontier:
	// the next data sequence subflow i should (re)carry. Nil unless the
	// scheduler duplicates.
	dupNxt []int64

	// Receive-buffer countermeasure state (§6): oppRetxSeq remembers the
	// last data sequence opportunistically retransmitted so each blocking
	// segment is re-sent at most once.
	oppRetxSeq int64

	// OppRetx counts opportunistic retransmissions; Penalties counts
	// subflow-penalization window halvings (both 0 unless SchedOpts
	// enables the countermeasures).
	OppRetx   int64
	Penalties int64

	dataNxt   int64 // next new data sequence number to assign
	dataUna   int64 // cumulative data-level acknowledgment
	dataEdge  int64 // highest permitted dataSeq+1 (flow control edge)
	total     int64 // total data packets, or Infinite
	reinjectQ []int64
	started   bool
	done      bool
	startedAt sim.Time
	doneAt    sim.Time

	// Zero-window persist state: when the advertised window closes and
	// nothing is in flight, the sender probes periodically so a lost
	// window update cannot deadlock the connection.
	fcBlocked    bool
	persistTimer *sim.Timer
}

const persistInterval = 200 * sim.Millisecond

// nextConnID is atomic because independent simulator worlds construct
// connections concurrently (internal/exp's parallel runner). The ID is
// purely diagnostic (packet FlowID labels, String()), so the allocation
// order never influences simulation results.
var nextConnID atomic.Int64

// NewConn builds a connection and its receiver, and wires the routes.
func NewConn(nw *netsim.Net, cfg Config) *Conn {
	c := &Conn{}
	c.init(nw, cfg)
	return c
}

// init (re)constructs the connection in place. A zero Conn becomes a
// fresh connection; a completed connection is rebuilt for a new life
// (ConnPool), reusing its subflows — with their grown meta rings — its
// receiver's maps, and its scratch slices. Reuse requires an equal path
// count (the pool keys on it); on mismatch everything is rebuilt.
// Routes are always fresh allocations: packets from a previous life
// still in flight keep their old route object intact, and the FlowID
// guard in the receive paths discards them on arrival.
func (c *Conn) init(nw *netsim.Net, cfg Config) {
	if len(cfg.Paths) == 0 {
		panic("transport: connection needs at least one path")
	}
	if cfg.Alg == nil {
		if len(cfg.Paths) == 1 {
			cfg.Alg = core.Regular{}
		} else {
			cfg.Alg = &core.MPTCP{}
		}
	}
	if cfg.RecvBuf <= 0 {
		cfg.RecvBuf = 1 << 20
	}
	if cfg.InitialCwnd <= 0 {
		cfg.InitialCwnd = 2
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = 200 * sim.Millisecond
	}
	if cfg.DataPackets == 0 {
		cfg.DataPackets = Infinite
	}
	switch {
	case cfg.SendJitter == 0:
		cfg.SendJitter = 100 * sim.Microsecond
	case cfg.SendJitter < 0:
		cfg.SendJitter = 0
	}
	if cfg.Sched == nil {
		cfg.Sched = sched.FirstFit{}
	}
	n := len(cfg.Paths)
	// Salvage the reusable allocations of a previous life before the
	// wholesale reset below clears every field.
	subs, ccs, views, recv := c.subs, c.cc, c.views, c.recv
	reinjectQ, dupNxt := c.reinjectQ, c.dupNxt
	if len(subs) != n {
		subs, ccs, views, recv, dupNxt = nil, nil, nil, nil, nil
	}
	*c = Conn{
		ID:         int(nextConnID.Add(1)),
		net:        nw,
		cfg:        cfg,
		alg:        cfg.Alg,
		total:      cfg.DataPackets,
		dataEdge:   cfg.RecvBuf,
		sched:      cfg.Sched,
		oppRetxSeq: -1,
		tracer:     cfg.Tracer,
		traceID:    cfg.Tracer.ConnID(), // nil-safe: -1 when tracing is off
	}
	if reinjectQ != nil {
		c.reinjectQ = reinjectQ[:0]
	}
	c.rttObs, _ = c.alg.(cc.RTTObserver)
	c.lossObs, _ = c.alg.(cc.LossObserver)
	if d, ok := c.sched.(sched.Duplicator); ok {
		c.redundant = d.Duplicates()
	}
	if c.redundant {
		if dupNxt != nil {
			clear(dupNxt)
			c.dupNxt = dupNxt
		} else {
			c.dupNxt = make([]int64, n)
		}
	}
	if views != nil {
		c.views = views
	} else {
		c.views = make([]sched.View, n)
	}
	c.persistTimer = nw.Sim.NewTimer(c.persistProbe)
	if ccs != nil {
		c.cc = ccs
	} else {
		c.cc = make([]core.Subflow, n)
	}
	if recv != nil {
		recv.reset(nw, c, cfg.RecvBuf)
		c.recv = recv
	} else {
		c.recv = newReceiver(nw, c, n, cfg.RecvBuf)
	}
	c.subs = subs
	for i, p := range cfg.Paths {
		var sf *Subflow
		if subs != nil {
			sf = subs[i]
			sf.reset(c)
		} else {
			sf = newSubflow(c, i)
			c.subs = append(c.subs, sf)
		}
		sf.fwd = netsim.NewRoute(c.recv, p.Fwd...)
		c.recv.rev[i] = netsim.NewRoute(sf, p.Rev...)
		c.cc[i] = core.Subflow{Cwnd: cfg.InitialCwnd, SSThresh: math.Inf(1)}
	}
}

// Start begins transmission at the current simulated time.
func (c *Conn) Start() {
	if c.started {
		return
	}
	c.started = true
	c.startedAt = c.net.Sim.Now()
	c.pump()
}

// Receiver returns the connection's receiver model.
func (c *Conn) Receiver() *Receiver { return c.recv }

// Subflows returns the sender-side subflows (read-only use).
func (c *Conn) Subflows() []*Subflow { return c.subs }

// Alg returns the congestion control algorithm driving the connection.
func (c *Conn) Alg() core.Algorithm { return c.alg }

// Done reports whether a finite flow has been fully acknowledged.
func (c *Conn) Done() bool { return c.done }

// Stop terminates the connection immediately: no more transmissions, all
// timers cancelled. Used by experiments that remove flows mid-run (§2.4's
// departing flow, the server workload's completed transfers).
func (c *Conn) Stop() {
	if c.done {
		return
	}
	c.done = true
	c.doneAt = c.net.Sim.Now()
	c.releaseTimers()
}

// releaseTimers stops the connection's timers and returns them to the
// simulator's freelist: a finished connection leaves no timer garbage
// behind, which matters for workloads that churn through thousands of
// connections (the §3 server experiment). Only called once the done flag
// guards every transmission path.
func (c *Conn) releaseTimers() {
	// Clear the flow-control latch first: a late ACK's window update must
	// not touch the released persist timer (onDataAck only stops it while
	// fcBlocked holds).
	c.fcBlocked = false
	c.persistTimer.Release()
	for _, sf := range c.subs {
		sf.rtoTimer.Release()
	}
}

// StartedAt returns when Start was called.
func (c *Conn) StartedAt() sim.Time { return c.startedAt }

// CompletedAt returns when the flow finished (finite flows).
func (c *Conn) CompletedAt() sim.Time { return c.doneAt }

// Delivered returns the count of data packets delivered in order to the
// receiving application.
func (c *Conn) Delivered() int64 { return c.recv.dataRcvNxt }

// SubflowDelivered returns the number of distinct data packets the
// receiver obtained via subflow i (per-path goodput, used by Fig. 15/17).
func (c *Conn) SubflowDelivered(i int) int64 { return c.recv.subDelivered[i] }

// Cwnd returns subflow i's congestion window in packets.
func (c *Conn) Cwnd(i int) float64 { return c.cc[i].Cwnd }

// SRTT returns subflow i's smoothed RTT estimate.
func (c *Conn) SRTT(i int) sim.Time { return c.subs[i].srtt }

// popData hands the next data sequence number to transmit on a subflow,
// preferring reinjections. ok is false when the connection is app-limited
// or flow-control limited.
func (c *Conn) popData() (seq int64, ok bool) {
	for len(c.reinjectQ) > 0 {
		s := c.reinjectQ[0]
		c.reinjectQ = c.reinjectQ[1:]
		if s >= c.dataUna {
			return s, true
		}
	}
	if c.total != Infinite && c.dataNxt >= c.total {
		return 0, false
	}
	if c.dataNxt >= c.dataEdge {
		c.fcBlocked = true // flow control (§6): respect the shared buffer
		return 0, false
	}
	s := c.dataNxt
	c.dataNxt++
	return s, true
}

// onDataAck processes the explicit data-level acknowledgment and window
// carried on an ACK (§6).
func (c *Conn) onDataAck(dataAck, rcvWnd int64) {
	if dataAck > c.dataUna {
		c.dataUna = dataAck
	}
	// The edge is monotone: old ACKs cannot shrink it.
	if e := dataAck + rcvWnd; e > c.dataEdge {
		c.dataEdge = e
		if c.fcBlocked {
			c.fcBlocked = false
			c.persistTimer.Stop()
		}
	}
	if c.total != Infinite && !c.done && c.dataUna >= c.total {
		c.done = true
		c.doneAt = c.net.Sim.Now()
		c.releaseTimers()
		if c.cfg.OnComplete != nil {
			c.cfg.OnComplete()
		}
	}
}

// reinject queues data sequences for retransmission on any subflow; used
// after an RTO so a dying path cannot strand the data stream (§6 / §5
// mobility).
func (c *Conn) reinject(dataSeqs []int64) {
	if c.cfg.DisableReinject {
		return
	}
	for _, s := range dataSeqs {
		if s >= c.dataUna {
			c.reinjectQ = append(c.reinjectQ, s)
		}
	}
}

// pump drives transmission: loss-recovery repairs first (per subflow,
// in configuration order — they are not scheduling decisions), then new
// data assigned by the configured scheduler, then, if the shared
// receive buffer blocked the sender, the §6 countermeasures. With the
// default FirstFit scheduler this reproduces the paper's "stripes
// packets across these subflows as space in the subflow windows becomes
// available" bit for bit.
func (c *Conn) pump() {
	if !c.started || c.done {
		return
	}
	for _, sf := range c.subs {
		sf.sendRepairs()
	}
	c.schedule()
	if c.fcBlocked {
		c.rbufCountermeasures()
		if !c.persistTimer.Active() && c.idle() {
			c.persistTimer.Reset(persistInterval)
		}
	}
}

// schedule assigns new data to subflows, one segment per scheduler
// Pick, until the scheduler declines or the data supply (application or
// flow control) runs dry. The View slice is scratch owned by the
// connection, refreshed in place each pump: the per-ACK path allocates
// nothing.
func (c *Conn) schedule() {
	if c.redundant {
		c.scheduleRedundant()
		return
	}
	for i, sf := range c.subs {
		c.views[i] = sched.View{
			Cwnd:     c.cc[i].Cwnd,
			Inflight: sf.outstanding(),
			SRTT:     sf.srtt.Seconds(),
			Sendable: !sf.inRec && !sf.inRepair(),
			Sent:     sf.sndNxt,
		}
	}
	for {
		// The flow-control headroom shrinks as the loop assigns new
		// data, so the Ctx is rebuilt per pick — a blocking-aware
		// scheduler (BLEST) must see the headroom left now, not the
		// pump-entry snapshot.
		i := c.sched.Pick(sched.Ctx{Window: c.dataEdge - c.dataNxt}, c.views)
		if i < 0 {
			return
		}
		dataSeq, ok := c.subs[i].sendNew()
		if !ok {
			return
		}
		if c.tracer != nil {
			c.tracer.SchedPick(c.traceID, int32(i), dataSeq)
		}
		c.views[i].Inflight++
		c.views[i].Sent++
	}
}

// scheduleRedundant drives a duplicating scheduler: every subflow keeps
// its own replay frontier (dupNxt) over the data stream and, window
// permitting, carries every data sequence itself — the subflow that is
// furthest ahead pulls new data, the others replay it. Frontiers skip
// data the receiver already holds (below dataUna), so a subflow that
// fell behind replays only the still-unacknowledged window, like
// Linux's mptcp_redundant. The first copy to arrive delivers; later
// copies count as duplicate data and consume no receive buffer.
func (c *Conn) scheduleRedundant() {
	for progress := true; progress; {
		progress = false
		for i, sf := range c.subs {
			if sf.inRec || sf.inRepair() || sf.outstanding() >= sf.window() {
				continue
			}
			if c.dupNxt[i] < c.dataUna {
				c.dupNxt[i] = c.dataUna
			}
			if c.dupNxt[i] < c.dataNxt {
				sf.sendMapped(c.dupNxt[i])
				c.dupNxt[i]++
				progress = true
				continue
			}
			dataSeq, ok := sf.sendNew()
			if !ok {
				continue
			}
			if dataSeq+1 > c.dupNxt[i] {
				c.dupNxt[i] = dataSeq + 1
			}
			progress = true
		}
	}
}

// rbufCountermeasures applies the paper's §6 remedies when the shared
// receive buffer has blocked the sender: the segment everyone is
// waiting on is the data-level cumulative ack (dataUna), typically
// parked on a slow subflow while faster ones drained. Opportunistic
// retransmission re-sends that segment on the fastest other subflow
// with window space (once per blocking segment); penalization halves
// the blocking subflow's congestion window (at most once per its RTT)
// so it stops re-filling the buffer. Both are off unless Config
// .SchedOpts enables them, leaving default behaviour untouched.
func (c *Conn) rbufCountermeasures() {
	if !c.cfg.SchedOpts.Any() || len(c.subs) < 2 {
		return
	}
	// Gate before the blocker scan: while the connection stays blocked
	// on the same segment, every ACK re-enters here, and once the
	// opportunistic retransmission is spent and every penalty backoff
	// is still running there is nothing left to do this round trip.
	needOpp := c.cfg.SchedOpts.OpportunisticRetx && c.oppRetxSeq != c.dataUna
	needPen := false
	if c.cfg.SchedOpts.Penalize {
		now := c.net.Sim.Now()
		for _, sf := range c.subs {
			if now >= sf.nextPenalty {
				needPen = true
				break
			}
		}
	}
	if !needOpp && !needPen {
		return
	}
	blocker := c.findBlocker()
	if blocker < 0 {
		return
	}
	if c.cfg.SchedOpts.Penalize {
		c.penalize(blocker)
	}
	if needOpp {
		for i, sf := range c.subs {
			c.views[i] = sched.View{
				Cwnd:     c.cc[i].Cwnd,
				Inflight: sf.outstanding(),
				SRTT:     sf.srtt.Seconds(),
				Sendable: !sf.inRec && !sf.inRepair(),
			}
		}
		if best := sched.PickMinRTT(c.views, blocker); best >= 0 {
			c.subs[best].sendMapped(c.dataUna)
			c.oppRetxSeq = c.dataUna
			c.OppRetx++
			if c.tracer != nil {
				c.tracer.OppRetx(c.traceID, int32(best), c.dataUna)
			}
		}
	}
}

// penalize halves the congestion window of the subflow blocking the
// receive buffer, backoff-limited to once per smoothed RTT (MinRTO when
// unmeasured) so repeated blocking events within one round trip do not
// collapse the window to nothing.
func (c *Conn) penalize(i int) {
	sf := c.subs[i]
	now := c.net.Sim.Now()
	if now < sf.nextPenalty {
		return
	}
	cw := &c.cc[i]
	if cw.Cwnd > 1 {
		cw.Cwnd /= 2
		if cw.Cwnd < 1 {
			cw.Cwnd = 1
		}
		cw.SSThresh = cw.Cwnd
		c.Penalties++
		if c.tracer != nil {
			c.tracer.Penalty(c.traceID, int32(i), cw.Cwnd)
		}
	}
	d := sf.srtt
	if d <= 0 {
		d = c.cfg.MinRTO
	}
	sf.nextPenalty = now + d
}

// findBlocker returns the subflow holding the un-delivered segment the
// receive window is stuck on (dataSeq == dataUna, outstanding and not
// SACKed), or -1. The scan is bounded by the subflows' outstanding data
// and runs only on blocking events, which the countermeasures rate-
// limit.
func (c *Conn) findBlocker() int {
	for i, sf := range c.subs {
		for s := sf.sndUna; s < sf.sndNxt; s++ {
			m := sf.slot(s)
			if !m.sacked && m.dataSeq == c.dataUna {
				return i
			}
		}
	}
	return -1
}

// idle reports whether no subflow has data in flight (so no ACK will
// arrive to reopen a closed window on its own).
func (c *Conn) idle() bool {
	for _, sf := range c.subs {
		if sf.outstanding() > 0 {
			return false
		}
	}
	return true
}

// persistProbe sends a zero-window probe (TCP's persist timer): a tiny
// packet that elicits an ACK carrying the current window, guarding
// against a lost window update deadlocking a flow-control-blocked sender.
func (c *Conn) persistProbe() {
	if c.done || !c.fcBlocked {
		return
	}
	for _, sf := range c.subs {
		p := c.net.AllocPacket()
		p.Size = netsim.AckPacketSize
		p.FlowID = c.ID
		p.SubflowID = sf.id
		p.IsProbe = true
		p.SentAt = c.net.Sim.Now()
		c.net.Send(sf.fwd, p)
	}
	c.persistTimer.Reset(persistInterval)
}

func (c *Conn) String() string {
	return fmt.Sprintf("conn%d[%s,%d subflows]", c.ID, c.alg.Name(), len(c.subs))
}
