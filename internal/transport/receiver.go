package transport

import (
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// Receiver is the receive-side model of a connection: per-subflow
// cumulative acknowledgment for loss detection, connection-level stream
// reassembly over data sequence numbers, and a single shared receive
// buffer whose window is advertised relative to the data-level cumulative
// ACK — the design §6 of the paper arrives at after eliminating
// per-subflow buffers (deadlock) and inferred data ACKs (spurious drops).
//
// Every data packet is acknowledged immediately with a pure ACK carrying
// the subflow cumulative ack, the explicit data ack, the receive window
// and the echoed timestamp.
type Receiver struct {
	net  *netsim.Net
	conn *Conn
	rev  []*netsim.Route // per-subflow reverse routes

	// Per-subflow sequence state.
	subRcvNxt    []int64
	subOOO       []map[int64]struct{}
	subDelivered []int64

	// Connection-level reassembly.
	dataRcvNxt int64
	dataOOO    map[int64]struct{}
	maxHeld    int64 // highest dataSeq buffered, for span accounting

	// Shared receive buffer (§6), in packets.
	bufCap   int64
	readPt   int64 // data consumed by the application
	stalled  bool  // application stopped reading (flow-control tests)
	Overflow int64 // packets dropped because the buffer was full

	// DupData counts packets carrying already-received data (e.g. after
	// reinjection); they consume no buffer.
	DupData int64
}

func newReceiver(nw *netsim.Net, c *Conn, nsub int, bufCap int64) *Receiver {
	r := &Receiver{
		net:          nw,
		conn:         c,
		rev:          make([]*netsim.Route, nsub),
		subRcvNxt:    make([]int64, nsub),
		subOOO:       make([]map[int64]struct{}, nsub),
		subDelivered: make([]int64, nsub),
		dataOOO:      make(map[int64]struct{}),
		bufCap:       bufCap,
	}
	for i := range r.subOOO {
		r.subOOO[i] = make(map[int64]struct{})
	}
	return r
}

// reset rebuilds the receiver for a new life of a pooled connection:
// all sequence state returns to zero, the out-of-order maps are cleared
// (keeping their buckets), and the reverse routes are rewired by
// Conn.init afterwards.
func (r *Receiver) reset(nw *netsim.Net, c *Conn, bufCap int64) {
	r.net = nw
	r.conn = c
	for i := range r.subRcvNxt {
		r.subRcvNxt[i] = 0
		r.subDelivered[i] = 0
		clear(r.subOOO[i])
	}
	clear(r.dataOOO)
	r.dataRcvNxt, r.maxHeld = 0, 0
	r.bufCap, r.readPt = bufCap, 0
	r.stalled = false
	r.Overflow, r.DupData = 0, 0
}

// SetAppStalled freezes or resumes the receiving application's reads.
// While stalled, in-order data accumulates in the shared buffer and the
// advertised window closes; on resume all pending data drains and a
// window update is sent on every subflow, as a real TCP receiver does
// when the application's read reopens a closed window.
func (r *Receiver) SetAppStalled(stalled bool) {
	r.stalled = stalled
	if !stalled {
		r.readPt = r.dataRcvNxt
		for i := range r.rev {
			r.sendAck(i, 0)
		}
	}
}

// DataRcvNxt returns the connection-level cumulative data received.
func (r *Receiver) DataRcvNxt() int64 { return r.dataRcvNxt }

// Window returns the advertised receive window in packets, relative to
// the data-level cumulative ack.
func (r *Receiver) Window() int64 {
	w := r.readPt + r.bufCap - r.dataRcvNxt
	if w < 0 {
		w = 0
	}
	return w
}

// Receive consumes a data packet (netsim.Endpoint).
func (r *Receiver) Receive(pkt *netsim.Packet) {
	if pkt.FlowID != r.conn.ID {
		// Straggler from a previous life of a pooled connection (see
		// Subflow.Receive): drop without acknowledging.
		r.net.FreePacket(pkt)
		return
	}
	sfID := pkt.SubflowID
	seq, dataSeq, sentAt := pkt.Seq, pkt.DataSeq, pkt.SentAt
	probe := pkt.IsProbe
	r.net.FreePacket(pkt)

	if probe {
		// Window probe: acknowledge current state, change nothing.
		r.sendAck(sfID, sentAt)
		return
	}

	// Shared-buffer admission: data beyond the advertised edge cannot be
	// buffered. Treat it like a network loss so subflow-level
	// retransmission recovers it; a correct sender never triggers this.
	if dataSeq >= r.readPt+r.bufCap {
		r.Overflow++
		return
	}

	// Subflow-level sequence tracking (loss detection). Out-of-order
	// arrivals are SACKed individually; with per-packet ACKs the sender
	// learns the exact hole set.
	sack := int64(-1)
	if seq == r.subRcvNxt[sfID] {
		r.subRcvNxt[sfID]++
		for {
			if _, ok := r.subOOO[sfID][r.subRcvNxt[sfID]]; !ok {
				break
			}
			delete(r.subOOO[sfID], r.subRcvNxt[sfID])
			r.subRcvNxt[sfID]++
		}
	} else if seq > r.subRcvNxt[sfID] {
		if _, dup := r.subOOO[sfID][seq]; !dup {
			// Only a *new* out-of-order arrival is SACKed; duplicate
			// arrivals produce an ACK with no new information, which
			// the sender must not count toward fast retransmit
			// (RFC 6675's DupAck definition).
			sack = seq
		}
		r.subOOO[sfID][seq] = struct{}{}
	}

	// Connection-level reassembly.
	if dataSeq < r.dataRcvNxt {
		r.DupData++
	} else if _, dup := r.dataOOO[dataSeq]; dup {
		r.DupData++
	} else {
		r.subDelivered[sfID]++
		if dataSeq == r.dataRcvNxt {
			r.dataRcvNxt++
			for {
				if _, ok := r.dataOOO[r.dataRcvNxt]; !ok {
					break
				}
				delete(r.dataOOO, r.dataRcvNxt)
				r.dataRcvNxt++
			}
		} else {
			r.dataOOO[dataSeq] = struct{}{}
			if dataSeq > r.maxHeld {
				r.maxHeld = dataSeq
			}
		}
		if !r.stalled {
			r.readPt = r.dataRcvNxt // the application reads instantly
		}
	}

	r.sendAckSack(sfID, sentAt, sack)
}

func (r *Receiver) sendAck(sfID int, echo sim.Time) {
	r.sendAckSack(sfID, echo, -1)
}

func (r *Receiver) sendAckSack(sfID int, echo sim.Time, sack int64) {
	a := r.net.AllocPacket()
	a.Size = netsim.AckPacketSize
	a.IsAck = true
	a.FlowID = r.conn.ID
	a.SubflowID = sfID
	a.Ack = r.subRcvNxt[sfID]
	a.DataAck = r.dataRcvNxt
	a.RcvWnd = r.Window()
	a.EchoTS = echo
	if sack >= 0 {
		a.HasSack = true
		a.SackSeq = sack
	}
	r.net.Send(r.rev[sfID], a)
}
