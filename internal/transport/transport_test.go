package transport

import (
	"math"
	"testing"

	"mptcp/internal/core"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// env is a small harness: a simulator, a network, and helpers to build
// bidirectional paths.
type env struct {
	s *sim.Simulator
	n *netsim.Net
}

func newEnv(seed int64) *env {
	s := sim.New(seed)
	return &env{s: s, n: netsim.NewNet(s)}
}

// path builds a symmetric two-way path through the given forward links;
// reverse links are created with the same properties (ample for ACKs).
func (e *env) path(fwd ...*netsim.Link) Path {
	rev := make([]*netsim.Link, len(fwd))
	for i, l := range fwd {
		rev[len(fwd)-1-i] = netsim.NewLink(l.Name+"-rev", l.RateBps/1e6, l.PropDelay, l.QueueCap)
	}
	return Path{Fwd: fwd, Rev: rev}
}

// bdp returns the bandwidth-delay product in packets for rate (Mb/s) and
// rtt.
func bdp(rateMbps float64, rtt sim.Time) int {
	return int(rateMbps * 1e6 * rtt.Seconds() / (netsim.DataPacketSize * 8))
}

// throughputMbps converts packets delivered over an interval to Mb/s.
func throughputMbps(pkts int64, dur sim.Time) float64 {
	return float64(pkts) * netsim.DataPacketSize * 8 / dur.Seconds() / 1e6
}

func TestSinglePathTCPFillsLink(t *testing.T) {
	e := newEnv(1)
	// 10 Mb/s, 20 ms RTT, buffer = 1 BDP.
	buf := bdp(10, 20*sim.Millisecond)
	l := netsim.NewLink("bottleneck", 10, 10*sim.Millisecond, buf)
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	c.Start()
	e.s.RunUntil(20 * sim.Second)
	// Skip the first 2 s of slow start when judging utilisation.
	warm := c.Delivered()
	e.s.RunUntil(40 * sim.Second)
	got := throughputMbps(c.Delivered()-warm, 20*sim.Second)
	if got < 9.0 || got > 10.01 {
		t.Errorf("long-lived TCP throughput = %.2f Mb/s, want ~10 (buffer=%d pkts)", got, buf)
	}
}

func TestTCPFairShareTwoFlows(t *testing.T) {
	e := newEnv(2)
	buf := bdp(10, 40*sim.Millisecond)
	l := netsim.NewLink("bottleneck", 10, 20*sim.Millisecond, buf)
	mk := func() *Conn {
		// Separate reverse links so ACKs don't collide.
		return NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	}
	c1, c2 := mk(), mk()
	c1.Start()
	c2.Start()
	e.s.RunUntil(10 * sim.Second)
	w1, w2 := c1.Delivered(), c2.Delivered()
	e.s.RunUntil(70 * sim.Second)
	t1 := throughputMbps(c1.Delivered()-w1, 60*sim.Second)
	t2 := throughputMbps(c2.Delivered()-w2, 60*sim.Second)
	if sum := t1 + t2; sum < 9.0 {
		t.Errorf("aggregate = %.2f Mb/s, want ~10", sum)
	}
	ratio := t1 / t2
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("unfair split: %.2f vs %.2f Mb/s", t1, t2)
	}
}

func TestMPTCPUsesBothDisjointPaths(t *testing.T) {
	e := newEnv(3)
	l1 := netsim.NewLink("p1", 8, 10*sim.Millisecond, bdp(8, 20*sim.Millisecond))
	l2 := netsim.NewLink("p2", 4, 10*sim.Millisecond, bdp(4, 20*sim.Millisecond))
	c := NewConn(e.n, Config{
		Alg:   &core.MPTCP{},
		Paths: []Path{e.path(l1), e.path(l2)},
	})
	c.Start()
	e.s.RunUntil(10 * sim.Second)
	base := c.Delivered()
	e.s.RunUntil(40 * sim.Second)
	got := throughputMbps(c.Delivered()-base, 30*sim.Second)
	// No competing traffic: §2.5 "MPTCP does in fact give throughput
	// equal to the sum of access link bandwidths".
	if got < 0.85*12 {
		t.Errorf("MPTCP on 8+4 Mb/s idle paths = %.2f Mb/s, want ~12", got)
	}
	if c.SubflowDelivered(0) == 0 || c.SubflowDelivered(1) == 0 {
		t.Error("one subflow never delivered data")
	}
}

// Fig. 1 scenario: an MPTCP flow with two subflows through one bottleneck
// competing with a single-path TCP must take ~half, not ~two thirds.
func TestSharedBottleneckFairness(t *testing.T) {
	for _, tc := range []struct {
		name    string
		alg     core.Algorithm
		loShare float64
		hiShare float64
	}{
		{"MPTCP", &core.MPTCP{}, 0.35, 0.62},
		{"EWTCP", core.EWTCP{}, 0.35, 0.62},
		{"COUPLED", core.Coupled{}, 0.30, 0.62},
		// Uncoupled REGULAR on two subflows takes ~2/3 — the §2.1
		// unfairness this paper exists to fix.
		{"REGULAR", core.Regular{}, 0.60, 0.75},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(4)
			buf := bdp(12, 50*sim.Millisecond)
			l := netsim.NewLink("shared", 12, 25*sim.Millisecond, buf)
			mp := NewConn(e.n, Config{
				Alg:   tc.alg,
				Paths: []Path{e.path(l), e.path(l)},
			})
			tcp := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
			mp.Start()
			tcp.Start()
			e.s.RunUntil(20 * sim.Second)
			m0, t0 := mp.Delivered(), tcp.Delivered()
			e.s.RunUntil(140 * sim.Second)
			mRate := float64(mp.Delivered() - m0)
			tRate := float64(tcp.Delivered() - t0)
			share := mRate / (mRate + tRate)
			if share < tc.loShare || share > tc.hiShare {
				t.Errorf("%s multipath share = %.3f, want in [%.2f,%.2f]",
					tc.name, share, tc.loShare, tc.hiShare)
			}
		})
	}
}

func TestFiniteFlowCompletes(t *testing.T) {
	e := newEnv(5)
	l := netsim.NewLink("l", 10, 10*sim.Millisecond, 100)
	completed := false
	c := NewConn(e.n, Config{
		Paths:       []Path{e.path(l)},
		DataPackets: 500,
		OnComplete:  func() { completed = true },
	})
	c.Start()
	e.s.RunUntil(60 * sim.Second)
	if !completed || !c.Done() {
		t.Fatal("finite flow did not complete")
	}
	if got := c.Delivered(); got != 500 {
		t.Errorf("delivered %d packets, want 500", got)
	}
	if c.CompletedAt() <= c.StartedAt() {
		t.Error("completion time not after start")
	}
}

func TestLossRecoveryRandomLoss(t *testing.T) {
	e := newEnv(6)
	l := netsim.NewLink("lossy", 100, 10*sim.Millisecond, 1000)
	l.LossRate = 0.01
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}, DataPackets: 20000})
	c.Start()
	e.s.RunUntil(600 * sim.Second)
	if !c.Done() {
		t.Fatalf("flow did not finish despite retransmissions (delivered %d)", c.Delivered())
	}
	if c.Subflows()[0].FastRetx == 0 {
		t.Error("expected at least one fast retransmit at 1% loss")
	}
}

func TestThroughputMatchesRootPFormula(t *testing.T) {
	// At fixed random loss p with ample capacity, NewReno's rate should
	// track ~√(2/p)/RTT within a factor accounting for timeouts and
	// discreteness (the paper's analysis uses this formula in §2.3).
	e := newEnv(7)
	p := 0.005
	rtt := 100 * sim.Millisecond
	l := netsim.NewLink("lossy", 1000, rtt/2, 1<<16)
	l.LossRate = p
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	c.Start()
	e.s.RunUntil(300 * sim.Second)
	rate := float64(c.Delivered()) / e.s.Now().Seconds() // pkt/s
	want := math.Sqrt(2/p) / rtt.Seconds()
	if rate < 0.5*want || rate > 1.5*want {
		t.Errorf("rate = %.0f pkt/s, formula √(2/p)/RTT = %.0f", rate, want)
	}
}

func TestRTORecoversFromOutage(t *testing.T) {
	e := newEnv(8)
	l := netsim.NewLink("flaky", 10, 10*sim.Millisecond, 50)
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	c.Start()
	e.s.RunUntil(5 * sim.Second)
	l.SetDown(true)
	e.s.RunUntil(8 * sim.Second)
	l.SetDown(false)
	before := c.Delivered()
	e.s.RunUntil(30 * sim.Second)
	if c.Subflows()[0].RTOs == 0 {
		t.Error("outage should have caused an RTO")
	}
	got := throughputMbps(c.Delivered()-before, 22*sim.Second)
	if got < 7 {
		t.Errorf("post-outage throughput = %.2f Mb/s, want ~10 (flow wedged?)", got)
	}
}

func TestReinjectionSurvivesPathDeath(t *testing.T) {
	e := newEnv(9)
	l1 := netsim.NewLink("p1", 10, 10*sim.Millisecond, 50)
	l2 := netsim.NewLink("p2", 10, 10*sim.Millisecond, 50)
	c := NewConn(e.n, Config{
		Alg:         &core.MPTCP{},
		Paths:       []Path{e.path(l1), e.path(l2)},
		DataPackets: 8000,
	})
	c.Start()
	e.s.RunUntil(2 * sim.Second)
	l2.SetDown(true) // path 2 dies with data in flight
	e.s.RunUntil(120 * sim.Second)
	if !c.Done() {
		t.Fatalf("connection stranded after path death: delivered %d/8000 (in-flight data on the dead path must be reinjected)",
			c.Delivered())
	}
}

func TestNoReinjectStrandsData(t *testing.T) {
	// Ablation: with reinjection disabled, killing a path with in-flight
	// data stalls the stream — demonstrating why §6's design needs
	// data-level retransmission.
	e := newEnv(10)
	l1 := netsim.NewLink("p1", 10, 10*sim.Millisecond, 50)
	l2 := netsim.NewLink("p2", 10, 10*sim.Millisecond, 50)
	c := NewConn(e.n, Config{
		Alg:             &core.MPTCP{},
		Paths:           []Path{e.path(l1), e.path(l2)},
		DataPackets:     8000,
		DisableReinject: true,
	})
	c.Start()
	e.s.RunUntil(2 * sim.Second)
	l2.SetDown(true)
	e.s.RunUntil(120 * sim.Second)
	if c.Done() {
		t.Error("flow completed despite stranded data — reinjection ablation broken")
	}
}

func TestFlowControlStalledApp(t *testing.T) {
	e := newEnv(11)
	l := netsim.NewLink("l", 10, 10*sim.Millisecond, 100)
	c := NewConn(e.n, Config{
		Paths:   []Path{e.path(l)},
		RecvBuf: 64,
	})
	c.Start()
	e.s.RunUntil(2 * sim.Second)
	c.Receiver().SetAppStalled(true)
	stallPoint := c.Delivered()
	e.s.RunUntil(12 * sim.Second)
	// Sender must stop within one buffer's worth of data.
	if got := c.Delivered() - stallPoint; got > 64 {
		t.Errorf("sender pushed %d packets into a stalled 64-packet buffer", got)
	}
	if c.Receiver().Overflow != 0 {
		t.Errorf("receive buffer overflowed %d times", c.Receiver().Overflow)
	}
	c.Receiver().SetAppStalled(false)
	// The window reopens on the next ACK; nudge with a timer-driven
	// probe: our model's RTO retransmission doubles as window probing.
	resume := c.Delivered()
	e.s.RunUntil(30 * sim.Second)
	if c.Delivered()-resume < 100 {
		t.Errorf("flow did not resume after app unstalled (delivered %d more)", c.Delivered()-resume)
	}
}

func TestInOrderExactlyOnceDelivery(t *testing.T) {
	e := newEnv(12)
	l1 := netsim.NewLink("p1", 10, 5*sim.Millisecond, 30)
	l2 := netsim.NewLink("p2", 3, 40*sim.Millisecond, 30)
	l1.LossRate = 0.01
	l2.LossRate = 0.02
	c := NewConn(e.n, Config{
		Alg:         &core.MPTCP{},
		Paths:       []Path{e.path(l1), e.path(l2)},
		DataPackets: 5000,
	})
	c.Start()
	e.s.RunUntil(300 * sim.Second)
	if !c.Done() {
		t.Fatalf("flow incomplete: %d/5000", c.Delivered())
	}
	if got := c.Delivered(); got != 5000 {
		t.Errorf("cumulative data = %d, want exactly 5000", got)
	}
	// Per-subflow delivered counts unique data only.
	if c.SubflowDelivered(0)+c.SubflowDelivered(1) != 5000 {
		t.Errorf("per-subflow unique deliveries sum to %d, want 5000",
			c.SubflowDelivered(0)+c.SubflowDelivered(1))
	}
}

func TestRTTEstimator(t *testing.T) {
	e := newEnv(13)
	l := netsim.NewLink("l", 100, 25*sim.Millisecond, 1000)
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}, DataPackets: 200})
	c.Start()
	e.s.RunUntil(10 * sim.Second)
	srtt := c.SRTT(0)
	// Base RTT is 50 ms plus small serialisation; queueing adds a bit.
	if srtt < 50*sim.Millisecond || srtt > 80*sim.Millisecond {
		t.Errorf("SRTT = %v, want ~50-80ms", srtt)
	}
}

func TestCwndFloor(t *testing.T) {
	e := newEnv(14)
	l := netsim.NewLink("tiny", 0.5, 10*sim.Millisecond, 2)
	l.LossRate = 0.2
	c := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	c.Start()
	e.s.RunUntil(60 * sim.Second)
	if c.Cwnd(0) < 1 {
		t.Errorf("cwnd fell below 1 packet: %v", c.Cwnd(0))
	}
	if c.Delivered() == 0 {
		t.Error("no progress under heavy loss")
	}
}

func TestConfigDefaults(t *testing.T) {
	e := newEnv(15)
	l := netsim.NewLink("l", 1, 0, 10)
	single := NewConn(e.n, Config{Paths: []Path{e.path(l)}})
	if single.Alg().Name() != "REGULAR" {
		t.Errorf("single-path default alg = %s, want REGULAR", single.Alg().Name())
	}
	multi := NewConn(e.n, Config{Paths: []Path{e.path(l), e.path(l)}})
	if multi.Alg().Name() != "MPTCP" {
		t.Errorf("multi-path default alg = %s, want MPTCP", multi.Alg().Name())
	}
}

// hookedAlg is a NewReno algorithm instrumented with internal/cc's
// optional hooks, recording every callback the transport delivers.
type hookedAlg struct {
	core.Regular
	rttSamples int
	badSamples int
	losses     int
	badState   int
}

func (h *hookedAlg) Name() string { return "HOOKED" }

func (h *hookedAlg) OnRTTSample(subs []core.Subflow, r int, rtt float64) {
	h.rttSamples++
	if rtt <= 0 || r < 0 || r >= len(subs) {
		h.badSamples++
	}
}

func (h *hookedAlg) OnLoss(subs []core.Subflow, r int) {
	h.losses++
	if r < 0 || r >= len(subs) {
		h.badState++
	}
}

// TestAlgorithmHooksWired asserts the extended algorithm contract: every
// RTT measurement reaches OnRTTSample and every loss event (fast
// retransmit or RTO) fires OnLoss exactly once, before the Decrease it
// precedes.
func TestAlgorithmHooksWired(t *testing.T) {
	e := newEnv(16)
	alg := &hookedAlg{}
	l1 := netsim.NewLink("h1", 5, 10*sim.Millisecond, 20)
	l2 := netsim.NewLink("h2", 5, 20*sim.Millisecond, 20)
	l1.LossRate = 0.02
	c := NewConn(e.n, Config{Alg: alg, Paths: []Path{e.path(l1), e.path(l2)}})
	c.Start()
	e.s.RunUntil(30 * sim.Second)
	if alg.rttSamples == 0 {
		t.Error("no RTT samples delivered to OnRTTSample")
	}
	if alg.badSamples > 0 || alg.badState > 0 {
		t.Errorf("%d invalid RTT samples, %d invalid loss states", alg.badSamples, alg.badState)
	}
	var events int64
	for _, sf := range c.Subflows() {
		events += sf.FastRetx + sf.RTOs
	}
	if events == 0 {
		t.Fatal("2% loss produced no loss events; the assertion below is vacuous")
	}
	if int64(alg.losses) != events {
		t.Errorf("OnLoss fired %d times for %d loss events", alg.losses, events)
	}
}

// TestHookFreeAlgorithmsUnaffected pins that an algorithm without hooks
// runs through the same wiring untouched (nil observers, no panics).
func TestHookFreeAlgorithmsUnaffected(t *testing.T) {
	e := newEnv(17)
	l := netsim.NewLink("plain", 5, 10*sim.Millisecond, 20)
	l.LossRate = 0.01
	c := NewConn(e.n, Config{Alg: core.EWTCP{}, Paths: []Path{e.path(l), e.path(l)}})
	c.Start()
	e.s.RunUntil(10 * sim.Second)
	if c.Delivered() == 0 {
		t.Error("hook-free algorithm made no progress")
	}
}
