package transport

import (
	"mptcp/internal/core"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// Subflow is the sender-side state machine of one subflow: SACK-based
// loss recovery with proportional rate reduction and an RFC 6298
// retransmission timer over the subflow sequence space, with congestion-
// avoidance increments delegated to the connection's coupled algorithm.
// (The paper's Linux implementation inherits SACK recovery from the
// kernel stack; our receiver SACKs every out-of-order packet
// individually, so the scoreboard is exact.) It implements
// netsim.Endpoint to consume ACKs arriving on its reverse route.
type Subflow struct {
	conn *Conn
	id   int
	fwd  *netsim.Route

	// Subflow sequence space, in packets.
	sndNxt int64
	sndUna int64

	// meta maps outstanding subflow sequence numbers to their data-level
	// mapping and scoreboard state, in a power-of-two ring buffer.
	meta []pktMeta
	mask int64

	// Fast-recovery state (SACK + conservation/PRR-style): on entry the
	// window is halved once; every subsequent arriving ACK permits one
	// transmission after the pipe has drained by `debt` packets.
	// Transmission candidates are unsacked holes below `recover` first,
	// then new data.
	dupAcks int64
	inRec   bool
	recover int64
	rtxNxt  int64
	debt    int64

	// Post-RTO go-back-N repair: sequence numbers in [repairNxt,
	// repairEnd) are presumed lost and retransmitted, window permitting,
	// before any new data; sacked packets are skipped. Sequence numbers
	// are never rolled back or reused, so each sequence number's data
	// mapping is immutable.
	repairNxt int64
	repairEnd int64

	// RFC 6298 retransmission timer.
	srtt, rttvar, rto sim.Time
	rtoTimer          *sim.Timer
	backoff           uint

	// nextPenalty rate-limits receive-buffer penalization (§6) to once
	// per RTT on this subflow.
	nextPenalty sim.Time

	// nextSend enforces FIFO transmission within the subflow when random
	// send jitter is enabled.
	nextSend sim.Time

	// Stats.
	PktsSent int64 // data packets transmitted (incl. retransmissions)
	PktsRetx int64 // subflow-level retransmissions
	RTOs     int64 // retransmission timeouts
	FastRetx int64 // fast-retransmit (recovery entry) events
}

type pktMeta struct {
	dataSeq int64
	sentAt  sim.Time
	retx    bool
	sacked  bool
}

const initialRTO = 1 * sim.Second // RFC 6298 §2.1
const maxRTO = 60 * sim.Second

func newSubflow(c *Conn, id int) *Subflow {
	sf := &Subflow{
		conn: c,
		id:   id,
		meta: make([]pktMeta, 256),
		mask: 255,
		rto:  initialRTO,
	}
	// One owned timer for the life of the subflow, rearmed in place on
	// every ACK (armTimer) instead of re-created.
	sf.rtoTimer = c.net.Sim.NewTimer(sf.onRTO)
	return sf
}

// reset rebuilds the subflow for a new life of a pooled connection:
// every field returns to its newSubflow value, but the meta ring keeps
// its grown size (zeroed) and the RTO timer comes from the simulator's
// freelist. The forward route is wired by Conn.init afterwards.
func (sf *Subflow) reset(c *Conn) {
	meta, mask, id := sf.meta, sf.mask, sf.id
	clear(meta)
	*sf = Subflow{conn: c, id: id, meta: meta, mask: mask, rto: initialRTO}
	sf.rtoTimer = c.net.Sim.NewTimer(sf.onRTO)
}

func (sf *Subflow) cc() *core.Subflow { return &sf.conn.cc[sf.id] }

// outstanding is the number of unacknowledged packets in flight.
func (sf *Subflow) outstanding() int64 { return sf.sndNxt - sf.sndUna }

// window is the effective congestion window in whole packets.
func (sf *Subflow) window() int64 {
	w := int64(sf.cc().Cwnd)
	if w < 1 {
		w = 1
	}
	return w
}

func (sf *Subflow) slot(seq int64) *pktMeta { return &sf.meta[seq&sf.mask] }

func (sf *Subflow) growRing() {
	old := sf.meta
	oldMask := sf.mask
	sf.meta = make([]pktMeta, len(old)*2)
	sf.mask = int64(len(sf.meta) - 1)
	for s := sf.sndUna; s < sf.sndNxt; s++ {
		sf.meta[s&sf.mask] = old[s&oldMask]
	}
}

func (sf *Subflow) inRepair() bool { return sf.repairEnd > sf.sndUna }

// sendRepairs retransmits the post-RTO repair backlog, window permitting:
// presumed-lost packets are resent (same sequence numbers, same data
// mapping) before the subflow carries any new data. No-op outside
// repair. New data is assigned by the connection's scheduler
// (Conn.schedule), which never selects a subflow in repair or fast
// recovery; recovery transmissions are ACK-clocked (see recoveryAck),
// not window-driven.
func (sf *Subflow) sendRepairs() {
	for sf.repairNxt < sf.repairEnd && sf.repairNxt-sf.sndUna < sf.window() {
		seq := sf.repairNxt
		sf.repairNxt++
		if sf.slot(seq).sacked {
			continue // receiver already has it
		}
		sf.transmit(seq, true)
	}
}

// sendNew transmits one packet of new connection data, returning the
// data sequence it carried and whether any data was available.
func (sf *Subflow) sendNew() (int64, bool) {
	dataSeq, ok := sf.conn.popData()
	if !ok {
		return 0, false
	}
	sf.sendMapped(dataSeq)
	return dataSeq, true
}

// sendMapped transmits dataSeq on this subflow under a fresh subflow
// sequence number. Besides sendNew, the redundant scheduler's
// duplicates and the opportunistic retransmission of a receive-buffer-
// blocking segment go through here: the receiver tolerates duplicate
// data (it consumes no buffer), so re-mapping an already-sent dataSeq
// is safe.
func (sf *Subflow) sendMapped(dataSeq int64) {
	seq := sf.sndNxt
	sf.sndNxt++
	for sf.sndNxt-sf.sndUna > sf.mask {
		sf.growRing()
	}
	*sf.slot(seq) = pktMeta{dataSeq: dataSeq}
	sf.transmit(seq, false)
}

// transmit puts the packet for subflow sequence seq on the wire, after a
// small random host-processing jitter that breaks drop-tail phase locking
// while preserving FIFO order within the subflow.
func (sf *Subflow) transmit(seq int64, retx bool) {
	nw := sf.conn.net
	now := nw.Sim.Now()
	at := now
	if j := sf.conn.cfg.SendJitter; j > 0 {
		at = now + sim.Time(nw.Sim.Rand().Int63n(int64(j)+1))
		if at < sf.nextSend {
			at = sf.nextSend
		}
		sf.nextSend = at
	}
	m := sf.slot(seq)
	m.sentAt = at
	m.retx = m.retx || retx
	p := nw.AllocPacket()
	p.Size = netsim.DataPacketSize
	p.FlowID = sf.conn.ID
	p.SubflowID = sf.id
	p.Seq = seq
	p.DataSeq = m.dataSeq
	p.SentAt = at
	p.Retx = retx
	sf.PktsSent++
	if retx {
		sf.PktsRetx++
		if tr := sf.conn.tracer; tr != nil {
			tr.Retx(sf.conn.traceID, int32(sf.id), seq)
		}
	}
	if !sf.rtoTimer.Active() {
		sf.armTimer()
	}
	nw.SendAt(at, sf.fwd, p)
}

// Receive consumes an ACK delivered by the network (netsim.Endpoint).
func (sf *Subflow) Receive(pkt *netsim.Packet) {
	if pkt.FlowID != sf.conn.ID {
		// A straggler from a previous life of a pooled connection: its
		// route still terminates here, but its sequence numbers belong
		// to the finished flow. Connection IDs never repeat, so the
		// guard costs non-pooled workloads nothing.
		sf.conn.net.FreePacket(pkt)
		return
	}
	ack := pkt.Ack
	dataAck, rcvWnd, echo := pkt.DataAck, pkt.RcvWnd, pkt.EchoTS
	hasSack, sackSeq := pkt.HasSack, pkt.SackSeq
	sf.conn.net.FreePacket(pkt)

	// onDataAck may complete the connection, and a pooled connection's
	// OnComplete may Put and re-Get it synchronously — Conn.init then
	// rebuilds this very subflow for a new life before the callback
	// returns here. The ID (fresh every life) detects that: the rest of
	// this ACK belongs to the finished life, and applying its subflow
	// cumulative ack to the new life would push sndUna past sndNxt.
	life := sf.conn.ID
	sf.conn.onDataAck(dataAck, rcvWnd)
	if sf.conn.done || sf.conn.ID != life {
		return
	}
	// An ACK is a countable duplicate only if it conveys new SACK
	// information (RFC 6675): pure duplicate arrivals — e.g. echoes of
	// our own spurious retransmissions — must not drive loss detection.
	newInfo := false
	if hasSack && sackSeq >= sf.sndUna && sackSeq < sf.sndNxt {
		m := sf.slot(sackSeq)
		if !m.sacked {
			m.sacked = true
			newInfo = true
		}
	}

	switch {
	case ack > sf.sndUna:
		sf.onNewAck(ack, echo)
	case ack == sf.sndUna && sf.outstanding() > 0 && newInfo:
		sf.onDupAck()
	}
	sf.conn.pump()
}

func (sf *Subflow) onNewAck(ack int64, echo sim.Time) {
	newlyAcked := ack - sf.sndUna
	sf.sndUna = ack
	sf.backoff = 0
	sf.sampleRTT(sf.conn.net.Sim.Now() - echo)

	if sf.repairEnd > 0 {
		if sf.repairNxt < sf.sndUna {
			sf.repairNxt = sf.sndUna
		}
		if sf.sndUna >= sf.repairEnd {
			sf.repairEnd, sf.repairNxt = 0, 0
		}
	}

	cc := sf.cc()
	if sf.inRec {
		if ack >= sf.recover {
			// Full ACK: recovery complete.
			sf.inRec = false
			sf.dupAcks = 0
			sf.debt = 0
			if tr := sf.conn.tracer; tr != nil {
				tr.SubflowState(sf.conn.traceID, int32(sf.id), "open")
			}
		} else {
			sf.recoveryAck(newlyAcked)
		}
	} else {
		sf.dupAcks = 0
		for i := int64(0); i < newlyAcked; i++ {
			if cc.Cwnd < cc.SSThresh {
				cc.Cwnd++ // slow start
			} else {
				cc.Cwnd += sf.conn.alg.Increase(sf.conn.cc, sf.id)
			}
		}
		if tr := sf.conn.tracer; tr != nil && newlyAcked > 0 {
			tr.CwndChange(sf.conn.traceID, int32(sf.id), cc.Cwnd)
		}
	}
	sf.armTimer()
}

func (sf *Subflow) onDupAck() {
	sf.dupAcks++
	if sf.inRepair() {
		return // the timeout repair already handles everything
	}
	if sf.inRec {
		sf.recoveryAck(1)
		return
	}
	if sf.dupAcks == 3 {
		sf.FastRetx++
		cc := sf.cc()
		pipe := sf.outstanding()
		if obs := sf.conn.lossObs; obs != nil {
			obs.OnLoss(sf.conn.cc, sf.id)
		}
		cc.Cwnd = sf.conn.alg.Decrease(sf.conn.cc, sf.id)
		cc.SSThresh = cc.Cwnd
		if tr := sf.conn.tracer; tr != nil {
			tr.Loss(sf.conn.traceID, int32(sf.id), "fast", sf.sndUna)
			tr.CwndChange(sf.conn.traceID, int32(sf.id), cc.Cwnd)
			tr.SubflowState(sf.conn.traceID, int32(sf.id), "recovery")
		}
		sf.inRec = true
		sf.recover = sf.sndNxt
		sf.rtxNxt = sf.sndUna
		// Drain the pipe down to the new window, then clock one
		// transmission out per ACK in (conservation / PRR-style).
		sf.debt = pipe - int64(cc.Cwnd)
		if sf.debt < 0 {
			sf.debt = 0
		}
		sf.retransmitHole() // first retransmission goes out immediately
	}
}

// recoveryAck processes n arriving ACKs during fast recovery: each one
// signals a packet has left the network, permitting one transmission once
// the halving debt is paid.
func (sf *Subflow) recoveryAck(n int64) {
	for ; n > 0; n-- {
		if sf.debt > 0 {
			sf.debt--
			continue
		}
		if !sf.retransmitHole() {
			// ACK-clocked recovery transmission: new data bypasses the
			// scheduler because the clocking, not a policy choice,
			// decides when this subflow may transmit.
			sf.sendNew()
		}
	}
}

// retransmitHole retransmits the first unsacked, not-yet-retransmitted
// hole below the recovery point. It reports whether a retransmission was
// sent.
func (sf *Subflow) retransmitHole() bool {
	s := sf.rtxNxt
	if s < sf.sndUna {
		s = sf.sndUna
	}
	for ; s < sf.recover; s++ {
		m := sf.slot(s)
		if m.sacked || m.retx {
			continue
		}
		sf.rtxNxt = s + 1
		sf.transmit(s, true)
		return true
	}
	sf.rtxNxt = s
	return false
}

// onRTO is the retransmission timeout: collapse to one packet, go back to
// slow start, retransmit outstanding holes window-paced and back the
// timer off. Outstanding data becomes eligible for reinjection on the
// other subflows, so a dead path cannot strand the connection (§5
// mobility, §6).
func (sf *Subflow) onRTO() {
	if sf.outstanding() == 0 || sf.conn.done {
		return
	}
	sf.RTOs++
	cc := sf.cc()
	if obs := sf.conn.lossObs; obs != nil {
		obs.OnLoss(sf.conn.cc, sf.id)
	}
	cc.SSThresh = sf.conn.alg.Decrease(sf.conn.cc, sf.id)
	if cc.SSThresh < 2 {
		cc.SSThresh = 2
	}
	cc.Cwnd = 1
	sf.inRec = false
	sf.dupAcks = 0
	sf.debt = 0
	if tr := sf.conn.tracer; tr != nil {
		tr.Loss(sf.conn.traceID, int32(sf.id), "rto", sf.sndUna)
		tr.CwndChange(sf.conn.traceID, int32(sf.id), cc.Cwnd)
		tr.SubflowState(sf.conn.traceID, int32(sf.id), "repair")
	}

	if len(sf.conn.subs) > 1 {
		stranded := make([]int64, 0, sf.outstanding())
		for s := sf.sndUna; s < sf.sndNxt; s++ {
			if !sf.slot(s).sacked {
				stranded = append(stranded, sf.slot(s).dataSeq)
			}
		}
		sf.conn.reinject(stranded)
	}

	// Go-back-N repair: everything outstanding and unsacked is presumed
	// lost, including earlier recovery retransmissions.
	for s := sf.sndUna; s < sf.sndNxt; s++ {
		sf.slot(s).retx = false
	}
	sf.repairNxt = sf.sndUna
	sf.repairEnd = sf.sndNxt
	if sf.backoff < 10 {
		sf.backoff++
	}
	sf.armTimer()
	sf.sendRepairs()
}

// sampleRTT folds one RTT measurement into the RFC 6298 estimator.
func (sf *Subflow) sampleRTT(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	if sf.srtt == 0 {
		sf.srtt = rtt
		sf.rttvar = rtt / 2
	} else {
		// SRTT = 7/8 SRTT + 1/8 R, RTTVAR = 3/4 RTTVAR + 1/4 |SRTT-R|.
		diff := sf.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		sf.rttvar = (3*sf.rttvar + diff) / 4
		sf.srtt = (7*sf.srtt + rtt) / 8
	}
	sf.cc().SRTT = sf.srtt.Seconds()
	if obs := sf.conn.rttObs; obs != nil {
		obs.OnRTTSample(sf.conn.cc, sf.id, rtt.Seconds())
	}
	if tr := sf.conn.tracer; tr != nil {
		tr.RTTSample(sf.conn.traceID, int32(sf.id), rtt.Seconds())
	}
	rto := sf.srtt + 4*sf.rttvar
	if rto < sf.conn.cfg.MinRTO {
		rto = sf.conn.cfg.MinRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	sf.rto = rto
}

// armTimer (re)starts the retransmission timer for the oldest outstanding
// packet, or stops it when nothing is in flight. The timer is rearmed in
// place: the per-ACK stop-and-rearm leaves no dead entry in the event
// queue and allocates nothing.
func (sf *Subflow) armTimer() {
	if sf.outstanding() == 0 {
		sf.rtoTimer.Stop()
		return
	}
	d := sf.rto << sf.backoff
	if d > maxRTO {
		d = maxRTO
	}
	sf.rtoTimer.Reset(d)
}
