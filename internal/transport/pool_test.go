package transport

import (
	"testing"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// poolFlowRecord is one flow's observable outcome in the pool tests.
type poolFlowRecord struct {
	started, done sim.Time
	delivered     int64
	retx          int64
}

// runFlowSequence runs `count` finite two-path flows back to back in
// one world — each next flow starts 50 ms after the previous completes
// — and returns their outcomes. With usePool the flows cycle through a
// ConnPool; otherwise every flow is a fresh NewConn. One forward link
// carries random loss so recovery machinery (and its rng draws) is
// exercised too.
func runFlowSequence(seed int64, count int, usePool bool) []poolFlowRecord {
	s := sim.New(seed)
	n := netsim.NewNet(s)
	mkPaths := func() []Path {
		l1 := netsim.NewLink("p1", 8, 10*sim.Millisecond, 20)
		l2 := netsim.NewLink("p2", 4, 25*sim.Millisecond, 20)
		l1.LossRate = 0.01
		r1 := netsim.NewLink("p1-rev", 8, 10*sim.Millisecond, 20)
		r2 := netsim.NewLink("p2-rev", 4, 25*sim.Millisecond, 20)
		return []Path{{Fwd: []*netsim.Link{l1}, Rev: []*netsim.Link{r1}},
			{Fwd: []*netsim.Link{l2}, Rev: []*netsim.Link{r2}}}
	}
	paths := mkPaths()
	var pool *ConnPool
	if usePool {
		pool = NewConnPool(n)
	}
	out := make([]poolFlowRecord, 0, count)
	var launch func(i int)
	launch = func(i int) {
		if i >= count {
			return
		}
		var c *Conn
		cfg := Config{
			Paths:       paths,
			DataPackets: 400,
			RecvBuf:     64,
			OnComplete: func() {
				rec := poolFlowRecord{
					started:   c.StartedAt(),
					done:      c.CompletedAt(),
					delivered: c.Delivered(),
				}
				for _, sf := range c.Subflows() {
					rec.retx += sf.PktsRetx
				}
				out = append(out, rec)
				if usePool {
					pool.Put(c)
				}
				s.After(50*sim.Millisecond, func() { launch(i + 1) })
			},
		}
		if usePool {
			c = pool.Get(cfg)
		} else {
			c = NewConn(n, cfg)
		}
		c.Start()
	}
	launch(0)
	s.RunUntil(120 * sim.Second)
	if usePool && pool.Reuses == 0 && count > 1 {
		panic("pool never recycled a connection")
	}
	return out
}

// TestConnPoolTransparent pins pooling as a pure allocation
// optimisation: a sequence of flows through the pool produces exactly
// the outcomes of the same sequence with fresh connections — same
// start/completion times, deliveries and retransmission counts.
func TestConnPoolTransparent(t *testing.T) {
	fresh := runFlowSequence(31, 6, false)
	pooled := runFlowSequence(31, 6, true)
	if len(fresh) != 6 || len(pooled) != 6 {
		t.Fatalf("completed %d fresh / %d pooled flows, want 6 each", len(fresh), len(pooled))
	}
	for i := range fresh {
		if fresh[i] != pooled[i] {
			t.Fatalf("flow %d diverges: fresh %+v vs pooled %+v", i, fresh[i], pooled[i])
		}
	}
}

// TestConnPoolRecyclesObjects verifies the pool actually reuses the
// connection object (keyed by path count) and that its subflows' grown
// state carries over as capacity, not as state.
func TestConnPoolRecyclesObjects(t *testing.T) {
	s := sim.New(1)
	n := netsim.NewNet(s)
	l := netsim.NewLink("l", 10, 5*sim.Millisecond, 50)
	r := netsim.NewLink("r", 10, 5*sim.Millisecond, 50)
	paths := []Path{{Fwd: []*netsim.Link{l}, Rev: []*netsim.Link{r}}}
	pool := NewConnPool(n)

	c1 := pool.Get(Config{Paths: paths, DataPackets: 50})
	c1.Start()
	s.RunUntil(30 * sim.Second)
	if !c1.Done() {
		t.Fatal("first flow did not complete")
	}
	pool.Put(c1)

	c2 := pool.Get(Config{Paths: paths, DataPackets: 50})
	if c2 != c1 {
		t.Fatal("pool did not recycle the completed connection")
	}
	if c2.Done() || c2.Delivered() != 0 || c2.StartedAt() != 0 {
		t.Fatalf("recycled connection leaked state: done=%v delivered=%d", c2.Done(), c2.Delivered())
	}
	c2.Start()
	s.RunUntil(60 * sim.Second)
	if !c2.Done() || c2.Delivered() != 50 {
		t.Fatalf("recycled flow: done=%v delivered=%d, want 50", c2.Done(), c2.Delivered())
	}
	if pool.Gets != 2 || pool.Reuses != 1 {
		t.Fatalf("pool stats gets=%d reuses=%d, want 2/1", pool.Gets, pool.Reuses)
	}
}

// TestConnPoolLiveTracking: connections handed out by Get and not yet
// returned by Put form the live set, and their partial deliveries are
// visible mid-flight — the hook horizon accounting (fleet, appgrid)
// uses to avoid undercounting in-flight flows.
func TestConnPoolLiveTracking(t *testing.T) {
	s := sim.New(1)
	n := netsim.NewNet(s)
	l := netsim.NewLink("l", 10, 5*sim.Millisecond, 50)
	r := netsim.NewLink("r", 10, 5*sim.Millisecond, 50)
	paths := []Path{{Fwd: []*netsim.Link{l}, Rev: []*netsim.Link{r}}}
	pool := NewConnPool(n)

	c := pool.Get(Config{Paths: paths, DataPackets: 200})
	if pool.LiveCount() != 1 || pool.LiveDelivered() != 0 {
		t.Fatalf("after Get: live=%d delivered=%d, want 1/0", pool.LiveCount(), pool.LiveDelivered())
	}
	c.Start()
	s.RunUntil(30 * sim.Millisecond)
	if c.Done() {
		t.Fatal("flow completed before the mid-flight check")
	}
	if d := pool.LiveDelivered(); d <= 0 || d != c.Delivered() {
		t.Fatalf("mid-flight LiveDelivered = %d, want the conn's %d (> 0)", d, c.Delivered())
	}
	s.RunUntil(60 * sim.Second)
	if !c.Done() {
		t.Fatal("flow did not complete")
	}
	pool.Put(c)
	if pool.LiveCount() != 0 || pool.LiveDelivered() != 0 {
		t.Fatalf("after Put: live=%d delivered=%d, want 0/0", pool.LiveCount(), pool.LiveDelivered())
	}
}

// TestConnPoolRecycleInsideOnComplete: a workload may Put and re-Get
// the completing connection from inside OnComplete (a web page fetching
// the next object the instant its dependency lands). OnComplete runs
// inside Subflow.Receive, in the middle of processing the final ACK of
// the old life — the remainder of that ACK must not be applied to the
// new life. Before the life-change guard in Subflow.Receive, the old
// ACK's subflow cumulative ack pushed the fresh subflow's sndUna past
// sndNxt (negative outstanding, later a panic in onRTO) and credited
// the fresh window with phantom slow-start increments.
func TestConnPoolRecycleInsideOnComplete(t *testing.T) {
	s := sim.New(1)
	n := netsim.NewNet(s)
	l := netsim.NewLink("l", 10, 5*sim.Millisecond, 50)
	r := netsim.NewLink("r", 10, 5*sim.Millisecond, 50)
	paths := []Path{{Fwd: []*netsim.Link{l}, Rev: []*netsim.Link{r}}}
	pool := NewConnPool(n)

	var completed int
	var c *Conn
	var spawn func()
	spawn = func() {
		c = pool.Get(Config{
			Paths:       paths,
			DataPackets: 6,
			SendJitter:  -1,
			OnComplete: func() {
				completed++
				pool.Put(c)
				if completed >= 2 {
					return
				}
				spawn() // recycle the conn inside the completing ACK
				// 1 ms after the recycle — less than the 10 ms RTT, so
				// no ACK of the new life has arrived yet — the new life
				// must still be in its initial state: the old life's
				// final ack (6) must not have touched it.
				recycled := c
				s.After(sim.Millisecond, func() {
					sf := recycled.Subflows()[0]
					if sf.sndUna > sf.sndNxt {
						t.Errorf("old life's ack leaked into the new life: sndUna %d > sndNxt %d", sf.sndUna, sf.sndNxt)
					}
					if cw := recycled.Cwnd(0); cw != 2 {
						t.Errorf("fresh cwnd = %v, want the initial 2 (phantom slow-start credits)", cw)
					}
				})
			},
		})
		c.Start()
	}
	spawn()
	s.RunUntil(30 * sim.Second)
	if completed != 2 {
		t.Fatalf("completed %d transfers, want 2", completed)
	}
}

// TestConnPoolRejectsLiveConn: pooling a connection that has not
// completed is a caller bug and must panic.
func TestConnPoolRejectsLiveConn(t *testing.T) {
	s := sim.New(1)
	n := netsim.NewNet(s)
	l := netsim.NewLink("l", 10, 5*sim.Millisecond, 50)
	r := netsim.NewLink("r", 10, 5*sim.Millisecond, 50)
	pool := NewConnPool(n)
	c := pool.Get(Config{Paths: []Path{{Fwd: []*netsim.Link{l}, Rev: []*netsim.Link{r}}}, DataPackets: 50})
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a live connection did not panic")
		}
	}()
	pool.Put(c)
}
