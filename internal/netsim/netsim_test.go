package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mptcp/internal/sim"
)

// sink collects delivered packets.
type sink struct {
	got   []int64
	times []sim.Time
	net   *Net
}

func (s *sink) Receive(p *Packet) {
	s.got = append(s.got, p.Seq)
	s.times = append(s.times, s.net.Sim.Now())
	s.net.FreePacket(p)
}

func testNet() (*sim.Simulator, *Net) {
	s := sim.New(1)
	return s, NewNet(s)
}

func sendN(n *Net, r *Route, count int, size int) {
	for i := 0; i < count; i++ {
		p := n.AllocPacket()
		p.Size = size
		p.Seq = int64(i)
		n.Send(r, p)
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	s, n := testNet()
	// 12 Mb/s, 10 ms delay: a 1500B packet serialises in 1 ms.
	l := NewLink("l", 12, 10*sim.Millisecond, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 3, 1500)
	s.Run()
	if len(dst.got) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(dst.got))
	}
	// Packet i departs at (i+1) ms and arrives 10 ms later.
	for i, at := range dst.times {
		want := sim.Time(i+1)*sim.Millisecond + 10*sim.Millisecond
		if at != want {
			t.Errorf("packet %d arrived at %v, want %v", i, at, want)
		}
	}
}

func TestLinkFIFOOrder(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 100, sim.Millisecond, 1000)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 100, 1500)
	s.Run()
	for i, seq := range dst.got {
		if seq != int64(i) {
			t.Fatalf("out-of-order delivery: position %d got seq %d", i, seq)
		}
	}
}

func TestDropTail(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 10)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	// Burst of 25 packets at t=0 into a 10-packet buffer: 10 accepted,
	// 15 dropped (the queue only drains 1 ms per packet).
	sendN(n, r, 25, 1500)
	s.Run()
	if len(dst.got) != 10 {
		t.Errorf("delivered %d, want 10", len(dst.got))
	}
	if l.Stats.Drops != 15 {
		t.Errorf("drops = %d, want 15", l.Stats.Drops)
	}
	if l.Stats.Arrivals != 25 {
		t.Errorf("arrivals = %d, want 25", l.Stats.Arrivals)
	}
}

func TestQueueDrainsThenAccepts(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 10)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 10, 1500)
	// After 5 ms, 5 packets have departed; 5 more should fit.
	s.RunUntil(5 * sim.Millisecond)
	sendN(n, r, 6, 1500)
	s.Run()
	if len(dst.got) != 15 {
		t.Errorf("delivered %d, want 15", len(dst.got))
	}
	if l.Stats.Drops != 1 {
		t.Errorf("drops = %d, want 1", l.Stats.Drops)
	}
}

func TestMultiHopRoute(t *testing.T) {
	s, n := testNet()
	l1 := NewLink("l1", 12, 5*sim.Millisecond, 100)
	l2 := NewLink("l2", 12, 5*sim.Millisecond, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l1, l2)
	sendN(n, r, 1, 1500)
	s.Run()
	// 1 ms tx + 5 ms prop per hop.
	want := 2 * (1*sim.Millisecond + 5*sim.Millisecond)
	if len(dst.got) != 1 || dst.times[0] != want {
		t.Errorf("arrival at %v, want %v", dst.times[0], want)
	}
}

func TestRandomLoss(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 1000, 0, 1<<20)
	l.LossRate = 0.1
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	const total = 20000
	sendN(n, r, total, 1500)
	s.Run()
	lossFrac := float64(l.Stats.Drops) / total
	if lossFrac < 0.08 || lossFrac > 0.12 {
		t.Errorf("loss fraction = %.3f, want ~0.10", lossFrac)
	}
	if l.Stats.RandomLoss != l.Stats.Drops {
		t.Errorf("all drops should be random: %d vs %d", l.Stats.RandomLoss, l.Stats.Drops)
	}
}

func TestLinkDown(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	l.SetDown(true)
	sendN(n, r, 5, 1500)
	s.Run()
	if len(dst.got) != 0 {
		t.Errorf("down link delivered %d packets", len(dst.got))
	}
	l.SetDown(false)
	sendN(n, r, 5, 1500)
	s.Run()
	if len(dst.got) != 5 {
		t.Errorf("restored link delivered %d packets, want 5", len(dst.got))
	}
}

func TestSetRateMidRun(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 1, 1500) // departs at 1 ms
	s.Run()
	l.SetRate(1.2) // 10x slower: 10 ms per packet
	sendN(n, r, 1, 1500)
	s.Run()
	if dst.times[1]-dst.times[0] != 10*sim.Millisecond {
		t.Errorf("second packet took %v, want 10ms", dst.times[1]-dst.times[0])
	}
}

func TestSetDelayMidRun(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 10*sim.Millisecond, 100) // 1 ms tx per 1500B packet
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 1, 1500) // departs 1 ms, arrives 11 ms
	s.Run()
	if dst.times[0] != 11*sim.Millisecond {
		t.Fatalf("first packet arrived at %v, want 11ms", dst.times[0])
	}
	l.SetDelay(2 * sim.Millisecond)
	sendN(n, r, 1, 1500) // departs now+1ms, arrives 2 ms later
	s.Run()
	if got := dst.times[1] - dst.times[0]; got != 3*sim.Millisecond {
		t.Errorf("post-change packet took %v after the first, want 3ms (1ms tx + 2ms prop)", got)
	}
}

// Packets the link has already accepted keep the propagation delay that
// applied at acceptance: SetDelay must never retime in-flight (queued or
// propagating) packets.
func TestSetDelayKeepsInFlightPackets(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 10*sim.Millisecond, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 2, 1500) // accepted at t=0: depart 1,2 ms; arrive 11,12 ms
	s.RunUntil(1500 * sim.Microsecond)
	l.SetDelay(50 * sim.Millisecond) // one propagating, one still queued
	s.Run()
	want := []sim.Time{11 * sim.Millisecond, 12 * sim.Millisecond}
	for i, at := range dst.times {
		if at != want[i] {
			t.Errorf("in-flight packet %d arrived at %v, want %v (old delay)", i, at, want[i])
		}
	}
	sendN(n, r, 1, 1500) // accepted after the change: new delay applies
	s.Run()
	if got := dst.times[2] - 12*sim.Millisecond; got != 1*sim.Millisecond+50*sim.Millisecond {
		t.Errorf("post-change packet took %v after the queue drained, want 51ms", got)
	}
}

func TestPktPerSecLink(t *testing.T) {
	s, n := testNet()
	l := NewLinkPktPerSec("l", 1000, 0, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 1, DataPacketSize)
	s.Run()
	if dst.times[0] != sim.Millisecond {
		t.Errorf("1000 pkt/s link: packet departed at %v, want 1ms", dst.times[0])
	}
}

func TestAckSmallerSerialisation(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 1, 40)
	s.Run()
	bits := 40.0 * 8
	want := sim.Time(bits / 12e6 * float64(sim.Second))
	if dst.times[0] != want {
		t.Errorf("40B packet departed at %v, want %v", dst.times[0], want)
	}
}

func TestPacketFreelist(t *testing.T) {
	_, n := testNet()
	p1 := n.AllocPacket()
	p1.Seq = 99
	n.FreePacket(p1)
	p2 := n.AllocPacket()
	if p2.Seq != 0 {
		t.Error("recycled packet not zeroed")
	}
	if p1 != p2 {
		t.Error("freelist did not recycle the packet")
	}
}

func TestUtilization(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 1000)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 50, 1500) // 50 ms busy
	s.RunUntil(100 * sim.Millisecond)
	u := l.Utilization(s.Now())
	if u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %.3f, want ~0.5", u)
	}
}

// Property: conservation — packets offered = delivered + dropped + queued.
func TestConservationProperty(t *testing.T) {
	prop := func(counts []uint8, qcap uint8) bool {
		s := sim.New(11)
		n := NewNet(s)
		cap := int(qcap%64) + 1
		l := NewLink("l", 12, sim.Millisecond, cap)
		dst := &sink{net: n}
		r := NewRoute(dst, l)
		total := 0
		for i, c := range counts {
			at := sim.Time(i) * sim.Millisecond
			k := int(c % 16)
			total += k
			s.At(at, func() { sendN(n, r, k, 1500) })
		}
		s.RunUntil(10 * sim.Second)
		s.Run()
		return int64(len(dst.got))+l.Stats.Drops == int64(total) &&
			l.Stats.Arrivals == int64(total)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Property: the queue never exceeds its capacity.
func TestQueueBoundProperty(t *testing.T) {
	prop := func(bursts []uint8, qcap uint8) bool {
		s := sim.New(13)
		n := NewNet(s)
		cap := int(qcap%32) + 1
		l := NewLink("l", 12, 0, cap)
		dst := &sink{net: n}
		r := NewRoute(dst, l)
		ok := true
		for i, c := range bursts {
			at := sim.Time(i) * 500 * sim.Microsecond
			k := int(c % 8)
			s.At(at, func() {
				sendN(n, r, k, 1500)
				if l.QueueLen(s.Now()) > cap {
					ok = false
				}
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

// Departure statistics must be settled when the departure event fires,
// not at accept time: packets still queued when the run stops have not
// departed.
func TestStatsCountAtDeparture(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 100) // 1 ms per 1500B packet
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 10, 1500)
	if l.Stats.Departures != 0 {
		t.Errorf("departures counted at accept time: %d, want 0", l.Stats.Departures)
	}
	s.RunUntil(3 * sim.Millisecond) // 3 of 10 have departed
	if l.Stats.Departures != 3 {
		t.Errorf("departures = %d after 3 ms, want 3", l.Stats.Departures)
	}
	if want := 3 * sim.Millisecond; l.Stats.BusyTime != want {
		t.Errorf("busy time = %v after 3 ms, want %v", l.Stats.BusyTime, want)
	}
	if l.Stats.BytesSent != 3*1500 {
		t.Errorf("bytes sent = %d, want %d", l.Stats.BytesSent, 3*1500)
	}
	s.Run()
	if l.Stats.Departures != 10 || l.Stats.BytesSent != 10*1500 {
		t.Errorf("final departures/bytes = %d/%d, want 10/%d",
			l.Stats.Departures, l.Stats.BytesSent, 10*1500)
	}
}

// Packets stranded in the queue when the link goes down are dropped, not
// counted as departed, so utilisation and loss stats stay honest across
// the §5 mobility outages.
func TestSetDownStrandsQueuedPackets(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	sendN(n, r, 10, 1500)
	s.RunUntil(2 * sim.Millisecond) // 2 departed
	l.SetDown(true)
	s.Run()
	if len(dst.got) != 2 {
		t.Errorf("delivered %d packets, want 2 (rest stranded)", len(dst.got))
	}
	if l.Stats.Departures != 2 {
		t.Errorf("departures = %d, want 2", l.Stats.Departures)
	}
	if l.Stats.Drops != 8 {
		t.Errorf("drops = %d, want 8 stranded", l.Stats.Drops)
	}
	// Conservation: everything offered was delivered or dropped.
	if int64(len(dst.got))+l.Stats.Drops != l.Stats.Arrivals {
		t.Errorf("conservation violated: %d delivered + %d dropped != %d arrivals",
			len(dst.got), l.Stats.Drops, l.Stats.Arrivals)
	}
	if want := 2 * sim.Millisecond; l.Stats.BusyTime != want {
		t.Errorf("busy time = %v, want %v", l.Stats.BusyTime, want)
	}
}

// drain is an endpoint that frees packets without recording them.
type drain struct{ net *Net }

func (d *drain) Receive(p *Packet) { d.net.FreePacket(p) }

// The packet-hop path must be allocation-free once the world is warm:
// every hop reuses a pooled packet, a typed event record in the heap's
// backing array, and no closures.
func TestPacketHopZeroAlloc(t *testing.T) {
	s, n := testNet()
	l1 := NewLink("l1", 1000, sim.Millisecond, 1<<20)
	l2 := NewLink("l2", 1000, sim.Millisecond, 1<<20)
	dst := &drain{net: n}
	r := NewRoute(dst, l1, l2)
	for i := 0; i < 2048; i++ { // warm freelist, heap and queue arrays
		p := n.AllocPacket()
		p.Size = 1500
		n.Send(r, p)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		p := n.AllocPacket()
		p.Size = 1500
		n.Send(r, p)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("packet-hop path allocated %.1f objects/op, want 0", allocs)
	}
}

// SendAt (the jittered-transmission path) must behave like a deferred
// Send: same delivery, same counters, no closure.
func TestSendAtDefersInjection(t *testing.T) {
	s, n := testNet()
	l := NewLink("l", 12, 0, 100)
	dst := &sink{net: n}
	r := NewRoute(dst, l)
	p := n.AllocPacket()
	p.Size = 1500
	n.SendAt(5*sim.Millisecond, r, p)
	if n.PacketsSent != 0 {
		t.Errorf("PacketsSent counted before injection fired")
	}
	s.Run()
	if len(dst.got) != 1 || dst.times[0] != 6*sim.Millisecond {
		t.Fatalf("delivery at %v, want 6ms", dst.times)
	}
	if n.PacketsSent != 1 {
		t.Errorf("PacketsSent = %d, want 1", n.PacketsSent)
	}
	// at <= now sends immediately.
	p2 := n.AllocPacket()
	p2.Size = 1500
	n.SendAt(s.Now(), r, p2)
	if n.PacketsSent != 2 {
		t.Errorf("immediate SendAt did not inject")
	}
	s.Run()
	if len(dst.got) != 2 {
		t.Errorf("immediate SendAt lost the packet")
	}
}

func BenchmarkLinkForwarding(b *testing.B) {
	s := sim.New(1)
	n := NewNet(s)
	l := NewLink("l", 1e6, sim.Millisecond, 1<<30)
	dst := &sink{net: n}
	dst.got = make([]int64, 0, b.N)
	r := NewRoute(dst, l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.AllocPacket()
		p.Size = 1500
		n.Send(r, p)
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}
