package netsim

import (
	"testing"

	"mptcp/internal/sim"
)

// batchWorld builds the shared workload for the equivalence tests: two
// 2-hop routes with asymmetric rates and delays (so event instants
// rarely collide across links), a small drop-tail buffer on one path,
// random loss on another, and a mid-run outage. Every packet-visible
// outcome — delivery order, delivery times, link counters — must be
// identical with and without batched departures.
func batchWorld(batched bool) (*sim.Simulator, *Net, []*sink, []*Link) {
	s := sim.New(99)
	n := NewNet(s)
	n.BatchDepartures = batched
	la1 := NewLink("a1", 12, 3100*sim.Microsecond, 8)
	la2 := NewLink("a2", 9, 7*sim.Millisecond, 64)
	lb1 := NewLink("b1", 24, 5300*sim.Microsecond, 64)
	lb2 := NewLink("b2", 6, 11*sim.Millisecond, 64)
	lb1.LossRate = 0.2
	sa, sb := &sink{net: n}, &sink{net: n}
	ra := NewRoute(sa, la1, la2)
	rb := NewRoute(sb, lb1, lb2)
	for i := 0; i < 60; i++ {
		i := i
		at := sim.Time(i) * 1370 * sim.Microsecond
		s.At(at, func() {
			p := n.AllocPacket()
			p.Size = 1500
			p.Seq = int64(i)
			n.Send(ra, p)
			q := n.AllocPacket()
			q.Size = 1500
			q.Seq = int64(i)
			n.Send(rb, q)
		})
	}
	// A burst into the small buffer forces drop-tail, and an outage
	// window strands queued and propagating packets on a2.
	s.At(20*sim.Millisecond, func() { sendN(n, ra, 20, 1500) })
	s.At(40*sim.Millisecond, func() { la2.SetDown(true) })
	s.At(55*sim.Millisecond, func() { la2.SetDown(false) })
	return s, n, []*sink{sa, sb}, []*Link{la1, la2, lb1, lb2}
}

// TestBatchedDeparturesEquivalence pins the batched path to the default
// per-packet-event path on a workload exercising queueing, drop-tail,
// random loss and a mid-run outage.
func TestBatchedDeparturesEquivalence(t *testing.T) {
	sDef, _, sinksDef, linksDef := batchWorld(false)
	sBat, _, sinksBat, linksBat := batchWorld(true)
	sDef.Run()
	sBat.Run()
	for i := range sinksDef {
		d, b := sinksDef[i], sinksBat[i]
		if len(d.got) != len(b.got) {
			t.Fatalf("sink %d: %d deliveries default vs %d batched", i, len(d.got), len(b.got))
		}
		for j := range d.got {
			if d.got[j] != b.got[j] || d.times[j] != b.times[j] {
				t.Fatalf("sink %d delivery %d: default (seq %d, %v) vs batched (seq %d, %v)",
					i, j, d.got[j], d.times[j], b.got[j], b.times[j])
			}
		}
	}
	for i := range linksDef {
		if linksDef[i].Stats != linksBat[i].Stats {
			t.Fatalf("link %s stats diverge: default %+v vs batched %+v",
				linksDef[i].Name, linksDef[i].Stats, linksBat[i].Stats)
		}
	}
}

// TestBatchedHeapStaysSmall is the point of the batched path: with a
// large in-flight population the event heap holds one timer per busy
// link, not one event per packet.
func TestBatchedHeapStaysSmall(t *testing.T) {
	s := sim.New(1)
	n := NewNet(s)
	n.BatchDepartures = true
	l := NewLink("l", 12, 50*sim.Millisecond, 1<<20)
	dst := &drain{net: n}
	r := NewRoute(dst, l)
	for i := 0; i < 5000; i++ {
		p := n.AllocPacket()
		p.Size = 1500
		n.Send(r, p)
	}
	// 5000 packets are queued or propagating, but only the link's one
	// timer (plus nothing else) sits in the heap.
	if got := s.Pending(); got != 1 {
		t.Fatalf("heap holds %d events with 5000 packets in flight, want 1", got)
	}
	s.Run()
	if l.Stats.Departures != 5000 {
		t.Fatalf("departures = %d, want 5000", l.Stats.Departures)
	}
}

// TestBatchedZeroAllocSteadyState: once warm, the batched hop path must
// allocate nothing per packet, like the default path.
func TestBatchedZeroAllocSteadyState(t *testing.T) {
	s := sim.New(1)
	n := NewNet(s)
	n.BatchDepartures = true
	l1 := NewLink("l1", 1000, sim.Millisecond, 1<<20)
	l2 := NewLink("l2", 1000, sim.Millisecond, 1<<20)
	dst := &drain{net: n}
	r := NewRoute(dst, l1, l2)
	for i := 0; i < 2048; i++ {
		p := n.AllocPacket()
		p.Size = 1500
		n.Send(r, p)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		p := n.AllocPacket()
		p.Size = 1500
		n.Send(r, p)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("batched hop path allocated %.1f objects/op, want 0", allocs)
	}
}
