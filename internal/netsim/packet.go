// Package netsim implements the packet-level network model used by the
// MPTCP congestion-control reproduction: store-and-forward links with
// finite drop-tail buffers, propagation delay, optional random loss and
// time-varying rate (for the wireless scenarios of §5 of the paper).
//
// The model is intentionally minimal but faithful to the paper's custom
// simulator: a packet traverses an explicit route (a sequence of links),
// each link serialises packets at its line rate into a drop-tail queue
// measured in packets, and delivery at the far end of the final link hands
// the packet to an Endpoint (a TCP or MPTCP receiver model).
package netsim

import "mptcp/internal/sim"

// Packet is a simulated TCP/MPTCP segment. One struct serves both data and
// ACK packets; which fields are meaningful depends on IsAck. Packet counts,
// not bytes, define window and buffer occupancy (the paper maintains
// windows in packets); Size is used only for serialisation time.
type Packet struct {
	// Routing state.
	route *Route
	hop   int

	// txTime is the serialisation delay assigned when the current link
	// accepted the packet; the departure event uses it to account
	// BusyTime at the rate that actually applied.
	txTime sim.Time

	// Size in bytes on the wire (headers included).
	Size int

	// FlowID identifies the owning connection, SubflowID the subflow
	// within it. Single-path TCP uses SubflowID 0.
	FlowID    int
	SubflowID int

	// Subflow sequence space, in packets. Seq is the subflow sequence
	// number of a data packet; Ack is the cumulative subflow
	// acknowledgment carried by an ACK.
	Seq int64
	Ack int64

	// Connection-level (data) sequence space, in packets. DataSeq is the
	// data sequence number carried by a data packet (§6 of the paper:
	// "an additional data sequence number ... stating where in the
	// application data stream the payload should be placed"). DataAck is
	// the explicit data-level cumulative acknowledgment carried in an
	// option on ACKs; RcvWnd is the receive window, in packets, relative
	// to DataAck.
	DataSeq int64
	DataAck int64
	RcvWnd  int64

	IsAck bool

	// IsProbe marks a zero-window probe: it occupies no sequence space
	// and only elicits an ACK from the receiver (TCP persist timer).
	IsProbe bool

	// Timestamp echoing for RTT measurement, as with the TCP timestamp
	// option: SentAt is stamped by the sender, echoed back in EchoTS.
	SentAt sim.Time
	EchoTS sim.Time

	// Retx marks a subflow-level retransmission (used by stats and to
	// suppress bogus RTT samples without timestamps).
	Retx bool

	// HasSack/SackSeq carry a one-packet selective acknowledgment: the
	// out-of-order subflow sequence number whose arrival generated this
	// ACK. Because every data packet is acknowledged individually, the
	// sender's scoreboard converges to the exact hole set, modelling the
	// SACK option that the paper's Linux implementation relies on.
	HasSack bool
	SackSeq int64
}

// DataPacketSize and AckPacketSize are the wire sizes used throughout the
// reproduction: a 1500-byte MSS-sized segment and a 40-byte pure ACK.
const (
	DataPacketSize = 1500
	AckPacketSize  = 40
)

// Endpoint consumes packets delivered by the network.
type Endpoint interface {
	Receive(pkt *Packet)
}

// Route is a unidirectional path: the packet crosses Links in order and is
// then handed to Dest.
type Route struct {
	Links []*Link
	Dest  Endpoint
}

// NewRoute builds a route over links terminating at dest.
func NewRoute(dest Endpoint, links ...*Link) *Route {
	return &Route{Links: links, Dest: dest}
}

// Hops returns the number of links on the route.
func (r *Route) Hops() int { return len(r.Links) }

// Net owns the simulator handle and a packet freelist. All senders and
// links in one experiment share a single Net.
type Net struct {
	Sim  *sim.Simulator
	free []*Packet

	// BatchDepartures selects the batched link-departure path: instead
	// of one heap event per packet per hop, each link keeps a FIFO of
	// in-flight packets and a single rearmable timer at the head's
	// arrival time, shrinking the event heap from O(packets in flight)
	// to O(links). Results are still deterministic, but same-instant
	// event interleaving across links differs from the default path
	// (deliveries fire through per-link timers rather than per-packet
	// events), so existing goldens keep the default; large-population
	// worlds (the fleet experiment) opt in at construction, before any
	// packet is sent.
	BatchDepartures bool

	// Stats
	PacketsSent  int64
	PacketsRecvd int64
}

// NewNet creates a network bound to s.
func NewNet(s *sim.Simulator) *Net {
	return &Net{Sim: s}
}

// AllocPacket returns a zeroed packet from the freelist.
func (n *Net) AllocPacket() *Packet {
	if len(n.free) == 0 {
		return &Packet{}
	}
	p := n.free[len(n.free)-1]
	n.free = n.free[:len(n.free)-1]
	*p = Packet{}
	return p
}

// FreePacket returns a packet to the freelist. The caller must not touch
// the packet afterwards.
func (n *Net) FreePacket(p *Packet) {
	n.free = append(n.free, p)
}

// Send injects pkt into the network along route. Ownership of pkt passes
// to the network; it is freed automatically if dropped.
func (n *Net) Send(route *Route, pkt *Packet) {
	pkt.route = route
	pkt.hop = 0
	n.PacketsSent++
	n.forward(pkt)
}

// SendAt injects pkt along route at time at, the zero-allocation
// replacement for scheduling a closure over Send (e.g. the sender-side
// transmission jitter). Injection at or before the current instant sends
// immediately.
func (n *Net) SendAt(at sim.Time, route *Route, pkt *Packet) {
	if at <= n.Sim.Now() {
		n.Send(route, pkt)
		return
	}
	pkt.route = route
	pkt.hop = 0
	n.Sim.Post(at, n, pkt)
}

// OnEvent implements sim.Handler; it is engine plumbing, not part of the
// public surface. A packet event is either a delayed injection (hop 0,
// scheduled by SendAt) or the completed crossing of route link hop-1
// (scheduled by Link.enqueue), which settles that link's departure
// accounting before the packet advances.
func (n *Net) OnEvent(arg any) {
	pkt := arg.(*Packet)
	if pkt.hop == 0 {
		n.PacketsSent++
	} else if !pkt.route.Links[pkt.hop-1].depart(n, pkt) {
		return // stranded: the link went down mid-flight
	}
	n.forward(pkt)
}

// forward advances pkt to its next link, or delivers it.
func (n *Net) forward(pkt *Packet) {
	if pkt.hop >= len(pkt.route.Links) {
		n.PacketsRecvd++
		dest := pkt.route.Dest
		dest.Receive(pkt)
		return
	}
	link := pkt.route.Links[pkt.hop]
	pkt.hop++
	link.enqueue(n, pkt)
}
