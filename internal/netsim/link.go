package netsim

import (
	"fmt"

	"mptcp/internal/sim"
)

// Link models a unidirectional store-and-forward link: a drop-tail FIFO
// queue measured in packets, serialisation at RateBps, then PropDelay of
// propagation. A Link may additionally drop arriving packets at random
// (LossRate), modelling wireless interference as in §5 of the paper, and
// its rate may be changed mid-run (SetRate) or the link taken down/up
// (SetDown), modelling coverage changes in the mobility experiment
// (Fig. 17).
//
// The queue is simulated implicitly: each accepted packet is assigned a
// departure time, one event per packet per hop. Queue occupancy at time t
// is the number of accepted packets whose departure is still in the
// future, which the implementation tracks with a FIFO of departure times
// purged lazily. This halves the event count versus separate
// transmit-complete/arrival events and is the main reason the simulator
// sustains tens of millions of packet-hops per second.
type Link struct {
	Name      string
	RateBps   float64  // line rate, bits per second
	PropDelay sim.Time // one-way propagation delay
	QueueCap  int      // drop-tail buffer size in packets (incl. the one in service)
	LossRate  float64  // i.i.d. random drop probability on arrival

	// Tracer, when non-nil, observes state changes made through the
	// setter methods (SetRate, SetDelay, SetDown, SetLossRate). It is
	// consulted only on those control-plane calls, never on the per-
	// packet path, so tracing costs nothing per hop.
	Tracer LinkTracer

	down bool

	// lastDepart is the departure time of the most recently accepted
	// packet; departs holds departure times of accepted packets not yet
	// departed (the implicit queue).
	lastDepart sim.Time
	departs    []sim.Time
	head       int // index of first live entry in departs

	// Batched-departure state (Net.BatchDepartures): the FIFO of
	// accepted packets with their far-end arrival times, and the single
	// timer armed at the head's arrival. Unused on the default path.
	batch  []batchItem
	bhead  int // index of first live entry in batch
	btimer *sim.Timer

	Stats LinkStats
}

// batchItem is one in-flight packet on the batched-departure path.
type batchItem struct {
	pkt *Packet
	at  sim.Time // arrival at the far end: departure + PropDelay
}

// LinkStats accumulates per-link counters. Loss rate and utilisation for
// the paper's figures are derived from these.
type LinkStats struct {
	Arrivals   int64 // packets offered to the link
	Drops      int64 // drop-tail + random losses
	RandomLoss int64 // subset of Drops caused by LossRate
	Departures int64 // packets that completed serialisation
	BytesSent  int64 // bytes of packets that completed serialisation
	BusyTime   sim.Time
}

// LossFraction returns Drops/Arrivals, the per-link loss rate used in
// Fig. 8 and Fig. 13 of the paper.
func (s *LinkStats) LossFraction() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.Arrivals)
}

// Utilization returns the fraction of the interval [0,now] the link spent
// transmitting.
func (l *Link) Utilization(now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	return l.Stats.BusyTime.Seconds() / now.Seconds()
}

// NewLink constructs a link. rateMbps is in megabits per second and
// queueCap in packets; queueCap must be at least 1.
func NewLink(name string, rateMbps float64, delay sim.Time, queueCap int) *Link {
	if queueCap < 1 {
		panic(fmt.Sprintf("netsim: link %s queue capacity %d < 1", name, queueCap))
	}
	return &Link{Name: name, RateBps: rateMbps * 1e6, PropDelay: delay, QueueCap: queueCap}
}

// NewLinkPktPerSec constructs a link whose rate is given in 1500-byte
// packets per second, the unit used by the paper's wired simulations
// (Figs. 8 and 16).
func NewLinkPktPerSec(name string, pktPerSec float64, delay sim.Time, queueCap int) *Link {
	return NewLink(name, pktPerSec*DataPacketSize*8/1e6, delay, queueCap)
}

// LinkTracer observes link state changes. It is defined here (rather
// than importing internal/trace) so netsim stays dependency-free;
// *trace.Tracer satisfies it structurally. what is one of "down", "up",
// "rate", "delay", "loss"; v carries the new value where meaningful
// (Mb/s for rate, seconds for delay, probability for loss, 0 for
// down/up).
type LinkTracer interface {
	LinkEvent(name, what string, v float64)
}

// SetRate changes the line rate. Packets already queued keep their
// departure times (they were scheduled at the old rate); future arrivals
// serialise at the new rate.
func (l *Link) SetRate(rateMbps float64) {
	l.RateBps = rateMbps * 1e6
	if l.Tracer != nil {
		l.Tracer.LinkEvent(l.Name, "rate", rateMbps)
	}
}

// SetDelay changes the propagation delay, modelling a route or radio
// change mid-run (the §5 handover: a new basestation at a different
// distance). Packets the link has already accepted keep the delay that
// applied at acceptance — their arrival events were scheduled when they
// were enqueued — so an in-flight packet is never retimed; only future
// arrivals propagate at the new delay.
func (l *Link) SetDelay(d sim.Time) {
	l.PropDelay = d
	if l.Tracer != nil {
		l.Tracer.LinkEvent(l.Name, "delay", d.Seconds())
	}
}

// SetDown takes the link down (all arrivals dropped) or back up.
func (l *Link) SetDown(down bool) {
	l.down = down
	if l.Tracer != nil {
		what := "up"
		if down {
			what = "down"
		}
		l.Tracer.LinkEvent(l.Name, what, 0)
	}
}

// SetLossRate changes the i.i.d. random drop probability on arrival.
// Prefer it over assigning LossRate directly: it notifies the tracer.
func (l *Link) SetLossRate(p float64) {
	l.LossRate = p
	if l.Tracer != nil {
		l.Tracer.LinkEvent(l.Name, "loss", p)
	}
}

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// QueueLen returns the instantaneous queue occupancy in packets.
func (l *Link) QueueLen(now sim.Time) int {
	l.purge(now)
	return len(l.departs) - l.head
}

func (l *Link) purge(now sim.Time) {
	for l.head < len(l.departs) && l.departs[l.head] <= now {
		l.head++
	}
	// Compact once the dead prefix dominates, to bound memory.
	if l.head > 1024 && l.head*2 >= len(l.departs) {
		n := copy(l.departs, l.departs[l.head:])
		l.departs = l.departs[:n]
		l.head = 0
	}
}

// txTime returns the serialisation delay for a packet of size bytes.
func (l *Link) txTime(size int) sim.Time {
	return sim.Time(float64(size*8) / l.RateBps * float64(sim.Second))
}

// enqueue offers pkt to the link at the current time; the packet is either
// scheduled to arrive at its next hop or dropped.
func (l *Link) enqueue(n *Net, pkt *Packet) {
	now := n.Sim.Now()
	l.Stats.Arrivals++
	if l.down {
		l.Stats.Drops++
		n.FreePacket(pkt)
		return
	}
	if l.LossRate > 0 && n.Sim.Rand().Float64() < l.LossRate {
		l.Stats.Drops++
		l.Stats.RandomLoss++
		n.FreePacket(pkt)
		return
	}
	l.purge(now)
	if len(l.departs)-l.head >= l.QueueCap {
		l.Stats.Drops++
		n.FreePacket(pkt)
		return
	}
	tx := l.txTime(pkt.Size)
	start := now
	if l.lastDepart > start {
		start = l.lastDepart
	}
	depart := start + tx
	l.lastDepart = depart
	l.departs = append(l.departs, depart)
	// Departure statistics (Departures/BytesSent/BusyTime) are accounted
	// by depart (see Link.depart) when the scheduled event fires, not at
	// accept time: packets still queued at run end, or stranded when the
	// link goes down, must not count as departed.
	pkt.txTime = tx
	if n.BatchDepartures {
		l.batchPush(n, pkt, depart+l.PropDelay)
		return
	}
	n.Sim.Post(depart+l.PropDelay, n, pkt)
}

// batchPush appends pkt to the link's in-flight FIFO and arms the
// link timer if it is idle. Arrival times are clamped monotone: a
// mid-run SetDelay decrease could otherwise time a later acceptance
// before an earlier one, and the FIFO head must always be the earliest
// arrival for the single-timer scheme to be correct. (The default
// per-packet-event path permits such overtaking; the batched path
// trades that corner — irrelevant to workloads that never shrink a
// delay mid-flight — for an O(links) heap.)
func (l *Link) batchPush(n *Net, pkt *Packet, at sim.Time) {
	if k := len(l.batch); k > l.bhead && at < l.batch[k-1].at {
		at = l.batch[k-1].at
	}
	l.batch = append(l.batch, batchItem{pkt: pkt, at: at})
	if l.btimer == nil {
		l.btimer = n.Sim.NewTimer(func() { l.batchFire(n) })
	}
	if !l.btimer.Active() {
		l.btimer.ResetAt(l.batch[l.bhead].at)
	}
}

// batchFire delivers every FIFO entry whose arrival time has come —
// crediting the link's departure accounting and forwarding, exactly as
// the per-packet event path does — then rearms the timer at the next
// head, if any.
func (l *Link) batchFire(n *Net) {
	now := n.Sim.Now()
	for l.bhead < len(l.batch) && l.batch[l.bhead].at <= now {
		it := l.batch[l.bhead]
		l.batch[l.bhead] = batchItem{}
		l.bhead++
		if l.depart(n, it.pkt) {
			n.forward(it.pkt)
		}
	}
	if l.bhead > 1024 && l.bhead*2 >= len(l.batch) {
		k := copy(l.batch, l.batch[l.bhead:])
		for i := k; i < len(l.batch); i++ {
			l.batch[i] = batchItem{}
		}
		l.batch = l.batch[:k]
		l.bhead = 0
	}
	if l.bhead < len(l.batch) {
		l.btimer.ResetAt(l.batch[l.bhead].at)
	}
}

// depart completes pkt's crossing of the link when its scheduled event
// fires (at departure time plus PropDelay): the packet is either
// credited to the departure counters and forwarded, or — if the link
// went down while it was queued or propagating (SetDown, the §5 mobility
// outage: a dead radio loses in-flight frames too) — stranded and
// dropped. It reports whether the packet survived.
//
// Because the single per-hop event fires after propagation, counters lag
// the departure instant by PropDelay: stats read mid-run or at run end
// omit packets still on the wire. That bias is bounded by one
// bandwidth-delay product and is conservative (never over-reports),
// unlike the accept-time accounting this replaced, which counted
// never-departed packets.
func (l *Link) depart(n *Net, pkt *Packet) bool {
	if l.down {
		l.Stats.Drops++
		n.FreePacket(pkt)
		return false
	}
	l.Stats.Departures++
	l.Stats.BytesSent += int64(pkt.Size)
	l.Stats.BusyTime += pkt.txTime
	return true
}
