package netsim

import (
	"fmt"

	"mptcp/internal/sim"
)

// BenchRing is the canonical engine-benchmark workload shared by the
// go-test benchmarks (BenchmarkEnginePacketHop) and the CI perf record
// (mptcp-exp -bench-engine): a ring of store-and-forward links with a
// fixed population of circulating packets. Every delivery immediately
// re-injects, so the steady state is a pure packet-hop event stream with
// no endpoint logic — one event per packet per hop. Keeping one
// definition here means both measurements always run the identical
// workload.
type BenchRing struct {
	Net   *Net
	route *Route
}

// NewBenchRing builds the ring on s, seeds the packet population and
// runs a warm-up so the event heap, freelists and queue arrays are at
// steady-state size: after it returns, driving the simulator performs
// zero allocations per hop.
func NewBenchRing(s *sim.Simulator, nLinks, population int) *BenchRing {
	n := NewNet(s)
	links := make([]*Link, nLinks)
	for i := range links {
		links[i] = NewLink(fmt.Sprintf("ring%d", i), 1e5, sim.Millisecond, 1<<20)
	}
	r := &BenchRing{Net: n}
	r.route = NewRoute(r, links...)
	for i := 0; i < population; i++ {
		p := n.AllocPacket()
		p.Size = DataPacketSize
		n.Send(r.route, p)
	}
	s.RunUntil(s.Now() + 2*sim.Second)
	return r
}

// Receive implements Endpoint by re-injecting a fresh packet, keeping
// the population constant.
func (r *BenchRing) Receive(p *Packet) {
	r.Net.FreePacket(p)
	q := r.Net.AllocPacket()
	q.Size = DataPacketSize
	r.Net.Send(r.route, q)
}
