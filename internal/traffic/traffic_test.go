package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

func TestOnOffCBRDutyCycle(t *testing.T) {
	s := sim.New(1)
	n := netsim.NewNet(s)
	l := netsim.NewLink("l", 100, 0, 1000)
	// Mean on 10 ms at 100 Mb/s, mean off 100 ms: expect ~1/11 of the
	// link's packet rate on average.
	cbr := NewOnOffCBR(n, 100, 10*sim.Millisecond, 100*sim.Millisecond, l)
	cbr.Start()
	s.RunUntil(200 * sim.Second)
	rate := float64(cbr.PktsSent) / 200.0
	lineRate := 100e6 / (netsim.DataPacketSize * 8)
	want := lineRate / 11
	if rate < 0.6*want || rate > 1.5*want {
		t.Errorf("CBR average rate = %.0f pkt/s, want ~%.0f", rate, want)
	}
}

func TestOnOffCBRBurstsAtLineRate(t *testing.T) {
	s := sim.New(2)
	n := netsim.NewNet(s)
	l := netsim.NewLink("l", 100, 0, 1<<20)
	cbr := NewOnOffCBR(n, 100, 50*sim.Millisecond, 50*sim.Millisecond, l)
	cbr.Start()
	// Track the max rate over 10 ms windows.
	var maxWin int64
	prev := int64(0)
	for i := 0; i < 2000; i++ {
		s.RunUntil(sim.Time(i+1) * 10 * sim.Millisecond)
		if d := cbr.PktsSent - prev; d > maxWin {
			maxWin = d
		}
		prev = cbr.PktsSent
	}
	// 100 Mb/s = ~83 packets per 10 ms.
	if maxWin < 70 {
		t.Errorf("peak burst = %d pkts/10ms, want ~83 (line rate)", maxWin)
	}
}

func TestParetoMean(t *testing.T) {
	p := NewParetoMean(1.5, 200)
	if math.Abs(p.Mean()-200) > 1e-9 {
		t.Errorf("analytic mean = %v, want 200", p.Mean())
	}
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	got := sum / n
	// alpha=1.5 has infinite variance; accept a broad band.
	if got < 140 || got > 300 {
		t.Errorf("empirical mean = %.1f, want ~200", got)
	}
}

func TestParetoMinimum(t *testing.T) {
	p := NewParetoMean(1.5, 200)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if p.Sample(rng) < p.Xm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	s := sim.New(4)
	n := netsim.NewNet(s)
	count := 0
	pa := &PoissonArrivals{Net: n, Rate: 60, Spawn: func() { count++ }}
	pa.Start()
	s.RunUntil(100 * sim.Second)
	if count < 5400 || count > 6600 {
		t.Errorf("arrivals in 100 s at rate 60/s = %d, want ~6000", count)
	}
}

func TestPoissonRateChange(t *testing.T) {
	s := sim.New(5)
	n := netsim.NewNet(s)
	count := 0
	pa := &PoissonArrivals{Net: n, Rate: 10, Spawn: func() { count++ }}
	pa.Start()
	s.RunUntil(50 * sim.Second)
	low := count
	pa.Rate = 60
	s.RunUntil(100 * sim.Second)
	high := count - low
	if float64(high) < 3*float64(low) {
		t.Errorf("rate change ineffective: %d then %d arrivals", low, high)
	}
}

func TestPermutationProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		rng := rand.New(rand.NewSource(seed))
		dst := Permutation(rng, n)
		if len(dst) != n {
			return false
		}
		seen := make([]bool, n)
		for i, d := range dst {
			if d == i || d < 0 || d >= n || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSparseFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src, dst := SparseFlows(rng, 100, 0.3)
	if len(src) != 30 || len(dst) != 30 {
		t.Fatalf("sparse flows = %d, want 30", len(src))
	}
	srcSeen := map[int]bool{}
	for i := range src {
		if src[i] == dst[i] {
			t.Error("self-flow generated")
		}
		if srcSeen[src[i]] {
			t.Error("duplicate source host")
		}
		srcSeen[src[i]] = true
	}
}

func TestOneToMany(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src, dst := OneToMany(rng, 50, 12)
	if len(src) != 50*12 {
		t.Fatalf("flows = %d, want 600", len(src))
	}
	perSrc := map[int]map[int]bool{}
	for i := range src {
		if perSrc[src[i]] == nil {
			perSrc[src[i]] = map[int]bool{}
		}
		if src[i] == dst[i] {
			t.Fatal("self-flow")
		}
		if perSrc[src[i]][dst[i]] {
			t.Fatal("duplicate destination for one source")
		}
		perSrc[src[i]][dst[i]] = true
	}
}
