// Package traffic provides the workload generators used in the paper's
// evaluation: on/off constant-bit-rate interference (§3, Fig. 9), Poisson
// flow arrivals with Pareto-distributed sizes (§3's server experiment),
// and the data-centre traffic patterns TP1/TP2/TP3 of §4 (permutation
// and sparse matrices over a host set).
//
// Generators draw all randomness from the rand.Rand the caller passes —
// in experiments, one derived from the cell seed — and drive
// transmission off rearm-in-place sim.Timers, so workloads are exactly
// as reproducible as the world that hosts them and safe to build inside
// the parallel runner's concurrent cells. The scenario engine's
// BackgroundCBR and FlowChurn directives are thin wrappers over this
// package.
package traffic

import (
	"math"
	"math/rand"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// sink discards delivered CBR packets.
type sink struct{ net *netsim.Net }

func (s *sink) Receive(p *netsim.Packet) { s.net.FreePacket(p) }

// OnOffCBR is a bursty constant-bit-rate source: it transmits at RateMbps
// during on-periods and is silent during off-periods, both drawn from
// exponential distributions. §3 uses mean on 10 ms at 100 Mb/s and mean
// off 100 ms to stress multipath responsiveness.
type OnOffCBR struct {
	Net      *netsim.Net
	Route    *netsim.Route
	RateMbps float64
	MeanOn   sim.Time
	MeanOff  sim.Time

	on        bool
	stopped   bool
	PktsSent  int64
	sendTimer *sim.Timer
}

// NewOnOffCBR builds the source; links is the forward path. Call Start.
func NewOnOffCBR(nw *netsim.Net, rateMbps float64, meanOn, meanOff sim.Time, links ...*netsim.Link) *OnOffCBR {
	c := &OnOffCBR{
		Net:      nw,
		Route:    netsim.NewRoute(&sink{net: nw}, links...),
		RateMbps: rateMbps,
		MeanOn:   meanOn,
		MeanOff:  meanOff,
	}
	c.sendTimer = nw.Sim.NewTimer(c.sendNext)
	return c
}

// Start begins the on/off cycle (starting in an off-period so flows have
// a moment to establish).
func (c *OnOffCBR) Start() {
	c.Net.Sim.After(c.expDur(c.MeanOff), c.turnOn)
}

func (c *OnOffCBR) expDur(mean sim.Time) sim.Time {
	d := sim.Time(c.Net.Sim.Rand().ExpFloat64() * float64(mean))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	return d
}

// Stop ends the on/off cycle permanently: no further packets are sent.
// Pending cycle events fire as no-ops. Used by scenario directives that
// bound background interference to a time window.
func (c *OnOffCBR) Stop() {
	c.stopped = true
	c.on = false
	c.sendTimer.Stop()
}

func (c *OnOffCBR) turnOn() {
	if c.stopped {
		return
	}
	c.on = true
	c.sendNext()
	c.Net.Sim.After(c.expDur(c.MeanOn), c.turnOff)
}

func (c *OnOffCBR) turnOff() {
	if c.stopped {
		return
	}
	c.on = false
	c.sendTimer.Stop()
	c.Net.Sim.After(c.expDur(c.MeanOff), c.turnOn)
}

func (c *OnOffCBR) sendNext() {
	if !c.on {
		return
	}
	p := c.Net.AllocPacket()
	p.Size = netsim.DataPacketSize
	c.Net.Send(c.Route, p)
	c.PktsSent++
	gap := sim.Time(float64(netsim.DataPacketSize*8) / (c.RateMbps * 1e6) * float64(sim.Second))
	c.sendTimer.Reset(gap)
}

// Pareto samples a Pareto distribution with shape alpha and the given
// mean (alpha must exceed 1 for the mean to exist). The paper's server
// workload uses Pareto file sizes with mean 200 kB.
type Pareto struct {
	Alpha float64
	Xm    float64 // scale (minimum value)
}

// NewParetoMean constructs a Pareto with shape alpha and the target mean:
// mean = alpha·xm/(alpha−1).
func NewParetoMean(alpha, mean float64) Pareto {
	return Pareto{Alpha: alpha, Xm: mean * (alpha - 1) / alpha}
}

// Sample draws one value.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns the distribution mean.
func (p Pareto) Mean() float64 { return p.Alpha * p.Xm / (p.Alpha - 1) }

// PoissonArrivals invokes spawn at exponentially distributed intervals
// with the given rate (arrivals per second). The rate may be changed at
// any time (§3 alternates 10/s and 60/s); set 0 to pause.
type PoissonArrivals struct {
	Net   *netsim.Net
	Rate  float64
	Spawn func()

	Arrivals int64
}

// Start schedules the first arrival.
func (pa *PoissonArrivals) Start() { pa.next() }

func (pa *PoissonArrivals) next() {
	if pa.Rate <= 0 {
		// Poll again shortly in case the rate is restored.
		pa.Net.Sim.After(10*sim.Millisecond, pa.next)
		return
	}
	gap := sim.Time(pa.Net.Sim.Rand().ExpFloat64() / pa.Rate * float64(sim.Second))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	pa.Net.Sim.After(gap, func() {
		pa.Arrivals++
		pa.Spawn()
		pa.next()
	})
}

// Permutation returns a random permutation traffic pattern (TP1): dst[i]
// is the destination of host i, with dst[i] != i and each host receiving
// exactly one flow (a derangement-ish permutation: fixed points are
// re-rolled a bounded number of times, then rotated away).
func Permutation(rng *rand.Rand, n int) []int {
	dst := rng.Perm(n)
	// Remove fixed points by swapping with a neighbour.
	for i := 0; i < n; i++ {
		if dst[i] == i {
			j := (i + 1) % n
			dst[i], dst[j] = dst[j], dst[i]
		}
	}
	return dst
}

// SparseFlows returns TP3: a fraction frac of hosts each open one flow to
// a uniformly random distinct destination. Returns (src, dst) pairs.
func SparseFlows(rng *rand.Rand, n int, frac float64) (src, dst []int) {
	hosts := rng.Perm(n)
	k := int(float64(n) * frac)
	for i := 0; i < k; i++ {
		s := hosts[i]
		d := rng.Intn(n)
		for d == s {
			d = rng.Intn(n)
		}
		src = append(src, s)
		dst = append(dst, d)
	}
	return src, dst
}

// OneToMany returns TP2 for hosts without structural neighbours: each
// host opens fanout flows to distinct random destinations.
func OneToMany(rng *rand.Rand, n, fanout int) (src, dst []int) {
	for s := 0; s < n; s++ {
		seen := map[int]bool{s: true}
		for len(seen) < fanout+1 {
			d := rng.Intn(n)
			if seen[d] {
				continue
			}
			seen[d] = true
			src = append(src, s)
			dst = append(dst, d)
		}
	}
	return src, dst
}
