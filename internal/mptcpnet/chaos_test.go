package mptcpnet

import (
	"net"
	"testing"
	"time"

	"mptcp/internal/chaos"
	"mptcp/internal/chaos/leak"
)

// TestTransferSurvivesBitCorruption runs a transfer through a chaos.Path
// that flips bits in 5% of data-direction datagrams. The wire checksum
// must turn every mangled frame into a counted drop — the transfer
// completes byte-exact, the receiver's Corrupted counter advances, and
// nothing leaks.
func TestTransferSurvivesBitCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second lossy transfer")
	}
	leak.Check(t, 5*time.Second)
	corrupting := func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		a, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		b, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close(); b.Close() })
		s := chaos.New(a, chaos.PathConfig{Delay: time.Millisecond, CorruptRate: 0.05}, int64(6000+i))
		r := chaos.New(b, chaos.PathConfig{Delay: time.Millisecond}, int64(6100+i))
		return s, r, b.LocalAddr()
	}
	_, rx := transfer(t, 128<<10, 2, corrupting, Config{}, 60*time.Second)
	if rx.Corrupted() == 0 {
		t.Error("no corrupted frames counted despite a 5% corruption rate")
	}
}
