package mptcpnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"mptcp/internal/chaos/leak"
)

// TestSocketChurnUnderPathFlaps churns whole connections — open,
// transfer, close, repeat — while a background "scenario" goroutine
// flaps one of the two emulated paths (loss 1.0 ⇄ 0) and wobbles its
// delay the whole time. Run under -race (CI does) this exercises the
// concurrency of EmuPath mutation against the per-subflow writer
// goroutines, and the repeated setup/teardown catches goroutine or
// timer leaks that a single long transfer hides: path 0 stays clean, so
// every transfer must finish via reinjection no matter where in the
// flap cycle it lands.
func TestSocketChurnUnderPathFlaps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-connection churn")
	}
	leak.Check(t, 5*time.Second) // registered first ⇒ runs after every churned socket's cleanups
	const iterations = 5

	var flapped []*EmuPath
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// The flapping scenario: every 20 ms toggle path 1 between dead
		// and alive, alternating its delay between near and far.
		defer wg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		down := false
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				down = !down
				mu.Lock()
				for _, e := range flapped {
					if down {
						e.SetLossRate(1.0)
						e.SetDelay(10 * time.Millisecond)
					} else {
						e.SetLossRate(0)
						e.SetDelay(time.Millisecond)
					}
				}
				mu.Unlock()
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	for iter := 0; iter < iterations; iter++ {
		transfer(t, 96<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
			s, r, ra := pipePair(t, time.Millisecond, 0, 8e6, int64(1000+10*iter+i))
			if i == 1 {
				mu.Lock()
				flapped = append(flapped, s.(*EmuPath))
				mu.Unlock()
			}
			return s, r, ra
		}, Config{}, 60*time.Second)
		if t.Failed() {
			t.Fatalf("transfer %d failed under path flaps", iter)
		}
	}
}
