package mptcpnet

import (
	"bytes"
	"crypto/sha256"
	"io"
	"net"
	"testing"
	"time"

	"mptcp/internal/cc"
	"mptcp/internal/sched"
)

// pipePair builds one emulated UDP path on loopback and returns the
// sender-side and receiver-side PacketConns plus the receiver's address.
func pipePair(t *testing.T, delay time.Duration, loss, rateBps float64, seed int64) (snd net.PacketConn, rcv net.PacketConn, raddr net.Addr) {
	t.Helper()
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	// Shape both directions identically.
	return NewEmuPath(a, delay, loss, rateBps, seed),
		NewEmuPath(b, delay, loss/4, 0, seed+1), // ACK path: lighter loss, no cap
		b.LocalAddr()
}

// transfer pushes size bytes through a multipath connection and verifies
// integrity end to end.
func transfer(t *testing.T, size int, paths int, mk func(i int) (net.PacketConn, net.PacketConn, net.Addr), cfg Config, timeout time.Duration) (*Sender, *Receiver) {
	t.Helper()
	var sConns, rConns []net.PacketConn
	var remotes []net.Addr
	for i := 0; i < paths; i++ {
		s, r, ra := mk(i)
		sConns = append(sConns, s)
		rConns = append(rConns, r)
		remotes = append(remotes, ra)
	}
	const connID = 77
	rx := NewReceiver(connID, rConns, 512)
	tx := NewSender(connID, sConns, remotes, cfg)

	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	wantSum := sha256.Sum256(data)

	errc := make(chan error, 1)
	go func() {
		if _, err := tx.Write(data); err != nil {
			errc <- err
			return
		}
		errc <- tx.Close()
	}()

	got := make([]byte, 0, size)
	buf := make([]byte, 64<<10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			n, err := rx.Read(buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("transfer timed out: got %d/%d bytes", len(got), size)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	if len(got) != size {
		t.Fatalf("received %d bytes, want %d", len(got), size)
	}
	if sha256.Sum256(got) != wantSum {
		t.Fatal("data corrupted in transit")
	}
	return tx, rx
}

func TestWireRoundTrip(t *testing.T) {
	h := header{
		Type: typeAck, Flags: flagSack, Subflow: 3, ConnID: 12345,
		Seq: 111, DataSeq: 222, Aux: 333, Window: 44, Echo: 55, Plen: 0,
	}
	buf := make([]byte, headerSize)
	h.marshal(buf)
	sealFrame(buf)
	var g header
	if err := g.unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Errorf("round trip: got %+v want %+v", g, h)
	}
}

// Every single-bit flip anywhere in a sealed frame must be caught by the
// checksum — this is the property that turns the chaos layer's bit
// corruption into counted drops instead of decoded garbage.
func TestWireRejectsCorruptedFrame(t *testing.T) {
	h := header{
		Type: typeData, Subflow: 1, ConnID: 99, Seq: 7, DataSeq: 8,
		Plen: 32,
	}
	frame := make([]byte, headerSize+32)
	h.marshal(frame)
	for i := headerSize; i < len(frame); i++ {
		frame[i] = byte(i * 7)
	}
	sealFrame(frame)
	var g header
	if err := g.unmarshal(frame); err != nil {
		t.Fatalf("sealed frame rejected: %v", err)
	}
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			frame[i] ^= 1 << bit
			if err := g.unmarshal(frame); err == nil {
				t.Fatalf("flip of byte %d bit %d went undetected", i, bit)
			}
			frame[i] ^= 1 << bit
		}
	}
}

func TestWireRejectsShort(t *testing.T) {
	var h header
	if err := h.unmarshal(make([]byte, headerSize-1)); err == nil {
		t.Error("short packet accepted")
	}
	// Payload length larger than the datagram must be rejected even when
	// the frame is correctly sealed.
	good := header{Type: typeData, Plen: 100}
	buf := make([]byte, headerSize)
	good.marshal(buf)
	sealFrame(buf)
	if err := h.unmarshal(buf); err == nil {
		t.Error("overlong Plen accepted")
	}
}

func TestSinglePathClean(t *testing.T) {
	transfer(t, 200<<10, 1, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		return pipePair(t, time.Millisecond, 0, 0, int64(i))
	}, Config{}, 30*time.Second)
}

func TestTwoPathsClean(t *testing.T) {
	tx, rx := transfer(t, 500<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		return pipePair(t, time.Millisecond, 0, 0, int64(i))
	}, Config{}, 30*time.Second)
	if rx.SubflowReceived(0) == 0 || rx.SubflowReceived(1) == 0 {
		t.Errorf("both subflows should carry data: %d/%d", rx.SubflowReceived(0), rx.SubflowReceived(1))
	}
	if st := tx.Stats(); st.SegsSent == 0 {
		t.Error("sender reported no segments")
	}
}

func TestLossyPathRecovery(t *testing.T) {
	tx, _ := transfer(t, 300<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		return pipePair(t, 2*time.Millisecond, 0.03, 0, 100+int64(i))
	}, Config{}, 60*time.Second)
	if st := tx.Stats(); st.SegsRetx == 0 {
		t.Error("3% loss must cause retransmissions")
	}
}

func TestHeterogeneousPaths(t *testing.T) {
	// A fast clean path and a slow lossy one, as in §5.
	transfer(t, 400<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		if i == 0 {
			return pipePair(t, time.Millisecond, 0.005, 20e6, 200)
		}
		return pipePair(t, 20*time.Millisecond, 0.02, 2e6, 201)
	}, Config{}, 60*time.Second)
}

func TestCoupledAlgorithmsOverSockets(t *testing.T) {
	// Every registered multipath algorithm must complete a transfer over
	// real sockets — including the kernel-family successors, whose
	// RTT/loss hooks are exercised through the mptcpnet wiring here.
	for _, name := range []string{"EWTCP", "COUPLED", "SEMICOUPLED", "MPTCP", "OLIA", "BALIA", "WVEGAS"} {
		name := name
		t.Run(name, func(t *testing.T) {
			alg, err := cc.New(name)
			if err != nil {
				t.Fatal(err)
			}
			transfer(t, 100<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
				return pipePair(t, time.Millisecond, 0.01, 0, 300+int64(i))
			}, Config{Alg: alg}, 60*time.Second)
		})
	}
}

func TestSchedulerRoundRobin(t *testing.T) {
	// Rate-limited paths so the transfer spans many RTTs and the
	// scheduler's balance is observable.
	_, rx := transfer(t, 300<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		return pipePair(t, time.Millisecond, 0, 10e6, 400+int64(i))
	}, Config{Sched: sched.RoundRobin{}}, 30*time.Second)
	// Round robin on identical paths should split roughly evenly.
	a, b := float64(rx.SubflowReceived(0)), float64(rx.SubflowReceived(1))
	if a == 0 || b == 0 {
		t.Fatalf("a subflow carried nothing: %v/%v", a, b)
	}
	ratio := a / b
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("round-robin split %v/%v is too skewed", a, b)
	}
}

func TestPathDeathReinjection(t *testing.T) {
	var emus []*EmuPath
	tx, _ := transferWithSetup(t, 400<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		// ~4 Mb/s per path so the 400 KB transfer spans ~400 ms.
		s, r, ra := pipePair(t, time.Millisecond, 0, 4e6, 500+int64(i))
		emus = append(emus, s.(*EmuPath))
		return s, r, ra
	}, Config{}, 60*time.Second, func() {
		// Kill path 1 shortly after the transfer starts.
		time.AfterFunc(50*time.Millisecond, func() {
			emus[1].SetLossRate(1.0)
		})
	})
	if st := tx.Stats(); st.Reinjects == 0 {
		t.Error("path death should have triggered data reinjection")
	}
}

// transferWithSetup is transfer with a pre-start hook.
func transferWithSetup(t *testing.T, size, paths int, mk func(i int) (net.PacketConn, net.PacketConn, net.Addr), cfg Config, timeout time.Duration, setup func()) (*Sender, *Receiver) {
	t.Helper()
	setupDone := setup
	if setupDone != nil {
		setupDone()
	}
	return transfer(t, size, paths, mk, cfg, timeout)
}

func TestLargeTransferExceedsSendBuffer(t *testing.T) {
	// Regression: a single Write larger than the sender's internal
	// 1024-segment queue must pump the network before blocking on
	// backpressure, or the transfer deadlocks before the first packet.
	_, rx := transfer(t, 2<<20, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		return pipePair(t, time.Millisecond, 0, 40e6, 800+int64(i))
	}, Config{}, 120*time.Second)
	if _, _, ovf := rx.Stats(); ovf > 0 {
		t.Errorf("receive buffer overflowed %d times despite flow control", ovf)
	}
}

func TestSenderWriteAfterClose(t *testing.T) {
	a, _ := net.ListenPacket("udp", "127.0.0.1:0")
	defer a.Close()
	s := NewSender(1, []net.PacketConn{a}, []net.Addr{a.LocalAddr()}, Config{})
	s.Close()
	if _, err := s.Write([]byte("x")); err == nil {
		t.Error("write after close should fail")
	}
}

func TestReceiverEOFOnlyAfterAllData(t *testing.T) {
	s, r, ra := pipePair(t, time.Millisecond, 0, 0, 600)
	_ = ra
	rx := NewReceiver(9, []net.PacketConn{r}, 64)
	defer rx.Close()
	_ = s
	// No FIN: Read must block, not EOF.
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 16)
		rx.Read(buf) //nolint:errcheck
		close(done)
	}()
	select {
	case <-done:
		t.Error("Read returned with no data and no FIN")
	case <-time.After(100 * time.Millisecond):
	}
	rx.Close()
}

func TestFlowControlSharedBuffer(t *testing.T) {
	// A tiny receive buffer with a reader that drains slowly: the sender
	// must respect the advertised window rather than overflow.
	sA, rA, raA := pipePair(t, time.Millisecond, 0, 0, 700)
	const connID = 13
	rx := NewReceiver(connID, []net.PacketConn{rA}, 16)
	tx := NewSender(connID, []net.PacketConn{sA}, []net.Addr{raA}, Config{})
	data := bytes.Repeat([]byte("flowctl!"), 64<<10/8) // 64 KB
	go func() {
		tx.Write(data) //nolint:errcheck
		tx.Close()
	}()
	got := 0
	buf := make([]byte, 4096)
	deadline := time.Now().Add(60 * time.Second)
	for got < len(data) {
		if time.Now().After(deadline) {
			t.Fatalf("slow-reader transfer stalled at %d/%d", got, len(data))
		}
		n, err := rx.Read(buf)
		got += n
		if err == io.EOF {
			break
		}
		time.Sleep(time.Millisecond) // slow application
	}
	if got != len(data) {
		t.Errorf("got %d bytes, want %d", got, len(data))
	}
}
