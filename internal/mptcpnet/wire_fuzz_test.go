package mptcpnet

import (
	"testing"
)

// FuzzDecodeFrame pins the property the chaos corruption injector relies
// on: decoding arbitrary bytes never panics, and anything unmarshal does
// accept is internally consistent (a sealed frame whose declared payload
// fits the datagram). Run `go test -fuzz=FuzzDecodeFrame ./internal/mptcpnet`
// to explore beyond the seed corpus.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: a sealed frame of every segment type, a truncated
	// frame, an unsealed frame, and junk.
	for _, typ := range []byte{typeData, typeAck, typeSyn, typeFin, typeProbe} {
		h := header{
			Type: typ, Flags: flagSack, Subflow: 2, ConnID: 424242,
			Seq: 1 << 40, DataSeq: 77, Aux: -1, Window: 512, Echo: 12345,
			Plen: 16,
		}
		frame := make([]byte, headerSize+16)
		h.marshal(frame)
		for i := headerSize; i < len(frame); i++ {
			frame[i] = byte(i)
		}
		sealFrame(frame)
		f.Add(frame)
		f.Add(frame[:headerSize-1])
	}
	unsealed := make([]byte, headerSize)
	(&header{Type: typeData}).marshal(unsealed)
	f.Add(unsealed)
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var h header
		if err := h.unmarshal(data); err != nil {
			return // rejected, fine — the property is "never panics"
		}
		if len(data) < headerSize {
			t.Fatalf("accepted a %d-byte datagram, header needs %d", len(data), headerSize)
		}
		if int(h.Plen) > len(data)-headerSize {
			t.Fatalf("accepted Plen %d beyond datagram of %d bytes", h.Plen, len(data))
		}
	})
}
