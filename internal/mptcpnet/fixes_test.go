package mptcpnet

// Regression tests for the RTT/ordering bugfix sweep: Karn suppression of
// retransmission-ambiguous RTT samples, the 60 s RTO clamp, in-subflow
// FIFO transmission order, FIN-timer termination, and writer lifecycle.
// They run over a deterministic in-memory PacketConn, not real sockets,
// so ordering assertions are exact.

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// memConn is a deterministic in-memory net.PacketConn: every WriteTo is
// recorded in call order and, when wired to a peer, delivered FIFO and
// lossless.
type memConn struct {
	addr memAddr

	mu     sync.Mutex
	writes [][]byte
	closed bool
	inbox  chan []byte
	peer   *memConn
}

func newMemConn(name string) *memConn {
	return &memConn{addr: memAddr(name), inbox: make(chan []byte, 4096)}
}

// wire cross-connects two memConns into a lossless FIFO pipe.
func wire(a, b *memConn) { a.peer, b.peer = b, a }

func (c *memConn) ReadFrom(p []byte) (int, net.Addr, error) {
	buf, ok := <-c.inbox
	if !ok {
		return 0, nil, net.ErrClosed
	}
	n := copy(p, buf)
	var from net.Addr = memAddr("peer")
	if c.peer != nil {
		from = c.peer.addr
	}
	return n, from, nil
}

func (c *memConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	b := append([]byte(nil), p...)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.writes = append(c.writes, b)
	c.mu.Unlock()
	if c.peer != nil {
		c.peer.deliver(b)
	}
	return len(p), nil
}

func (c *memConn) deliver(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	select {
	case c.inbox <- b:
	default: // inbox full: drop, like a saturated path
	}
}

func (c *memConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.inbox)
	}
	return nil
}

func (c *memConn) LocalAddr() net.Addr              { return c.addr }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// typedWrites returns the recorded writes of the given segment type, in
// call order.
func (c *memConn) typedWrites(typ byte) []header {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hs []header
	for _, b := range c.writes {
		var h header
		if h.unmarshal(b) == nil && h.Type == typ {
			hs = append(hs, h)
		}
	}
	return hs
}

func newTestSender(t *testing.T, cfg Config) (*Sender, *memConn) {
	t.Helper()
	c := newMemConn("snd")
	t.Cleanup(func() { c.Close() })
	return NewSender(42, []net.PacketConn{c}, []net.Addr{memAddr("rcv")}, cfg), c
}

// waitWrites blocks until the writer goroutine has flushed at least n
// writes of the given type.
func waitWrites(t *testing.T, c *memConn, typ byte, n int) []header {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hs := c.typedWrites(typ)
		if len(hs) >= n {
			return hs
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer flushed %d %d-type segments, want %d", len(hs), typ, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// A cumulative ACK that covers a retransmitted segment is ambiguous
// (Karn's rule) and must not feed the RTT estimator.
func TestRetxAckSuppressesRTTSample(t *testing.T) {
	s, _ := newTestSender(t, Config{})
	if _, err := s.Write(make([]byte, 2*MaxPayload)); err != nil { // segments 0 and 1
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // make elapsedMicros() strictly positive
	sf := s.subs[0]

	s.mu.Lock()
	sf.meta[0].retx = true // segment 0 was retransmitted
	s.mu.Unlock()
	s.handleAck(sf, &header{Type: typeAck, Seq: 1, DataSeq: 1, Window: 64, Echo: 0})
	s.mu.Lock()
	srtt := sf.srtt
	s.mu.Unlock()
	if srtt != 0 {
		t.Errorf("ambiguous ACK fed the RTT estimator: srtt = %v, want 0", srtt)
	}

	// The next ACK covers only the cleanly-delivered segment 1: sampling
	// must resume.
	s.handleAck(sf, &header{Type: typeAck, Seq: 2, DataSeq: 2, Window: 64, Echo: 0})
	s.mu.Lock()
	srtt = sf.srtt
	s.mu.Unlock()
	if srtt <= 0 {
		t.Errorf("clean ACK did not feed the RTT estimator: srtt = %v", srtt)
	}
}

// The computed RTO must clamp to the 60 s maximum the simulator transport
// applies (RFC 6298 §2.5), however wild the samples.
func TestRTOClampedToMax(t *testing.T) {
	s, _ := newTestSender(t, Config{})
	sf := s.subs[0]
	s.mu.Lock()
	sf.sampleRTT(10 * time.Hour)
	rto := sf.rto
	s.mu.Unlock()
	if rto != maxRTO {
		t.Errorf("rto = %v after a 10h sample, want clamp at %v", rto, maxRTO)
	}
}

// In-subflow transmissions must hit the socket in sequence order: the
// per-subflow writer goroutine serialises what the old one-goroutine-per-
// segment design left to scheduler luck.
func TestInSubflowSendOrderFIFO(t *testing.T) {
	s, c := newTestSender(t, Config{})
	const segs = 48 // below the 64-segment default flow-control edge
	s.mu.Lock()
	s.cc[0].Cwnd = segs // window never binds
	s.mu.Unlock()
	if _, err := s.Write(make([]byte, segs*MaxPayload)); err != nil {
		t.Fatal(err)
	}
	hs := waitWrites(t, c, typeData, segs)
	for i, h := range hs[:segs] {
		if h.Seq != int64(i) {
			t.Fatalf("socket write %d carries seq %d: transmissions reordered", i, h.Seq)
		}
	}
}

// memPipe builds a sender/receiver pair over the in-memory transport.
func memPipe(t *testing.T, cfg Config) (*Sender, *Receiver, *memConn) {
	t.Helper()
	snd, rcv := newMemConn("snd"), newMemConn("rcv")
	wire(snd, rcv)
	t.Cleanup(func() { snd.Close(); rcv.Close() })
	const connID = 7
	rx := NewReceiver(connID, []net.PacketConn{rcv}, 256)
	tx := NewSender(connID, []net.PacketConn{snd}, []net.Addr{memAddr("rcv")}, cfg)
	return tx, rx, snd
}

// drainEOF reads rx to EOF and reports the byte count.
func drainEOF(t *testing.T, rx *Receiver) int {
	t.Helper()
	got := 0
	buf := make([]byte, 32<<10)
	for {
		n, err := rx.Read(buf)
		got += n
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
}

// On a loss-free FIFO pipe there is nothing to recover: any fast
// retransmit would be manufactured by send-side reordering.
func TestNoSpuriousRetxOnCleanPipe(t *testing.T) {
	tx, rx, _ := memPipe(t, Config{})
	const size = 512 << 10
	go func() {
		tx.Write(make([]byte, size)) //nolint:errcheck
		tx.Close()
	}()
	if got := drainEOF(t, rx); got != size {
		t.Fatalf("received %d bytes, want %d", got, size)
	}
	if err := tx.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := tx.Stats(); st.SegsRetx != 0 {
		t.Errorf("loss-free pipe saw %d retransmissions, want 0", st.SegsRetx)
	}
}

// Once Wait returns, the FIN retransmission chain must terminate: done is
// closed and no further FIN hits the socket.
func TestFinTimerStopsAfterWait(t *testing.T) {
	cfg := Config{MinRTO: 20 * time.Millisecond}
	tx, rx, snd := memPipe(t, cfg)
	go func() {
		tx.Write(make([]byte, 8<<10)) //nolint:errcheck
		tx.Close()
	}()
	if got := drainEOF(t, rx); got != 8<<10 {
		t.Fatalf("received %d bytes, want %d", got, 8<<10)
	}
	if err := tx.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tx.done:
	default:
		t.Fatal("done not closed after Wait succeeded")
	}
	fins := len(snd.typedWrites(typeFin))
	time.Sleep(8 * cfg.MinRTO) // several would-be retransmit intervals
	if later := len(snd.typedWrites(typeFin)); later != fins {
		t.Errorf("FIN count grew from %d to %d after completion: timer chain leaked", fins, later)
	}
}

// Closing a subflow socket under an unfinished sender must abort it:
// done closes (releasing the writer goroutine, FIN chain and RTO
// timers) and the error surfaces, instead of leaking a parked writer per
// abandoned sender.
func TestSocketCloseAbortsSender(t *testing.T) {
	s, c := newTestSender(t, Config{})
	if _, err := s.Write(make([]byte, MaxPayload)); err != nil { // unacked data in flight
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-s.done:
	case <-time.After(5 * time.Second):
		t.Fatal("done not closed after the subflow socket was closed")
	}
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	if err == nil {
		t.Error("socket-close abort should record an error")
	}
}

// With the peer unreachable the FIN chain must not reschedule forever:
// the retry budget aborts the sender instead of leaking timers.
func TestFinChainGivesUpWithoutPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second backoff wait")
	}
	s, _ := newTestSender(t, Config{MinRTO: time.Millisecond})
	s.mu.Lock()
	s.cc[0].Cwnd = 8 // let the data and the FIN leave despite no ACKs
	s.mu.Unlock()
	if _, err := s.Write(make([]byte, 2*MaxPayload)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // sends the FIN; no peer will ever ack
		t.Fatal(err)
	}
	select {
	case <-s.done:
	case <-time.After(30 * time.Second):
		t.Fatal("FIN chain still running: retry budget did not trip")
	}
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	if err == nil {
		t.Error("giving up should record an error")
	}
}
