package mptcpnet

import (
	"net"
	"testing"
	"time"

	"mptcp/internal/chaos/leak"
	"mptcp/internal/sched"
)

// TestSchedulersOverSockets: every registered scheduler must complete a
// two-path transfer over real sockets — the registry wiring, not the
// policies themselves, is under test here.
func TestSchedulersOverSockets(t *testing.T) {
	for si, name := range sched.Names() {
		si, name := si, name
		t.Run(name, func(t *testing.T) {
			leak.Check(t, 5*time.Second) // registered first ⇒ runs after the conn-close cleanups
			transfer(t, 100<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
				return pipePair(t, time.Duration(1+10*i)*time.Millisecond, 0, 10e6, int64(2000+10*si+i))
			}, Config{Sched: sched.MustNew(name)}, 60*time.Second)
		})
	}
}

// TestRedundantSurvivesDeadPathOverSockets: with path 1 dropping every
// packet from the start, the redundant scheduler still completes the
// transfer through path 0 — every segment rides every subflow, so a
// dead path never strands the stream (no reliance on RTO reinjection).
func TestRedundantSurvivesDeadPathOverSockets(t *testing.T) {
	leak.Check(t, 5*time.Second)
	tx, rx := transfer(t, 100<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
		loss := 0.0
		if i == 1 {
			loss = 1.0
		}
		return pipePair(t, time.Millisecond, loss, 10e6, int64(3000+i))
	}, Config{Sched: sched.Redundant{}}, 60*time.Second)
	if rx.SubflowReceived(0) == 0 {
		t.Error("the live path delivered nothing")
	}
	if st := tx.Stats(); st.SegsSent == 0 {
		t.Error("sender reported no segments")
	}
}

// TestCountermeasuresOverSockets: a 64-segment shared receive buffer —
// matching the sender's conservative initial window, so the buffer
// limit is felt as flow control rather than overflow — over one fast
// and one slow, rate-limited path. Early in slow start the scheduler
// parks segments on the slow subflow; the buffer then blocks behind
// them, and with SchedOpts enabled the sender must detect the blocking,
// fire the countermeasures and still complete the transfer.
func TestCountermeasuresOverSockets(t *testing.T) {
	leak.Check(t, 5*time.Second)
	var sConns, rConns []net.PacketConn
	var remotes []net.Addr
	for i := 0; i < 2; i++ {
		delay, rate := time.Millisecond, 20e6
		if i == 1 {
			delay, rate = 60*time.Millisecond, 1e6 // slow, easily backlogged
		}
		s, r, ra := pipePair(t, delay, 0, rate, int64(4000+i))
		sConns = append(sConns, s)
		rConns = append(rConns, r)
		remotes = append(remotes, ra)
	}
	const connID = 41
	rx := NewReceiver(connID, rConns, 64)
	defer rx.Close()
	tx := NewSender(connID, sConns, remotes, Config{
		Sched:     sched.MinRTT{},
		SchedOpts: sched.Options{OpportunisticRetx: true, Penalize: true},
	})
	data := make([]byte, 200<<10)
	for i := range data {
		data[i] = byte(i)
	}
	go func() {
		tx.Write(data) //nolint:errcheck
		tx.Close()
	}()
	buf := make([]byte, 64<<10)
	got := 0
	deadline := time.Now().Add(60 * time.Second)
	for got < len(data) {
		if time.Now().After(deadline) {
			t.Fatalf("transfer stalled at %d/%d", got, len(data))
		}
		n, err := rx.Read(buf)
		got += n
		if err != nil {
			break
		}
	}
	if got != len(data) {
		t.Fatalf("got %d bytes, want %d", got, len(data))
	}
	st := tx.Stats()
	oppRetx, penalties := st.OppRetx, st.Penalties
	if oppRetx == 0 && penalties == 0 {
		t.Error("neither countermeasure fired under a blocking shared buffer")
	}
}
