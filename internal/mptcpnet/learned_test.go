package mptcpnet

import (
	"net"
	"testing"
	"time"

	"mptcp/internal/chaos/leak"
	"mptcp/internal/sched"
)

// TestLearnedSchedulerOverSockets: the embedded bandit policy must
// drive a real two-path socket transfer to completion — first over
// plainly heterogeneous paths, then under a constrained shared receive
// buffer over a fast and a slow, rate-limited path. The second leg is
// the regime the policy's wait arm and pressure feature were trained
// for: flow control binds, the scheduler is consulted under pressure,
// and its learned "send nothing now" decision must never park the
// connection (the liveness guards in sched/learned.go are what this
// test would catch regressing). leak.Check pins that no goroutine
// outlives the transfer.
func TestLearnedSchedulerOverSockets(t *testing.T) {
	leak.Check(t, 5*time.Second)

	t.Run("heterogeneous", func(t *testing.T) {
		tx, rx := transfer(t, 100<<10, 2, func(i int) (net.PacketConn, net.PacketConn, net.Addr) {
			return pipePair(t, time.Duration(1+30*i)*time.Millisecond, 0, 10e6, int64(7000+i))
		}, Config{Sched: sched.MustNew("bandit")}, 60*time.Second)
		if st := tx.Stats(); st.SegsSent == 0 {
			t.Error("sender reported no segments")
		}
		if rx.SubflowReceived(0) == 0 {
			t.Error("the fast path delivered nothing")
		}
	})

	t.Run("blocking-buffer", func(t *testing.T) {
		var sConns, rConns []net.PacketConn
		var remotes []net.Addr
		for i := 0; i < 2; i++ {
			delay, rate := time.Millisecond, 20e6
			if i == 1 {
				delay, rate = 60*time.Millisecond, 1e6
			}
			s, r, ra := pipePair(t, delay, 0, rate, int64(7100+i))
			sConns = append(sConns, s)
			rConns = append(rConns, r)
			remotes = append(remotes, ra)
		}
		const connID = 73
		rx := NewReceiver(connID, rConns, 64)
		defer rx.Close()
		tx := NewSender(connID, sConns, remotes, Config{Sched: sched.MustNew("bandit")})
		data := make([]byte, 200<<10)
		for i := range data {
			data[i] = byte(i)
		}
		go func() {
			tx.Write(data) //nolint:errcheck
			tx.Close()
		}()
		buf := make([]byte, 64<<10)
		got := 0
		deadline := time.Now().Add(60 * time.Second)
		for got < len(data) {
			if time.Now().After(deadline) {
				t.Fatalf("transfer stalled at %d/%d — learned wait parked the connection?", got, len(data))
			}
			n, err := rx.Read(buf)
			got += n
			if err != nil {
				break
			}
		}
		if got != len(data) {
			t.Fatalf("got %d bytes, want %d", got, len(data))
		}
	})
}
