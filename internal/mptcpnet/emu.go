package mptcpnet

import (
	"net"
	"time"

	"mptcp/internal/chaos"
)

// EmuPath wraps a net.PacketConn and emulates the simple path
// characteristics the original loopback tests need: one-way delay, i.i.d.
// loss, and a token-bucket rate limit. It substitutes for the paper's
// heterogeneous radio links (WiFi vs 3G) when exercising the stack over
// loopback.
//
// EmuPath is now a thin shim over chaos.Path, which carries the full
// fault model (reordering, duplication, bit corruption, Gilbert–Elliott
// burst loss, kill/heal); use internal/chaos directly for anything
// beyond delay/loss/rate.
type EmuPath struct {
	*chaos.Path
}

// NewEmuPath wraps conn with the given one-way delay, loss rate and rate
// limit (0 = unlimited), deterministically seeded.
func NewEmuPath(conn net.PacketConn, delay time.Duration, loss float64, rateBps float64, seed int64) *EmuPath {
	return &EmuPath{Path: chaos.New(conn, chaos.PathConfig{
		Delay:    delay,
		LossRate: loss,
		RateBps:  rateBps,
	}, seed)}
}

// SetLossRate changes the path's loss rate mid-run — the socket-level
// analogue of a scenario link flap (1.0 = the radio is gone). Safe for
// concurrent use with WriteTo.
func (e *EmuPath) SetLossRate(p float64) {
	e.Update(func(c *chaos.PathConfig) { c.LossRate = p })
}

// SetDelay changes the path's one-way delay mid-run (handover to a
// farther basestation). Packets already written keep the delay that
// applied at write time. Safe for concurrent use with WriteTo.
func (e *EmuPath) SetDelay(d time.Duration) {
	e.Update(func(c *chaos.PathConfig) { c.Delay = d })
}

// Stats returns the path's sent/dropped counters. This replaces the old
// bare exported fields, which raced with concurrent WriteTo calls.
func (e *EmuPath) Stats() (sent, dropped int64) {
	st := e.Path.Stats()
	return st.Sent, st.Dropped
}
