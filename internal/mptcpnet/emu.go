package mptcpnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// EmuPath wraps a net.PacketConn and emulates path characteristics on
// outgoing packets: one-way delay, i.i.d. loss, and a token-bucket rate
// limit. It substitutes for the paper's heterogeneous radio links (WiFi
// vs 3G) when exercising the stack over loopback.
type EmuPath struct {
	net.PacketConn
	Delay    time.Duration
	LossRate float64
	RateBps  float64 // 0 = unlimited

	mu       sync.Mutex
	rng      *rand.Rand
	nextFree time.Time

	Dropped int64
	Sent    int64
}

// NewEmuPath wraps conn with the given one-way delay and loss rate.
func NewEmuPath(conn net.PacketConn, delay time.Duration, loss float64, rateBps float64, seed int64) *EmuPath {
	return &EmuPath{
		PacketConn: conn,
		Delay:      delay,
		LossRate:   loss,
		RateBps:    rateBps,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// SetLossRate changes the path's loss rate mid-run — the socket-level
// analogue of a scenario link flap (1.0 = the radio is gone). Safe for
// concurrent use with WriteTo.
func (e *EmuPath) SetLossRate(p float64) {
	e.mu.Lock()
	e.LossRate = p
	e.mu.Unlock()
}

// SetDelay changes the path's one-way delay mid-run (handover to a
// farther basestation). Packets already written keep the delay that
// applied at write time. Safe for concurrent use with WriteTo.
func (e *EmuPath) SetDelay(d time.Duration) {
	e.mu.Lock()
	e.Delay = d
	e.mu.Unlock()
}

// WriteTo applies loss, serialisation and delay, then forwards the packet.
func (e *EmuPath) WriteTo(p []byte, addr net.Addr) (int, error) {
	e.mu.Lock()
	if e.LossRate > 0 && e.rng.Float64() < e.LossRate {
		e.Dropped++
		e.mu.Unlock()
		return len(p), nil // silently eaten, like a radio fade
	}
	delay := e.Delay
	if e.RateBps > 0 {
		tx := time.Duration(float64(len(p)*8) / e.RateBps * float64(time.Second))
		now := time.Now()
		if e.nextFree.Before(now) {
			e.nextFree = now
		}
		e.nextFree = e.nextFree.Add(tx)
		delay += e.nextFree.Sub(now)
	}
	e.Sent++
	e.mu.Unlock()

	buf := make([]byte, len(p))
	copy(buf, p)
	if delay <= 0 {
		return e.PacketConn.WriteTo(buf, addr)
	}
	time.AfterFunc(delay, func() {
		e.PacketConn.WriteTo(buf, addr) //nolint:errcheck
	})
	return len(p), nil
}
