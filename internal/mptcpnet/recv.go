package mptcpnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Receiver is the receiving side of a multipath connection: it reads
// segments from every subflow socket, acknowledges them (subflow ack +
// explicit data ack + shared-buffer window, per §6), reassembles the data
// stream and serves it through Read.
type Receiver struct {
	connID uint64
	conns  []net.PacketConn

	mu        sync.Mutex
	cond      *sync.Cond
	subRcvNxt []int64
	subOOO    []map[int64]struct{}
	segs      map[int64][]byte
	dataNxt   int64
	finSeq    int64 // end-of-stream data sequence, -1 until FIN seen
	readBuf   []byte
	bufCap    int64 // shared receive buffer, segments
	held      int64
	closed    bool

	// Stats, guarded by mu; read via Stats() and SubflowReceived().
	segsRecvd    int64
	dupData      int64
	overflow     int64 // segments refused by the shared buffer
	subflowRecvd []int64

	// corrupt counts inbound frames dropped by the checksum; atomic (not
	// mu) because readLoop bumps it without taking the lock.
	corrupt atomic.Int64
}

// NewReceiver builds a receiver listening on the given subflow sockets.
// bufSegments is the shared receive buffer size in segments (default 256
// if <= 0).
func NewReceiver(connID uint64, conns []net.PacketConn, bufSegments int64) *Receiver {
	if bufSegments <= 0 {
		bufSegments = 256
	}
	r := &Receiver{
		connID:       connID,
		conns:        conns,
		subRcvNxt:    make([]int64, len(conns)),
		subOOO:       make([]map[int64]struct{}, len(conns)),
		segs:         make(map[int64][]byte),
		finSeq:       -1,
		bufCap:       bufSegments,
		subflowRecvd: make([]int64, len(conns)),
	}
	r.cond = sync.NewCond(&r.mu)
	for i := range r.subOOO {
		r.subOOO[i] = make(map[int64]struct{})
	}
	for i := range conns {
		go r.readLoop(i)
	}
	return r
}

// Read returns in-order stream data, blocking until some is available or
// the stream ends (io.EOF).
func (r *Receiver) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.readBuf) == 0 {
		if r.finSeq >= 0 && r.dataNxt >= r.finSeq {
			return 0, io.EOF
		}
		if r.closed {
			return 0, io.ErrClosedPipe
		}
		r.cond.Wait()
	}
	n := copy(p, r.readBuf)
	r.readBuf = r.readBuf[n:]
	return n, nil
}

// Close stops the receiver (the sockets themselves belong to the caller).
func (r *Receiver) Close() error {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	return nil
}

// Received returns the count of distinct data segments delivered so far.
func (r *Receiver) Received() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dataNxt
}

// Stats returns the receiver's counters: segments received (including
// duplicates), duplicate-data arrivals, and segments refused by the
// shared buffer.
func (r *Receiver) Stats() (recvd, dupData, overflow int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.segsRecvd, r.dupData, r.overflow
}

// Corrupted returns the count of inbound frames dropped because their
// checksum did not verify — damaged in flight and refused before any
// sequence state could be polluted.
func (r *Receiver) Corrupted() int64 { return r.corrupt.Load() }

// SubflowReceived returns the count of distinct data segments that
// arrived via subflow i (per-path goodput).
func (r *Receiver) SubflowReceived(i int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.subflowRecvd[i]
}

func (r *Receiver) window() int64 {
	w := r.bufCap - r.held
	if w < 0 {
		w = 0
	}
	return w
}

func (r *Receiver) readLoop(sub int) {
	buf := make([]byte, 2048)
	for {
		n, from, err := r.conns[sub].ReadFrom(buf)
		if err != nil {
			return
		}
		var h header
		if err := h.unmarshal(buf[:n]); err != nil {
			if errors.Is(err, errBadFrame) {
				r.corrupt.Add(1)
			}
			continue
		}
		if h.ConnID != r.connID {
			continue
		}
		switch h.Type {
		case typeData:
			payload := make([]byte, h.Plen)
			copy(payload, buf[headerSize:headerSize+int(h.Plen)])
			r.onData(sub, &h, payload, from)
		case typeFin:
			r.onFin(sub, &h, from)
		case typeProbe:
			r.ack(sub, h.Echo, -1, from)
		}
	}
}

func (r *Receiver) onData(sub int, h *header, payload []byte, from net.Addr) {
	r.mu.Lock()
	r.segsRecvd++

	// Shared-buffer admission first (§6): data beyond the buffer edge is
	// treated exactly like a network loss — no subflow state changes and
	// no ACK — so subflow-level retransmission recovers it once the
	// window reopens. Admitting the subflow sequence while dropping the
	// data would acknowledge a segment whose payload nobody will resend.
	if h.DataSeq >= r.dataNxt+r.bufCap {
		r.overflow++
		r.mu.Unlock()
		return
	}

	sack := int64(-1)
	seq := h.Seq
	switch {
	case seq == r.subRcvNxt[sub]:
		r.subRcvNxt[sub]++
		for {
			if _, ok := r.subOOO[sub][r.subRcvNxt[sub]]; !ok {
				break
			}
			delete(r.subOOO[sub], r.subRcvNxt[sub])
			r.subRcvNxt[sub]++
		}
	case seq > r.subRcvNxt[sub]:
		if _, dup := r.subOOO[sub][seq]; !dup {
			sack = seq // new SACK information only (RFC 6675)
		}
		r.subOOO[sub][seq] = struct{}{}
	}

	d := h.DataSeq
	if d < r.dataNxt {
		r.dupData++
	} else if _, dup := r.segs[d]; dup {
		r.dupData++
	} else {
		r.segs[d] = payload
		r.held++
		r.subflowRecvd[sub]++
		for {
			seg, ok := r.segs[r.dataNxt]
			if !ok {
				break
			}
			r.readBuf = append(r.readBuf, seg...)
			delete(r.segs, r.dataNxt)
			r.held--
			r.dataNxt++
		}
		r.cond.Broadcast()
	}
	echo := h.Echo
	r.mu.Unlock()
	r.ack(sub, echo, sack, from)
}

func (r *Receiver) onFin(sub int, h *header, from net.Addr) {
	r.mu.Lock()
	if r.finSeq < 0 || h.Aux < r.finSeq {
		r.finSeq = h.Aux
	}
	r.cond.Broadcast()
	echo := h.Echo
	r.mu.Unlock()
	r.ack(sub, echo, -1, from)
}

// ack emits the §6 acknowledgment: subflow cumulative ack, explicit data
// ack, shared-buffer window and echoed timestamp (+ optional SACK).
func (r *Receiver) ack(sub int, echo uint32, sack int64, to net.Addr) {
	r.mu.Lock()
	h := header{
		Type:    typeAck,
		Subflow: uint16(sub),
		ConnID:  r.connID,
		Seq:     r.subRcvNxt[sub],
		DataSeq: r.dataNxt,
		Window:  uint32(r.window()),
		Echo:    echo,
	}
	if sack >= 0 {
		h.Flags |= flagSack
		h.Aux = sack
	}
	conn := r.conns[sub]
	r.mu.Unlock()
	buf := make([]byte, headerSize)
	h.marshal(buf)
	sealFrame(buf)
	conn.WriteTo(buf, to) //nolint:errcheck // lossy path semantics
}

var _ io.Reader = (*Receiver)(nil)
