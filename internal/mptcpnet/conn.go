package mptcpnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mptcp/internal/cc"
	"mptcp/internal/core"
	"mptcp/internal/sched"
	"mptcp/internal/trace"
)

// Config parameterises a sender.
type Config struct {
	// Alg is the coupled congestion controller; defaults to &core.MPTCP{}.
	Alg core.Algorithm
	// Sched picks the subflow for each new segment (any scheduler from
	// internal/sched's registry); defaults to minRTT, the Linux MPTCP
	// default and this stack's historical behaviour.
	Sched sched.Scheduler
	// SchedOpts enables the §6 receive-buffer-blocking countermeasures
	// (opportunistic retransmission, subflow penalization); both default
	// off.
	SchedOpts sched.Options
	// MinRTO bounds the retransmission timer (default 200 ms).
	MinRTO time.Duration
	// Logf, if set, receives debug traces.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records the sender's protocol events (cwnd
	// changes, RTT samples, losses, retransmissions, scheduler picks, §6
	// countermeasures) into internal/trace ring buffers, stamped on the
	// tracer's clock — construct it with trace.WallNow for this wall-
	// clock stack. nil (the default) disables tracing at zero cost.
	Tracer *trace.Tracer
}

// Sender is the transmitting side of a multipath connection. It
// implements io.WriteCloser; Write blocks when both the send buffer and
// the network are full, providing backpressure.
type Sender struct {
	cfg    Config
	connID uint64
	subs   []*sendSubflow
	alg    core.Algorithm

	// Optional algorithm hooks (internal/cc's extended contract),
	// resolved once; nil when the algorithm does not implement them.
	// Invoked with mu held, like every other algorithm call.
	rttObs  cc.RTTObserver
	lossObs cc.LossObserver

	// Scheduler state (all used with mu held): the configured scheduler,
	// whether it duplicates segments across subflows (resolved once,
	// like the cc hooks), and a scratch View slice rebuilt per pick.
	sched     sched.Scheduler
	redundant bool
	views     []sched.View
	// dupNxt is the redundant scheduler's per-subflow replay frontier:
	// the next data sequence subflow i should (re)carry. Nil unless the
	// scheduler duplicates.
	dupNxt []int64

	// oppSeq remembers the last data sequence opportunistically
	// retransmitted, so each receive-buffer-blocking segment is re-sent
	// at most once (§6 countermeasures).
	oppSeq int64

	mu         sync.Mutex
	cond       *sync.Cond
	cc         []core.Subflow
	sendBuf    [][]byte // segments not yet assigned a data sequence
	segs       map[int64][]byte
	dataNxt    int64
	dataUna    int64
	edge       int64 // flow-control edge (dataAck + window)
	reinj      []int64
	closed     bool
	finSent    bool
	finRetries int
	err        error
	done       chan struct{} // closed once the stream is fully acknowledged
	doneClosed bool

	// Counters, guarded by mu; snapshotted coherently by Stats().
	segsSent  int64
	segsRetx  int64
	reinjects int64
	oppRetx   int64
	penalties int64

	// corrupt counts inbound frames dropped by the checksum; atomic (not
	// mu) because readLoop bumps it without taking the connection lock.
	corrupt atomic.Int64

	// tracer is nil unless Config.Tracer enabled tracing; traceID is the
	// sender's tracer-scoped connection ID.
	tracer  *trace.Tracer
	traceID int32
}

type sendSubflow struct {
	id     int
	conn   net.PacketConn
	remote net.Addr
	parent *Sender

	// sendQ feeds the subflow's single writer goroutine (writeLoop):
	// socket writes leave in exactly the order transmit queued them.
	// One goroutine per WriteTo (the previous design) let the scheduler
	// reorder in-subflow transmissions, manufacturing spurious dupSACKs
	// and fast retransmits on a loss-free path.
	sendQ chan []byte

	sndNxt, sndUna int64
	meta           map[int64]*sentSeg
	dupSacks       int64
	recover        int64
	inRec          bool

	srtt, rttvar, rto time.Duration
	timer             *time.Timer
	timerOn           bool
	start             time.Time

	// rtoStreak counts consecutive RTOs since this subflow last made
	// cumulative-ACK progress; when every subflow's streak reaches
	// maxRTOStreak the sender gives up. Guarded by the parent's mu.
	rtoStreak int

	// nextPenalty rate-limits receive-buffer penalization (§6) to once
	// per RTT on this subflow. Guarded by the parent's mu.
	nextPenalty time.Time

	rng *rand.Rand
}

// sentSeg is the sender-side scoreboard entry for one outstanding
// segment. RTT comes from the echoed timestamp (with retransmission-
// ambiguous samples suppressed via retx, Karn's rule), so no per-segment
// send time is kept.
type sentSeg struct {
	dataSeq int64
	sacked  bool
	retx    bool
}

// defaultWindow is the conservative flow-control edge assumed until the
// first ACK advertises the receiver's real shared-buffer window.
const defaultWindow = 64

// maxRTO bounds the retransmission timer (RFC 6298 §2.5 allows a maximum
// of at least 60 seconds; the simulator transport applies the same cap).
const maxRTO = 60 * time.Second

// maxFinRetries bounds the FIN retransmission chain when the peer never
// acknowledges: after this many (exponentially backed-off) attempts the
// sender gives up and releases its goroutines instead of rescheduling
// timers forever.
const maxFinRetries = 12

// maxRTOStreak is the data-level give-up bound: when EVERY subflow has
// suffered this many consecutive retransmission timeouts with no
// cumulative-ACK progress anywhere, the connection is dead end to end
// (all radios gone and staying gone) and the sender aborts with an error
// rather than retransmitting forever — the transfers-complete-or-fail
// invariant the chaos harness asserts. A single live subflow resets its
// own streak on every ACK, so no amount of chaos on the other paths
// trips this while one path still delivers. Eight doublings put the
// final wait at 256× the measured RTO — patient enough to ride out any
// plausible congestion event, yet bounded (seconds to about a minute)
// rather than the hours twelve doublings would cost.
const maxRTOStreak = 8

// sendQueueCap is the per-subflow writer queue depth, in segments.
const sendQueueCap = 512

// NewSender builds a sender whose subflow i talks over conns[i] to
// remotes[i]. The caller owns the PacketConns until Close.
func NewSender(connID uint64, conns []net.PacketConn, remotes []net.Addr, cfg Config) *Sender {
	if len(conns) == 0 || len(conns) != len(remotes) {
		panic("mptcpnet: need one remote per subflow conn")
	}
	if cfg.Alg == nil {
		cfg.Alg = &core.MPTCP{}
	}
	if cfg.Sched == nil {
		cfg.Sched = sched.MinRTT{}
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = 200 * time.Millisecond
	}
	s := &Sender{
		cfg:    cfg,
		connID: connID,
		alg:    cfg.Alg,
		sched:  cfg.Sched,
		segs:   make(map[int64][]byte),
		edge:   defaultWindow,
		done:   make(chan struct{}),
		oppSeq: -1,
		tracer: cfg.Tracer,
	}
	s.traceID = cfg.Tracer.ConnID() // nil-safe: -1 when tracing is off
	s.rttObs, _ = s.alg.(cc.RTTObserver)
	s.lossObs, _ = s.alg.(cc.LossObserver)
	if d, ok := s.sched.(sched.Duplicator); ok {
		s.redundant = d.Duplicates()
	}
	if s.redundant {
		s.dupNxt = make([]int64, len(conns))
	}
	s.views = make([]sched.View, len(conns))
	s.cond = sync.NewCond(&s.mu)
	now := time.Now()
	for i := range conns {
		sf := &sendSubflow{
			id:     i,
			conn:   conns[i],
			remote: remotes[i],
			parent: s,
			sendQ:  make(chan []byte, sendQueueCap),
			meta:   make(map[int64]*sentSeg),
			rto:    time.Second,
			start:  now,
			rng:    rand.New(rand.NewSource(int64(connID)*31 + int64(i))),
		}
		s.subs = append(s.subs, sf)
		s.cc = append(s.cc, core.Subflow{Cwnd: 2, SSThresh: 1 << 30})
	}
	for _, sf := range s.subs {
		go sf.readLoop()
		go sf.writeLoop()
	}
	return s
}

// Write queues p for transmission, blocking on flow control. It
// implements io.Writer over the data stream.
func (s *Sender) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("mptcpnet: write on closed sender")
	}
	n := 0
	for len(p) > 0 {
		seg := p
		if len(seg) > MaxPayload {
			seg = seg[:MaxPayload]
		}
		// Backpressure: cap the unassigned queue — but keep the network
		// pumped before blocking, or nothing would ever drain it.
		if len(s.sendBuf) > 1024 {
			s.pumpLocked()
			for len(s.sendBuf) > 1024 && s.err == nil && !s.closed {
				s.cond.Wait()
			}
		}
		if s.err != nil {
			return n, s.err
		}
		buf := make([]byte, len(seg))
		copy(buf, seg)
		s.sendBuf = append(s.sendBuf, buf)
		p = p[len(seg):]
		n += len(seg)
	}
	s.pumpLocked()
	return n, nil
}

// Close marks the end of the stream; the FIN is delivered reliably. It
// does not wait for acknowledgment — use Wait.
func (s *Sender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.pumpLocked()
	s.maybeFinishLocked()
	return nil
}

// Wait blocks until all data (and the FIN) has been acknowledged, or the
// timeout expires.
func (s *Sender) Wait(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.finishedLocked() {
		if s.err != nil {
			return s.err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mptcpnet: %d segments unacked at timeout", s.dataNxt-s.dataUna)
		}
		s.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		s.mu.Lock()
	}
	s.maybeFinishLocked()
	return nil
}

func (s *Sender) finishedLocked() bool {
	return s.closed && len(s.sendBuf) == 0 && s.dataUna >= s.dataNxt && s.finSent
}

// maybeFinishLocked closes done once the stream is fully acknowledged.
// The close releases the writer goroutines and terminates the FIN
// retransmission chain, which previously leaked timers past Close.
func (s *Sender) maybeFinishLocked() {
	if s.doneClosed || !s.finishedLocked() {
		return
	}
	s.doneClosed = true
	close(s.done)
	s.stopTimersLocked()
	s.cond.Broadcast()
}

// abortLocked records err, closes done and wakes everyone: the sender is
// giving up (e.g. the peer vanished and the FIN retry budget ran out, or
// a subflow socket was closed under us).
func (s *Sender) abortLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	if !s.doneClosed {
		s.doneClosed = true
		close(s.done)
	}
	s.stopTimersLocked()
	s.cond.Broadcast()
}

// stopTimersLocked cancels every subflow's retransmission timer so a
// finished or aborted sender stops rescheduling (onRTO and armTimer are
// additionally gated on doneClosed for the timer that is mid-flight).
func (s *Sender) stopTimersLocked() {
	for _, sf := range s.subs {
		if sf.timer != nil {
			sf.timer.Stop()
		}
		sf.timerOn = false
	}
}

// Cwnd returns subflow i's congestion window in segments.
func (s *Sender) Cwnd(i int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cc[i].Cwnd
}

// Stats is one coherent snapshot of the sender's counters, taken under
// a single lock acquisition so the fields are mutually consistent. It
// replaces the former multi-return Stats()/SchedStats()/Corrupted()
// trio, whose separate calls could interleave with progress and whose
// counters therefore never described one instant.
type Stats struct {
	SegsSent  int64 // data segments transmitted (incl. retransmissions)
	SegsRetx  int64 // subflow-level retransmissions
	Reinjects int64 // data reinjections onto other subflows after RTOs
	OppRetx   int64 // §6 opportunistic retransmissions of a blocking segment
	Penalties int64 // §6 penalization window halvings
	Corrupt   int64 // inbound frames dropped by the checksum
	// SubflowSent is the count of segments assigned to each subflow
	// (its subflow-sequence high-water mark), indexed by subflow ID.
	SubflowSent []int64
}

// Stats returns a coherent snapshot of every sender counter. OppRetx
// and Penalties stay 0 unless Config.SchedOpts enables the §6
// countermeasures.
func (s *Sender) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		SegsSent:    s.segsSent,
		SegsRetx:    s.segsRetx,
		Reinjects:   s.reinjects,
		OppRetx:     s.oppRetx,
		Penalties:   s.penalties,
		Corrupt:     s.corrupt.Load(),
		SubflowSent: make([]int64, len(s.subs)),
	}
	for i, sf := range s.subs {
		st.SubflowSent[i] = sf.sndNxt
	}
	return st
}

// popData returns the next data sequence to send, preferring
// reinjections; ok=false when nothing is sendable.
func (s *Sender) popDataLocked() (seq int64, fin bool, ok bool) {
	for len(s.reinj) > 0 {
		d := s.reinj[0]
		s.reinj = s.reinj[1:]
		if d >= s.dataUna {
			if _, have := s.segs[d]; have {
				return d, false, true
			}
		}
	}
	if len(s.sendBuf) == 0 {
		if s.closed && !s.finSent && s.dataNxt >= s.dataUna {
			return 0, true, true
		}
		return 0, false, false
	}
	if s.dataNxt >= s.edge {
		return 0, false, false // flow control
	}
	seq = s.dataNxt
	s.segs[seq] = s.sendBuf[0]
	s.sendBuf = s.sendBuf[1:]
	s.dataNxt++
	s.cond.Broadcast()
	return seq, false, true
}

// pumpLocked lets every subflow with window space transmit, in scheduler
// order — the paper's striping across subflows as windows open. When the
// shared receive buffer blocks further assignment, the §6
// countermeasures (if enabled) are applied before giving up.
func (s *Sender) pumpLocked() {
	if s.redundant {
		s.pumpRedundantLocked()
		return
	}
	for {
		sf := s.pickLocked()
		if sf == nil {
			return
		}
		seq, fin, ok := s.popDataLocked()
		if !ok {
			s.rbufCountermeasuresLocked()
			return
		}
		if fin {
			s.finSent = true
			s.sendFinLocked()
			return
		}
		sf.sendData(seq)
		if s.tracer != nil {
			s.tracer.SchedPick(s.traceID, int32(sf.id), seq)
		}
	}
}

// pumpRedundantLocked drives the redundant scheduler: every subflow
// keeps its own replay frontier (dupNxt) over the data stream and,
// window permitting, carries every data sequence itself — the subflow
// furthest ahead pulls new data, the others replay it. Frontiers skip
// data the receiver already holds (below dataUna), so a subflow that
// fell behind replays only the still-unacknowledged window, like
// Linux's mptcp_redundant; later copies count as duplicate data at the
// receiver and consume no shared buffer.
func (s *Sender) pumpRedundantLocked() {
	for progress := true; progress; {
		progress = false
		for i, sf := range s.subs {
			if !s.spaceLocked(sf) {
				continue
			}
			if s.dupNxt[i] < s.dataUna {
				s.dupNxt[i] = s.dataUna
			}
			if s.dupNxt[i] < s.dataNxt {
				if _, have := s.segs[s.dupNxt[i]]; have {
					sf.sendData(s.dupNxt[i])
				}
				s.dupNxt[i]++
				progress = true
				continue
			}
			seq, fin, ok := s.popDataLocked()
			if !ok {
				continue
			}
			if fin {
				s.finSent = true
				s.sendFinLocked()
				return
			}
			sf.sendData(seq)
			if seq+1 > s.dupNxt[i] {
				s.dupNxt[i] = seq + 1
			}
			progress = true
		}
	}
}

// spaceLocked reports whether sf may carry a new segment: window room
// and not in fast recovery.
func (s *Sender) spaceLocked(sf *sendSubflow) bool {
	w := int64(s.cc[sf.id].Cwnd)
	if w < 1 {
		w = 1
	}
	return sf.sndNxt-sf.sndUna < w && !sf.inRec
}

// pickLocked dispatches the subflow choice to the configured scheduler
// over a scratch View slice, or nil when the scheduler declines.
func (s *Sender) pickLocked() *sendSubflow {
	for i, sf := range s.subs {
		s.views[i] = sched.View{
			Cwnd:     s.cc[i].Cwnd,
			Inflight: sf.sndNxt - sf.sndUna,
			SRTT:     sf.srtt.Seconds(),
			Sendable: !sf.inRec,
			Sent:     sf.sndNxt,
		}
	}
	i := s.sched.Pick(sched.Ctx{Window: s.edge - s.dataNxt}, s.views)
	if i < 0 {
		return nil
	}
	return s.subs[i]
}

// rbufCountermeasuresLocked applies the paper's §6 remedies when the
// shared receive buffer has blocked assignment (data queued but
// dataNxt at the flow-control edge): opportunistically retransmit the
// blocking segment — the data-level cumulative ack, parked on a slow
// subflow — on the fastest other subflow with window space (once per
// blocking segment), and halve the blocking subflow's congestion
// window, at most once per its RTT. No-ops unless Config.SchedOpts
// enables the countermeasures.
func (s *Sender) rbufCountermeasuresLocked() {
	if !s.cfg.SchedOpts.Any() || len(s.subs) < 2 {
		return
	}
	if (len(s.sendBuf) == 0 && len(s.reinj) == 0) || s.dataNxt < s.edge {
		return // app-limited, not flow-control-blocked
	}
	if _, have := s.segs[s.dataUna]; !have {
		return // blocking segment already delivered; ACK in flight
	}
	// Gate before the blocker scan: while the connection stays blocked
	// on the same segment, every ACK re-enters here, and once the
	// opportunistic retransmission is spent and every penalty backoff is
	// still running there is nothing left to do this round trip.
	now := time.Now()
	needOpp := s.cfg.SchedOpts.OpportunisticRetx && s.oppSeq != s.dataUna
	needPen := false
	if s.cfg.SchedOpts.Penalize {
		for _, sf := range s.subs {
			if !now.Before(sf.nextPenalty) {
				needPen = true
				break
			}
		}
	}
	if !needOpp && !needPen {
		return
	}
	blocker := s.findBlockerLocked()
	if blocker == nil {
		return
	}
	if s.cfg.SchedOpts.Penalize && !now.Before(blocker.nextPenalty) {
		cw := &s.cc[blocker.id]
		if cw.Cwnd > 1 {
			cw.Cwnd /= 2
			if cw.Cwnd < 1 {
				cw.Cwnd = 1
			}
			cw.SSThresh = cw.Cwnd
			s.penalties++
			if s.tracer != nil {
				s.tracer.Penalty(s.traceID, int32(blocker.id), cw.Cwnd)
			}
		}
		d := blocker.srtt
		if d <= 0 {
			d = s.cfg.MinRTO
		}
		blocker.nextPenalty = now.Add(d)
	}
	if needOpp {
		for i, sf := range s.subs {
			s.views[i] = sched.View{
				Cwnd:     s.cc[i].Cwnd,
				Inflight: sf.sndNxt - sf.sndUna,
				SRTT:     sf.srtt.Seconds(),
				Sendable: !sf.inRec,
			}
		}
		if best := sched.PickMinRTT(s.views, blocker.id); best >= 0 {
			s.subs[best].sendData(s.dataUna)
			s.oppSeq = s.dataUna
			s.oppRetx++
			if s.tracer != nil {
				s.tracer.OppRetx(s.traceID, int32(best), s.dataUna)
			}
		}
	}
}

// findBlockerLocked returns the subflow holding the un-delivered
// segment the receive window is stuck on (dataSeq == dataUna,
// outstanding and not SACKed), or nil.
func (s *Sender) findBlockerLocked() *sendSubflow {
	for _, sf := range s.subs {
		for _, m := range sf.meta {
			if !m.sacked && m.dataSeq == s.dataUna {
				return sf
			}
		}
	}
	return nil
}

func (s *Sender) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// --- subflow send machinery (all called with s.mu held unless noted) ---

func (sf *sendSubflow) elapsedMicros() uint32 {
	return uint32(time.Since(sf.start) / time.Microsecond)
}

func (sf *sendSubflow) sendData(dataSeq int64) {
	s := sf.parent
	seq := sf.sndNxt
	sf.sndNxt++
	sf.meta[seq] = &sentSeg{dataSeq: dataSeq}
	sf.transmit(seq, false)
	s.segsSent++
}

func (sf *sendSubflow) transmit(seq int64, retx bool) {
	s := sf.parent
	m := sf.meta[seq]
	if m == nil {
		return
	}
	payload := s.segs[m.dataSeq]
	h := header{
		Type:    typeData,
		Subflow: uint16(sf.id),
		ConnID:  s.connID,
		Seq:     seq,
		DataSeq: m.dataSeq,
		Echo:    sf.elapsedMicros(),
		Plen:    uint16(len(payload)),
	}
	buf := make([]byte, headerSize+len(payload))
	h.marshal(buf)
	copy(buf[headerSize:], payload)
	sealFrame(buf)
	m.retx = m.retx || retx
	if retx {
		s.segsRetx++
		if s.tracer != nil {
			s.tracer.Retx(s.traceID, int32(sf.id), seq)
		}
	}
	// Arm only if no timer is pending: the RTO must track the oldest
	// outstanding segment, not the most recent transmission.
	if !sf.timerOn {
		sf.armTimer()
	}
	sf.queueWrite(buf)
}

// queueWrite hands buf to the subflow's writer goroutine, preserving the
// transmission order decided under the lock, and reports whether the
// segment was queued. Called with s.mu held, so it must never block: if
// the writer has fallen sendQueueCap segments behind (a stalled socket),
// the segment is dropped exactly as a congested path would drop it —
// retransmission recovers it — rather than wedging every lock acquirer
// (including Wait's deadline check) behind a dead PacketConn.
func (sf *sendSubflow) queueWrite(buf []byte) bool {
	select {
	case sf.sendQ <- buf:
		return true
	default:
		sf.parent.logf("sf%d writer backlogged, dropping segment", sf.id)
		return false
	}
}

// writeLoop is the subflow's single writer: it drains the FIFO send
// queue so segments hit the socket in transmit order, and exits once the
// connection is done — flushing anything queued first, because the final
// FIN is queued in the same critical section that closes done and must
// still reach the wire.
func (sf *sendSubflow) writeLoop() {
	for {
		select {
		case buf := <-sf.sendQ:
			sf.conn.WriteTo(buf, sf.remote) //nolint:errcheck // lossy path semantics
		case <-sf.parent.done:
			for {
				select {
				case buf := <-sf.sendQ:
					sf.conn.WriteTo(buf, sf.remote) //nolint:errcheck
				default:
					return
				}
			}
		}
	}
}

// sendFinLocked broadcasts the FIN on every subflow and arms the retry
// chain. Broadcasting matters: the FIN is the one segment whose silent
// loss the data machinery cannot recover (the receiver would never see
// EOF), the retry chain stops as soon as the data stream is fully
// acknowledged, and a FIN bound to a single subflow dies with that
// path. Sending it on all subflows makes EOF delivery as reliable as
// the best live path; the receiver treats repeated FINs idempotently.
func (s *Sender) sendFinLocked() {
	for _, sf := range s.subs {
		sf.transmitFin()
	}
	// Retransmit the FIN (with exponential backoff) until everything is
	// acked. The chain is gated on done so it terminates as soon as the
	// stream completes, and a retry budget stops it rescheduling forever
	// when the peer is gone.
	delay := s.cfg.MinRTO << uint(s.finRetries)
	if delay > maxRTO || delay <= 0 {
		delay = maxRTO
	}
	s.finRetries++
	time.AfterFunc(delay, func() {
		select {
		case <-s.done:
			return
		default:
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.doneClosed || s.finishedLockedFin() {
			s.maybeFinishLocked()
			return
		}
		if s.finRetries > maxFinRetries {
			s.abortLocked(errors.New("mptcpnet: FIN unacknowledged after retries, giving up"))
			return
		}
		s.sendFinLocked()
	})
}

// transmitFin puts one FIN on this subflow's wire.
func (sf *sendSubflow) transmitFin() {
	s := sf.parent
	h := header{
		Type:    typeFin,
		Subflow: uint16(sf.id),
		ConnID:  s.connID,
		Aux:     s.dataNxt,
		Echo:    sf.elapsedMicros(),
	}
	buf := make([]byte, headerSize)
	h.marshal(buf)
	sealFrame(buf)
	if !sf.queueWrite(buf) {
		// The writer is backlogged or already gone: bypass the queue
		// rather than drop the FIN (it carries no sequence-space
		// ordering constraint). Bounded: at most one such write per
		// subflow per retry tick.
		go sf.conn.WriteTo(buf, sf.remote) //nolint:errcheck // lossy path semantics
	}
}

func (s *Sender) finishedLockedFin() bool {
	return s.dataUna >= s.dataNxt && len(s.sendBuf) == 0
}

// readLoop consumes ACKs for one subflow. Runs unlocked; state updates
// take the connection lock.
func (sf *sendSubflow) readLoop() {
	buf := make([]byte, 2048)
	// A closed subflow socket means no ACK can ever arrive here again: if
	// the stream is not already finished, abort so the writer goroutine,
	// the FIN chain and the RTO timers are all released rather than
	// leaked with an abandoned sender.
	defer func() {
		s := sf.parent
		s.mu.Lock()
		if !s.doneClosed {
			s.abortLocked(fmt.Errorf("mptcpnet: subflow %d socket closed", sf.id))
		}
		s.mu.Unlock()
	}()
	for {
		n, _, err := sf.conn.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		var h header
		if err := h.unmarshal(buf[:n]); err != nil {
			if errors.Is(err, errBadFrame) {
				sf.parent.corrupt.Add(1)
			}
			continue
		}
		if h.ConnID != sf.parent.connID {
			continue
		}
		if h.Type != typeAck {
			continue
		}
		sf.parent.handleAck(sf, &h)
	}
}

func (s *Sender) handleAck(sf *sendSubflow, h *header) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Data-level bookkeeping (§6: explicit data ack + shared window).
	if h.DataSeq > s.dataUna {
		for d := s.dataUna; d < h.DataSeq; d++ {
			delete(s.segs, d)
		}
		s.dataUna = h.DataSeq
	}
	if e := h.DataSeq + int64(h.Window); e > s.edge {
		s.edge = e
	}

	// SACK scoreboard.
	newInfo := false
	if h.Flags&flagSack != 0 {
		if m := sf.meta[h.Aux]; m != nil && !m.sacked {
			m.sacked = true
			newInfo = true
		}
	}

	ack := h.Seq
	switch {
	case ack > sf.sndUna:
		sf.rtoStreak = 0
		newly := ack - sf.sndUna
		// Karn's rule: an ACK that covers a retransmitted segment is
		// ambiguous (it may acknowledge either transmission), so it must
		// not feed the RTT estimator — an ambiguous sample corrupts
		// srtt/RTO and flows into OnRTTSample, poisoning delay-based
		// algorithms (wVegas baseRTT). The simulator transport suppresses
		// these via per-packet timestamps; here we check the retx marks.
		retxAcked := false
		for seq := sf.sndUna; seq < ack; seq++ {
			if m := sf.meta[seq]; m != nil && m.retx {
				retxAcked = true
			}
			delete(sf.meta, seq)
		}
		sf.sndUna = ack
		if !retxAcked {
			sf.sampleRTT(time.Duration(sf.elapsedMicros()-h.Echo) * time.Microsecond)
		}
		cc := &s.cc[sf.id]
		if sf.inRec && ack >= sf.recover {
			sf.inRec = false
			sf.dupSacks = 0
			if s.tracer != nil {
				s.tracer.SubflowState(s.traceID, int32(sf.id), "open")
			}
		}
		if !sf.inRec {
			for i := int64(0); i < newly; i++ {
				if cc.Cwnd < cc.SSThresh {
					cc.Cwnd++
				} else {
					cc.Cwnd += s.alg.Increase(s.cc, sf.id)
				}
			}
			if s.tracer != nil {
				s.tracer.CwndChange(s.traceID, int32(sf.id), cc.Cwnd)
			}
		}
		sf.armTimer()
	case ack == sf.sndUna && newInfo && !sf.inRec:
		sf.dupSacks++
		if sf.dupSacks >= 3 {
			s.fastRetransmit(sf)
		}
	}
	s.pumpLocked()
	s.maybeFinishLocked()
}

// allSubflowsTimedOutLocked reports whether every subflow has hit the
// consecutive-RTO give-up bound — the all-paths-dead terminal state.
func (s *Sender) allSubflowsTimedOutLocked() bool {
	for _, sf := range s.subs {
		if sf.rtoStreak < maxRTOStreak {
			return false
		}
	}
	return true
}

// fastRetransmit halves the window once and retransmits all unsacked
// segments below the highest sacked sequence.
func (s *Sender) fastRetransmit(sf *sendSubflow) {
	cc := &s.cc[sf.id]
	if s.lossObs != nil {
		s.lossObs.OnLoss(s.cc, sf.id)
	}
	cc.Cwnd = s.alg.Decrease(s.cc, sf.id)
	cc.SSThresh = cc.Cwnd
	if s.tracer != nil {
		s.tracer.Loss(s.traceID, int32(sf.id), "fast", sf.sndUna)
		s.tracer.CwndChange(s.traceID, int32(sf.id), cc.Cwnd)
		s.tracer.SubflowState(s.traceID, int32(sf.id), "recovery")
	}
	sf.inRec = true
	sf.recover = sf.sndNxt
	sf.dupSacks = 0
	high := int64(-1)
	for seq, m := range sf.meta {
		if m.sacked && seq > high {
			high = seq
		}
	}
	for seq := sf.sndUna; seq < high; seq++ {
		if m := sf.meta[seq]; m != nil && !m.sacked && !m.retx {
			sf.transmit(seq, true)
		}
	}
	s.logf("sf%d fast retransmit, cwnd=%.1f", sf.id, cc.Cwnd)
}

// onRTO collapses the window, retransmits the front and reinjects
// outstanding data onto the other subflows.
func (sf *sendSubflow) onRTO() {
	s := sf.parent
	s.mu.Lock()
	defer s.mu.Unlock()
	sf.timerOn = false
	if s.doneClosed || sf.sndNxt == sf.sndUna {
		return // finished/aborted senders must not rearm
	}
	sf.rtoStreak++
	if s.allSubflowsTimedOutLocked() {
		s.abortLocked(errors.New("mptcpnet: every subflow timed out repeatedly with no progress, giving up"))
		return
	}
	cc := &s.cc[sf.id]
	if s.lossObs != nil {
		s.lossObs.OnLoss(s.cc, sf.id)
	}
	cc.SSThresh = s.alg.Decrease(s.cc, sf.id)
	if cc.SSThresh < 2 {
		cc.SSThresh = 2
	}
	cc.Cwnd = 1
	sf.inRec = false
	sf.dupSacks = 0
	if s.tracer != nil {
		s.tracer.Loss(s.traceID, int32(sf.id), "rto", sf.sndUna)
		s.tracer.CwndChange(s.traceID, int32(sf.id), cc.Cwnd)
	}
	for seq, m := range sf.meta {
		if m.sacked || seq < sf.sndUna {
			continue
		}
		// Earlier retransmissions are presumed lost too; clearing the
		// mark lets the next fast recovery retransmit them again.
		m.retx = false
		if len(s.subs) > 1 {
			s.reinj = append(s.reinj, m.dataSeq)
			s.reinjects++
		}
	}
	sf.transmit(sf.sndUna, true)
	sf.rto *= 2
	if sf.rto > maxRTO {
		sf.rto = maxRTO
	}
	sf.armTimer()
	s.pumpLocked()
}

func (sf *sendSubflow) sampleRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if sf.srtt == 0 {
		sf.srtt, sf.rttvar = rtt, rtt/2
	} else {
		diff := sf.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		sf.rttvar = (3*sf.rttvar + diff) / 4
		sf.srtt = (7*sf.srtt + rtt) / 8
	}
	sf.parent.cc[sf.id].SRTT = sf.srtt.Seconds()
	if obs := sf.parent.rttObs; obs != nil {
		obs.OnRTTSample(sf.parent.cc, sf.id, rtt.Seconds())
	}
	if tr := sf.parent.tracer; tr != nil {
		tr.RTTSample(sf.parent.traceID, int32(sf.id), rtt.Seconds())
	}
	rto := sf.srtt + 4*sf.rttvar
	if rto < sf.parent.cfg.MinRTO {
		rto = sf.parent.cfg.MinRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	sf.rto = rto
}

func (sf *sendSubflow) armTimer() {
	if sf.timer != nil {
		sf.timer.Stop()
	}
	sf.timerOn = false
	if sf.parent.doneClosed || sf.sndNxt == sf.sndUna {
		return
	}
	sf.timerOn = true
	sf.timer = time.AfterFunc(sf.rto, sf.onRTO)
}

var _ io.WriteCloser = (*Sender)(nil)
