// Package mptcpnet is a userspace Multipath TCP implementation over UDP,
// realising the protocol design of §6 of the paper with real sockets and
// goroutines:
//
//   - one UDP subflow per path, each with its own sequence space and
//     RFC 6298-style retransmission timer;
//   - a connection-level data sequence number on every data segment and
//     an explicit data acknowledgment on every ACK (§6 shows inferring
//     data ACKs from subflow ACKs is unsound);
//   - a single shared receive buffer whose window is advertised relative
//     to the data-level cumulative ACK;
//   - data-level reinjection after a subflow timeout, so a dead path
//     cannot strand the stream;
//   - coupled congestion control from internal/core — the identical
//     algorithm code that drives the packet-level simulator;
//   - pluggable packet scheduling from internal/sched (minRTT by
//     default, the Linux MPTCP choice) plus the §6 receive-buffer-
//     blocking countermeasures — opportunistic retransmission and
//     subflow penalization — as composable Config options, shared with
//     the simulator stack.
//
// The package substitutes for the paper's Linux kernel implementation:
// real multihomed interfaces are replaced by multiple UDP 5-tuples
// (optionally shaped by the Emu path emulator), which is exactly the kind
// of path diversity the paper exploits via ECMP in §7.
package mptcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Segment types.
const (
	typeData  = 1
	typeAck   = 2
	typeSyn   = 3 // subflow join: carries connID and subflow index
	typeFin   = 4 // end of data stream (carries final dataSeq)
	typeProbe = 5 // zero-window probe
)

const (
	flagSack = 1 << 0
	flagFin  = 1 << 1
)

// headerSize is the fixed wire header length in bytes.
const headerSize = 46

// MaxPayload is the data payload carried per segment. It is chosen so
// header+payload fits comfortably in a 1500-byte MTU over UDP/IP.
const MaxPayload = 1200

// header is the wire header shared by all segment types.
//
//	0   type(1) flags(1) subflow(2)
//	4   connID(8)
//	12  seq(8)      subflow sequence (DATA) / cumulative subflow ack (ACK)
//	20  dataSeq(8)  data sequence (DATA) / cumulative data ack (ACK)
//	28  aux(8)      SACK seq (ACK) / final data seq (FIN)
//	36  window(4)   receive window in segments (ACK)
//	40  echo(4)     truncated timestamp echo, microseconds
//	44  plen(2)
type header struct {
	Type    byte
	Flags   byte
	Subflow uint16
	ConnID  uint64
	Seq     int64
	DataSeq int64
	Aux     int64
	Window  uint32
	Echo    uint32
	Plen    uint16
}

var errShortPacket = errors.New("mptcpnet: short packet")

func (h *header) marshal(buf []byte) []byte {
	buf = buf[:headerSize]
	buf[0] = h.Type
	buf[1] = h.Flags
	binary.BigEndian.PutUint16(buf[2:], h.Subflow)
	binary.BigEndian.PutUint64(buf[4:], h.ConnID)
	binary.BigEndian.PutUint64(buf[12:], uint64(h.Seq))
	binary.BigEndian.PutUint64(buf[20:], uint64(h.DataSeq))
	binary.BigEndian.PutUint64(buf[28:], uint64(h.Aux))
	binary.BigEndian.PutUint32(buf[36:], h.Window)
	binary.BigEndian.PutUint32(buf[40:], h.Echo)
	binary.BigEndian.PutUint16(buf[44:], h.Plen)
	return buf
}

func (h *header) unmarshal(buf []byte) error {
	if len(buf) < headerSize {
		return errShortPacket
	}
	h.Type = buf[0]
	h.Flags = buf[1]
	h.Subflow = binary.BigEndian.Uint16(buf[2:])
	h.ConnID = binary.BigEndian.Uint64(buf[4:])
	h.Seq = int64(binary.BigEndian.Uint64(buf[12:]))
	h.DataSeq = int64(binary.BigEndian.Uint64(buf[20:]))
	h.Aux = int64(binary.BigEndian.Uint64(buf[28:]))
	h.Window = binary.BigEndian.Uint32(buf[36:])
	h.Echo = binary.BigEndian.Uint32(buf[40:])
	h.Plen = binary.BigEndian.Uint16(buf[44:])
	if int(h.Plen) > len(buf)-headerSize {
		return fmt.Errorf("mptcpnet: payload length %d exceeds packet", h.Plen)
	}
	return nil
}
