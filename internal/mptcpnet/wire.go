// Package mptcpnet is a userspace Multipath TCP implementation over UDP,
// realising the protocol design of §6 of the paper with real sockets and
// goroutines:
//
//   - one UDP subflow per path, each with its own sequence space and
//     RFC 6298-style retransmission timer;
//   - a connection-level data sequence number on every data segment and
//     an explicit data acknowledgment on every ACK (§6 shows inferring
//     data ACKs from subflow ACKs is unsound);
//   - a single shared receive buffer whose window is advertised relative
//     to the data-level cumulative ACK;
//   - data-level reinjection after a subflow timeout, so a dead path
//     cannot strand the stream;
//   - coupled congestion control from internal/core — the identical
//     algorithm code that drives the packet-level simulator;
//   - pluggable packet scheduling from internal/sched (minRTT by
//     default, the Linux MPTCP choice) plus the §6 receive-buffer-
//     blocking countermeasures — opportunistic retransmission and
//     subflow penalization — as composable Config options, shared with
//     the simulator stack.
//
// The package substitutes for the paper's Linux kernel implementation:
// real multihomed interfaces are replaced by multiple UDP 5-tuples
// (optionally shaped by the Emu path emulator), which is exactly the kind
// of path diversity the paper exploits via ECMP in §7.
package mptcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment types.
const (
	typeData  = 1
	typeAck   = 2
	typeSyn   = 3 // subflow join: carries connID and subflow index
	typeFin   = 4 // end of data stream (carries final dataSeq)
	typeProbe = 5 // zero-window probe
)

const (
	flagSack = 1 << 0
	flagFin  = 1 << 1
)

// headerSize is the fixed wire header length in bytes.
const headerSize = 50

// sumOffset is the byte offset of the frame checksum within the header.
const sumOffset = 46

// MaxPayload is the data payload carried per segment. It is chosen so
// header+payload fits comfortably in a 1500-byte MTU over UDP/IP.
const MaxPayload = 1200

// header is the wire header shared by all segment types.
//
//	0   type(1) flags(1) subflow(2)
//	4   connID(8)
//	12  seq(8)      subflow sequence (DATA) / cumulative subflow ack (ACK)
//	20  dataSeq(8)  data sequence (DATA) / cumulative data ack (ACK)
//	28  aux(8)      SACK seq (ACK) / final data seq (FIN)
//	36  window(4)   receive window in segments (ACK)
//	40  echo(4)     truncated timestamp echo, microseconds
//	44  plen(2)
//	46  sum(4)      frame checksum (CRC-32C over the whole datagram
//	                with this field zeroed), stamped by sealFrame
type header struct {
	Type    byte
	Flags   byte
	Subflow uint16
	ConnID  uint64
	Seq     int64
	DataSeq int64
	Aux     int64
	Window  uint32
	Echo    uint32
	Plen    uint16
}

var (
	errShortPacket = errors.New("mptcpnet: short packet")
	errBadFrame    = errors.New("mptcpnet: frame checksum mismatch")
)

// crcTable backs the frame checksum. Castagnoli rather than IEEE: it has
// hardware support on amd64/arm64, and UDP's own 16-bit checksum is weak
// enough (and optional on IPv4) that corrupted datagrams do reach us.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameSum computes the frame checksum over the whole datagram with the
// checksum field treated as zero.
func frameSum(buf []byte) uint32 {
	var zero [4]byte
	sum := crc32.Update(0, crcTable, buf[:sumOffset])
	sum = crc32.Update(sum, crcTable, zero[:])
	return crc32.Update(sum, crcTable, buf[headerSize:])
}

// sealFrame stamps the frame checksum into a fully assembled datagram
// (marshalled header plus payload). Every frame must be sealed after its
// payload is in place and before it hits the wire; unmarshal rejects
// unsealed or damaged frames.
func sealFrame(buf []byte) {
	binary.BigEndian.PutUint32(buf[sumOffset:], frameSum(buf))
}

func (h *header) marshal(buf []byte) []byte {
	buf = buf[:headerSize]
	buf[0] = h.Type
	buf[1] = h.Flags
	binary.BigEndian.PutUint16(buf[2:], h.Subflow)
	binary.BigEndian.PutUint64(buf[4:], h.ConnID)
	binary.BigEndian.PutUint64(buf[12:], uint64(h.Seq))
	binary.BigEndian.PutUint64(buf[20:], uint64(h.DataSeq))
	binary.BigEndian.PutUint64(buf[28:], uint64(h.Aux))
	binary.BigEndian.PutUint32(buf[36:], h.Window)
	binary.BigEndian.PutUint32(buf[40:], h.Echo)
	binary.BigEndian.PutUint16(buf[44:], h.Plen)
	// The checksum field starts zeroed (buffers may be recycled); the
	// caller seals the frame once the payload is appended.
	binary.BigEndian.PutUint32(buf[sumOffset:], 0)
	return buf
}

func (h *header) unmarshal(buf []byte) error {
	if len(buf) < headerSize {
		return errShortPacket
	}
	// Verify before parsing: a frame damaged in flight (the chaos layer's
	// bit-corruption, or a real-world flipped bit surviving UDP's weak
	// checksum) must be dropped, not decoded into garbage sequence state.
	if binary.BigEndian.Uint32(buf[sumOffset:]) != frameSum(buf) {
		return errBadFrame
	}
	h.Type = buf[0]
	h.Flags = buf[1]
	h.Subflow = binary.BigEndian.Uint16(buf[2:])
	h.ConnID = binary.BigEndian.Uint64(buf[4:])
	h.Seq = int64(binary.BigEndian.Uint64(buf[12:]))
	h.DataSeq = int64(binary.BigEndian.Uint64(buf[20:]))
	h.Aux = int64(binary.BigEndian.Uint64(buf[28:]))
	h.Window = binary.BigEndian.Uint32(buf[36:])
	h.Echo = binary.BigEndian.Uint32(buf[40:])
	h.Plen = binary.BigEndian.Uint16(buf[44:])
	if int(h.Plen) > len(buf)-headerSize {
		return fmt.Errorf("mptcpnet: payload length %d exceeds packet", h.Plen)
	}
	return nil
}
