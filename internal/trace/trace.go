// Package trace is the structured, time-aware protocol tracer behind
// the repo's time-resolved evaluation: the paper's §4–§6 figures are
// built from per-subflow trajectories of cwnd, srtt and loss/recovery
// events over time, and this package records exactly those trajectories
// from both endpoint stacks (internal/transport on simulated time,
// internal/mptcpnet on wall clock) and from the netsim links.
//
// # Design
//
// Typed events (CwndChange, RTTSample, Loss, Retx, OppRetx, Penalty,
// SchedPick, LinkStateChange, SubflowState) are recorded by value into
// per-connection ring buffers and flushed on demand as JSONL. Two
// contracts shape the implementation:
//
//   - Zero overhead when disabled. A nil *Tracer is a valid tracer:
//     every method is nil-receiver-safe and returns immediately, and
//     the hot paths of the endpoint stacks guard their trace calls with
//     a single pointer test. With tracing off, the packet-hop and
//     timer-rearm paths still run at 0 allocs/op and simulations are
//     bit-identical to a build without the tracer — the tracer never
//     touches the world's random source.
//
//   - Deterministic output when enabled. Events are stamped with the
//     tracer's clock (simulated nanoseconds via SimNow, or wall-clock
//     nanoseconds since start via WallNow) and a per-tracer sequence
//     number. Flush writes connections in ascending trace-connection-ID
//     order and each connection's events in record order, with all
//     numbers formatted by strconv — so a simulated run's trace bytes
//     are a pure function of the seed. Connection IDs are allocated per
//     tracer (ConnID), not from any global counter, which keeps traces
//     byte-identical at any experiment-runner parallelism.
//
// Rings bound memory: each connection keeps the most recent Cap events;
// older events are dropped and counted, and the flush reports the drop
// count in that connection's meta line so truncation is never silent.
package trace

import (
	"io"
	"sync"
	"time"

	"mptcp/internal/sim"
)

// Kind identifies the type of one trace event.
type Kind uint8

const (
	// KindCwnd records a congestion-window change: V is the new cwnd in
	// packets. Emitted after ACK-clocked growth, loss-event decreases
	// and receive-buffer penalization.
	KindCwnd Kind = iota
	// KindRTT records a raw RTT sample (the same sample fed to the cc
	// OnRTTSample hook): V is the RTT in seconds.
	KindRTT
	// KindLoss records a loss event (the same event fed to the cc
	// OnLoss hook): Label is "fast" (fast-retransmit entry) or "rto",
	// Seq the subflow sequence at the front of the loss.
	KindLoss
	// KindRetx records one subflow-level retransmission: Seq is the
	// retransmitted subflow sequence number.
	KindRetx
	// KindOppRetx records a §6 opportunistic retransmission: Seq is the
	// blocking data sequence re-sent on this (faster) subflow.
	KindOppRetx
	// KindPenalty records a §6 subflow penalization: V is the penalized
	// subflow's cwnd after halving.
	KindPenalty
	// KindSchedPick records a scheduler decision: the subflow chosen to
	// carry new data; Seq is the data sequence assigned.
	KindSchedPick
	// KindLinkState records a netsim link state change: Name is the
	// link name, Label the change ("down", "up", "rate", "delay",
	// "loss") and V the new value (Mb/s, seconds, or loss probability;
	// 0 for down/up).
	KindLinkState
	// KindSubflowState records a subflow loss-recovery state
	// transition: Label is "open", "recovery" or "repair".
	KindSubflowState
	// KindMeta is emitted by Flush itself, never recorded: the
	// per-connection header line carrying the tracer label and the
	// ring's drop count.
	KindMeta
)

var kindNames = [...]string{
	KindCwnd:         "cwnd",
	KindRTT:          "rtt",
	KindLoss:         "loss",
	KindRetx:         "retx",
	KindOppRetx:      "oppretx",
	KindPenalty:      "penalty",
	KindSchedPick:    "sched",
	KindLinkState:    "link",
	KindSubflowState: "state",
	KindMeta:         "meta",
}

// String returns the JSONL "ev" tag of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Event is one trace record, stored by value in a connection's ring.
// Which fields are meaningful depends on Kind (see the Kind constants);
// unset numeric fields are omitted from the JSONL encoding.
type Event struct {
	// T is the event time in nanoseconds on the tracer's clock
	// (simulated time for the simulator stacks, time since tracer
	// creation for mptcpnet).
	T int64
	// Kind tags the event.
	Kind Kind
	// Conn is the tracer-scoped connection ID (see ConnID); -1 for
	// connection-less events (link state changes).
	Conn int32
	// Sub is the subflow index within the connection; -1 when the event
	// is not subflow-scoped.
	Sub int32
	// Seq is a sequence number payload (subflow seq for Retx/Loss, data
	// seq for SchedPick/OppRetx).
	Seq int64
	// V and W are numeric payloads (cwnd, rtt seconds, link values).
	V, W float64
	// Name labels link events with the link name.
	Name string
	// Label carries a short discriminator ("fast"/"rto", "down"/"up"/
	// "rate"/"delay"/"loss", "open"/"recovery"/"repair").
	Label string
}

// connRing is one connection's bounded event history.
type connRing struct {
	ev      []Event
	start   int   // index of oldest live event
	n       int   // live events
	dropped int64 // events overwritten since the last flush
}

func (r *connRing) push(ev Event) {
	if r.n < len(r.ev) {
		r.ev[(r.start+r.n)%len(r.ev)] = ev
		r.n++
		return
	}
	r.ev[r.start] = ev
	r.start = (r.start + 1) % len(r.ev)
	r.dropped++
}

// DefaultCap is the per-connection ring capacity used when New is given
// a non-positive capacity: enough for the full trajectory of a typical
// experiment cell, small enough that a grid of cells stays in memory.
const DefaultCap = 1 << 14

// Tracer records typed events into per-connection rings. The zero value
// is not usable; construct with New. A nil *Tracer is valid and inert:
// all methods return immediately, which is the disabled mode both
// endpoint stacks run in by default.
//
// Tracer is safe for concurrent use (mptcpnet records from several
// goroutines); the simulator stacks are single-threaded per world, so
// the mutex is uncontended there.
type Tracer struct {
	now   func() int64
	label string

	mu       sync.Mutex
	cap      int
	rings    []*connRing // indexed by trace connection ID
	links    connRing    // connection-less events (link state)
	nextConn int32
}

// New returns a tracer whose events are stamped by now (use SimNow or
// WallNow) with per-connection ring capacity cap (DefaultCap if <= 0).
func New(cap int, now func() int64) *Tracer {
	if cap <= 0 {
		cap = DefaultCap
	}
	t := &Tracer{now: now, cap: cap}
	t.links.ev = make([]Event, cap)
	return t
}

// SimNow adapts a simulator's clock: events are stamped with simulated
// nanoseconds, so trace timing is exactly reproducible.
func SimNow(s *sim.Simulator) func() int64 {
	return func() int64 { return int64(s.Now()) }
}

// WallNow returns a wall-clock source counting nanoseconds since start;
// the real-socket stack (mptcpnet) traces on it.
func WallNow(start time.Time) func() int64 {
	return func() int64 { return int64(time.Since(start)) }
}

// SetLabel attaches a label (e.g. the grid-cell identity
// "MPTCP/torus/flap") that Flush emits in every connection's meta line,
// so traces from many cells concatenated into one file stay
// attributable.
func (t *Tracer) SetLabel(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// ConnID allocates the next tracer-scoped connection ID. Both endpoint
// stacks call it once per traced connection at construction; IDs are
// dense and deterministic because connection construction order within
// one world is deterministic.
func (t *Tracer) ConnID() int32 {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextConn
	t.nextConn++
	t.rings = append(t.rings, &connRing{ev: make([]Event, t.cap)})
	return id
}

// Record appends ev to the owning ring, stamping ev.T from the tracer's
// clock. Events for unknown connection IDs (never allocated via ConnID)
// are dropped; Conn < 0 routes to the connection-less (link) ring.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	ev.T = t.now()
	t.mu.Lock()
	if ev.Conn < 0 {
		t.links.push(ev)
	} else if int(ev.Conn) < len(t.rings) {
		t.rings[ev.Conn].push(ev)
	}
	t.mu.Unlock()
}

// --- typed helpers: one per event kind, all nil-safe ------------------

// CwndChange records subflow sub of conn moving to cwnd packets.
func (t *Tracer) CwndChange(conn, sub int32, cwnd float64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindCwnd, Conn: conn, Sub: sub, V: cwnd})
}

// RTTSample records a raw RTT sample (seconds) on subflow sub.
func (t *Tracer) RTTSample(conn, sub int32, rttSec float64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindRTT, Conn: conn, Sub: sub, V: rttSec})
}

// Loss records a loss event; label is "fast" or "rto", seq the subflow
// sequence at the front of the loss.
func (t *Tracer) Loss(conn, sub int32, label string, seq int64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindLoss, Conn: conn, Sub: sub, Label: label, Seq: seq})
}

// Retx records a subflow-level retransmission of seq.
func (t *Tracer) Retx(conn, sub int32, seq int64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindRetx, Conn: conn, Sub: sub, Seq: seq})
}

// OppRetx records an opportunistic retransmission of dataSeq on sub.
func (t *Tracer) OppRetx(conn, sub int32, dataSeq int64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindOppRetx, Conn: conn, Sub: sub, Seq: dataSeq})
}

// Penalty records a receive-buffer penalization of sub; cwnd is the
// window after halving.
func (t *Tracer) Penalty(conn, sub int32, cwnd float64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindPenalty, Conn: conn, Sub: sub, V: cwnd})
}

// SchedPick records the scheduler assigning dataSeq to sub.
func (t *Tracer) SchedPick(conn, sub int32, dataSeq int64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindSchedPick, Conn: conn, Sub: sub, Seq: dataSeq})
}

// SubflowState records a loss-recovery state transition on sub: "open",
// "recovery" or "repair".
func (t *Tracer) SubflowState(conn, sub int32, state string) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindSubflowState, Conn: conn, Sub: sub, Label: state})
}

// LinkEvent records a link state change; it implements the structural
// contract netsim.Link dispatches through (netsim defines the interface
// so the two packages stay import-cycle-free). what is "down", "up",
// "rate", "delay" or "loss"; v the new value where meaningful.
func (t *Tracer) LinkEvent(name, what string, v float64) {
	if t == nil {
		return
	}
	t.Record(Event{Kind: KindLinkState, Conn: -1, Sub: -1, Name: name, Label: what, V: v})
}

// Flush writes the buffered trace as JSONL to w and clears the rings:
// first the connection-less link events, then every connection in
// ascending trace-ID order, each opened by a meta line
//
//	{"ev":"meta","conn":N,"label":"...","events":K,"dropped":D}
//
// followed by its events in record order. The byte output is a pure
// function of the recorded events, so deterministic simulations yield
// byte-identical traces.
func (t *Tracer) Flush(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := make([]byte, 0, 256)
	flushRing := func(conn int32, r *connRing) error {
		buf = appendMeta(buf[:0], conn, t.label, r.n, r.dropped)
		if _, err := w.Write(buf); err != nil {
			return err
		}
		for i := 0; i < r.n; i++ {
			ev := r.ev[(r.start+i)%len(r.ev)]
			buf = appendEvent(buf[:0], ev)
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		r.start, r.n, r.dropped = 0, 0, 0
		return nil
	}
	if t.links.n > 0 || t.links.dropped > 0 {
		if err := flushRing(-1, &t.links); err != nil {
			return err
		}
	}
	for id, r := range t.rings {
		if err := flushRing(int32(id), r); err != nil {
			return err
		}
	}
	return nil
}
