package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic monotonic clock for tests.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { c.t += 10; return c.t }

// TestNilTracerSafe: every method of a nil *Tracer must be a no-op —
// this IS the disabled mode of the endpoint stacks.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.ConnID(); id != -1 {
		t.Fatalf("nil ConnID = %d, want -1", id)
	}
	tr.SetLabel("x")
	tr.CwndChange(0, 0, 10)
	tr.RTTSample(0, 0, 0.05)
	tr.Loss(0, 0, "fast", 7)
	tr.Retx(0, 0, 7)
	tr.OppRetx(0, 1, 9)
	tr.Penalty(0, 1, 5)
	tr.SchedPick(0, 0, 3)
	tr.SubflowState(0, 0, "recovery")
	tr.LinkEvent("wifi", "down", 0)
	tr.Record(Event{Kind: KindCwnd})
	if err := tr.Flush(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
}

// TestFlushDeterministic: the same recording sequence yields the same
// bytes, with connections in ID order and events in record order.
func TestFlushDeterministic(t *testing.T) {
	run := func() string {
		clk := &fakeClock{}
		tr := New(16, clk.now)
		tr.SetLabel("cell/0")
		c0 := tr.ConnID()
		c1 := tr.ConnID()
		tr.LinkEvent("3g", "rate", 2.5)
		tr.CwndChange(c1, 0, 4)
		tr.RTTSample(c0, 1, 0.025)
		tr.Loss(c0, 1, "fast", 42)
		tr.Retx(c0, 1, 42)
		tr.OppRetx(c1, 0, 100)
		tr.Penalty(c1, 0, 2)
		tr.SchedPick(c0, 0, 7)
		tr.SubflowState(c0, 1, "recovery")
		tr.LinkEvent("3g", "down", 0)
		var buf bytes.Buffer
		if err := tr.Flush(&buf); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("flush not deterministic:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		`{"ev":"meta","conn":-1,"label":"cell/0","events":2,"dropped":0}`,
		`{"ev":"link","t":10,"name":"3g","what":"rate","v":2.5}`,
		`{"ev":"meta","conn":0,"label":"cell/0","events":5,"dropped":0}`,
		`{"ev":"rtt","t":30,"conn":0,"sub":1,"rtt_s":0.025}`,
		`{"ev":"loss","t":40,"conn":0,"sub":1,"via":"fast","seq":42}`,
		`{"ev":"retx","t":50,"conn":0,"sub":1,"seq":42}`,
		`{"ev":"sched","t":80,"conn":0,"sub":0,"data_seq":7}`,
		`{"ev":"state","t":90,"conn":0,"sub":1,"state":"recovery"}`,
		`{"ev":"meta","conn":1,"label":"cell/0","events":3,"dropped":0}`,
		`{"ev":"cwnd","t":20,"conn":1,"sub":0,"cwnd":4}`,
		`{"ev":"oppretx","t":60,"conn":1,"sub":0,"data_seq":100}`,
		`{"ev":"penalty","t":70,"conn":1,"sub":0,"cwnd":2}`,
	} {
		if !strings.Contains(a, want+"\n") {
			t.Errorf("flush output missing line %s\ngot:\n%s", want, a)
		}
	}
	// Link ring flushes first, then connections ascending.
	if i, j := strings.Index(a, `"conn":-1`), strings.Index(a, `"conn":0`); i > j {
		t.Errorf("link ring not flushed before conn 0")
	}
}

// TestRingOverflow: the ring keeps the most recent Cap events and
// counts what it dropped; Flush resets both.
func TestRingOverflow(t *testing.T) {
	clk := &fakeClock{}
	tr := New(4, clk.now)
	c := tr.ConnID()
	for seq := int64(0); seq < 10; seq++ {
		tr.Retx(c, 0, seq)
	}
	var buf bytes.Buffer
	if err := tr.Flush(&buf); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"events":4,"dropped":6}`) {
		t.Errorf("want 4 events / 6 dropped in meta, got:\n%s", out)
	}
	// Survivors are the newest four, in order.
	for _, seq := range []string{`"seq":6}`, `"seq":7}`, `"seq":8}`, `"seq":9}`} {
		if !strings.Contains(out, seq) {
			t.Errorf("missing surviving event %s in:\n%s", seq, out)
		}
	}
	if strings.Contains(out, `"seq":5}`) {
		t.Errorf("dropped event survived:\n%s", out)
	}
	// Second flush: ring and drop counter reset.
	buf.Reset()
	if err := tr.Flush(&buf); err != nil {
		t.Fatalf("Flush 2: %v", err)
	}
	if !strings.Contains(buf.String(), `"events":0,"dropped":0}`) {
		t.Errorf("flush did not reset ring: %s", buf.String())
	}
}

// TestRecordZeroAlloc: steady-state recording must not allocate — the
// rings are preallocated, events are by-value, and the clock closure
// exists before the measurement. This is what keeps tracing-enabled
// runs cheap enough to leave on across a whole experiment grid.
func TestRecordZeroAlloc(t *testing.T) {
	clk := &fakeClock{}
	tr := New(64, clk.now)
	c := tr.ConnID()
	avg := testing.AllocsPerRun(1000, func() {
		tr.CwndChange(c, 0, 10)
		tr.RTTSample(c, 1, 0.03)
		tr.Retx(c, 0, 5)
		tr.LinkEvent("wifi", "up", 0)
	})
	if avg != 0 {
		t.Fatalf("recording allocates %.1f allocs/op, want 0", avg)
	}
}

// TestWallNow: the wall clock counts from start and is monotonic
// non-decreasing.
func TestWallNow(t *testing.T) {
	now := WallNow(time.Now())
	a := now()
	b := now()
	if a < 0 || b < a {
		t.Fatalf("wall clock not monotonic: %d then %d", a, b)
	}
}

// TestUnknownConnDropped: events for conn IDs never allocated are
// silently dropped rather than panicking.
func TestUnknownConnDropped(t *testing.T) {
	tr := New(4, (&fakeClock{}).now)
	tr.CwndChange(5, 0, 10) // no ConnID() calls yet
	var buf bytes.Buffer
	if err := tr.Flush(&buf); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("expected empty flush, got %q", buf.String())
	}
}

// TestStringEscaping: labels with JSON-special bytes cannot corrupt the
// stream.
func TestStringEscaping(t *testing.T) {
	var b []byte
	b = appendString(b, "a\"b\\c\nd")
	want := "\"a\\\"b\\\\c\\u000ad\""
	if string(b) != want {
		t.Fatalf("appendString = %s, want %s", b, want)
	}
}
