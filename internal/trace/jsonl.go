package trace

import "strconv"

// Hand-built JSONL encoding. encoding/json would work, but the trace
// contract is *byte*-determinism — same seed, same bytes, at any runner
// parallelism — so the encoder keeps full control: fixed field order
// per kind, no maps, and floats formatted by strconv with the shortest
// round-trippable form ('g', -1, 64), the same convention the
// experiment JSONL uses. Fields that a kind does not use are omitted
// entirely rather than emitted as zeroes, keeping traces compact
// (they are the bulkiest artifact this repo produces).

// appendMeta appends the per-connection flush header line.
func appendMeta(b []byte, conn int32, label string, events int, dropped int64) []byte {
	b = append(b, `{"ev":"meta","conn":`...)
	b = strconv.AppendInt(b, int64(conn), 10)
	if label != "" {
		b = append(b, `,"label":`...)
		b = appendString(b, label)
	}
	b = append(b, `,"events":`...)
	b = strconv.AppendInt(b, int64(events), 10)
	b = append(b, `,"dropped":`...)
	b = strconv.AppendInt(b, dropped, 10)
	b = append(b, '}', '\n')
	return b
}

// appendEvent appends one event line. Field sets are fixed per kind so
// the schema (DESIGN.md §11) is enumerable.
func appendEvent(b []byte, ev Event) []byte {
	b = append(b, `{"ev":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","t":`...)
	b = strconv.AppendInt(b, ev.T, 10)
	switch ev.Kind {
	case KindLinkState:
		b = append(b, `,"name":`...)
		b = appendString(b, ev.Name)
		b = append(b, `,"what":`...)
		b = appendString(b, ev.Label)
		b = append(b, `,"v":`...)
		b = strconv.AppendFloat(b, ev.V, 'g', -1, 64)
	default:
		b = append(b, `,"conn":`...)
		b = strconv.AppendInt(b, int64(ev.Conn), 10)
		b = append(b, `,"sub":`...)
		b = strconv.AppendInt(b, int64(ev.Sub), 10)
		switch ev.Kind {
		case KindCwnd, KindPenalty:
			b = append(b, `,"cwnd":`...)
			b = strconv.AppendFloat(b, ev.V, 'g', -1, 64)
		case KindRTT:
			b = append(b, `,"rtt_s":`...)
			b = strconv.AppendFloat(b, ev.V, 'g', -1, 64)
		case KindLoss:
			b = append(b, `,"via":`...)
			b = appendString(b, ev.Label)
			b = append(b, `,"seq":`...)
			b = strconv.AppendInt(b, ev.Seq, 10)
		case KindRetx:
			b = append(b, `,"seq":`...)
			b = strconv.AppendInt(b, ev.Seq, 10)
		case KindOppRetx, KindSchedPick:
			b = append(b, `,"data_seq":`...)
			b = strconv.AppendInt(b, ev.Seq, 10)
		case KindSubflowState:
			b = append(b, `,"state":`...)
			b = appendString(b, ev.Label)
		}
	}
	b = append(b, '}', '\n')
	return b
}

// appendString appends s as a JSON string. Trace strings are short
// ASCII identifiers chosen by this repo, but escape defensively so a
// label can never corrupt the stream.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
