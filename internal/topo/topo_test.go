package topo

import (
	"math/rand"
	"testing"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

func TestDuplexPath(t *testing.T) {
	a := NewDuplex("a", 10, sim.Millisecond, 10)
	b := NewDuplex("b", 10, sim.Millisecond, 10)
	p := PathThrough(a, b)
	if len(p.Fwd) != 2 || p.Fwd[0] != a.AB || p.Fwd[1] != b.AB {
		t.Error("forward path misassembled")
	}
	if len(p.Rev) != 2 || p.Rev[0] != b.BA || p.Rev[1] != a.BA {
		t.Error("reverse path must traverse duplexes backwards")
	}
}

func TestBDP(t *testing.T) {
	// 12 Mb/s, 100 ms RTT = 1.2 Mb = 100 packets of 1500 B.
	if got := BDPPackets(12, 100*sim.Millisecond); got != 100 {
		t.Errorf("BDP = %d, want 100", got)
	}
	if got := BDPPacketsPkt(1000, 100*sim.Millisecond); got != 100 {
		t.Errorf("BDP(pkt) = %d, want 100", got)
	}
}

func TestTorusStructure(t *testing.T) {
	tor := NewTorus([]float64{1000, 1000, 500, 1000, 1000}, 100*sim.Millisecond)
	if len(tor.Links) != 5 {
		t.Fatalf("links = %d, want 5", len(tor.Links))
	}
	// Flow i uses links i and i+1; so link C (index 2) serves flows 1,2.
	useCount := make(map[*netsim.Link]int)
	for f := 0; f < 5; f++ {
		paths := tor.FlowPaths(f)
		if len(paths) != 2 {
			t.Fatalf("flow %d: %d paths, want 2", f, len(paths))
		}
		for _, p := range paths {
			if len(p.Fwd) != 1 {
				t.Fatalf("torus paths are single-hop, got %d", len(p.Fwd))
			}
			useCount[p.Fwd[0]]++
		}
	}
	for i, d := range tor.Links {
		if useCount[d.AB] != 2 {
			t.Errorf("link %s used by %d flows, want 2", TorusLinkNames[i], useCount[d.AB])
		}
	}
}

func TestFatTreeDimensions(t *testing.T) {
	ft := NewFatTree(FatTreeConfig{K: 8})
	if ft.NumHosts() != 128 {
		t.Errorf("k=8 hosts = %d, want 128", ft.NumHosts())
	}
	// 16 cores, 32 aggs, 32 edges = 80 switches (the paper's numbers).
	if got := len(ft.CoreLinks()); got != 32*4+16*8 {
		t.Errorf("core directed links = %d, want 256", got)
	}
	if got := len(ft.AccessLinks()); got != 2*128 {
		t.Errorf("access directed links = %d, want 256", got)
	}
}

func TestFatTreePathCounts(t *testing.T) {
	ft := NewFatTree(FatTreeConfig{K: 4})
	// k=4: 16 hosts; hosts 0,1 share an edge; 0,2 same pod different
	// edge; 0,4 different pods.
	if got := ft.NumPaths(0, 1); got != 1 {
		t.Errorf("same-edge paths = %d, want 1", got)
	}
	if got := ft.NumPaths(0, 2); got != 2 {
		t.Errorf("same-pod paths = %d, want 2", got)
	}
	if got := ft.NumPaths(0, 4); got != 4 {
		t.Errorf("inter-pod paths = %d, want (k/2)^2 = 4", got)
	}
}

func TestFatTreePathsDistinctAndValid(t *testing.T) {
	ft := NewFatTree(FatTreeConfig{K: 8})
	rng := rand.New(rand.NewSource(1))
	paths := ft.Paths(rng, 0, 127, 8)
	if len(paths) != 8 {
		t.Fatalf("got %d paths, want 8", len(paths))
	}
	seen := map[*netsim.Link]bool{}
	for _, p := range paths {
		if len(p.Fwd) != 6 || len(p.Rev) != 6 {
			t.Fatalf("inter-pod path should have 6 links each way, got %d/%d", len(p.Fwd), len(p.Rev))
		}
		// First and last hops are the same host links on every path; the
		// core hop (index 2→3) must be distinct across paths.
		if p.Fwd[0] != ft.upHE[0] {
			t.Error("path does not start at the source host's NIC")
		}
		core := p.Fwd[3]
		if seen[core] {
			t.Error("duplicate core downlink across supposedly distinct paths")
		}
		seen[core] = true
	}
}

func TestFatTreeECMPPathTerminates(t *testing.T) {
	ft := NewFatTree(FatTreeConfig{K: 4})
	rng := rand.New(rand.NewSource(2))
	for src := 0; src < ft.NumHosts(); src++ {
		for _, dst := range []int{(src + 1) % 16, (src + 5) % 16} {
			if dst == src {
				continue
			}
			p := ft.ECMPPath(rng, src, dst)
			if p.Fwd[0] != ft.upHE[src] || p.Fwd[len(p.Fwd)-1] != ft.downEH[dst] {
				t.Fatalf("ECMP path %d->%d endpoints wrong", src, dst)
			}
		}
	}
}

func TestBCubeDimensions(t *testing.T) {
	b := NewBCube(BCubeConfig{N: 5, K: 2})
	if b.NumHosts() != 125 {
		t.Errorf("BCube(5,2) hosts = %d, want 125", b.NumHosts())
	}
	if b.Levels() != 3 {
		t.Errorf("levels = %d, want 3", b.Levels())
	}
}

func TestBCubeNeighbors(t *testing.T) {
	b := NewBCube(BCubeConfig{N: 5, K: 2})
	h := 37 // digits (1,2,2): 37 = 2 + 2*5 + 1*25
	total := 0
	for l := 0; l < 3; l++ {
		nb := b.Neighbors(h, l)
		if len(nb) != 4 {
			t.Fatalf("level %d neighbors = %d, want 4", l, len(nb))
		}
		total += len(nb)
		for _, x := range nb {
			diff := 0
			for d := 0; d < 3; d++ {
				if b.digit(x, d) != b.digit(h, d) {
					diff++
				}
			}
			if diff != 1 {
				t.Fatalf("neighbor %d differs in %d digits", x, diff)
			}
		}
	}
	if total != 12 {
		t.Errorf("TP2 fanout = %d, want 12", total)
	}
}

func TestBCubePathsEdgeDisjointFirstHop(t *testing.T) {
	b := NewBCube(BCubeConfig{N: 5, K: 2})
	rng := rand.New(rand.NewSource(3))
	src, dst := 0, 124 // digits (0,0,0) -> (4,4,4): all differ
	paths := b.Paths(rng, src, dst, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	first := map[*netsim.Link]bool{}
	for _, p := range paths {
		if len(p.Fwd) != 6 {
			t.Errorf("full-correction path has %d links, want 6", len(p.Fwd))
		}
		if first[p.Fwd[0]] {
			t.Error("two paths leave on the same host interface")
		}
		first[p.Fwd[0]] = true
	}
}

func TestBCubeSingleDigitDifference(t *testing.T) {
	b := NewBCube(BCubeConfig{N: 5, K: 2})
	rng := rand.New(rand.NewSource(4))
	// Hosts differing in one digit: one direct 2-link path, plus detour
	// paths through the other levels' neighbours (BuildPathSet), each
	// leaving on a different interface.
	paths := b.Paths(rng, 0, 1, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	lens := map[int]int{}
	first := map[*netsim.Link]bool{}
	for _, p := range paths {
		lens[len(p.Fwd)]++
		if first[p.Fwd[0]] {
			t.Error("two paths leave on the same interface")
		}
		first[p.Fwd[0]] = true
	}
	if lens[2] != 1 {
		t.Errorf("want exactly one direct 2-link path, got %v", lens)
	}
	// Detours: out to a neighbour, correct the digit, come back = 6 links.
	if lens[6] != 2 {
		t.Errorf("want two 6-link detour paths, got %v", lens)
	}
}

func TestBCubePathsEndpoints(t *testing.T) {
	b := NewBCube(BCubeConfig{N: 3, K: 2})
	rng := rand.New(rand.NewSource(5))
	for src := 0; src < b.NumHosts(); src++ {
		dst := (src + 7) % b.NumHosts()
		if dst == src {
			continue
		}
		for _, p := range b.Paths(rng, src, dst, 3) {
			if len(p.Fwd) == 0 || len(p.Rev) != len(p.Fwd) {
				t.Fatalf("%d->%d: malformed path fwd=%d rev=%d", src, dst, len(p.Fwd), len(p.Rev))
			}
			if p.Fwd[0] != b.up[levelOf(b, p.Fwd[0], src)][src] {
				t.Fatalf("%d->%d: path does not start at src", src, dst)
			}
		}
	}
}

// levelOf finds which of src's uplinks l is, for test validation.
func levelOf(b *BCube, l *netsim.Link, src int) int {
	for lev := 0; lev < b.Levels(); lev++ {
		if b.up[lev][src] == l {
			return lev
		}
	}
	return -1
}

func TestWirelessDefaults(t *testing.T) {
	w := NewWireless(WirelessConfig{})
	paths := w.Paths()
	if len(paths) != 2 {
		t.Fatalf("wireless paths = %d, want 2", len(paths))
	}
	if w.WiFi.AB.LossRate == 0 {
		t.Error("WiFi should default to lossy")
	}
	if w.G3.AB.QueueCap <= w.WiFi.AB.QueueCap {
		t.Error("3G must be overbuffered relative to WiFi")
	}
}

func TestDualHomed(t *testing.T) {
	d := NewDualHomed(100, 10*sim.Millisecond, 100)
	if got := d.ClientPath(1)[0].Fwd[0]; got != d.Link1.AB {
		t.Error("client path 1 not through link 1")
	}
	mp := d.MultipathPaths()
	if len(mp) != 2 {
		t.Fatalf("multipath paths = %d, want 2", len(mp))
	}
}
