// Package topo builds the network topologies of the paper's evaluation:
// ad-hoc wired scenarios (§2, §3, §5), the five-link torus of Fig. 7,
// the dual-homed server of §3, the WiFi/3G wireless client of §5, and
// the FatTree and BCube data centres of §4.
//
// All topologies are expressed as directed netsim.Links assembled into
// transport.Paths. A Duplex is the basic building block: a pair of
// directed links with identical properties, mutable mid-run (SetDown,
// SetDelay, SetLossRate) so the scenario engine in
// internal/scenario can script outages, handovers and rate ramps over
// any topology. The experiment grids (tournament, dynamics, schedgrid)
// reference each topology's scriptable links by index in the order the
// topology documents.
package topo

import (
	"fmt"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/transport"
)

// Duplex is a bidirectional link: two directed netsim.Links.
type Duplex struct {
	AB *netsim.Link // "forward" direction
	BA *netsim.Link // "reverse" direction
}

// NewDuplex creates a duplex link; both directions share rate, delay and
// buffer size.
func NewDuplex(name string, rateMbps float64, delay sim.Time, queue int) *Duplex {
	return &Duplex{
		AB: netsim.NewLink(name+"/ab", rateMbps, delay, queue),
		BA: netsim.NewLink(name+"/ba", rateMbps, delay, queue),
	}
}

// NewDuplexPkt creates a duplex link with the rate in 1500-byte packets
// per second, the unit of the paper's wired simulations.
func NewDuplexPkt(name string, pktPerSec float64, delay sim.Time, queue int) *Duplex {
	return &Duplex{
		AB: netsim.NewLinkPktPerSec(name+"/ab", pktPerSec, delay, queue),
		BA: netsim.NewLinkPktPerSec(name+"/ba", pktPerSec, delay, queue),
	}
}

// SetDown takes both directions down or up.
func (d *Duplex) SetDown(down bool) {
	d.AB.SetDown(down)
	d.BA.SetDown(down)
}

// SetLossRate sets an i.i.d. loss rate on both directions.
func (d *Duplex) SetLossRate(p float64) {
	d.AB.SetLossRate(p)
	d.BA.SetLossRate(p)
}

// Trace attaches a link tracer to both directions, so scenario-driven
// state changes (outages, handovers, rate ramps) land in the trace.
func (d *Duplex) Trace(lt netsim.LinkTracer) {
	d.AB.Tracer = lt
	d.BA.Tracer = lt
}

// SetDelay changes the propagation delay of both directions; packets
// already accepted by either direction keep their old delay (see
// netsim.Link.SetDelay).
func (d *Duplex) SetDelay(delay sim.Time) {
	d.AB.SetDelay(delay)
	d.BA.SetDelay(delay)
}

// PathThrough builds a transport.Path traversing the duplexes in order
// (forward over AB, ACKs back over BA in reverse order).
func PathThrough(ds ...*Duplex) transport.Path {
	var p transport.Path
	for _, d := range ds {
		p.Fwd = append(p.Fwd, d.AB)
	}
	for i := len(ds) - 1; i >= 0; i-- {
		p.Rev = append(p.Rev, ds[i].BA)
	}
	return p
}

// BDPPackets returns the bandwidth-delay product in 1500-byte packets for
// rate (Mb/s) and round-trip time.
func BDPPackets(rateMbps float64, rtt sim.Time) int {
	n := int(rateMbps * 1e6 * rtt.Seconds() / (netsim.DataPacketSize * 8))
	if n < 2 {
		n = 2
	}
	return n
}

// BDPPacketsPkt is BDPPackets for a rate given in packets per second.
func BDPPacketsPkt(pktPerSec float64, rtt sim.Time) int {
	n := int(pktPerSec * rtt.Seconds())
	if n < 2 {
		n = 2
	}
	return n
}

// Torus is the five-bottleneck-link ring of Fig. 7: links A..E, with five
// two-path flows; flow i may use link i and link (i+1) mod 5, so every
// link is shared by exactly two flows.
type Torus struct {
	Links []*Duplex // 5 entries: A, B, C, D, E
}

// TorusLinkNames are the paper's labels for the five links.
var TorusLinkNames = []string{"A", "B", "C", "D", "E"}

// NewTorus builds the torus. rates[i] is link i's capacity in packets per
// second; RTT is the per-path round-trip time (split evenly between
// propagation directions); buffers are one bandwidth-delay product.
func NewTorus(rates []float64, rtt sim.Time) *Torus {
	if len(rates) != 5 {
		panic("topo: torus needs exactly 5 link rates")
	}
	t := &Torus{}
	for i, r := range rates {
		buf := BDPPacketsPkt(r, rtt)
		t.Links = append(t.Links, NewDuplexPkt("torus-"+TorusLinkNames[i], r, rtt/2, buf))
	}
	return t
}

// FlowPaths returns the two single-link paths of flow i (0..4): one over
// link i, one over link (i+1) mod 5.
func (t *Torus) FlowPaths(i int) []transport.Path {
	return []transport.Path{
		PathThrough(t.Links[i]),
		PathThrough(t.Links[(i+1)%5]),
	}
}

// Wireless models the §5 mobile client: a WiFi path (high rate, short
// RTT, random loss from interference, shallow basestation buffer) and a
// 3G path (low rate, overbuffered so RTTs reach seconds, negligible
// radio loss). The defaults reproduce the static experiment's observed
// single-path rates: ~14.4 Mb/s on WiFi and ~2.1 Mb/s on 3G.
type Wireless struct {
	WiFi *Duplex
	G3   *Duplex
}

// WirelessConfig sets the two radio links' characteristics.
type WirelessConfig struct {
	WiFiMbps  float64  // default 15.3
	WiFiDelay sim.Time // one-way, default 10 ms
	WiFiLoss  float64  // default 0.04 (2.4 GHz interference)
	WiFiBuf   int      // default 20 packets ("underbuffered")
	G3Mbps    float64  // default 2.2
	G3Delay   sim.Time // one-way, default 50 ms
	G3Loss    float64  // default 0.0005
	G3Buf     int      // default 400 packets ("overbuffered": ~2 s)
}

// NewWireless builds the wireless client topology, applying defaults for
// zero fields.
func NewWireless(cfg WirelessConfig) *Wireless {
	if cfg.WiFiMbps == 0 {
		cfg.WiFiMbps = 15.3
	}
	if cfg.WiFiDelay == 0 {
		cfg.WiFiDelay = 10 * sim.Millisecond
	}
	if cfg.WiFiLoss == 0 {
		cfg.WiFiLoss = 0.04
	}
	if cfg.WiFiBuf == 0 {
		cfg.WiFiBuf = 20
	}
	if cfg.G3Mbps == 0 {
		cfg.G3Mbps = 2.2
	}
	if cfg.G3Delay == 0 {
		cfg.G3Delay = 50 * sim.Millisecond
	}
	if cfg.G3Loss == 0 {
		cfg.G3Loss = 0.0005
	}
	if cfg.G3Buf == 0 {
		cfg.G3Buf = 400
	}
	w := &Wireless{
		WiFi: NewDuplex("wifi", cfg.WiFiMbps, cfg.WiFiDelay, cfg.WiFiBuf),
		G3:   NewDuplex("3g", cfg.G3Mbps, cfg.G3Delay, cfg.G3Buf),
	}
	// Interference losses hit the radio segment in both directions; the
	// 3G radio link is clean but deeply buffered.
	w.WiFi.AB.LossRate = cfg.WiFiLoss
	w.WiFi.BA.LossRate = cfg.WiFiLoss / 4 // ACKs are small; lose fewer
	w.G3.AB.LossRate = cfg.G3Loss
	return w
}

// Paths returns the multipath client's two paths: WiFi first, 3G second.
func (w *Wireless) Paths() []transport.Path {
	return []transport.Path{PathThrough(w.WiFi), PathThrough(w.G3)}
}

// DualHomed is the §3 multihomed-server testbed: a server with two
// access links (Link1, Link2), each shared by a set of clients, with an
// extra latency leg on each client path emulating the wide area (the
// paper inserts 10 ms with dummynet).
type DualHomed struct {
	Link1, Link2 *Duplex
	wan          sim.Time
}

// NewDualHomed builds the server with two rateMbps access links and wan
// one-way latency added on each path.
func NewDualHomed(rateMbps float64, wan sim.Time, queue int) *DualHomed {
	return &DualHomed{
		Link1: NewDuplex("server-link1", rateMbps, wan, queue),
		Link2: NewDuplex("server-link2", rateMbps, wan, queue),
	}
}

// ClientPath returns a single-path route through access link 1 or 2.
func (d *DualHomed) ClientPath(link int) []transport.Path {
	switch link {
	case 1:
		return []transport.Path{PathThrough(d.Link1)}
	case 2:
		return []transport.Path{PathThrough(d.Link2)}
	}
	panic(fmt.Sprintf("topo: dual-homed link %d out of range", link))
}

// MultipathPaths returns the two-path route of a multipath client.
func (d *DualHomed) MultipathPaths() []transport.Path {
	return []transport.Path{PathThrough(d.Link1), PathThrough(d.Link2)}
}
