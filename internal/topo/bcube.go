package topo

import (
	"fmt"
	"math/rand"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/transport"
)

// BCube is the server-centric data centre of Guo et al. used in §4.
// BCube(n,k) has n^(k+1) hosts, each with k+1 interfaces, and (k+1)·n^k
// n-port switches arranged in k+1 levels. A host is addressed by k+1
// base-n digits; the level-l switch it attaches to connects the n hosts
// that agree on every digit except digit l.
//
// The paper evaluates BCube with "125 three-interface hosts and 25
// five-port switches": that is BCube(5,2) — 125 hosts, 3 levels of 25
// switches each (75 switches total; we take the paper's "25" as a
// per-level count). Routing corrects address digits one level at a time;
// rotating the correction order yields the k+1 paths whose first hops
// leave on different host interfaces, which is how the paper obtains "3
// edge-disjoint paths according to the BCube routing algorithm, choosing
// the intermediate nodes at random when the algorithm needed a choice".
type BCube struct {
	N, K  int
	hosts int

	// up[l][h]: host h -> its level-l switch; down[l][h]: switch -> h.
	up   [][]*netsim.Link
	down [][]*netsim.Link

	pow []int // pow[i] = n^i
}

// BCubeConfig sets the link parameters; the paper uses 100 Mb/s links.
type BCubeConfig struct {
	N         int // switch port count (5 reproduces the paper)
	K         int // levels-1 (2 reproduces the paper)
	RateMbps  float64
	Delay     sim.Time
	QueuePkts int
}

// NewBCube builds the topology.
func NewBCube(cfg BCubeConfig) *BCube {
	if cfg.N < 2 || cfg.K < 0 {
		panic("topo: BCube needs n >= 2, k >= 0")
	}
	if cfg.RateMbps == 0 {
		cfg.RateMbps = 100
	}
	if cfg.Delay == 0 {
		cfg.Delay = 20 * sim.Microsecond
	}
	if cfg.QueuePkts == 0 {
		cfg.QueuePkts = 100
	}
	b := &BCube{N: cfg.N, K: cfg.K}
	levels := cfg.K + 1
	b.pow = make([]int, levels+1)
	b.pow[0] = 1
	for i := 1; i <= levels; i++ {
		b.pow[i] = b.pow[i-1] * cfg.N
	}
	b.hosts = b.pow[levels]
	b.up = make([][]*netsim.Link, levels)
	b.down = make([][]*netsim.Link, levels)
	for l := 0; l < levels; l++ {
		b.up[l] = make([]*netsim.Link, b.hosts)
		b.down[l] = make([]*netsim.Link, b.hosts)
		for h := 0; h < b.hosts; h++ {
			b.up[l][h] = netsim.NewLink(fmt.Sprintf("b-h%d-l%d-up", h, l), cfg.RateMbps, cfg.Delay, cfg.QueuePkts)
			b.down[l][h] = netsim.NewLink(fmt.Sprintf("b-h%d-l%d-down", h, l), cfg.RateMbps, cfg.Delay, cfg.QueuePkts)
		}
	}
	return b
}

// NumHosts returns n^(k+1).
func (b *BCube) NumHosts() int { return b.hosts }

// Levels returns k+1, the number of interfaces per host.
func (b *BCube) Levels() int { return b.K + 1 }

// digit returns digit l of host h's address.
func (b *BCube) digit(h, l int) int { return (h / b.pow[l]) % b.N }

// setDigit returns h with digit l replaced by v.
func (b *BCube) setDigit(h, l, v int) int {
	return h + (v-b.digit(h, l))*b.pow[l]
}

// Neighbors returns the hosts one hop away from h via its level-l
// switch — TP2's replication targets ("the host's neighbors in the three
// levels").
func (b *BCube) Neighbors(h, l int) []int {
	var out []int
	for v := 0; v < b.N; v++ {
		if v != b.digit(h, l) {
			out = append(out, b.setDigit(h, l, v))
		}
	}
	return out
}

// hostSeq builds the sequence of hosts visited from src to dst when the
// digit-correction order starts at level s (then s+1, … mod levels).
// When digit s already matches dst — so the level-s NIC would go unused —
// the path takes a detour through a random level-s neighbour first and
// undoes it at the end, as in the BCube paper's BuildPathSet ("choosing
// the intermediate nodes at random when the algorithm needed a choice").
func (b *BCube) hostSeq(rng *rand.Rand, src, dst, s int) []int {
	levels := b.Levels()
	seq := []int{src}
	cur := src
	detour := -1
	if b.digit(src, s) == b.digit(dst, s) && src != dst {
		detour = (b.digit(src, s) + 1 + rng.Intn(b.N-1)) % b.N
		cur = b.setDigit(cur, s, detour)
		seq = append(seq, cur)
	}
	for i := 0; i < levels; i++ {
		l := (s + i) % levels
		want := b.digit(dst, l)
		if l == s && detour >= 0 {
			continue // fixed at the end
		}
		if b.digit(cur, l) != want {
			cur = b.setDigit(cur, l, want)
			seq = append(seq, cur)
		}
	}
	if detour >= 0 {
		cur = b.setDigit(cur, s, b.digit(dst, s))
		seq = append(seq, cur)
	}
	return seq
}

// linksFor converts a host sequence into directed links: each hop crosses
// the switch of the level at which the two hosts differ.
func (b *BCube) linksFor(seq []int) []*netsim.Link {
	var links []*netsim.Link
	for i := 0; i+1 < len(seq); i++ {
		a, c := seq[i], seq[i+1]
		for l := 0; l < b.Levels(); l++ {
			if b.digit(a, l) != b.digit(c, l) {
				links = append(links, b.up[l][a], b.down[l][c])
				break
			}
		}
	}
	return links
}

func reverseHosts(seq []int) []int {
	out := make([]int, len(seq))
	for i, v := range seq {
		out[len(seq)-1-i] = v
	}
	return out
}

// Paths returns up to m distinct paths, one per starting level (shuffled
// by rng). Starting levels whose digit differs use plain digit-correction
// rotations; others detour via a random level-s neighbour. The paths
// leave on distinct host interfaces, giving the paper's "3 edge-disjoint
// paths according to the BCube routing algorithm".
func (b *BCube) Paths(rng *rand.Rand, src, dst, m int) []transport.Path {
	if src == dst {
		return nil
	}
	var out []transport.Path
	for _, s := range rng.Perm(b.Levels()) {
		if len(out) >= m {
			break
		}
		seq := b.hostSeq(rng, src, dst, s)
		out = append(out, transport.Path{
			Fwd: b.linksFor(seq),
			Rev: b.linksFor(reverseHosts(seq)),
		})
	}
	return out
}

// ECMPPath returns a single shortest path (a random correction-order
// rotation with no detours) — the single-path baseline.
func (b *BCube) ECMPPath(rng *rand.Rand, src, dst int) transport.Path {
	levels := b.Levels()
	s := rng.Intn(levels)
	cur := src
	seq := []int{src}
	for i := 0; i < levels; i++ {
		l := (s + i) % levels
		if want := b.digit(dst, l); b.digit(cur, l) != want {
			cur = b.setDigit(cur, l, want)
			seq = append(seq, cur)
		}
	}
	return transport.Path{
		Fwd: b.linksFor(seq),
		Rev: b.linksFor(reverseHosts(seq)),
	}
}
