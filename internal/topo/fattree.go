package topo

import (
	"fmt"
	"math/rand"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/transport"
)

// FatTree is the k-ary fat tree of Al-Fares et al. used in §4: k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)² core switches,
// and k³/4 single-interface hosts. k=8 gives the paper's configuration:
// 128 hosts and 80 eight-port switches, all links 100 Mb/s.
//
// Between hosts in different pods there are (k/2)² distinct shortest
// paths, one per core switch; within a pod, k/2 paths, one per
// aggregation switch; under the same edge switch, a single two-hop path.
// Paths selects m of them at random, mimicking the paper's "for each pair
// of hosts we selected 8 paths at random"; ECMPPath picks a single random
// shortest path, mimicking flow-level ECMP.
type FatTree struct {
	K     int
	hosts int

	// Directed links. Naming: up = toward the core, down = toward hosts.
	upHE   []*netsim.Link     // host -> edge switch
	downEH []*netsim.Link     // edge switch -> host
	upEA   [][][]*netsim.Link // [pod][edge][agg]
	downAE [][][]*netsim.Link // [pod][agg][edge]
	upAC   [][]*netsim.Link   // [agg global][core port] agg -> core
	downCA [][]*netsim.Link   // [core][pod] core -> agg
}

// FatTreeConfig sets the link parameters; the paper uses 100 Mb/s links.
type FatTreeConfig struct {
	K         int      // must be even; 8 reproduces the paper
	RateMbps  float64  // default 100
	Delay     sim.Time // per-link propagation, default 20 µs
	QueuePkts int      // default 100
}

// NewFatTree builds the topology.
func NewFatTree(cfg FatTreeConfig) *FatTree {
	if cfg.K%2 != 0 || cfg.K < 2 {
		panic("topo: fat tree K must be even and >= 2")
	}
	if cfg.RateMbps == 0 {
		cfg.RateMbps = 100
	}
	if cfg.Delay == 0 {
		cfg.Delay = 20 * sim.Microsecond
	}
	if cfg.QueuePkts == 0 {
		cfg.QueuePkts = 100
	}
	k := cfg.K
	half := k / 2
	ft := &FatTree{K: k, hosts: k * k * k / 4}
	mk := func(name string) *netsim.Link {
		return netsim.NewLink(name, cfg.RateMbps, cfg.Delay, cfg.QueuePkts)
	}
	for h := 0; h < ft.hosts; h++ {
		ft.upHE = append(ft.upHE, mk(fmt.Sprintf("h%d-up", h)))
		ft.downEH = append(ft.downEH, mk(fmt.Sprintf("h%d-down", h)))
	}
	ft.upEA = make([][][]*netsim.Link, k)
	ft.downAE = make([][][]*netsim.Link, k)
	for p := 0; p < k; p++ {
		ft.upEA[p] = make([][]*netsim.Link, half)
		ft.downAE[p] = make([][]*netsim.Link, half)
		for e := 0; e < half; e++ {
			ft.upEA[p][e] = make([]*netsim.Link, half)
			for a := 0; a < half; a++ {
				ft.upEA[p][e][a] = mk(fmt.Sprintf("p%d-e%d-a%d-up", p, e, a))
			}
		}
		for a := 0; a < half; a++ {
			ft.downAE[p][a] = make([]*netsim.Link, half)
			for e := 0; e < half; e++ {
				ft.downAE[p][a][e] = mk(fmt.Sprintf("p%d-a%d-e%d-down", p, a, e))
			}
		}
	}
	nAgg := k * half
	ft.upAC = make([][]*netsim.Link, nAgg)
	for ag := 0; ag < nAgg; ag++ {
		ft.upAC[ag] = make([]*netsim.Link, half)
		for c := 0; c < half; c++ {
			ft.upAC[ag][c] = mk(fmt.Sprintf("ag%d-c%d-up", ag, c))
		}
	}
	nCore := half * half
	ft.downCA = make([][]*netsim.Link, nCore)
	for c := 0; c < nCore; c++ {
		ft.downCA[c] = make([]*netsim.Link, k)
		for p := 0; p < k; p++ {
			ft.downCA[c][p] = mk(fmt.Sprintf("c%d-p%d-down", c, p))
		}
	}
	return ft
}

// NumHosts returns the host count (k³/4).
func (ft *FatTree) NumHosts() int { return ft.hosts }

func (ft *FatTree) half() int { return ft.K / 2 }

// pod, edge-in-pod and position of a host.
func (ft *FatTree) locate(h int) (pod, edge, pos int) {
	half := ft.half()
	return h / (half * half), (h / half) % half, h % half
}

// NumPaths returns the number of distinct shortest paths between two
// hosts.
func (ft *FatTree) NumPaths(src, dst int) int {
	sp, se, _ := ft.locate(src)
	dp, de, _ := ft.locate(dst)
	switch {
	case src == dst:
		return 0
	case sp != dp:
		return ft.half() * ft.half()
	case se != de:
		return ft.half()
	default:
		return 1
	}
}

// fwdVia builds the one-directional link list src->dst via core c (inter-
// pod) or agg a (intra-pod).
func (ft *FatTree) fwdVia(src, dst, route int) []*netsim.Link {
	sp, se, _ := ft.locate(src)
	dp, de, _ := ft.locate(dst)
	half := ft.half()
	switch {
	case sp != dp:
		c := route // core switch index
		a := c / half
		port := c % half
		return []*netsim.Link{
			ft.upHE[src],
			ft.upEA[sp][se][a],
			ft.upAC[sp*half+a][port],
			ft.downCA[c][dp],
			ft.downAE[dp][a][de],
			ft.downEH[dst],
		}
	case se != de:
		a := route // aggregation switch within the pod
		return []*netsim.Link{
			ft.upHE[src],
			ft.upEA[sp][se][a],
			ft.downAE[sp][a][de],
			ft.downEH[dst],
		}
	default:
		return []*netsim.Link{ft.upHE[src], ft.downEH[dst]}
	}
}

// pathVia assembles the bidirectional transport.Path using the same
// intermediate switch in both directions.
func (ft *FatTree) pathVia(src, dst, route int) transport.Path {
	return transport.Path{
		Fwd: ft.fwdVia(src, dst, route),
		Rev: ft.fwdVia(dst, src, route),
	}
}

// Paths returns min(m, NumPaths) distinct shortest paths selected
// uniformly at random.
func (ft *FatTree) Paths(rng *rand.Rand, src, dst, m int) []transport.Path {
	n := ft.NumPaths(src, dst)
	if n == 0 {
		return nil
	}
	if m > n {
		m = n
	}
	routes := rng.Perm(n)[:m]
	out := make([]transport.Path, 0, m)
	for _, r := range routes {
		out = append(out, ft.pathVia(src, dst, r))
	}
	return out
}

// ECMPPath returns one shortest path chosen uniformly at random — the
// paper's stand-in for flow-level ECMP ("we mimicked ECMP in our
// simulator by making each TCP source pick one of the shortest-hop paths
// at random").
func (ft *FatTree) ECMPPath(rng *rand.Rand, src, dst int) transport.Path {
	return ft.pathVia(src, dst, rng.Intn(ft.NumPaths(src, dst)))
}

// CoreLinks returns all directed links between aggregation and core
// switches (the "core links" of Fig. 13).
func (ft *FatTree) CoreLinks() []*netsim.Link {
	var out []*netsim.Link
	for _, ports := range ft.upAC {
		out = append(out, ports...)
	}
	for _, pods := range ft.downCA {
		out = append(out, pods...)
	}
	return out
}

// AccessLinks returns all host<->edge directed links (the "access links"
// of Fig. 13).
func (ft *FatTree) AccessLinks() []*netsim.Link {
	var out []*netsim.Link
	out = append(out, ft.upHE...)
	out = append(out, ft.downEH...)
	return out
}
