// Parallel deterministic execution of experiment cells.
//
// Every experiment in this package decomposes into independent trial
// cells — one (algorithm × parameter) combination, each running its own
// simulator instance. Cells never share mutable state (each builds a
// fresh world and fresh algorithm instances), so they can fan out across
// a bounded worker pool. Determinism is preserved by derivation, not by
// ordering: cell i of a run with base seed s always simulates with seed
// CellSeed(s, i) = sim.MixSeed(s, i), and results are collected by cell
// index, so the output is bit-identical for any Parallelism and any
// goroutine schedule. See DESIGN.md §"Parallel runner" for the full
// scheme.

package exp

import (
	"runtime"
	"sync"
	"time"

	"mptcp/internal/sim"
)

// CellSeed derives the simulator seed for trial cell idx of a run whose
// base seed is base, via sim.MixSeed: for a fixed base, distinct idx
// always give distinct seeds, so adding cells to an experiment never
// perturbs the seeds of the cells before them; and chaining a second
// derivation below a cell (sim.DomainSeed for sharded engines) never
// overflows, which the old base*1e6+idx stride did for seeds ≥ ~9.2e6.
func CellSeed(base int64, idx int) int64 {
	return sim.MixSeed(base, idx)
}

// Runner executes independent units of work on a bounded worker pool.
type Runner struct {
	// Parallelism bounds the number of concurrently running units.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Parallelism int
}

func (r Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(i) for every i in [0, n), at most workers() at a time, and
// returns once all calls have completed. fn must write its output only
// to slots indexed by i (never to shared state), which keeps Do
// race-free and its callers' results independent of scheduling order.
func (r Runner) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// RunCells fans the n trial cells of one experiment out across cfg's
// worker pool and returns their outputs in cell order. Cell i receives
// a copy of cfg whose Seed is CellSeed(cfg.Seed, i); everything the cell
// simulates must derive its randomness from that seed (build worlds with
// newWorld(cell.Seed), auxiliary generators with cell.Seed offsets) and
// algorithm instances must be constructed inside fn, since cells run
// concurrently.
func RunCells[T any](cfg Config, n int, fn func(cell Config, idx int) T) []T {
	cfg = cfg.norm()
	out := make([]T, n)
	Runner{Parallelism: cfg.Parallelism}.Do(n, func(i int) {
		cell := cfg
		cell.Seed = CellSeed(cfg.Seed, i)
		out[i] = fn(cell, i)
	})
	return out
}

// CellResult is the common per-cell output shape: one table row plus the
// headline metrics and notes the cell contributes to the experiment's
// Result. Cells with richer output (figures, cross-cell aggregates)
// return their own types from RunCells and assemble by hand.
type CellResult struct {
	Row     []string
	Metrics map[string]float64
	Notes   []string
}

// Collect appends cell outputs to res in cell order: rows to table (when
// non-nil), metrics and notes into res. Because RunCells already ordered
// cells by index, the assembled Result is identical for any Parallelism.
func Collect(res *Result, table *Table, cells []CellResult) {
	for _, c := range cells {
		if table != nil && c.Row != nil {
			table.Rows = append(table.Rows, c.Row)
		}
		for k, v := range c.Metrics {
			res.Metrics[k] = v
		}
		res.Notes = append(res.Notes, c.Notes...)
	}
}

// TrialResult is one (experiment × trial) cell of a batch run. Seed and
// Scale are the normalised values the trial actually ran with.
type TrialResult struct {
	ID      string
	Ref     string // the experiment's table/figure in the paper
	Trial   int
	Seed    int64
	Scale   float64
	WallSec float64
	Result  *Result
}

// RunBatch runs every experiment in exps for trials repetitions on the
// worker pool and returns the results grouped by experiment, trials in
// order. Trial t of any experiment uses base seed cfg.Seed + t, so a
// batch is reproducible from (Seed, Scale, trials) alone. The outer
// batch pool and each experiment's inner cell pool are both bounded by
// cfg.Parallelism; modest oversubscription of CPU-bound work is left to
// the Go scheduler.
func RunBatch(cfg Config, exps []*Experiment, trials int) []TrialResult {
	var out []TrialResult
	RunBatchStream(cfg, exps, trials, func(tr TrialResult) {
		out = append(out, tr)
	})
	return out
}

// RunBatchStream is RunBatch with streaming delivery: emit is called for
// every trial in the same deterministic (experiment, trial) order, but
// as soon as the trial and all its predecessors have completed, so a
// long batch produces output while it runs instead of only at the end.
// emit calls are serialised; they run on worker goroutines and should
// not block for long.
func RunBatchStream(cfg Config, exps []*Experiment, trials int, emit func(TrialResult)) {
	cfg = cfg.norm()
	if trials < 1 {
		trials = 1
	}
	n := len(exps) * trials
	results := make([]TrialResult, n)
	ready := make([]bool, n)
	var mu sync.Mutex
	next := 0
	Runner{Parallelism: cfg.Parallelism}.Do(n, func(i int) {
		e, t := exps[i/trials], i%trials
		tcfg := cfg
		tcfg.Seed = cfg.Seed + int64(t)
		start := time.Now()
		res := e.Run(tcfg)
		tr := TrialResult{
			ID:      e.ID,
			Ref:     e.Ref,
			Trial:   t,
			Seed:    tcfg.Seed,
			Scale:   tcfg.Scale,
			WallSec: time.Since(start).Seconds(),
			Result:  res,
		}
		mu.Lock()
		defer mu.Unlock()
		results[i], ready[i] = tr, true
		for next < n && ready[next] {
			emit(results[next])
			results[next] = TrialResult{} // free the emitted Result
			next++
		}
	})
}
