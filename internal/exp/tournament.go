package exp

import (
	"math/rand"
	"strings"

	"mptcp/internal/cc"
	"mptcp/internal/core"
	"mptcp/internal/model"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/traffic"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:  "tournament",
		Ref: "cc registry × §3–§5",
		Desc: "Full algorithm grid (every registered algorithm, incl. OLIA/BALIA/WVEGAS) across torus, " +
			"dual-homed server, FatTree and WiFi+3G: per-(algorithm × topology) throughput and Jain fairness.",
		Run: runTournament,
	})
}

// tourTopo is one topology column of the tournament grid. run builds
// the scenario from the cell's world seed, drives one algorithm through
// it, and reports (total throughput in Mb/s, Jain's fairness index over
// the scenario's flow rates). base is the run's base seed: workload
// randomness (traffic matrices, path choices) derives from it so every
// algorithm is measured on the identical workload, exactly as in the §4
// experiments.
type tourTopo struct {
	name string
	run  func(cell Config, base int64, alg core.Algorithm) (mbps, jain float64)
}

func tourTopos() []tourTopo {
	return []tourTopo{
		{"torus", tourTorus},
		{"dualhomed", tourDualHomed},
		{"fattree", tourFatTree},
		{"wifi3g", tourWiFi3G},
	}
}

func runTournament(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("tournament")
	algs := cc.Names()
	topos := tourTopos()

	// One cell per (algorithm, topology) pair in algorithm-major order:
	// registering a new algorithm appends its cells at the end, leaving
	// every existing cell's derived seed untouched. (Adding a topology
	// column, by contrast, reshuffles all cell seeds and resets any
	// recorded baselines.)
	type cellOut struct{ mbps, jain float64 }
	cells := RunCells(cfg, len(algs)*len(topos), func(cell Config, idx int) cellOut {
		alg := newAlg(algs[idx/len(topos)])
		tp := topos[idx%len(topos)]
		m, j := tp.run(cell, cfg.Seed, alg)
		return cellOut{mbps: m, jain: j}
	})

	table := Table{
		Title: "Tournament: total throughput Mb/s (Jain's fairness index) per algorithm × topology",
		Cols:  []string{"algorithm"},
	}
	for _, tp := range topos {
		table.Cols = append(table.Cols, tp.name)
	}
	for ai, name := range algs {
		row := []string{name}
		for ti, tp := range topos {
			c := cells[ai*len(topos)+ti]
			row = append(row, f1(c.mbps)+" ("+f2(c.jain)+")")
			key := strings.ToLower(name) + "_" + tp.name
			res.Metrics[key+"_mbps"] = c.mbps
			res.Metrics[key+"_jain"] = c.jain
			res.Records = append(res.Records, Record{
				Algorithm: name,
				Topology:  tp.name,
				Metrics:   map[string]float64{"mbps": c.mbps, "jain": c.jain},
			})
		}
		table.Rows = append(table.Rows, row)
	}
	res.Tables = append(res.Tables, table)
	res.note("grid spans the paper's five algorithms plus the Linux-kernel family (OLIA, BALIA, delay-based WVEGAS); REGULAR runs uncoupled over the same path set — the §2.1 strawman")
	return res
}

// tourTorus is §3's five-link torus (link C at half capacity) with five
// two-path flows, all driven by the algorithm under test.
func tourTorus(cell Config, _ int64, alg core.Algorithm) (float64, float64) {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(30*sim.Second), cell.dur(130*sim.Second)
	tor := topo.NewTorus([]float64{1000, 1000, 500, 1000, 1000}, 100*sim.Millisecond)
	conns := make([]*transport.Conn, 5)
	for i := range conns {
		conns[i] = transport.NewConn(w.n, transport.Config{
			Alg:   freshAlg(alg),
			Paths: tor.FlowPaths(i),
		})
		conns[i].Start()
	}
	rates := w.measure(conns, warm, end)
	return sumRates(rates), model.JainIndex(rates)
}

// tourDualHomed is §3's multihomed server: 2 TCPs on link 1, 6 on
// link 2, and 4 multipath flows of the algorithm under test across
// both. Throughput is the multipath aggregate; fairness is Jain's index
// over all twelve flows, so an algorithm that starves either TCP group
// (or its own flows) scores low.
func tourDualHomed(cell Config, _ int64, alg core.Algorithm) (float64, float64) {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(20*sim.Second), cell.dur(120*sim.Second)
	rtt := 20 * sim.Millisecond
	d := topo.NewDualHomed(100, rtt/2, topo.BDPPackets(100, rtt))
	var conns []*transport.Conn
	addTCP := func(link, n int) {
		for i := 0; i < n; i++ {
			c := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(link)})
			c.Start()
			conns = append(conns, c)
		}
	}
	addTCP(1, 2)
	addTCP(2, 6)
	nTCP := len(conns)
	for i := 0; i < 4; i++ {
		c := transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: d.MultipathPaths()})
		c.Start()
		conns = append(conns, c)
	}
	rates := w.measure(conns, warm, end)
	return sumRates(rates[nTCP:]), model.JainIndex(rates)
}

// tourFatTree is §4's FatTree under the TP1 permutation traffic
// pattern, every flow using the algorithm under test over the usual
// path count. The workload rng derives from the base seed so all
// algorithms race on the identical permutation and path choices.
// Throughput is the mean per-host rate; fairness is Jain's index over
// the per-flow rates.
func tourFatTree(cell Config, base int64, alg core.Algorithm) (float64, float64) {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(4*sim.Second), cell.dur(10*sim.Second)
	k, _, _ := dcSizes(cell)
	nPaths := 8
	if k < 8 {
		nPaths = 4
	}
	rng := rand.New(rand.NewSource(base + 23))
	ft := topo.NewFatTree(topo.FatTreeConfig{K: k})
	d := traffic.Permutation(rng, ft.NumHosts())
	var src, dst []int
	for s, t := range d {
		src = append(src, s)
		dst = append(dst, t)
	}
	pf := func(rng *rand.Rand, s, t int) []transport.Path { return ft.Paths(rng, s, t, nPaths) }
	conns := startFlows(w, rng, src, dst, alg, pf)
	rates := w.measure(conns, warm, end)
	return perHost(src, rates), model.JainIndex(rates)
}

// tourWiFi3G is §5's busy wireless client: the multipath flow under
// test against one competing TCP on each radio. Throughput is the
// multipath flow's; fairness is Jain's index across all three flows.
func tourWiFi3G(cell Config, _ int64, alg core.Algorithm) (float64, float64) {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(30*sim.Second), cell.dur(230*sim.Second)
	wl := busyWireless()
	mp := transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: wl.Paths()})
	tcpW := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[:1]})
	tcpG := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[1:]})
	mp.Start()
	tcpW.Start()
	tcpG.Start()
	rates := w.measure([]*transport.Conn{mp, tcpW, tcpG}, warm, end)
	return rates[0], model.JainIndex(rates)
}

func sumRates(rates []float64) float64 {
	t := 0.0
	for _, r := range rates {
		t += r
	}
	return t
}
