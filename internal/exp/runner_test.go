package exp

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mptcp/internal/sim"
)

func TestRunnerDoRunsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 3, 16} {
		n := 37
		counts := make([]int32, n)
		Runner{Parallelism: par}.Do(n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("parallelism %d: index %d ran %d times", par, i, c)
			}
		}
	}
}

func TestRunnerDoBoundsConcurrency(t *testing.T) {
	const limit = 3
	var cur, peak int32
	var mu sync.Mutex
	Runner{Parallelism: limit}.Do(50, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > limit {
		t.Errorf("observed %d concurrent units, limit %d", peak, limit)
	}
}

func TestRunnerDoEmpty(t *testing.T) {
	called := false
	Runner{}.Do(0, func(int) { called = true })
	if called {
		t.Error("Do(0) ran the body")
	}
}

func TestCellSeedDerivation(t *testing.T) {
	// The derivation is pinned to sim.MixSeed: a silent change to the
	// mix would invalidate every golden in the repo at once.
	if got, want := CellSeed(42, 0), sim.MixSeed(42, 0); got != want {
		t.Errorf("CellSeed(42, 0) = %d, want %d", got, want)
	}
	if got, want := CellSeed(42, 7), sim.MixSeed(42, 7); got != want {
		t.Errorf("CellSeed(42, 7) = %d, want %d", got, want)
	}
	// Distinct (base, idx) pairs give distinct seeds — including the
	// huge bases that overflowed the old base*1e6+idx stride scheme.
	seen := map[int64]bool{}
	for _, base := range []int64{0, 1, 2, 3, 42, -7, 9_200_000, 9_200_001, 1 << 40, math.MaxInt64} {
		for idx := 0; idx < 1000; idx++ {
			s := CellSeed(base, idx)
			if seen[s] {
				t.Fatalf("seed collision at base %d idx %d", base, idx)
			}
			seen[s] = true
		}
	}
}

// TestChainedSeedDerivationNoCollision is the regression test for the
// seed-overflow bug: the fleet experiment derives
// DomainSeed(CellSeed(base, i), j), and under the old stride scheme the
// intermediate seed wrapped int64 for base ≥ ~9.2e6, letting chained
// seeds from different cells collide. The mix keeps every chained pair
// distinct even for extreme bases.
func TestChainedSeedDerivationNoCollision(t *testing.T) {
	seen := map[int64]string{}
	for _, base := range []int64{42, 9_200_000, 1 << 55, math.MinInt64} {
		for i := 0; i < 64; i++ {
			cell := CellSeed(base, i)
			for j := 0; j < 64; j++ {
				s := sim.DomainSeed(cell, j)
				key := fmt.Sprintf("base %d cell %d domain %d", base, i, j)
				if prev, dup := seen[s]; dup {
					t.Fatalf("chained seed collision: %s and %s both derive %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestRunCellsOrderAndSeeds(t *testing.T) {
	type out struct {
		idx  int
		seed int64
	}
	cells := RunCells(Config{Seed: 9, Parallelism: 4}, 25, func(cell Config, i int) out {
		return out{idx: i, seed: cell.Seed}
	})
	for i, c := range cells {
		if c.idx != i {
			t.Errorf("slot %d holds cell %d", i, c.idx)
		}
		if c.seed != CellSeed(9, i) {
			t.Errorf("cell %d seed %d, want %d", i, c.seed, CellSeed(9, i))
		}
	}
}

func TestCollectKeepsCellOrder(t *testing.T) {
	res := newResult("x")
	table := Table{Cols: []string{"name"}}
	Collect(res, &table, []CellResult{
		{Row: []string{"a"}, Metrics: map[string]float64{"a": 1}},
		{Metrics: map[string]float64{"b": 2}, Notes: []string{"note-b"}},
		{Row: []string{"c"}},
	})
	if len(table.Rows) != 2 || table.Rows[0][0] != "a" || table.Rows[1][0] != "c" {
		t.Errorf("rows = %v", table.Rows)
	}
	if res.Metrics["a"] != 1 || res.Metrics["b"] != 2 {
		t.Errorf("metrics = %v", res.Metrics)
	}
	if len(res.Notes) != 1 || res.Notes[0] != "note-b" {
		t.Errorf("notes = %v", res.Notes)
	}
}

// TestDeterminismAcrossParallelism is the regression test for the
// parallel runner's core guarantee: a representative multi-cell
// experiment produces bit-identical results whether its cells run on one
// worker or eight, because every cell's randomness derives from
// CellSeed(base, idx) rather than from scheduling order. The tournament
// (8 algorithms × 4 topologies) and the dynamics grid (8 algorithms ×
// 3 topologies × 4 scenarios — the largest, and the one whose scenario
// scripts drive timers, churn and background traffic from the world
// rng) are covered so the full matrices inherit the guarantee,
// including their per-cell Records. A repeated same-seed parallel run
// guards against any hidden shared state between cells.
func TestDeterminismAcrossParallelism(t *testing.T) {
	for _, id := range []string{"fig8-torus", "sec23-wifi3g-model", "tournament", "dynamics", "schedgrid", "fleet", "appgrid"} {
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			serial := e.Run(Config{Seed: 5, Scale: 0.02, Parallelism: 1})
			parallel := e.Run(Config{Seed: 5, Scale: 0.02, Parallelism: 8})
			if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
				t.Errorf("metrics diverge across parallelism:\n  serial:   %v\n  parallel: %v",
					serial.Metrics, parallel.Metrics)
			}
			if !reflect.DeepEqual(serial.Records, parallel.Records) {
				t.Error("per-cell records diverge across parallelism")
			}
			again := e.Run(Config{Seed: 5, Scale: 0.02, Parallelism: 8})
			if !reflect.DeepEqual(parallel.Metrics, again.Metrics) || !reflect.DeepEqual(parallel.Records, again.Records) {
				t.Error("two same-seed runs diverge (hidden shared state between cells?)")
			}
			var sa, sb strings.Builder
			serial.Render(&sa)
			parallel.Render(&sb)
			if sa.String() != sb.String() {
				t.Error("rendered reports diverge across parallelism")
			}
		})
	}
}

func TestRunBatchOrderSeedsAndDeterminism(t *testing.T) {
	e1, _ := Get("fig3-mesh")
	e2, _ := Get("ablation-reinject")
	exps := []*Experiment{e1, e2}
	cfg := Config{Seed: 3, Scale: 0.02, Parallelism: 4}
	batch := RunBatch(cfg, exps, 2)
	if len(batch) != 4 {
		t.Fatalf("got %d trial results, want 4", len(batch))
	}
	wantIDs := []string{"fig3-mesh", "fig3-mesh", "ablation-reinject", "ablation-reinject"}
	for i, tr := range batch {
		if tr.ID != wantIDs[i] || tr.Trial != i%2 {
			t.Errorf("slot %d: got (%s, trial %d)", i, tr.ID, tr.Trial)
		}
		if tr.Seed != cfg.Seed+int64(i%2) {
			t.Errorf("slot %d: seed %d, want %d", i, tr.Seed, cfg.Seed+int64(i%2))
		}
		if tr.Result == nil || tr.Result.ID != tr.ID {
			t.Errorf("slot %d: bad result %+v", i, tr.Result)
		}
	}
	serial := RunBatch(Config{Seed: 3, Scale: 0.02, Parallelism: 1}, exps, 2)
	for i := range batch {
		if !reflect.DeepEqual(batch[i].Result.Metrics, serial[i].Result.Metrics) {
			t.Errorf("trial %d metrics diverge between batch parallelism 4 and 1", i)
		}
	}
	// Streaming delivery preserves the deterministic order and payloads.
	var streamed []TrialResult
	RunBatchStream(cfg, exps, 2, func(tr TrialResult) { streamed = append(streamed, tr) })
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d trials, want %d", len(streamed), len(batch))
	}
	for i := range streamed {
		if streamed[i].ID != batch[i].ID || streamed[i].Trial != batch[i].Trial {
			t.Errorf("stream slot %d: got (%s, trial %d), want (%s, trial %d)",
				i, streamed[i].ID, streamed[i].Trial, batch[i].ID, batch[i].Trial)
		}
		if !reflect.DeepEqual(streamed[i].Result.Metrics, batch[i].Result.Metrics) {
			t.Errorf("stream slot %d metrics diverge from collected batch", i)
		}
	}
}
