package exp

import (
	"bytes"
	"flag"
	"os"
	"reflect"
	"testing"
)

var updateTrace = flag.Bool("update-trace-golden", false,
	"rewrite testdata/trace_wifi3g_flap.golden.jsonl from the current engine")

// traceWiFi3GFlapCell runs the fixed reference cell — MPTCP on the
// WiFi+3G topology under the flap scenario, seed CellSeed(5, 0), scale
// 0.02 — with tracing on and returns the flushed trace bytes.
func traceWiFi3GFlapCell(t *testing.T) ([]byte, dynOut) {
	t.Helper()
	var sink bytes.Buffer
	cell := Config{Scale: 0.02, TraceW: &sink}.norm()
	cell.Seed = CellSeed(5, 0)
	out := runDynCell(cell, dynTopos()[2], "flap", newAlg("MPTCP"))
	var b bytes.Buffer
	if err := out.tr.Flush(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), out
}

// TestTraceGoldenWiFi3GFlap pins the trace JSONL of a fixed-seed cell
// byte for byte against the checked-in golden: the event stream —
// timestamps, ordering, float rendering — is part of the deterministic
// surface, exactly like the metric goldens above. If an intentional
// protocol or tracer change alters the stream, regenerate with
//
//	go test ./internal/exp/ -run TestTraceGoldenWiFi3GFlap -update-trace-golden
//
// and say why in the commit message.
func TestTraceGoldenWiFi3GFlap(t *testing.T) {
	got, _ := traceWiFi3GFlapCell(t)
	const path = "testdata/trace_wifi3g_flap.golden.jsonl"
	if *updateTrace {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n  got:  %s\n  want: %s\n(got %d lines, want %d; regenerate with -update-trace-golden if intentional)",
					i+1, gl[i], wl[i], len(gl), len(wl))
			}
		}
		t.Fatalf("trace length diverges from golden: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestTraceDeterministicAcrossParallelism extends the runner's core
// guarantee to the trace artifact: the dynamics grid's concatenated
// trace file is byte-identical whether cells run on one worker or
// eight, because each cell records into a private tracer and the grid
// flushes them sequentially in cell order.
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	e, _ := Get("dynamics")
	run := func(par int) []byte {
		var b bytes.Buffer
		e.Run(Config{Seed: 5, Scale: 0.02, Parallelism: par, Scenario: "flap", TraceW: &b})
		return b.Bytes()
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) == 0 {
		t.Fatal("traced dynamics run produced no trace output")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace bytes diverge across parallelism: %d vs %d bytes", len(serial), len(parallel))
	}
	if again := run(8); !bytes.Equal(parallel, again) {
		t.Error("two same-seed traced runs diverge (hidden shared state?)")
	}
}

// TestTracingDoesNotPerturbResults: enabling tracing must leave the
// simulation bit-identical — the tracer only observes, never draws from
// the world RNG or changes event timing. Metrics and per-cell Records
// of traced and untraced same-seed runs must be DeepEqual.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	e, _ := Get("dynamics")
	cfg := Config{Seed: 5, Scale: 0.02, Parallelism: 4, Scenario: "flap"}
	plain := e.Run(cfg)
	var b bytes.Buffer
	traced := cfg
	traced.TraceW = &b
	withTrace := e.Run(traced)
	if !reflect.DeepEqual(plain.Metrics, withTrace.Metrics) {
		t.Errorf("tracing perturbed metrics:\n  off: %v\n  on:  %v", plain.Metrics, withTrace.Metrics)
	}
	if !reflect.DeepEqual(plain.Records, withTrace.Records) {
		t.Error("tracing perturbed per-cell records")
	}
	if b.Len() == 0 {
		t.Error("traced run wrote no trace output")
	}
}

// TestTraceStreamShape sanity-checks the reference cell's stream: the
// flap scenario must surface link down/up events, and a live MPTCP
// transfer must produce RTT samples and cwnd changes.
func TestTraceStreamShape(t *testing.T) {
	got, _ := traceWiFi3GFlapCell(t)
	for _, want := range []string{
		`"ev":"meta"`, `"label":"MPTCP/wifi3g/flap"`,
		`"ev":"link"`, `"what":"down"`, `"what":"up"`,
		`"ev":"rtt"`, `"ev":"cwnd"`,
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("trace stream missing %s", want)
		}
	}
}
