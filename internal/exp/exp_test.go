package exp

import (
	"math"
	"strings"
	"testing"

	"mptcp/internal/cc"
)

// TestAllExperimentsSmoke runs every registered experiment at a tiny
// scale: they must complete, render, and produce finite metrics.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && (strings.HasPrefix(e.ID, "table-fattree") ||
				strings.HasPrefix(e.ID, "table-bcube") ||
				strings.HasPrefix(e.ID, "fig1")) {
				t.Skip("heavy experiment skipped in -short")
			}
			res := e.Run(Config{Seed: 1, Scale: 0.02})
			if res.ID != e.ID {
				t.Errorf("result ID %q != experiment ID %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 && len(res.Figures) == 0 {
				t.Error("experiment produced no tables or figures")
			}
			for k, v := range res.Metrics {
				if v != v || v < 0 { // NaN or negative
					t.Errorf("metric %s = %v", k, v)
				}
			}
			var sb strings.Builder
			res.Render(&sb)
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("render omitted the experiment ID")
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(All()) < 15 {
		t.Errorf("only %d experiments registered; the paper needs 17+", len(All()))
	}
	if _, ok := Get("fig8-torus"); !ok {
		t.Error("fig8-torus missing")
	}
	if _, ok := Get("nope"); ok {
		t.Error("bogus ID resolved")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Ref == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %s is missing metadata", e.ID)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.norm()
	if c.Scale != 1 || c.Seed == 0 {
		t.Errorf("norm gave %+v", c)
	}
}

// Shape assertions at moderate scale: these check the paper's qualitative
// claims, not absolute numbers.

func TestShapeSec23(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := Get("sec23-wifi3g-model")
	res := e.Run(Config{Seed: 3, Scale: 0.4})
	m := res.Metrics
	if m["mptcp_pktps"] < 0.75*m["tcp_wifi_pktps"] {
		t.Errorf("MPTCP %v should approach best single path %v", m["mptcp_pktps"], m["tcp_wifi_pktps"])
	}
	if m["ewtcp_pktps"] > 0.8*m["mptcp_pktps"] {
		t.Errorf("EWTCP %v should fall well short of MPTCP %v under RTT mismatch", m["ewtcp_pktps"], m["mptcp_pktps"])
	}
	if m["coupled_pktps"] > 0.8*m["mptcp_pktps"] {
		t.Errorf("COUPLED %v should fall well short of MPTCP %v", m["coupled_pktps"], m["mptcp_pktps"])
	}
}

func TestShapeDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := Get("table-dynamic")
	res := e.Run(Config{Seed: 3, Scale: 0.4})
	m := res.Metrics
	if m["coupled_top_mbps"] > 0.8*m["mptcp_top_mbps"] {
		t.Errorf("COUPLED top-link %v should trail MPTCP %v (trapped, §2.4)",
			m["coupled_top_mbps"], m["mptcp_top_mbps"])
	}
	for _, k := range []string{"ewtcp_bottom_mbps", "coupled_bottom_mbps", "mptcp_bottom_mbps"} {
		if m[k] < 90 {
			t.Errorf("%s = %v, the uncontended bottom link should be ~100", k, m[k])
		}
	}
}

func TestShapeWirelessStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := Get("table-wireless-static")
	res := e.Run(Config{Seed: 3, Scale: 0.4})
	m := res.Metrics
	if m["sum_ratio"] < 0.85 {
		t.Errorf("MPTCP should reach ~the sum of idle access links, ratio=%v", m["sum_ratio"])
	}
	if m["tcp_wifi_mbps"] < 12 || m["tcp_wifi_mbps"] > 16 {
		t.Errorf("TCP-WiFi = %v, want ~14.4", m["tcp_wifi_mbps"])
	}
	if m["tcp_3g_mbps"] < 1.6 || m["tcp_3g_mbps"] > 2.3 {
		t.Errorf("TCP-3G = %v, want ~2.1", m["tcp_3g_mbps"])
	}
}

func TestShapeFig8Balance(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := Get("fig8-torus")
	res := e.Run(Config{Seed: 3, Scale: 0.4})
	m := res.Metrics
	if m["ewtcp_ratio_c100"] > m["mptcp_ratio_c100"] {
		t.Errorf("EWTCP balance %v should be worse (lower) than MPTCP %v",
			m["ewtcp_ratio_c100"], m["mptcp_ratio_c100"])
	}
	if m["mptcp_jain_c100"] < 0.9 {
		t.Errorf("MPTCP Jain index %v should be near the paper's 0.986", m["mptcp_jain_c100"])
	}
}

func TestShapeAblationCap(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := Get("ablation-cap")
	res := e.Run(Config{Seed: 3, Scale: 0.4})
	m := res.Metrics
	if m["semicoupled_pktps"] > 0.8*m["mptcp_pktps"] {
		t.Errorf("SEMICOUPLED %v should trail MPTCP %v without RTT compensation",
			m["semicoupled_pktps"], m["mptcp_pktps"])
	}
}

func TestShapeAblationReinject(t *testing.T) {
	e, _ := Get("ablation-reinject")
	res := e.Run(Config{Seed: 3, Scale: 1})
	if res.Metrics["reinject_done"] != 1 {
		t.Error("transfer with reinjection should finish despite path death")
	}
	if res.Metrics["noreinject_done"] != 0 {
		t.Error("transfer without reinjection should strand")
	}
}

// TestTournamentGridComplete pins the tournament's acceptance shape:
// one record per (algorithm × topology) cell, for every registered
// algorithm across all four topologies, with finite metrics.
func TestTournamentGridComplete(t *testing.T) {
	e, ok := Get("tournament")
	if !ok {
		t.Fatal("tournament not registered")
	}
	res := e.Run(Config{Seed: 2, Scale: 0.02})
	algs := cc.Names()
	topos := []string{"torus", "dualhomed", "fattree", "wifi3g"}
	if want := len(algs) * len(topos); len(res.Records) != want {
		t.Fatalf("%d records, want %d (one per algorithm × topology cell)", len(res.Records), want)
	}
	seen := map[string]bool{}
	for _, r := range res.Records {
		key := r.Algorithm + "/" + r.Topology
		if seen[key] {
			t.Errorf("duplicate cell %s", key)
		}
		seen[key] = true
		for k, v := range r.Metrics {
			if v != v || math.IsInf(v, 0) || v < 0 {
				t.Errorf("cell %s metric %s = %v", key, k, v)
			}
		}
		if r.Metrics["jain"] > 1+1e-9 {
			t.Errorf("cell %s Jain index %v > 1", key, r.Metrics["jain"])
		}
	}
	for _, a := range algs {
		for _, tp := range topos {
			if !seen[a+"/"+tp] {
				t.Errorf("missing cell %s/%s", a, tp)
			}
		}
	}
}

// TestShapeTournament asserts the paper's qualitative orderings still
// hold inside the extended grid: MPTCP is at least as fair as EWTCP on
// the torus, and the kernel-family algorithms actually move traffic on
// every topology.
func TestShapeTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := Get("tournament")
	res := e.Run(Config{Seed: 3, Scale: 0.3})
	m := res.Metrics
	// Both indices sit near 1 and their ordering at one finite run is
	// seed noise; the paper's claim is that MPTCP stays comparably fair,
	// so allow a small tolerance rather than a strict ordering.
	if m["mptcp_torus_jain"] < m["ewtcp_torus_jain"]-0.02 {
		t.Errorf("MPTCP torus fairness %v should be within 0.02 of EWTCP's %v (§3 Fig. 8)",
			m["mptcp_torus_jain"], m["ewtcp_torus_jain"])
	}
	// COUPLED hides from the busy WiFi path (§5 Fig. 15): every coupled
	// successor should beat it on the wireless client.
	for _, alg := range []string{"mptcp", "olia", "balia"} {
		if m[alg+"_wifi3g_mbps"] <= m["coupled_wifi3g_mbps"] {
			t.Errorf("%s wifi3g %v should exceed COUPLED's %v", alg,
				m[alg+"_wifi3g_mbps"], m["coupled_wifi3g_mbps"])
		}
	}
	for _, alg := range []string{"olia", "balia", "wvegas"} {
		for _, tp := range []string{"torus", "dualhomed", "fattree", "wifi3g"} {
			if m[alg+"_"+tp+"_mbps"] <= 0 {
				t.Errorf("%s delivered nothing on %s", alg, tp)
			}
		}
	}
}
