package exp

import (
	"mptcp/internal/core"
	"mptcp/internal/scenario"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:   "ablation-cap",
		Ref:  "§2.5 design choice",
		Desc: "MPTCP vs SEMICOUPLED (no 1/w_r cap, no RTT compensation) on the WiFi/3G mismatch: the cap + compensation is what recovers the best path's throughput.",
		Run:  runAblationCap,
	})
	Register(&Experiment{
		ID:   "ablation-peracck",
		Ref:  "§2 implementation note",
		Desc: "MPTCP recomputing eq.(1) on every ACK vs only when the window grows a packet: the throughputs should agree (the cache is a pure CPU optimisation).",
		Run:  runAblationPerAck,
	})
	Register(&Experiment{
		ID:   "ablation-reinject",
		Ref:  "§6 design choice",
		Desc: "Data-level reinjection after a path dies: with it the transfer finishes over the surviving path; without it the stream strands.",
		Run:  runAblationReinject,
	})
}

func runAblationCap(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("ablation-cap")
	warm, end := cfg.dur(50*sim.Second), cfg.dur(350*sim.Second)

	table := Table{
		Title: "Fixed-loss WiFi(4%,10ms)/3G(1%,100ms), pkt/s: the §2.5 cap + RTT compensation vs the plain SEMICOUPLED increase",
		Cols:  []string{"algorithm", "pkt/s", "WiFi pkt/s", "3G pkt/s"},
	}
	// Explicit metric keys: both SemiCoupled variants share Name()
	// "SEMICOUPLED", so metricName would collide and the a=1 cell would
	// silently overwrite the a=1/n value.
	variants := []struct {
		name   string
		metric string
		alg    func() core.Algorithm
	}{
		{"MPTCP (eq. 1)", "mptcp_pktps", func() core.Algorithm { return &core.MPTCP{} }},
		{"SEMICOUPLED a=1/n", "semicoupled_pktps", func() core.Algorithm { return core.SemiCoupled{} }},
		{"SEMICOUPLED a=1", "semicoupled_a1_pktps", func() core.Algorithm { return core.SemiCoupled{A: 1} }},
	}
	cells := RunCells(cfg, len(variants), func(cell Config, i int) CellResult {
		alg := variants[i].alg()
		w := newWorld(cell.Seed)
		wifi := topo.NewDuplexPkt("wifi", 5000, 5*sim.Millisecond, 5000)
		wifi.AB.LossRate = 0.04
		g3 := topo.NewDuplexPkt("3g", 5000, 50*sim.Millisecond, 5000)
		g3.AB.LossRate = 0.01
		c := transport.NewConn(w.n, transport.Config{
			Alg:   alg,
			Paths: []transport.Path{topo.PathThrough(wifi), topo.PathThrough(g3)},
		})
		c.Start()
		w.s.RunUntil(warm)
		b0, b1 := c.SubflowDelivered(0), c.SubflowDelivered(1)
		w.s.RunUntil(end)
		dur := end - warm
		rw := pktps(c.SubflowDelivered(0)-b0, dur)
		rg := pktps(c.SubflowDelivered(1)-b1, dur)
		return CellResult{
			Row:     []string{variants[i].name, f0(rw + rg), f0(rw), f0(rg)},
			Metrics: map[string]float64{variants[i].metric: rw + rg},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	res.note("SEMICOUPLED weights windows by 1/p_r with no regard to RTT, so the short-RTT lossy WiFi path is underused; eq. (1) recovers it")
	return res
}

func runAblationPerAck(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("ablation-peracck")
	rtt := 100 * sim.Millisecond
	warm, end := cfg.dur(50*sim.Second), cfg.dur(250*sim.Second)

	table := Table{
		Title: "Torus (C=500 pkt/s): per-ACK eq.(1) vs recompute-on-window-growth",
		Cols:  []string{"variant", "mean flow pkt/s", "pA/pC"},
	}
	perAckVariants := []bool{true, false}
	cells := RunCells(cfg, len(perAckVariants), func(cell Config, i int) CellResult {
		perAck := perAckVariants[i]
		w := newWorld(cell.Seed)
		tor := topo.NewTorus([]float64{1000, 1000, 500, 1000, 1000}, rtt)
		conns := make([]*transport.Conn, 5)
		for i := range conns {
			conns[i] = transport.NewConn(w.n, transport.Config{
				Alg:   &core.MPTCP{PerAck: perAck},
				Paths: tor.FlowPaths(i),
			})
			conns[i].Start()
		}
		rates := w.measure(conns, warm, end)
		var mean float64
		for _, r := range rates {
			mean += r / 5
		}
		meanPkt := mean * 1e6 / (8 * 1500)
		ratio := tor.Links[0].AB.Stats.LossFraction() / tor.Links[2].AB.Stats.LossFraction()
		name := "cached (paper impl.)"
		metric := "cached_pktps"
		if perAck {
			name = "per-ACK"
			metric = "peracck_pktps"
		}
		return CellResult{
			Row:     []string{name, f0(meanPkt), f2(ratio)},
			Metrics: map[string]float64{metric: meanPkt},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	return res
}

func runAblationReinject(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("ablation-reinject")
	total := int64(6000)

	table := Table{
		Title: "8 MB transfer, path 2 dies mid-flight",
		Cols:  []string{"variant", "completed", "delivered pkts"},
	}
	disableVariants := []bool{false, true}
	cells := RunCells(cfg, len(disableVariants), func(cell Config, i int) CellResult {
		disable := disableVariants[i]
		w := newWorld(cell.Seed)
		l1 := topo.NewDuplex("p1", 10, 10*sim.Millisecond, 50)
		l2 := topo.NewDuplex("p2", 10, 10*sim.Millisecond, 50)
		c := transport.NewConn(w.n, transport.Config{
			Alg:             &core.MPTCP{},
			Paths:           []transport.Path{topo.PathThrough(l1), topo.PathThrough(l2)},
			DataPackets:     total,
			DisableReinject: disable,
		})
		c.Start()
		// Path death as a declarative scenario (bit-identical to the
		// closure it replaced; pinned by TestScenarioRewireGolden).
		death := scenario.Scenario{Name: "path-death", Directives: []scenario.Directive{
			scenario.LinkDown{Link: 1, At: cell.dur(2 * sim.Second)},
		}}
		death.MustInstall(&scenario.Env{Sim: w.s, Net: w.n, Links: []*topo.Duplex{l1, l2}})
		w.s.RunUntil(cell.dur(120 * sim.Second))
		name := "reinjection on (§6)"
		metric := "reinject"
		if disable {
			name = "reinjection off"
			metric = "noreinject"
		}
		done, doneMetric := "no", 0.0
		if c.Done() {
			done, doneMetric = "yes", 1
		}
		return CellResult{
			Row: []string{name, done, f0(float64(c.Delivered()))},
			Metrics: map[string]float64{
				metric + "_done": doneMetric,
				metric + "_pkts": float64(c.Delivered()),
			},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	return res
}
