// Package exp contains one registered experiment per table and figure in
// the paper's evaluation (§2–§5), plus ablations of the design decisions.
// Each experiment builds its scenario from the substrate packages, runs
// the packet-level simulation and reports the same rows/series the paper
// does. The cmd/mptcp-exp tool and the top-level benchmark harness both
// drive this registry.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mptcp/internal/cc"
	"mptcp/internal/core"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/trace"
	"mptcp/internal/transport"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds give identical results.
	Seed int64
	// Scale multiplies simulated durations (and, below 0.5, shrinks the
	// data-centre topologies) so the suite can run quickly in tests.
	// 1.0 reproduces the paper-fidelity setup.
	Scale float64
	// Parallelism bounds how many trial cells run concurrently (see
	// RunCells). Zero means runtime.GOMAXPROCS(0); results are
	// bit-identical for every value.
	Parallelism int
	// Shards bounds how many partition domains of a sharded-engine
	// experiment (fleet) run concurrently within one cell. Zero means
	// runtime.GOMAXPROCS(0); like Parallelism, results are bit-identical
	// for every value (sim.Sharded's barrier-merge guarantees it).
	// Experiments without intra-cell sharding ignore it.
	Shards int
	// Scenario restricts scenario-grid experiments (dynamics) to one
	// named scenario; empty runs the full grid. Filtering never changes
	// a cell's derived seed — a filtered run reproduces exactly the
	// corresponding cells of the full grid.
	Scenario string
	// Sched restricts scheduler-grid experiments (schedgrid) to one
	// scheduler spec (e.g. "minrtt+otr+pen"); empty runs the full grid.
	// Like Scenario, filtering never changes a cell's derived seed.
	Sched string
	// Workload restricts workload-grid experiments (appgrid) to one
	// named application workload (see internal/workload); empty runs
	// the full grid. Like Scenario, filtering never changes a cell's
	// derived seed.
	Workload string
	// TraceW, when non-nil, enables protocol tracing in experiments that
	// support it (currently the dynamics grid): each cell records its
	// connections' events into a private internal/trace tracer, and the
	// cells' traces are flushed to TraceW as JSONL in cell order after
	// the grid completes — so the trace bytes, like the results, are
	// identical at any Parallelism. Tracing never perturbs simulation
	// results: enabled and disabled runs produce bit-identical Records.
	TraceW io.Writer
}

func (c Config) norm() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// dur scales a paper-fidelity duration.
func (c Config) dur(d sim.Time) sim.Time {
	t := sim.Time(float64(d) * c.Scale)
	if t < 100*sim.Millisecond {
		t = 100 * sim.Millisecond
	}
	return t
}

// Table is a printable result table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// Point is one (x, y) sample of a figure.
type Point struct{ X, Y float64 }

// Curve is a named series within a figure.
type Curve struct {
	Name string
	Pts  []Point
}

// Figure is a reproduced plot: one curve per algorithm/series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Curves []Curve
}

// Record is one machine-readable grid cell of a Result — e.g. one
// (algorithm × topology) cell of the tournament, or one (algorithm ×
// topology × scenario) cell of the dynamics grid. Experiments that run
// a full cross-product attach one Record per cell, in cell order, so
// drivers can emit them individually (cmd/mptcp-exp -json writes one
// JSONL line per record instead of one aggregate line).
type Record struct {
	Algorithm string
	Topology  string
	// Scenario names the network-dynamics script of the cell; empty for
	// static-network grids (the tournament).
	Scenario string
	// Scheduler names the packet-scheduler spec of the cell (a
	// sched.Parse spec such as "minrtt" or "minrtt+otr+pen"); empty for
	// grids without a scheduler axis.
	Scheduler string
	// RecvBuf is the shared receive buffer, in packets, constraining the
	// cell's multipath flows; 0 means unconstrained (grids without a
	// buffer axis leave it 0).
	RecvBuf int64
	// Workload names the application workload driving the cell's
	// transfers (an internal/workload name such as "web" or "video");
	// empty for grids without an application layer.
	Workload string
	Metrics  map[string]float64
}

// Result is everything an experiment reports.
type Result struct {
	ID      string
	Tables  []Table
	Figures []Figure
	Notes   []string
	// Metrics exposes headline scalars (used by benchmarks and
	// EXPERIMENTS.md): e.g. "mptcp_total_mbps".
	Metrics map[string]float64
	// Records holds per-cell grid output for cross-product experiments;
	// empty for the classic per-figure experiments.
	Records []Record
}

func newResult(id string) *Result {
	return &Result{ID: id, Metrics: make(map[string]float64)}
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes a human-readable report.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.ID)
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n%s\n", t.Title)
		widths := make([]int, len(t.Cols))
		for i, c := range t.Cols {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, c := range cells {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
			fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		}
		line(t.Cols)
		for _, row := range t.Rows {
			line(row)
		}
	}
	for _, f := range r.Figures {
		fmt.Fprintf(w, "\n%s  (x: %s, y: %s)\n", f.Title, f.XLabel, f.YLabel)
		for _, c := range f.Curves {
			fmt.Fprintf(w, "  %s:", c.Name)
			for _, p := range c.Pts {
				fmt.Fprintf(w, " (%.4g, %.4g)", p.X, p.Y)
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w)
		for _, k := range keys {
			fmt.Fprintf(w, "  metric %s = %.4g\n", k, r.Metrics[k])
		}
	}
}

// Experiment couples an ID and paper reference with a runner.
type Experiment struct {
	ID   string
	Ref  string // the table/figure in the paper
	Desc string
	Run  func(Config) *Result
}

var (
	registry = map[string]*Experiment{}
	order    []string
)

// Register adds an experiment; duplicate IDs panic.
func Register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Get looks an experiment up by ID.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns the experiments in registration order.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// --- shared helpers ---------------------------------------------------

// algSet returns fresh instances of the multipath algorithms the paper
// compares (EWTCP, COUPLED, MPTCP) in presentation order. Fresh instances
// matter: MPTCP keeps per-connection scratch state.
func algSet() []core.Algorithm {
	return []core.Algorithm{core.EWTCP{}, core.Coupled{}, &core.MPTCP{}}
}

func newAlg(name string) core.Algorithm {
	a, err := cc.New(name)
	if err != nil {
		panic(err)
	}
	return a
}

// world bundles a simulator and network with an experiment-local seed.
type world struct {
	s *sim.Simulator
	n *netsim.Net
	// tr is the cell's protocol tracer: nil (tracing disabled, the
	// default) unless the experiment opted in via newTracedWorld.
	// Builders pass it to transport.NewConn as Config.Tracer.
	tr *trace.Tracer
}

func newWorld(seed int64) *world {
	s := sim.New(seed)
	return &world{s: s, n: netsim.NewNet(s)}
}

// newTracedWorld is newWorld plus a cell-private tracer on the
// simulator's clock, labelled so concatenated flushes stay
// attributable. Used by grid cells when Config.TraceW is set.
func newTracedWorld(seed int64, label string) *world {
	w := newWorld(seed)
	w.tr = trace.New(0, trace.SimNow(w.s))
	w.tr.SetLabel(label)
	return w
}

// measure runs the simulation to warm, snapshots flow progress, runs to
// end, and returns each connection's throughput in Mb/s over [warm, end].
func (w *world) measure(conns []*transport.Conn, warm, end sim.Time) []float64 {
	w.s.RunUntil(warm)
	base := make([]int64, len(conns))
	for i, c := range conns {
		base[i] = c.Delivered()
	}
	w.s.RunUntil(end)
	out := make([]float64, len(conns))
	dur := (end - warm).Seconds()
	for i, c := range conns {
		out[i] = float64(c.Delivered()-base[i]) * netsim.DataPacketSize * 8 / dur / 1e6
	}
	return out
}

// mbps converts delivered packets over a duration to Mb/s.
func mbps(pkts int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(pkts) * netsim.DataPacketSize * 8 / dur.Seconds() / 1e6
}

// pktps converts delivered packets over a duration to packets/s.
func pktps(pkts int64, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(pkts) / dur.Seconds()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
