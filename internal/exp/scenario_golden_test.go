package exp

import "testing"

// TestScenarioRewireGolden pins metrics captured BEFORE the §5 handover
// and ablation path-death dynamics were rewired from hand-coded closures
// onto internal/scenario. The rewire is required to be behaviour-
// preserving: same seed, bit-identical schedule, bit-identical metrics.
// If an intentional semantic change ever touches these dynamics,
// regenerate the literals with
//
//	go run ./cmd/mptcp-exp -run fig17-mobility -scale 0.05 -seed 42 -json
//	go run ./cmd/mptcp-exp -run fig17-mobility -scale 0.1 -seed 7 -json
//	go run ./cmd/mptcp-exp -run ablation-reinject -scale 0.5 -seed 42 -json
//
// and say why in the commit message. (Last re-pinned when CellSeed
// moved from the stride scheme to sim.MixSeed — every cell seed
// changed, not the dynamics semantics.)
func TestScenarioRewireGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-experiment golden comparison")
	}
	cases := []struct {
		id     string
		seed   int64
		scale  float64
		golden map[string]float64
	}{
		{
			id: "fig17-mobility", seed: 42, scale: 0.05,
			golden: map[string]float64{
				"phase1_mbps": 4.904170212765957,
				"phase2_mbps": 0.136,
				"phase3_mbps": 2.61,
			},
		},
		{
			id: "fig17-mobility", seed: 7, scale: 0.1,
			golden: map[string]float64{
				"phase1_mbps": 4.717787234042553,
				"phase2_mbps": 0.464,
				"phase3_mbps": 5.975,
			},
		},
		{
			// The delivered-packet counts pin the exact loss/retransmit
			// schedule around the path death, not just the done flags.
			id: "ablation-reinject", seed: 42, scale: 0.5,
			golden: map[string]float64{
				"reinject_done":   1,
				"reinject_pkts":   6000,
				"noreinject_done": 0,
				"noreinject_pkts": 1049,
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			e, ok := Get(tc.id)
			if !ok {
				t.Fatalf("experiment %s not registered", tc.id)
			}
			res := e.Run(Config{Seed: tc.seed, Scale: tc.scale})
			for k, want := range tc.golden {
				got, ok := res.Metrics[k]
				if !ok {
					t.Errorf("metric %s missing", k)
					continue
				}
				if got != want {
					t.Errorf("metric %s = %v, want golden %v (pre-rewire closures)", k, got, want)
				}
			}
		})
	}
}
