package exp

import (
	"bytes"
	"reflect"
	"testing"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/transport"
)

// TestFleetFCTHandComputed pins the flow-completion-time definition the
// fleet experiment records (CompletedAt − StartedAt: Start until the
// final data packet is cumulatively acknowledged at the sender) against
// a timeline small enough to compute by hand. One single-path flow of 4
// data packets, initial cwnd 4, jitter off, over a 1000 pkt/s link with
// 45 ms propagation each way:
//
//	data tx     = 1500·8 / 12e6 s  = 1 ms exactly
//	ack tx      = 40·8 / 12e6 s    = 26666 ns (truncated)
//	4th packet finishes serialising at 4 ms, arrives 4+45 = 49 ms;
//	its ack departs 49 ms + ackTx and lands 45 ms later.
//
// FCT = 4·dataTx + 45 ms + ackTx + 45 ms. The batched-departure path
// must produce the identical timeline.
func TestFleetFCTHandComputed(t *testing.T) {
	run := func(batched bool) sim.Time {
		s := sim.New(7)
		n := netsim.NewNet(s)
		n.BatchDepartures = batched
		fwd := netsim.NewLinkPktPerSec("fwd", 1000, 45*sim.Millisecond, 100)
		rev := netsim.NewLinkPktPerSec("rev", 1000, 45*sim.Millisecond, 100)
		c := transport.NewConn(n, transport.Config{
			Paths:       []transport.Path{{Fwd: []*netsim.Link{fwd}, Rev: []*netsim.Link{rev}}},
			DataPackets: 4,
			InitialCwnd: 4,
			SendJitter:  -1,
		})
		c.Start()
		s.RunUntil(5 * sim.Second)
		if !c.Done() {
			t.Fatal("flow did not complete")
		}
		return c.CompletedAt() - c.StartedAt()
	}

	dataBits, ackBits := float64(netsim.DataPacketSize*8), float64(netsim.AckPacketSize*8)
	dataTx := sim.Time(dataBits / 12e6 * float64(sim.Second))
	ackTx := sim.Time(ackBits / 12e6 * float64(sim.Second))
	want := 4*dataTx + 45*sim.Millisecond + ackTx + 45*sim.Millisecond

	for _, batched := range []bool{false, true} {
		if got := run(batched); got != want {
			t.Errorf("batched=%v: FCT %v, want %v", batched, got, want)
		}
	}
}

// TestFleetCountsIncompleteFlows is the regression test for the goodput
// undercount: g.pkts grew only in OnComplete, so packets delivered by
// flows still in flight at the horizon vanished from goodput_mbps. The
// cell must pick those up from the pools' live sets at merge time and
// report the in-flight population explicitly.
func TestFleetCountsIncompleteFlows(t *testing.T) {
	out := runFleetCell(Config{Seed: CellSeed(5, 0), Scale: 0.05}.norm(), "MPTCP", "minrtt")
	if out.completed == 0 {
		t.Fatal("no flows completed — the cell is too small to prove anything")
	}
	if out.incomplete == 0 {
		t.Fatal("no flows in flight at the horizon — the regression check is vacuous at this seed/scale")
	}
	// Every churn arrival spawns exactly one pooled connection and every
	// completion returns it, so the population must balance exactly.
	if out.arrivals != out.completed+out.incomplete {
		t.Errorf("arrivals %d != completed %d + incomplete %d", out.arrivals, out.completed, out.incomplete)
	}
	if out.partial <= 0 {
		t.Errorf("in-flight flows delivered no packets (partial=%d); goodput would still undercount", out.partial)
	}
}

// TestFleetShardInvariance is the regression test for the sharded
// engine's core guarantee at the experiment layer: the fleet grid
// produces bit-identical Records and Metrics whether each cell's 32
// domains run on one shard, four, or one per CPU, because every domain
// derives its randomness from DomainSeed and cross-domain transit
// merges at barriers in wiring order. The dynamics grid (which has no
// intra-cell sharding) is covered too, pinning the contract that
// Config.Shards never perturbs an experiment that ignores it — Records
// and trace bytes alike.
func TestFleetShardInvariance(t *testing.T) {
	e, ok := Get("fleet")
	if !ok {
		t.Fatal("fleet not registered")
	}
	base := Config{Seed: 5, Scale: 0.02, Parallelism: 2, Shards: 1}
	ref := e.Run(base)
	if len(ref.Records) == 0 {
		t.Fatal("fleet produced no records")
	}
	// Non-vacuity: the cells must have completed flows and carried
	// cross-domain transit, or the invariance below proves nothing.
	for _, r := range ref.Records {
		if r.Metrics["completed"] == 0 {
			t.Fatalf("cell %s/%s completed no flows", r.Algorithm, r.Scheduler)
		}
		if r.Metrics["transit"] == 0 {
			t.Fatalf("cell %s/%s saw no cross-domain transit", r.Algorithm, r.Scheduler)
		}
	}
	for _, shards := range []int{4, 0} {
		cfg := base
		cfg.Shards = shards
		got := e.Run(cfg)
		if !reflect.DeepEqual(ref.Records, got.Records) {
			t.Errorf("fleet records diverge between shards=1 and shards=%d", shards)
		}
		if !reflect.DeepEqual(ref.Metrics, got.Metrics) {
			t.Errorf("fleet metrics diverge between shards=1 and shards=%d", shards)
		}
	}

	dyn, ok := Get("dynamics")
	if !ok {
		t.Fatal("dynamics not registered")
	}
	runDyn := func(shards int) (*Result, []byte) {
		var buf bytes.Buffer
		res := dyn.Run(Config{Seed: 5, Scale: 0.02, Parallelism: 2, Shards: shards, TraceW: &buf})
		return res, buf.Bytes()
	}
	dRef, dTrace := runDyn(1)
	d4, d4Trace := runDyn(4)
	if !reflect.DeepEqual(dRef.Records, d4.Records) {
		t.Error("dynamics records diverge between shards=1 and shards=4")
	}
	if !bytes.Equal(dTrace, d4Trace) {
		t.Error("dynamics trace bytes diverge between shards=1 and shards=4")
	}
}
