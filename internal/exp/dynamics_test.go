package exp

import (
	"math"
	"reflect"
	"testing"

	"mptcp/internal/cc"
	"mptcp/internal/scenario"
)

// TestDynamicsGridComplete pins the dynamics experiment's acceptance
// shape: one record per (algorithm × topology × scenario) cell, every
// registered algorithm against every topology and scenario script, with
// finite metrics.
func TestDynamicsGridComplete(t *testing.T) {
	e, ok := Get("dynamics")
	if !ok {
		t.Fatal("dynamics not registered")
	}
	res := e.Run(Config{Seed: 2, Scale: 0.02})
	algs := cc.Names()
	topos := []string{"torus", "dualhomed", "wifi3g"}
	scens := scenario.Names()
	if want := len(algs) * len(topos) * len(scens); len(res.Records) != want {
		t.Fatalf("%d records, want %d (one per algorithm × topology × scenario cell)", len(res.Records), want)
	}
	seen := map[string]bool{}
	for _, r := range res.Records {
		if r.Scenario == "" {
			t.Errorf("record %s/%s has no scenario", r.Algorithm, r.Topology)
		}
		key := r.Algorithm + "/" + r.Topology + "/" + r.Scenario
		if seen[key] {
			t.Errorf("duplicate cell %s", key)
		}
		seen[key] = true
		for k, v := range r.Metrics {
			if v != v || math.IsInf(v, 0) || v < 0 {
				t.Errorf("cell %s metric %s = %v", key, k, v)
			}
		}
		if r.Metrics["jain"] > 1+1e-9 {
			t.Errorf("cell %s Jain index %v > 1", key, r.Metrics["jain"])
		}
		if r.Scenario == "churn" && r.Metrics["churn_arrivals"] == 0 {
			t.Errorf("cell %s: churn scenario spawned no flows", key)
		}
		if r.Scenario != "churn" && r.Metrics["churn_arrivals"] != 0 {
			t.Errorf("cell %s: non-churn scenario spawned %v flows", key, r.Metrics["churn_arrivals"])
		}
	}
	for _, a := range algs {
		for _, tp := range topos {
			for _, sc := range scens {
				if !seen[a+"/"+tp+"/"+sc] {
					t.Errorf("missing cell %s/%s/%s", a, tp, sc)
				}
			}
		}
	}
}

// TestDynamicsScenarioFilterKeepsSeeds checks the -scenario contract: a
// filtered run selects a subset of cells but reproduces those cells'
// records bit-for-bit, because cell seeds derive from full-grid indices
// rather than filtered positions.
func TestDynamicsScenarioFilterKeepsSeeds(t *testing.T) {
	e, _ := Get("dynamics")
	full := e.Run(Config{Seed: 4, Scale: 0.02})
	byKey := map[string]Record{}
	for _, r := range full.Records {
		byKey[r.Algorithm+"/"+r.Topology+"/"+r.Scenario] = r
	}
	flap := e.Run(Config{Seed: 4, Scale: 0.02, Scenario: "flap"})
	algs := cc.Names()
	if want := len(algs) * 3; len(flap.Records) != want {
		t.Fatalf("filtered run has %d records, want %d", len(flap.Records), want)
	}
	for _, r := range flap.Records {
		if r.Scenario != "flap" {
			t.Errorf("filtered run contains scenario %q", r.Scenario)
		}
		want, ok := byKey[r.Algorithm+"/"+r.Topology+"/"+r.Scenario]
		if !ok {
			t.Fatalf("cell %s/%s missing from the full grid", r.Algorithm, r.Topology)
		}
		if !reflect.DeepEqual(r.Metrics, want.Metrics) {
			t.Errorf("cell %s/%s/flap diverges between filtered and full runs:\n  filtered: %v\n  full:     %v",
				r.Algorithm, r.Topology, r.Metrics, want.Metrics)
		}
	}
}

// TestDynamicsRecovery asserts the dynamics grid's qualitative claim at
// moderate scale, for the two outage scenarios (flap, handover): every
// algorithm delivers through the disturbances on every topology AND is
// moving data again in the post-disturbance recovery window. Moderate
// scale matters here — the recovery window must dwarf both the
// overbuffered 3G queueing delay (~2 s at full scale) and a backed-off
// RTO, or a healthy-but-briefly-quiet flow reads as stalled.
func TestDynamicsRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := Get("dynamics")
	for _, scen := range []string{"flap", "handover"} {
		res := e.Run(Config{Seed: 3, Scale: 0.3, Scenario: scen})
		if len(res.Records) == 0 {
			t.Fatalf("scenario %s produced no records", scen)
		}
		for _, r := range res.Records {
			key := r.Algorithm + "/" + r.Topology + "/" + r.Scenario
			if r.Metrics["mbps"] <= 0 {
				t.Errorf("cell %s delivered nothing over the run", key)
			}
			if r.Metrics["recovery_mbps"] <= 0 {
				t.Errorf("cell %s delivered nothing after the disturbances ended", key)
			}
		}
	}
}
