package exp

import (
	"mptcp/internal/core"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:   "fig2-triangle",
		Ref:  "§2.2 Fig. 2",
		Desc: "Three 12 Mb/s links in a triangle, three two-path flows: coupling should prefer the one-hop paths (12 Mb/s each) where EWTCP gets ~8.5 Mb/s.",
		Run:  runFig2,
	})
	Register(&Experiment{
		ID:   "fig3-mesh",
		Ref:  "§2.2 Fig. 3",
		Desc: "Four-link chain (5/12/10/3 Mb/s), three two-path flows: COUPLED/MPTCP balance congestion and equalise totals (~10 Mb/s each); EWTCP gives (11, 11, 8).",
		Run:  runFig3,
	})
	Register(&Experiment{
		ID:   "sec23-wifi3g-model",
		Ref:  "§2.3 worked example",
		Desc: "Fixed loss rates: WiFi 4%/10 ms vs 3G 1%/100 ms. Single-path TCPs get ~707 and ~141 pkt/s; EWTCP ~424; COUPLED ~141; MPTCP should reach the best path's ~707.",
		Run:  runSec23,
	})
	Register(&Experiment{
		ID:   "fig5-trap",
		Ref:  "§2.4 Fig. 5",
		Desc: "Two links, two TCPs each, one multipath flow. A top-link TCP leaves and later returns: COUPLED gets trapped on the top link; MPTCP re-balances.",
		Run:  runFig5,
	})
}

func runFig2(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig2-triangle")
	rtt := 100 * sim.Millisecond
	warm, end := cfg.dur(60*sim.Second), cfg.dur(260*sim.Second)

	table := Table{
		Title: "Per-flow throughput (Mb/s); optimal = 12 (one-hop only), even split = 8",
		Cols:  []string{"algorithm", "flowA", "flowB", "flowC", "mean", "one-hop share"},
	}
	cells := RunCells(cfg, len(algSet()), func(cell Config, i int) CellResult {
		alg := algSet()[i]
		w := newWorld(cell.Seed)
		links := make([]*topo.Duplex, 3)
		for i := range links {
			links[i] = topo.NewDuplex("tri"+string(rune('A'+i)), 12, rtt/2, topo.BDPPackets(12, rtt))
		}
		conns := make([]*transport.Conn, 3)
		for i := range conns {
			paths := []transport.Path{
				topo.PathThrough(links[i]),                       // one-hop
				topo.PathThrough(links[(i+1)%3], links[(i+2)%3]), // two-hop
			}
			conns[i] = transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: paths})
			conns[i].Start()
		}
		rates := w.measure(conns, warm, end)
		var oneHop, total int64
		for _, c := range conns {
			oneHop += c.SubflowDelivered(0)
			total += c.SubflowDelivered(0) + c.SubflowDelivered(1)
		}
		mean := (rates[0] + rates[1] + rates[2]) / 3
		share := float64(oneHop) / float64(total)
		return CellResult{
			Row: []string{alg.Name(), f2(rates[0]), f2(rates[1]), f2(rates[2]), f2(mean), f2(share)},
			Metrics: map[string]float64{
				metricName(alg, "mean_mbps"):    mean,
				metricName(alg, "onehop_share"): share,
			},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	res.note("paper: even split gives 8 Mb/s/flow, EWTCP ~8.5, optimal (one-hop only) 12; COUPLED/MPTCP should approach the optimum")
	return res
}

func runFig3(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig3-mesh")
	rtt := 100 * sim.Millisecond
	caps := []float64{5, 12, 10, 3}
	warm, end := cfg.dur(60*sim.Second), cfg.dur(260*sim.Second)

	table := Table{
		Title: "Per-flow totals (Mb/s) and link loss-rate spread; paper: EWTCP (11,11,8) vs COUPLED (10,10,10)",
		Cols:  []string{"algorithm", "flowA", "flowB", "flowC", "max/min link loss"},
	}
	cells := RunCells(cfg, len(algSet()), func(cell Config, i int) CellResult {
		alg := algSet()[i]
		w := newWorld(cell.Seed)
		links := make([]*topo.Duplex, 4)
		for i, c := range caps {
			links[i] = topo.NewDuplex("mesh"+string(rune('0'+i)), c, rtt/2, topo.BDPPackets(c, rtt))
		}
		conns := make([]*transport.Conn, 3)
		for i := range conns {
			paths := []transport.Path{
				topo.PathThrough(links[i]),
				topo.PathThrough(links[i+1]),
			}
			conns[i] = transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: paths})
			conns[i].Start()
		}
		rates := w.measure(conns, warm, end)
		lo, hi := 1.0, 0.0
		for _, d := range links {
			p := d.AB.Stats.LossFraction()
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		spread := 0.0
		if lo > 0 {
			spread = hi / lo
		}
		return CellResult{
			Row: []string{alg.Name(), f2(rates[0]), f2(rates[1]), f2(rates[2]), f1(spread)},
			Metrics: map[string]float64{
				metricName(alg, "flowA_mbps"):  rates[0],
				metricName(alg, "flowC_mbps"):  rates[2],
				metricName(alg, "loss_spread"): spread,
			},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	return res
}

func runSec23(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("sec23-wifi3g-model")
	warm, end := cfg.dur(50*sim.Second), cfg.dur(350*sim.Second)

	// Ample-capacity links with exogenous loss, per the worked example.
	mkWiFi := func() *topo.Duplex {
		d := topo.NewDuplexPkt("wifi", 5000, 5*sim.Millisecond, 5000)
		d.AB.LossRate = 0.04
		return d
	}
	mk3G := func() *topo.Duplex {
		d := topo.NewDuplexPkt("3g", 5000, 50*sim.Millisecond, 5000)
		d.AB.LossRate = 0.01
		return d
	}

	flows := []struct {
		name   string
		metric string
		alg    func() core.Algorithm
		both   bool
	}{
		{"TCP-WiFi", "tcp_wifi_pktps", func() core.Algorithm { return core.Regular{} }, false},
		{"TCP-3G", "tcp_3g_pktps", func() core.Algorithm { return core.Regular{} }, false},
		{"EWTCP", "ewtcp_pktps", func() core.Algorithm { return core.EWTCP{} }, true},
		{"COUPLED", "coupled_pktps", func() core.Algorithm { return core.Coupled{} }, true},
		{"MPTCP", "mptcp_pktps", func() core.Algorithm { return &core.MPTCP{} }, true},
	}
	table := Table{
		Title: "Throughput under fixed loss (pkt/s); paper: TCP-WiFi 707, TCP-3G 141, EWTCP 424, COUPLED 141, MPTCP >= 707",
		Cols:  []string{"flow", "pkt/s"},
	}
	cells := RunCells(cfg, len(flows), func(cell Config, i int) CellResult {
		fl := flows[i]
		w := newWorld(cell.Seed)
		var paths []transport.Path
		switch {
		case fl.both:
			paths = []transport.Path{topo.PathThrough(mkWiFi()), topo.PathThrough(mk3G())}
		case fl.name == "TCP-WiFi":
			paths = []transport.Path{topo.PathThrough(mkWiFi())}
		default:
			paths = []transport.Path{topo.PathThrough(mk3G())}
		}
		c := transport.NewConn(w.n, transport.Config{Alg: fl.alg(), Paths: paths})
		c.Start()
		w.s.RunUntil(warm)
		base := c.Delivered()
		w.s.RunUntil(end)
		rate := pktps(c.Delivered()-base, end-warm)
		return CellResult{
			Row:     []string{fl.name, f0(rate)},
			Metrics: map[string]float64{fl.metric: rate},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	res.note("√(2/p)/RTT predicts 707 and 141 pkt/s; packet-level rates run lower (timeouts at 4%% loss) but the ordering EWTCP in-between, COUPLED at 3G rate, MPTCP near best-path must hold")
	return res
}

func runFig5(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig5-trap")
	rtt := 50 * sim.Millisecond
	phase := cfg.dur(100 * sim.Second)

	table := Table{
		Title: "Multipath throughput (Mb/s) per phase: A = 2 TCPs/link, B = top TCP gone, C = top TCP back",
		Cols:  []string{"algorithm", "phaseA", "phaseB", "phaseC", "C recovery vs A"},
	}
	cells := RunCells(cfg, len(algSet()), func(cell Config, i int) CellResult {
		alg := algSet()[i]
		w := newWorld(cell.Seed)
		top := topo.NewDuplex("top", 10, rtt/2, topo.BDPPackets(10, rtt))
		bot := topo.NewDuplex("bot", 10, rtt/2, topo.BDPPackets(10, rtt))
		mkTCP := func(d *topo.Duplex) *transport.Conn {
			c := transport.NewConn(w.n, transport.Config{Paths: []transport.Path{topo.PathThrough(d)}})
			c.Start()
			return c
		}
		top1 := mkTCP(top)
		mkTCP(top)
		mkTCP(bot)
		mkTCP(bot)
		mp := transport.NewConn(w.n, transport.Config{
			Alg:   freshAlg(alg),
			Paths: []transport.Path{topo.PathThrough(top), topo.PathThrough(bot)},
		})
		mp.Start()

		w.s.At(phase, func() { top1.Stop() })
		w.s.At(2*phase, func() { mkTCP(top) })

		sampleAt := func(t sim.Time) int64 {
			w.s.RunUntil(t)
			return mp.Delivered()
		}
		// Skip the first third of each phase as transient.
		third := phase / 3
		a0 := sampleAt(third)
		a1 := sampleAt(phase)
		b0 := sampleAt(phase + third)
		b1 := sampleAt(2 * phase)
		c0 := sampleAt(2*phase + third)
		c1 := sampleAt(3 * phase)
		ra := mbps(a1-a0, phase-third)
		rb := mbps(b1-b0, phase-third)
		rc := mbps(c1-c0, phase-third)
		rec := rc / ra
		return CellResult{
			Row: []string{alg.Name(), f2(ra), f2(rb), f2(rc), f2(rec)},
			Metrics: map[string]float64{
				metricName(alg, "phaseA_mbps"): ra,
				metricName(alg, "phaseB_mbps"): rb,
				metricName(alg, "phaseC_mbps"): rc,
			},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	res.note("after the departed TCP returns (phase C), a trapped algorithm is left with less than it had in phase A; MPTCP's per-path probe cap lets it re-balance")
	return res
}

// freshAlg returns a new instance of the same algorithm type, since
// stateful algorithms must not be shared across connections.
func freshAlg(a core.Algorithm) core.Algorithm {
	return newAlg(a.Name())
}

func metricName(a core.Algorithm, suffix string) string {
	switch a.(type) {
	case *core.MPTCP:
		return "mptcp_" + suffix
	case core.EWTCP:
		return "ewtcp_" + suffix
	case core.Coupled:
		return "coupled_" + suffix
	case core.SemiCoupled:
		return "semicoupled_" + suffix
	default:
		return "tcp_" + suffix
	}
}
