package exp

import (
	"reflect"
	"testing"

	"mptcp/internal/cc"
	"mptcp/internal/scenario"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

// TestSchedGridComplete runs the full scheduler grid at tiny scale and
// checks its shape: one Record per (scheduler spec × algorithm ×
// topology × recvbuf) cell, in deterministic cell order, with the
// countermeasure spec present and its activity counters populated only
// where they can fire.
func TestSchedGridComplete(t *testing.T) {
	e, ok := Get("schedgrid")
	if !ok {
		t.Fatal("schedgrid not registered")
	}
	res := e.Run(Config{Seed: 9, Scale: 0.02})
	specs, algs, bufs := schedSpecs(), cc.Names(), schedBufs()
	want := len(specs) * len(algs) * 3 * len(bufs)
	if len(res.Records) != want {
		t.Fatalf("got %d records, want %d", len(res.Records), want)
	}
	idx := 0
	seenCM := false
	for _, spec := range specs {
		for _, alg := range algs {
			for _, tp := range []string{"torus", "dualhomed", "wifi3g"} {
				for _, buf := range bufs {
					r := res.Records[idx]
					idx++
					if r.Scheduler != spec || r.Algorithm != alg || r.Topology != tp || r.RecvBuf != buf {
						t.Fatalf("record %d = {%s %s %s %d}, want {%s %s %s %d}",
							idx-1, r.Scheduler, r.Algorithm, r.Topology, r.RecvBuf, spec, alg, tp, buf)
					}
					for _, k := range []string{"mbps", "jain", "opp_retx", "penalties"} {
						if _, ok := r.Metrics[k]; !ok {
							t.Errorf("record %d misses metric %s", idx-1, k)
						}
					}
					if spec == "minrtt+otr+pen" && (r.Metrics["opp_retx"] > 0 || r.Metrics["penalties"] > 0) {
						seenCM = true
					}
					if spec == "minrtt" && (r.Metrics["opp_retx"] > 0 || r.Metrics["penalties"] > 0) {
						t.Errorf("plain minrtt cell reports countermeasure activity: %+v", r)
					}
				}
			}
		}
	}
	if !seenCM {
		t.Error("no countermeasure cell reported any opp_retx/penalties activity")
	}
}

// TestSchedGridFilterKeepsSeeds pins the -sched filter contract: a
// filtered run reproduces exactly the corresponding cells of the full
// grid, because cell seeds index the full grid, not the selection.
func TestSchedGridFilterKeepsSeeds(t *testing.T) {
	e, _ := Get("schedgrid")
	full := e.Run(Config{Seed: 4, Scale: 0.02})
	one := e.Run(Config{Seed: 4, Scale: 0.02, Sched: "blest"})
	var want []Record
	for _, r := range full.Records {
		if r.Scheduler == "blest" {
			want = append(want, r)
		}
	}
	if len(one.Records) == 0 || !reflect.DeepEqual(one.Records, want) {
		t.Errorf("filtered records diverge from the full grid's blest cells (%d vs %d)",
			len(one.Records), len(want))
	}
}

// TestCountermeasuresBeatPlainMinRTTOnWiFi3G is the acceptance pin for
// the §6 countermeasures: on the busy-wireless cell (lossy WiFi beside
// the deeply overbuffered 3G radio) with the tight 16-packet shared
// receive buffer, minrtt+otr+pen must clearly out-deliver plain minrtt
// under the identical cell seed. At this scale the measured gap is
// ~7× (0.3 vs 2.3 Mb/s); the assertion keeps a wide margin so only a
// real regression — not realisation noise — trips it.
func TestCountermeasuresBeatPlainMinRTTOnWiFi3G(t *testing.T) {
	cell := Config{Seed: CellSeed(42, 0), Scale: 0.1}.norm()
	plain := schedWiFi3G(cell, parseSchedSpec("minrtt"), newAlg("MPTCP"), 16)
	cured := schedWiFi3G(cell, parseSchedSpec("minrtt+otr+pen"), newAlg("MPTCP"), 16)
	if cured.oppRetx == 0 || cured.penalties == 0 {
		t.Errorf("countermeasures idle on the blocking cell: otr=%v pen=%v", cured.oppRetx, cured.penalties)
	}
	if plain.oppRetx != 0 || plain.penalties != 0 {
		t.Errorf("plain minrtt reports countermeasure activity: %+v", plain)
	}
	if cured.mbps < 2*plain.mbps {
		t.Errorf("minrtt+otr+pen = %.3f Mb/s vs plain minrtt = %.3f Mb/s; want ≥ 2× under the constrained buffer",
			cured.mbps, plain.mbps)
	}
}

// TestSchedulersSurviveHandover crosses the scheduler axis with the
// scenario engine: every registered scheduler (and the countermeasure
// spec) must keep an MPTCP flow alive through the handover script —
// WiFi dies, 3G congests, a new WiFi appears — on the busy-wireless
// topology, still delivering in the final tenth of the run.
func TestSchedulersSurviveHandover(t *testing.T) {
	end := 40 * sim.Second
	for _, spec := range schedSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			w := newWorld(77)
			wl := busyWireless()
			ps := parseSchedSpec(spec)
			mp := transport.NewConn(w.n, transport.Config{
				Alg:       newAlg("MPTCP"),
				Sched:     ps.mk(),
				SchedOpts: ps.opts,
				Paths:     wl.Paths(),
			})
			mp.Start()
			env := &scenario.Env{Sim: w.s, Net: w.n, Links: []*topo.Duplex{wl.WiFi, wl.G3}}
			sc := scenario.MustBuild("handover", end)
			sc.MustInstall(env)
			w.s.RunUntil(end - end/10)
			tail := mp.Delivered()
			w.s.RunUntil(end)
			if got := mp.Delivered() - tail; got == 0 {
				t.Errorf("%s: no delivery in the final tenth after handover (total %d)", spec, mp.Delivered())
			}
		})
	}
}
