package exp

import (
	"reflect"
	"testing"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/transport"
	"mptcp/internal/workload"
)

// appGridRecord finds the appgrid record for one cell.
func appGridRecord(t *testing.T, res *Result, wl, spec, alg, topo string) Record {
	t.Helper()
	for _, r := range res.Records {
		if r.Workload == wl && r.Scheduler == spec && r.Algorithm == alg && r.Topology == topo {
			return r
		}
	}
	t.Fatalf("no record for %s/%s/%s/%s", wl, spec, alg, topo)
	return Record{}
}

// TestAppGridVideoCountermeasuresCutRebuffering is the acceptance pin
// for the application grid: on the busy-wireless column under the
// handover script, the §6 countermeasures must translate into an
// application-visible win — the video workload rebuffers less and
// completes more chunks than under plain minrtt, for both algorithms,
// at the identical cell seeds. At this seed/scale the measured gaps are
// wide (rebuffer ratio 0.71 → 0.54 for MPTCP, 0.80 → 0.64 for OLIA;
// completed chunks 17 → 30 and 13 → 23), so the margins below trip only
// on a real regression, not realisation noise.
func TestAppGridVideoCountermeasuresCutRebuffering(t *testing.T) {
	e, ok := Get("appgrid")
	if !ok {
		t.Fatal("appgrid not registered")
	}
	res := e.Run(Config{Seed: 42, Scale: 0.2, Workload: "video"})
	for _, alg := range appAlgs() {
		plain := appGridRecord(t, res, "video", "minrtt", alg, "wifi3g")
		cured := appGridRecord(t, res, "video", "minrtt+otr+pen", alg, "wifi3g")
		pr, pok := plain.Metrics["rebuffer_ratio"]
		cr, cok := cured.Metrics["rebuffer_ratio"]
		if !pok || !cok {
			t.Fatalf("%s: rebuffer_ratio missing (plain %v, cured %v)", alg, pok, cok)
		}
		if cr > pr-0.1 {
			t.Errorf("%s: countermeasures rebuffer ratio %.3f vs plain %.3f; want lower by ≥ 0.1", alg, cr, pr)
		}
		if cc, pc := cured.Metrics["completed"], plain.Metrics["completed"]; cc < 1.5*pc {
			t.Errorf("%s: countermeasures completed %.0f chunks vs plain %.0f; want ≥ 1.5×", alg, cc, pc)
		}
	}
}

// TestAppGridPLTHandComputed pins the page-load-time definition against
// a timeline computed by hand, through the real transport: a two-object
// page (4 packets each, the second depending on the first) over the
// fleet test's link — 1000 pkt/s, 45 ms propagation each way, initial
// cwnd 4, jitter off. Each object is one flow whose FCT is
//
//	4·dataTx + 45 ms + ackTx + 45 ms
//
// (dataTx = 1500·8/12e6 s, ackTx = 40·8/12e6 s), the dependent object
// starts the instant its dependency completes, and the PLT is exactly
// two FCTs. The spawner runs through a ConnPool, so the dependent
// object recycles the completing connection inside OnComplete — the
// pooled-workload path the appgrid cells use.
func TestAppGridPLTHandComputed(t *testing.T) {
	s := sim.New(7)
	n := netsim.NewNet(s)
	fwd := netsim.NewLinkPktPerSec("fwd", 1000, 45*sim.Millisecond, 100)
	rev := netsim.NewLinkPktPerSec("rev", 1000, 45*sim.Millisecond, 100)
	paths := []transport.Path{{Fwd: []*netsim.Link{fwd}, Rev: []*netsim.Link{rev}}}
	pool := transport.NewConnPool(n)
	env := &workload.Env{Sim: s, End: 10 * sim.Second}
	env.Spawn = func(pkts int64, done func()) {
		var c *transport.Conn
		c = pool.Get(transport.Config{
			Paths:       paths,
			DataPackets: pkts,
			InitialCwnd: 4,
			SendJitter:  -1,
			OnComplete: func() {
				pool.Put(c)
				done()
			},
		})
		c.Start()
	}
	var plt sim.Time
	workload.FetchPage(env, workload.Page{Objects: []workload.Object{
		{Pkts: 4},
		{Pkts: 4, Deps: []int{0}},
	}}, func(d sim.Time) { plt = d })
	s.RunUntil(10 * sim.Second)

	dataBits, ackBits := float64(netsim.DataPacketSize*8), float64(netsim.AckPacketSize*8)
	dataTx := sim.Time(dataBits / 12e6 * float64(sim.Second))
	ackTx := sim.Time(ackBits / 12e6 * float64(sim.Second))
	fct := 4*dataTx + 45*sim.Millisecond + ackTx + 45*sim.Millisecond
	if want := 2 * fct; plt != want {
		t.Fatalf("PLT = %v, want exactly %v (2 × hand-computed FCT)", plt, want)
	}
	if pool.Reuses != 1 {
		t.Errorf("pool reuses = %d, want 1 (dependent object recycles the root's connection)", pool.Reuses)
	}
}

// TestAppGridCompletenessAndOrder: the full grid has one record per
// (workload × scheduler × algorithm × topology) in workload-major cell
// order, every record names its workload and carries the common
// accounting metrics.
func TestAppGridCompletenessAndOrder(t *testing.T) {
	e, _ := Get("appgrid")
	res := e.Run(Config{Seed: 5, Scale: 0.02})
	wls, specs, algs, topos := workload.Names(), appSchedSpecs(), appAlgs(), appTopos()
	want := len(wls) * len(specs) * len(algs) * len(topos)
	if len(res.Records) != want {
		t.Fatalf("%d records, want %d", len(res.Records), want)
	}
	i := 0
	for _, wl := range wls {
		for _, spec := range specs {
			for _, alg := range algs {
				for _, tp := range topos {
					r := res.Records[i]
					i++
					if r.Workload != wl || r.Scheduler != spec || r.Algorithm != alg || r.Topology != tp.name {
						t.Fatalf("record %d is %s/%s/%s/%s, want %s/%s/%s/%s",
							i-1, r.Workload, r.Scheduler, r.Algorithm, r.Topology, wl, spec, alg, tp.name)
					}
					if r.Scenario != tp.scenario || r.RecvBuf != appRecvBuf {
						t.Errorf("record %d: scenario %q recvbuf %d", i-1, r.Scenario, r.RecvBuf)
					}
					for _, m := range []string{"issued", "completed", "incomplete", "goodput_mbps"} {
						if _, ok := r.Metrics[m]; !ok {
							t.Errorf("record %d (%s/%s) lacks %s", i-1, wl, tp.name, m)
						}
					}
				}
			}
		}
	}
}

// TestAppGridWorkloadFilterKeepsSeeds: a -workload filter must select a
// subset of cells without renumbering their seeds — the filtered run's
// records are bit-identical to the corresponding records of the full
// grid.
func TestAppGridWorkloadFilterKeepsSeeds(t *testing.T) {
	e, _ := Get("appgrid")
	cfg := Config{Seed: 5, Scale: 0.02}
	full := e.Run(cfg)
	cfg.Workload = "video"
	filtered := e.Run(cfg)
	var sub []Record
	for _, r := range full.Records {
		if r.Workload == "video" {
			sub = append(sub, r)
		}
	}
	if len(filtered.Records) == 0 || !reflect.DeepEqual(filtered.Records, sub) {
		t.Fatalf("filtered records (%d) diverge from the full grid's video subset (%d)",
			len(filtered.Records), len(sub))
	}
}

// TestAppGridUnknownWorkloadPanics: a bad -workload must fail loudly,
// not silently run zero cells.
func TestAppGridUnknownWorkloadPanics(t *testing.T) {
	e, _ := Get("appgrid")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload did not panic")
		}
	}()
	e.Run(Config{Seed: 1, Scale: 0.02, Workload: "bogus"})
}
