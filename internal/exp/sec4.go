package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mptcp/internal/core"
	"mptcp/internal/metrics"
	"mptcp/internal/model"
	"mptcp/internal/netsim"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/traffic"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:   "table-fattree",
		Ref:  "§4 FatTree table",
		Desc: "FatTree, TP1/TP2/TP3 per-host throughput. Paper (Mb/s): single-path 51/94/60, EWTCP 92/92.5/99, MPTCP 95/97/99.",
		Run:  runTableFatTree,
	})
	Register(&Experiment{
		ID:   "fig12-paths",
		Ref:  "§4 Fig. 12",
		Desc: "FatTree TP1: MPTCP throughput (% of optimal) vs number of paths used; ~8 paths reach ~90% where single-path TCP sits near 50%.",
		Run:  runFig12,
	})
	Register(&Experiment{
		ID:   "fig13-dist",
		Ref:  "§4 Fig. 13",
		Desc: "FatTree TP1 distributions: per-flow throughput rank plot and per-link loss-rate rank plots (core vs access links).",
		Run:  runFig13,
	})
	Register(&Experiment{
		ID:   "table-bcube",
		Ref:  "§4 BCube table",
		Desc: "BCube, TP1/TP2/TP3 per-host throughput. Paper (Mb/s): single-path 64.5/297/78, EWTCP 84/229/139, MPTCP 86.5/272/135.",
		Run:  runTableBCube,
	})
}

// dcSizes picks the data-centre scale: the paper's sizes at Scale >= 0.5,
// reduced fabrics below that (for tests and quick benches).
func dcSizes(cfg Config) (ftK, bcN, bcK int) {
	if cfg.Scale >= 0.5 {
		return 8, 5, 2
	}
	return 4, 3, 2
}

// dcFlows builds the connections for a (src,dst) flow list.
type pathsFn func(rng *rand.Rand, src, dst int) []transport.Path

func startFlows(w *world, rng *rand.Rand, src, dst []int, alg core.Algorithm, paths pathsFn) []*transport.Conn {
	conns := make([]*transport.Conn, 0, len(src))
	for i := range src {
		p := paths(rng, src[i], dst[i])
		if len(p) == 0 {
			continue
		}
		var a core.Algorithm
		if len(p) == 1 {
			a = core.Regular{}
		} else {
			a = freshAlg(alg)
		}
		c := transport.NewConn(w.n, transport.Config{Alg: a, Paths: p})
		// Desynchronise starts across a few milliseconds.
		w.s.At(sim.Time(rng.Int63n(int64(5*sim.Millisecond))), c.Start)
		conns = append(conns, c)
	}
	return conns
}

// perHost sums flow rates by source host and returns the mean across
// hosts that have at least one flow. The final sum runs in sorted host
// order: float addition is not associative, so summing in Go's random
// map-iteration order would wobble the metric's last bits from run to
// run and break the bit-identical determinism guarantee.
func perHost(src []int, rates []float64) float64 {
	byHost := map[int]float64{}
	for i, s := range src {
		byHost[s] += rates[i]
	}
	if len(byHost) == 0 {
		return 0
	}
	hosts := make([]int, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	var t float64
	for _, h := range hosts {
		t += byHost[h]
	}
	return t / float64(len(byHost))
}

// dcPatterns returns the three traffic patterns of §4 for n hosts.
// TP2's destination choice is topology-specific, so it is passed in.
func dcPatterns(rng *rand.Rand, n int, tp2 func() (src, dst []int)) map[string]func() (src, dst []int) {
	return map[string]func() (src, dst []int){
		"TP1": func() (src, dst []int) {
			d := traffic.Permutation(rng, n)
			for s, t := range d {
				src = append(src, s)
				dst = append(dst, t)
			}
			return src, dst
		},
		"TP2": tp2,
		"TP3": func() (src, dst []int) { return traffic.SparseFlows(rng, n, 0.3) },
	}
}

// dcAlgCase is one row of the §4 tables.
type dcAlgCase struct {
	name  string
	alg   core.Algorithm
	paths int
}

var dcTPNames = []string{"TP1", "TP2", "TP3"}

func runTableFatTree(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("table-fattree")
	k, _, _ := dcSizes(cfg)
	warm, end := cfg.dur(4*sim.Second), cfg.dur(10*sim.Second)

	table := Table{
		Title: "FatTree per-host throughput (Mb/s); paper: single 51/94/60, EWTCP 92/92.5/99, MPTCP 95/97/99",
		Cols:  []string{"algorithm", "TP1", "TP2", "TP3"},
	}
	cases := []dcAlgCase{
		{"SINGLE-PATH", core.Regular{}, 1},
		{"EWTCP", core.EWTCP{}, 8},
		{"MPTCP", &core.MPTCP{}, 8},
	}
	// One cell per (algorithm case, traffic pattern) pair.
	vals := RunCells(cfg, len(cases)*len(dcTPNames), func(cell Config, idx int) float64 {
		tc := cases[idx/len(dcTPNames)]
		tpName := dcTPNames[idx%len(dcTPNames)]
		w := newWorld(cell.Seed)
		// Workload randomness derives from the base seed, not the cell
		// seed: every algorithm must be measured on the identical
		// traffic matrix for the table to compare algorithms.
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		ft := topo.NewFatTree(topo.FatTreeConfig{K: k})
		n := ft.NumHosts()
		tp2 := func() (src, dst []int) { return traffic.OneToMany(rng, n, 12) }
		src, dst := dcPatterns(rng, n, tp2)[tpName]()
		pf := func(rng *rand.Rand, s, d int) []transport.Path {
			if tc.paths == 1 {
				return []transport.Path{ft.ECMPPath(rng, s, d)}
			}
			return ft.Paths(rng, s, d, tc.paths)
		}
		conns := startFlows(w, rng, src, dst, freshAlg(tc.alg), pf)
		rates := w.measure(conns, warm, end)
		return perHost(src, rates)
	})
	for ci, tc := range cases {
		row := []string{tc.name}
		for ti, tpName := range dcTPNames {
			v := vals[ci*len(dcTPNames)+ti]
			row = append(row, f1(v))
			res.Metrics[tc.name+"_"+tpName+"_mbps"] = v
		}
		table.Rows = append(table.Rows, row)
	}
	res.Tables = append(res.Tables, table)
	if k != 8 {
		res.note("scaled-down fabric (k=%d); run with -scale 1 for the paper's 128-host FatTree", k)
	}
	return res
}

func runFig12(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig12-paths")
	k, _, _ := dcSizes(cfg)
	warm, end := cfg.dur(4*sim.Second), cfg.dur(10*sim.Second)
	maxPaths := 8
	if k < 8 {
		maxPaths = 4
	}

	fig := Figure{
		Title:  "Fig. 12: throughput (% of optimal) vs paths used, FatTree TP1",
		XLabel: "paths used",
		YLabel: "% of optimal",
	}
	// One cell per path count m = 1..maxPaths.
	pcts := RunCells(cfg, maxPaths, func(cell Config, idx int) float64 {
		m := idx + 1
		w := newWorld(cell.Seed)
		// Base-seed workload: every path count runs the same permutation
		// (and the m=1 TCP reference stays comparable across the curve).
		rng := rand.New(rand.NewSource(cfg.Seed + 11))
		ft := topo.NewFatTree(topo.FatTreeConfig{K: k})
		d := traffic.Permutation(rng, ft.NumHosts())
		var src, dst []int
		for s, t := range d {
			src = append(src, s)
			dst = append(dst, t)
		}
		pf := func(rng *rand.Rand, s, dd int) []transport.Path { return ft.Paths(rng, s, dd, m) }
		conns := startFlows(w, rng, src, dst, &core.MPTCP{}, pf)
		rates := w.measure(conns, warm, end)
		return perHost(src, rates) / 100 * 100 // NIC optimal is 100 Mb/s
	})
	mp := Curve{Name: "MPTCP"}
	tcp := Curve{Name: "TCP (ECMP), for reference"}
	for i, pct := range pcts {
		m := i + 1
		mp.Pts = append(mp.Pts, Point{X: float64(m), Y: pct})
		tcp.Pts = append(tcp.Pts, Point{X: float64(m), Y: pcts[0]})
		res.Metrics[fmtInt("mptcp_paths", m)] = pct
	}
	fig.Curves = append(fig.Curves, tcp, mp)
	res.Figures = append(res.Figures, fig)
	res.note("the paper needs ~8 paths for ~90%% utilisation on TP1; one path (≈ECMP) sits near 50%%")
	return res
}

func fmtInt(prefix string, v int) string { return fmt.Sprintf("%s_%d", prefix, v) }

func runFig13(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig13-dist")
	k, _, _ := dcSizes(cfg)
	warm, end := cfg.dur(4*sim.Second), cfg.dur(10*sim.Second)

	figT := Figure{
		Title:  "Fig. 13 (left): per-flow throughput, ranked",
		XLabel: "rank of flow",
		YLabel: "Mb/s",
	}
	figL := Figure{
		Title:  "Fig. 13 (right): per-link loss rate, ranked",
		XLabel: "rank of link",
		YLabel: "loss %",
	}
	cases := []dcAlgCase{
		{"Single Path", core.Regular{}, 1},
		{"EWTCP", core.EWTCP{}, 8},
		{"MPTCP", &core.MPTCP{}, 8},
	}
	type distOut struct {
		thr       Curve
		loss      []Curve
		jain, p10 float64
	}
	cells := RunCells(cfg, len(cases), func(cell Config, idx int) distOut {
		tc := cases[idx]
		w := newWorld(cell.Seed)
		// Base-seed workload: rank curves compare algorithms on the
		// same permutation.
		rng := rand.New(rand.NewSource(cfg.Seed + 13))
		ft := topo.NewFatTree(topo.FatTreeConfig{K: k})
		d := traffic.Permutation(rng, ft.NumHosts())
		var src, dst []int
		for s, t := range d {
			src = append(src, s)
			dst = append(dst, t)
		}
		pf := func(rng *rand.Rand, s, dd int) []transport.Path {
			if tc.paths == 1 {
				return []transport.Path{ft.ECMPPath(rng, s, dd)}
			}
			return ft.Paths(rng, s, dd, tc.paths)
		}
		conns := startFlows(w, rng, src, dst, freshAlg(tc.alg), pf)
		rates := w.measure(conns, warm, end)

		out := distOut{
			thr:  Curve{Name: tc.name},
			jain: model.JainIndex(rates),
			p10:  metrics.Percentile(rates, 10),
		}
		for i, v := range metrics.Rank(rates) {
			out.thr.Pts = append(out.thr.Pts, Point{X: float64(i + 1), Y: v})
		}
		lossRank := func(links []*netsim.Link) []float64 {
			var vals []float64
			for _, l := range links {
				vals = append(vals, l.Stats.LossFraction()*100)
			}
			return metrics.Rank(vals)
		}
		for _, grp := range []struct {
			label string
			links []*netsim.Link
		}{{"core", ft.CoreLinks()}, {"access", ft.AccessLinks()}} {
			lc := Curve{Name: tc.name + "/" + grp.label}
			for i, v := range lossRank(grp.links) {
				if v == 0 && i > 4 {
					break // tail of lossless links adds nothing
				}
				lc.Pts = append(lc.Pts, Point{X: float64(i + 1), Y: v})
			}
			out.loss = append(out.loss, lc)
		}
		return out
	})
	for i, tc := range cases {
		figT.Curves = append(figT.Curves, cells[i].thr)
		figL.Curves = append(figL.Curves, cells[i].loss...)
		// Metric keys must be whitespace-free (testing.B.ReportMetric).
		key := strings.ReplaceAll(tc.name, " ", "")
		res.Metrics[key+"_jain"] = cells[i].jain
		res.Metrics[key+"_p10_mbps"] = cells[i].p10
	}
	// Keep rank curves readable: subsample to at most 32 points each.
	for _, f := range []*Figure{&figT, &figL} {
		for ci := range f.Curves {
			f.Curves[ci].Pts = subsample(f.Curves[ci].Pts, 32)
		}
	}
	res.Figures = append(res.Figures, figT, figL)
	res.note("MPTCP allocates throughput more fairly than EWTCP and far more than single-path (compare Jain metrics), and keeps core-link losses balanced")
	return res
}

func subsample(pts []Point, max int) []Point {
	if len(pts) <= max {
		return pts
	}
	out := make([]Point, 0, max)
	step := float64(len(pts)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, pts[int(float64(i)*step)])
	}
	return out
}

func runTableBCube(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("table-bcube")
	_, bn, bk := dcSizes(cfg)
	warm, end := cfg.dur(4*sim.Second), cfg.dur(10*sim.Second)

	table := Table{
		Title: "BCube per-host throughput (Mb/s); paper: single 64.5/297/78, EWTCP 84/229/139, MPTCP 86.5/272/135",
		Cols:  []string{"algorithm", "TP1", "TP2", "TP3"},
	}
	cases := []dcAlgCase{
		{"SINGLE-PATH", core.Regular{}, 1},
		{"EWTCP", core.EWTCP{}, 3},
		{"MPTCP", &core.MPTCP{}, 3},
	}
	vals := RunCells(cfg, len(cases)*len(dcTPNames), func(cell Config, idx int) float64 {
		tc := cases[idx/len(dcTPNames)]
		tpName := dcTPNames[idx%len(dcTPNames)]
		w := newWorld(cell.Seed)
		// Base-seed workload, as in runTableFatTree.
		rng := rand.New(rand.NewSource(cfg.Seed + 17))
		bc := topo.NewBCube(topo.BCubeConfig{N: bn, K: bk})
		n := bc.NumHosts()
		// TP2 on BCube: every host replicates to its one-hop
		// neighbours at all levels (the paper's "replicas onto
		// hosts physically close in the network").
		tp2 := func() (src, dst []int) {
			for h := 0; h < n; h++ {
				for l := 0; l < bc.Levels(); l++ {
					for _, nb := range bc.Neighbors(h, l) {
						src = append(src, h)
						dst = append(dst, nb)
					}
				}
			}
			return src, dst
		}
		src, dst := dcPatterns(rng, n, tp2)[tpName]()
		pf := func(rng *rand.Rand, s, d int) []transport.Path {
			if tc.paths == 1 {
				return []transport.Path{bc.ECMPPath(rng, s, d)}
			}
			return bc.Paths(rng, s, d, tc.paths)
		}
		conns := startFlows(w, rng, src, dst, freshAlg(tc.alg), pf)
		rates := w.measure(conns, warm, end)
		return perHost(src, rates)
	})
	for ci, tc := range cases {
		row := []string{tc.name}
		for ti, tpName := range dcTPNames {
			v := vals[ci*len(dcTPNames)+ti]
			row = append(row, f1(v))
			res.Metrics[tc.name+"_"+tpName+"_mbps"] = v
		}
		table.Rows = append(table.Rows, row)
	}
	res.Tables = append(res.Tables, table)
	res.note("three phenomena (§4): multipath exploits all 3 NICs (TP3); EWTCP ignores congestion differences on unequal-hop paths (TP2); single shortest paths beat multipath when the short paths are also least congested (TP2)")
	if bn != 5 {
		res.note("scaled-down BCube(%d,%d); run with -scale 1 for the paper's 125-host BCube(5,2)", bn, bk)
	}
	return res
}
