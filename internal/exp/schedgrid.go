package exp

import (
	"fmt"
	"strings"

	"mptcp/internal/cc"
	"mptcp/internal/core"
	"mptcp/internal/model"
	"mptcp/internal/sched"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:  "schedgrid",
		Ref: "sched registry × §6",
		Desc: "Packet-scheduler grid: every scheduler spec (incl. minrtt+otr+pen, the §6 countermeasures) × every " +
			"algorithm × {torus, dual-homed server, WiFi+3G} × a shared-receive-buffer sweep; per-cell throughput, " +
			"fairness and countermeasure activity.",
		Run: runSchedGrid,
	})
}

// schedSpecs is the scheduler axis of the grid: every registered
// scheduler plus the paper's §6 configuration — minRTT with both
// receive-buffer countermeasures composed on. New registry entries
// append before the composed spec, so adding a scheduler file shifts
// only the countermeasure cells' seeds.
func schedSpecs() []string {
	return append(sched.Names(), "minrtt+otr+pen")
}

// schedBufs is the shared-receive-buffer axis, in packets: 0 is the
// unconstrained default (1<<20), 64 binds mildly on the overbuffered
// paths, 16 forces head-of-line blocking — the regime the §6
// countermeasures exist for.
func schedBufs() []int64 { return []int64{0, 64, 16} }

// schedWarm/schedEnd are the (unscaled) measurement window of one cell:
// long enough for the blocking dynamics to reach steady state, short
// enough that the full grid stays affordable.
const (
	schedWarm = 5 * sim.Second
	schedEnd  = 45 * sim.Second
)

// schedTopo is one topology column of the scheduler grid. run builds
// the cell's world, drives the multipath flows with the given scheduler
// spec, congestion controller and shared receive buffer, and reports
// the cell's measurements.
type schedTopo struct {
	name string
	run  func(cell Config, spec schedSpec, alg core.Algorithm, recvBuf int64) schedOut
}

func schedTopos() []schedTopo {
	return []schedTopo{
		{"torus", schedTorus},
		{"dualhomed", schedDualHomed},
		{"wifi3g", schedWiFi3G},
	}
}

// schedSpec is a parsed scheduler column: the spec string plus a
// constructor (cells run concurrently, so every connection needs a
// fresh scheduler instance).
type schedSpec struct {
	spec string
	mk   func() sched.Scheduler
	opts sched.Options
}

func parseSchedSpec(spec string) schedSpec {
	_, opts, err := sched.Parse(spec)
	if err != nil {
		panic(err)
	}
	name := strings.SplitN(spec, "+", 2)[0]
	return schedSpec{
		spec: spec,
		mk:   func() sched.Scheduler { return sched.MustNew(name) },
		opts: opts,
	}
}

// schedOut is one cell's measurements.
type schedOut struct {
	mbps      float64 // multipath aggregate over [warm, end]
	jain      float64 // Jain's index over all flows in the cell
	oppRetx   float64 // opportunistic retransmissions (countermeasure cells)
	penalties float64 // penalization window halvings (countermeasure cells)
}

func runSchedGrid(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("schedgrid")
	specs := schedSpecs()
	algs := cc.Names()
	topos := schedTopos()
	bufs := schedBufs()
	if cfg.Sched != "" {
		// Canonicalise so aliases, case variants and reordered options
		// ("RR", "MinRTT+pen+otr") select the column they name.
		canon, err := sched.Canonical(cfg.Sched)
		if err != nil {
			panic(err)
		}
		cfg.Sched = canon
		found := false
		for _, s := range specs {
			if s == cfg.Sched {
				found = true
			}
		}
		if !found {
			panic(fmt.Sprintf("exp: scheduler spec %q is not a schedgrid column (have %v)", cfg.Sched, specs))
		}
	}

	// One cell per (scheduler, algorithm, topology, recvbuf) in
	// scheduler-major order: registering a new scheduler appends its
	// cells after the existing specs' (only the trailing composed spec
	// shifts), mirroring the tournament's algorithm-major layout. A
	// -sched filter selects a subset of cells but keeps each cell's
	// full-grid index as its seed index, so a filtered run reproduces
	// the corresponding cells of the full grid bit-for-bit.
	type cellKey struct{ si, ai, ti, bi, idx int }
	var sel []cellKey
	idx := 0
	for si := range specs {
		for ai := range algs {
			for ti := range topos {
				for bi := range bufs {
					if cfg.Sched == "" || specs[si] == cfg.Sched {
						sel = append(sel, cellKey{si, ai, ti, bi, idx})
					}
					idx++
				}
			}
		}
	}
	cells := RunCells(cfg, len(sel), func(cell Config, i int) schedOut {
		k := sel[i]
		cell.Seed = CellSeed(cfg.Seed, k.idx)
		return topos[k.ti].run(cell, parseSchedSpec(specs[k.si]), newAlg(algs[k.ai]), bufs[k.bi])
	})

	table := Table{
		Title: "Scheduler grid: multipath Mb/s [Jain] per scheduler × algorithm × recvbuf × topology",
		Cols:  []string{"scheduler", "algorithm", "recvbuf"},
	}
	for _, tp := range topos {
		table.Cols = append(table.Cols, tp.name)
	}
	// Rows are one per (scheduler, algorithm, recvbuf) with topology
	// columns; records, metrics and rows are all assembled in
	// deterministic cell order, never goroutine order.
	rowOf := map[[3]int]int{}
	for i, k := range sel {
		c := cells[i]
		spec, alg, tp, buf := specs[k.si], algs[k.ai], topos[k.ti].name, bufs[k.bi]
		key := fmt.Sprintf("%s_%s_%s_buf%d", spec, strings.ToLower(alg), tp, buf)
		res.Metrics[key+"_mbps"] = c.mbps
		res.Metrics[key+"_jain"] = c.jain
		res.Records = append(res.Records, Record{
			Algorithm: alg,
			Topology:  tp,
			Scheduler: spec,
			RecvBuf:   buf,
			Metrics: map[string]float64{
				"mbps":      c.mbps,
				"jain":      c.jain,
				"opp_retx":  c.oppRetx,
				"penalties": c.penalties,
			},
		})
		rk := [3]int{k.si, k.ai, k.bi}
		ri, ok := rowOf[rk]
		if !ok {
			ri = len(table.Rows)
			rowOf[rk] = ri
			table.Rows = append(table.Rows, []string{spec, alg, fmt.Sprintf("%d", buf)})
		}
		table.Rows[ri] = append(table.Rows[ri], f1(c.mbps)+" ["+f2(c.jain)+"]")
	}
	res.Tables = append(res.Tables, table)
	res.note("recvbuf 0 is unconstrained; 16 forces receive-buffer head-of-line blocking — the regime where minrtt+otr+pen (opportunistic retransmission + subflow penalization, §6) must beat plain minrtt")
	return res
}

// schedConfig assembles a multipath transport.Config for one cell.
func schedConfig(spec schedSpec, alg core.Algorithm, recvBuf int64, paths []transport.Path) transport.Config {
	return transport.Config{
		Alg:       freshAlg(alg),
		Sched:     spec.mk(),
		SchedOpts: spec.opts,
		RecvBuf:   recvBuf,
		Paths:     paths,
	}
}

// counters sums the countermeasure activity over the cell's multipath
// connections.
func counters(out *schedOut, conns ...*transport.Conn) {
	for _, c := range conns {
		out.oppRetx += float64(c.OppRetx)
		out.penalties += float64(c.Penalties)
	}
}

// schedTorus: §3's five-link torus with five two-path flows, all driven
// by the scheduler and algorithm under test, each with the cell's
// shared receive buffer.
func schedTorus(cell Config, spec schedSpec, alg core.Algorithm, recvBuf int64) schedOut {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(schedWarm), cell.dur(schedEnd)
	tor := topo.NewTorus([]float64{1000, 1000, 500, 1000, 1000}, 100*sim.Millisecond)
	conns := make([]*transport.Conn, 5)
	for i := range conns {
		conns[i] = transport.NewConn(w.n, schedConfig(spec, alg, recvBuf, tor.FlowPaths(i)))
		conns[i].Start()
	}
	rates := w.measure(conns, warm, end)
	out := schedOut{mbps: sumRates(rates), jain: model.JainIndex(rates)}
	counters(&out, conns...)
	return out
}

// schedDualHomed: §3's multihomed server (2 TCPs on link 1, 6 on link
// 2, 4 multipath flows across both); the scheduler, algorithm and
// receive buffer apply to the multipath flows, the single-path TCPs
// keep stack defaults. Throughput is the multipath aggregate, fairness
// is Jain's index over all twelve flows.
func schedDualHomed(cell Config, spec schedSpec, alg core.Algorithm, recvBuf int64) schedOut {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(schedWarm), cell.dur(schedEnd)
	rtt := 20 * sim.Millisecond
	d := topo.NewDualHomed(100, rtt/2, topo.BDPPackets(100, rtt))
	var conns []*transport.Conn
	addTCP := func(link, n int) {
		for i := 0; i < n; i++ {
			c := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(link)})
			c.Start()
			conns = append(conns, c)
		}
	}
	addTCP(1, 2)
	addTCP(2, 6)
	nTCP := len(conns)
	for i := 0; i < 4; i++ {
		c := transport.NewConn(w.n, schedConfig(spec, alg, recvBuf, d.MultipathPaths()))
		c.Start()
		conns = append(conns, c)
	}
	rates := w.measure(conns, warm, end)
	out := schedOut{mbps: sumRates(rates[nTCP:]), jain: model.JainIndex(rates)}
	counters(&out, conns[nTCP:]...)
	return out
}

// schedWiFi3G: §5's busy wireless client — the multipath flow under
// test against one competing TCP per radio. The overbuffered 3G path
// (hundreds of packets of queue) is exactly the slow subflow that
// head-of-line-blocks a constrained shared buffer, so this column is
// where the §6 countermeasures earn their keep.
func schedWiFi3G(cell Config, spec schedSpec, alg core.Algorithm, recvBuf int64) schedOut {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(schedWarm), cell.dur(schedEnd)
	wl := busyWireless()
	mp := transport.NewConn(w.n, schedConfig(spec, alg, recvBuf, wl.Paths()))
	tcpW := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[:1]})
	tcpG := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[1:]})
	mp.Start()
	tcpW.Start()
	tcpG.Start()
	rates := w.measure([]*transport.Conn{mp, tcpW, tcpG}, warm, end)
	out := schedOut{mbps: rates[0], jain: model.JainIndex(rates)}
	counters(&out, mp)
	return out
}
