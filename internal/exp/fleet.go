package exp

import (
	"fmt"
	"strings"

	"mptcp/internal/cc"
	"mptcp/internal/metrics"
	"mptcp/internal/netsim"
	"mptcp/internal/scenario"
	"mptcp/internal/sched"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:  "fleet",
		Ref: "scaled-up §3 server workload",
		Desc: "Fleet-scale flow-completion times: tens of thousands of short MPTCP connections under Poisson " +
			"arrivals × Pareto sizes across a sharded multi-core engine; FCT p50/p95/p99 per cc × scheduler cell.",
		Run: runFleet,
	})
}

// Fleet shape. Each cell is one (algorithm × scheduler) combination
// simulating fleetDomains independent connection groups — dual-homed
// clients behind their own pair of asymmetric access links — coupled in
// a ring by background transit bursts that cross group boundaries over
// sim.Sharded pipes. At full scale each cell sees fleetRate × fleetDur
// × fleetDomains ≈ 11,500 Poisson arrivals with Pareto(1.5) sizes of
// mean fleetMeanPkts packets: the §3 server workload scaled up three
// orders of magnitude, which is exactly the population FCT distributions
// need (arXiv:1112.1932 and arXiv:2309.09372 both evaluate over large
// flow ensembles).
const (
	fleetDomains  = 32
	fleetDur      = 30 * sim.Second
	fleetRate     = 12.0 // arrivals per second per domain
	fleetMeanPkts = 50.0
	fleetRecvBuf  = 64
	// fleetPipeLatency couples the groups; it is also the engine's
	// barrier epoch, so 600 epochs cover a full-scale run.
	fleetPipeLatency = 50 * sim.Millisecond
	// fleetTransitEvery paces each group's background bursts into the
	// next group.
	fleetTransitEvery = 20 * sim.Millisecond
)

// fleetScheds are the scheduler columns: the historical striping and
// the deployment default, enough to show FCT tails move with
// scheduling policy without squaring the grid.
func fleetScheds() []string { return []string{"firstfit", "minrtt"} }

// fleetOut is one cell's aggregate, already merged across domains.
type fleetOut struct {
	fct        *metrics.Summary // completion times, seconds
	arrivals   int64
	completed  int64
	incomplete int64 // flows still in flight at the horizon
	pkts       int64 // data packets delivered by completed flows
	partial    int64 // data packets delivered by incomplete flows
	transit    int64 // cross-shard transit bursts delivered
	reuses     int64 // pool recycles (diagnostics)
}

// fleetGroup is one partition domain: its own simulator, network,
// access links, connection pool and FCT summary. It implements
// sim.Handler to absorb transit bursts arriving over the ring pipe.
type fleetGroup struct {
	s    *sim.Simulator
	n    *netsim.Net
	d1   *topo.Duplex
	d2   *topo.Duplex
	pool *transport.ConnPool
	env  *scenario.Env

	bgRoute  *netsim.Route // transit-burst packets into the d1 access queue
	out      *sim.Pipe     // to the next group in the ring
	ringDest *fleetGroup   // receiver of out (the next group)
	tick     *sim.Timer

	fct       *metrics.Summary
	completed int64
	pkts      int64
	transit   int64
}

// fleetSink drains background packets (transit bursts) at the far end
// of an access link.
type fleetSink struct{ n *netsim.Net }

func (k *fleetSink) Receive(p *netsim.Packet) { k.n.FreePacket(p) }

// OnEvent absorbs one transit burst from the previous group in the
// ring: arg packets are injected into this group's primary access
// queue, so cross-shard traffic genuinely perturbs the local flows —
// the shards=1 ≡ shards=N pin is meaningless if domains never interact.
func (g *fleetGroup) OnEvent(arg any) {
	k := arg.(int)
	g.transit++
	for i := 0; i < k; i++ {
		p := g.n.AllocPacket()
		p.Size = netsim.DataPacketSize
		g.n.Send(g.bgRoute, p)
	}
}

// sendTransit emits this group's periodic burst into the ring and
// rearms. Burst sizes draw from the group's own domain rng.
func (g *fleetGroup) sendTransit(end sim.Time) {
	g.out.Send(g.ringDest, 1+g.s.Rand().Intn(8))
	if next := g.s.Now() + fleetTransitEvery; next < end {
		g.tick.ResetAt(next)
	} else {
		g.tick.Release()
	}
}

func runFleet(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fleet")
	algs := cc.Names()
	scheds := fleetScheds()

	type cellKey struct{ ai, si, idx int }
	var sel []cellKey
	idx := 0
	for ai := range algs {
		for si := range scheds {
			if cfg.Sched == "" || scheds[si] == cfg.Sched {
				sel = append(sel, cellKey{ai, si, idx})
			}
			idx++
		}
	}
	cells := RunCells(cfg, len(sel), func(cell Config, i int) fleetOut {
		k := sel[i]
		cell.Seed = CellSeed(cfg.Seed, k.idx)
		return runFleetCell(cell, algs[k.ai], scheds[k.si])
	})

	table := Table{
		Title: "Fleet: flow-completion time seconds p50/p95/p99 (completed flows) per algorithm × scheduler",
		Cols:  []string{"algorithm", "scheduler", "p50", "p95", "p99", "mean", "completed", "arrivals"},
	}
	for i, k := range sel {
		c := cells[i]
		name, sc := algs[k.ai], scheds[k.si]
		key := strings.ToLower(name) + "_" + sc
		res.Metrics[key+"_fct_p50_s"] = c.fct.P50()
		res.Metrics[key+"_fct_p99_s"] = c.fct.P99()
		res.Metrics[key+"_completed"] = float64(c.completed)
		// goodput counts completed and in-flight deliveries; the fct_*
		// fields are omitted (not zero) when nothing completed, matching
		// Summary's NaN-when-empty contract.
		mets := map[string]float64{
			"completed":    float64(c.completed),
			"incomplete":   float64(c.incomplete),
			"arrivals":     float64(c.arrivals),
			"goodput_mbps": mbps(c.pkts+c.partial, cfg.dur(fleetDur)),
			"transit":      float64(c.transit),
			"pool_reuses":  float64(c.reuses),
		}
		if c.fct.N() > 0 {
			mets["fct_p50_s"] = c.fct.P50()
			mets["fct_p95_s"] = c.fct.P95()
			mets["fct_p99_s"] = c.fct.P99()
			mets["fct_mean_s"] = c.fct.Mean()
			mets["fct_max_s"] = c.fct.Max()
		}
		res.Records = append(res.Records, Record{
			Algorithm: name,
			Topology:  "fleet32",
			Scenario:  "poisson-pareto-churn",
			Scheduler: sc,
			RecvBuf:   fleetRecvBuf,
			Metrics:   mets,
		})
		table.Rows = append(table.Rows, []string{
			name, sc,
			f2(c.fct.P50()), f2(c.fct.P95()), f2(c.fct.P99()), f2(c.fct.Mean()),
			f0(float64(c.completed)), f0(float64(c.arrivals)),
		})
	}
	res.Tables = append(res.Tables, table)
	res.note("%d connection groups per cell, Poisson %.0f arrivals/s/group × Pareto(1.5) sizes of mean %.0f pkts, shared recvbuf %d pkts; groups coupled by ring transit bursts over sharded pipes",
		fleetDomains, fleetRate, fleetMeanPkts, fleetRecvBuf)
	return res
}

// runFleetCell simulates one (algorithm × scheduler) cell on a sharded
// engine: fleetDomains connection groups on their own per-shard heaps,
// merged at fleetPipeLatency barriers. Memory stays bounded by
// streaming aggregation — completion times fold straight into each
// group's metrics.Summary, and connection state recycles through a
// per-group ConnPool — so the cell never retains per-flow samples.
func runFleetCell(cell Config, algName, schedSpec string) fleetOut {
	end := cell.dur(fleetDur)
	sh := sim.NewSharded(cell.Seed, fleetDomains)
	sh.SetShards(cell.Shards)

	groups := make([]*fleetGroup, fleetDomains)
	for i := range groups {
		groups[i] = buildFleetGroup(sh.Domain(i), i, end, algName, schedSpec)
	}
	// Ring pipes: group i's transit bursts land in group (i+1) % N.
	for i, g := range groups {
		g.out = sh.NewPipe(i, (i+1)%fleetDomains, fleetPipeLatency)
		g.ringDest = groups[(i+1)%fleetDomains]
	}
	// Start the transit tickers (the churn directives armed themselves
	// at install time).
	for _, g := range groups {
		g.tick.ResetAt(fleetTransitEvery)
	}

	sh.Run(end)

	// Deterministic merge in domain order. Flows still in flight at the
	// horizon have delivered packets too — OnComplete never fired for
	// them, so they are picked up here from the pool's live set; without
	// this the cell's goodput undercounts everything in flight.
	out := fleetOut{fct: metrics.NewSummary()}
	for _, g := range groups {
		out.fct.Merge(g.fct)
		out.arrivals += g.env.ChurnArrivals
		out.completed += g.completed
		out.incomplete += g.pool.LiveCount()
		out.pkts += g.pkts
		out.partial += g.pool.LiveDelivered()
		out.transit += g.transit
		out.reuses += g.pool.Reuses
	}
	return out
}

// buildFleetGroup constructs one connection group on domain simulator
// s: two asymmetric access duplexes (a fast short path and a slower
// long one, the §5 WiFi/3G shape), a FlowChurn scenario spawning
// pooled two-path connections, and the transit-burst plumbing.
func buildFleetGroup(s *sim.Simulator, id int, end sim.Time, algName, schedSpec string) *fleetGroup {
	n := netsim.NewNet(s)
	// The batched-departure path keeps the domain's event heap at
	// O(links) despite hundreds of concurrent flows.
	n.BatchDepartures = true
	g := &fleetGroup{
		s: s, n: n,
		d1:   topo.NewDuplex(fmt.Sprintf("g%d/acc1", id), 16, 10*sim.Millisecond, topo.BDPPackets(16, 20*sim.Millisecond)),
		d2:   topo.NewDuplex(fmt.Sprintf("g%d/acc2", id), 8, 25*sim.Millisecond, topo.BDPPackets(8, 50*sim.Millisecond)),
		pool: transport.NewConnPool(n),
		fct:  metrics.NewSummary(),
	}
	g.bgRoute = netsim.NewRoute(&fleetSink{n: n}, g.d1.AB)
	g.tick = s.NewTimer(func() { g.sendTransit(end) })

	paths := []transport.Path{topo.PathThrough(g.d1), topo.PathThrough(g.d2)}
	g.env = &scenario.Env{Sim: s, Net: n, Links: []*topo.Duplex{g.d1, g.d2}}
	g.env.Spawn = func(pkts int64) {
		var c *transport.Conn
		c = g.pool.Get(transport.Config{
			Alg:         newAlg(algName),
			Sched:       sched.MustNew(schedSpec),
			Paths:       paths,
			DataPackets: pkts,
			RecvBuf:     fleetRecvBuf,
			OnComplete: func() {
				g.fct.Add((c.CompletedAt() - c.StartedAt()).Seconds())
				g.completed++
				g.pkts += c.Delivered()
				g.pool.Put(c)
			},
		})
		c.Start()
	}
	scenario.Scenario{
		Name: "fleet-churn",
		Directives: []scenario.Directive{
			scenario.FlowChurn{Start: 0, End: end, Rate: fleetRate, MeanPkts: fleetMeanPkts, Alpha: 1.5},
		},
	}.MustInstall(g.env)
	return g
}
