package exp

import (
	"mptcp/internal/core"
	"mptcp/internal/metrics"
	"mptcp/internal/model"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/traffic"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:   "fig8-torus",
		Ref:  "§3 Fig. 7/8",
		Desc: "Five-link torus, five two-path flows, shrink link C: plot loss-rate ratio pA/pC per algorithm, plus Jain's index at C=100 pkt/s.",
		Run:  runFig8,
	})
	Register(&Experiment{
		ID:   "table-dynamic",
		Ref:  "§3 table (Fig. 9)",
		Desc: "Two 100 Mb/s links, bursty CBR on the top one: multipath throughput per link. Paper: EWTCP 85/100, MPTCP 83/99.8, COUPLED 55/99.4 Mb/s.",
		Run:  runTableDynamic,
	})
	Register(&Experiment{
		ID:   "fig10-server-lb",
		Ref:  "§3 Fig. 10",
		Desc: "Dual-homed server, 5 TCPs on link 1 and 15 on link 2; 10 MPTCP flows join at t=60 s and shift load toward the less congested link.",
		Run:  runFig10,
	})
	Register(&Experiment{
		ID:   "table-server-poisson",
		Ref:  "§3 second experiment",
		Desc: "Link 1: Poisson TCP arrivals alternating 10/s and 60/s with Pareto 200 kB files; link 2: one long TCP. Paper: MPTCP 61 > COUPLED 54 > EWTCP 47 Mb/s.",
		Run:  runServerPoisson,
	})
}

func runFig8(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig8-torus")
	rtt := 100 * sim.Millisecond
	warm, end := cfg.dur(50*sim.Second), cfg.dur(250*sim.Second)
	capsC := []float64{100, 250, 500, 750, 1000}
	algs := algSet()

	fig := Figure{
		Title:  "Fig. 8: loss-rate ratio pA/pC vs capacity of link C (1.0 = perfectly balanced congestion)",
		XLabel: "capacity of link C (pkt/s)",
		YLabel: "pA/pC",
	}
	table := Table{
		Title: "Jain's fairness index of flow rates at C=100 pkt/s; paper: EWTCP 0.92, MPTCP 0.986, COUPLED 0.99",
		Cols:  []string{"algorithm", "jain@C=100", "pA/pC@C=100"},
	}
	// One cell per (algorithm, link-C capacity) pair.
	type torusOut struct{ ratio, jain float64 }
	cells := RunCells(cfg, len(algs)*len(capsC), func(cell Config, idx int) torusOut {
		alg := algSet()[idx/len(capsC)]
		capC := capsC[idx%len(capsC)]
		w := newWorld(cell.Seed)
		rates := []float64{1000, 1000, capC, 1000, 1000}
		tor := topo.NewTorus(rates, rtt)
		conns := make([]*transport.Conn, 5)
		for i := range conns {
			conns[i] = transport.NewConn(w.n, transport.Config{
				Alg:   freshAlg(alg),
				Paths: tor.FlowPaths(i),
			})
			conns[i].Start()
		}
		flowRates := w.measure(conns, warm, end)
		pA := tor.Links[0].AB.Stats.LossFraction()
		pC := tor.Links[2].AB.Stats.LossFraction()
		ratio := 0.0
		if pC > 0 {
			ratio = pA / pC
		}
		return torusOut{ratio: ratio, jain: model.JainIndex(flowRates)}
	})
	for ai, alg := range algs {
		curve := Curve{Name: alg.Name()}
		var jainAt100, ratioAt100 float64
		for ci, capC := range capsC {
			out := cells[ai*len(capsC)+ci]
			curve.Pts = append(curve.Pts, Point{X: capC, Y: out.ratio})
			if capC == 100 {
				jainAt100 = out.jain
				ratioAt100 = out.ratio
			}
		}
		fig.Curves = append(fig.Curves, curve)
		table.Rows = append(table.Rows, []string{alg.Name(), f2(jainAt100), f2(ratioAt100)})
		res.Metrics[metricName(alg, "jain_c100")] = jainAt100
		res.Metrics[metricName(alg, "ratio_c100")] = ratioAt100
	}
	res.Figures = append(res.Figures, fig)
	res.Tables = append(res.Tables, table)
	res.note("COUPLED balances congestion best (ratio nearest 1), EWTCP worst, MPTCP in between — §3's static load-balancing result")
	return res
}

func runTableDynamic(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("table-dynamic")
	end := cfg.dur(120 * sim.Second)
	warm := cfg.dur(10 * sim.Second)

	table := Table{
		Title: "Multipath throughput (Mb/s) with bursty CBR on the top link; paper: EWTCP 85/100, MPTCP 83/99.8, COUPLED 55/99.4",
		Cols:  []string{"algorithm", "top link", "bottom link", "total"},
	}
	cells := RunCells(cfg, len(algSet()), func(cell Config, i int) CellResult {
		alg := algSet()[i]
		w := newWorld(cell.Seed)
		// 2 ms propagation each way: the paper's "10 ms RTT" includes
		// queueing delay (a full 50-packet buffer adds ~6 ms), and the
		// 50-packet buffer must cover the bandwidth-delay product for
		// the bottom link to be fully utilisable.
		top := topo.NewDuplex("top", 100, 2*sim.Millisecond, 50)
		bot := topo.NewDuplex("bot", 100, 2*sim.Millisecond, 50)
		mp := transport.NewConn(w.n, transport.Config{
			Alg:   freshAlg(alg),
			Paths: []transport.Path{topo.PathThrough(top), topo.PathThrough(bot)},
		})
		mp.Start()
		cbr := traffic.NewOnOffCBR(w.n, 100, 10*sim.Millisecond, 100*sim.Millisecond, top.AB)
		cbr.Start()

		w.s.RunUntil(warm)
		b0, b1 := mp.SubflowDelivered(0), mp.SubflowDelivered(1)
		w.s.RunUntil(end)
		dur := end - warm
		topR := mbps(mp.SubflowDelivered(0)-b0, dur)
		botR := mbps(mp.SubflowDelivered(1)-b1, dur)
		return CellResult{
			Row: []string{alg.Name(), f1(topR), f1(botR), f1(topR + botR)},
			Metrics: map[string]float64{
				metricName(alg, "top_mbps"):    topR,
				metricName(alg, "bottom_mbps"): botR,
			},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	res.note("the CBR's 10 ms bursts at line rate mean ~91%% of the top link is free on average; COUPLED gets trapped off the top link after each burst (§2.4)")
	return res
}

func runFig10(cfg Config) *Result {
	cfg = cfg.norm()
	join := cfg.dur(60 * sim.Second)
	end := cfg.dur(180 * sim.Second)
	rtt := 20 * sim.Millisecond

	// A single scenario with shared dynamic state: one cell.
	return RunCells(cfg, 1, func(cell Config, _ int) *Result {
		res := newResult("fig10-server-lb")
		w := newWorld(cell.Seed)
		d := topo.NewDualHomed(100, rtt/2, topo.BDPPackets(100, rtt))
		var g1, g2, mps []*transport.Conn
		for i := 0; i < 5; i++ {
			c := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(1)})
			c.Start()
			g1 = append(g1, c)
		}
		for i := 0; i < 15; i++ {
			c := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(2)})
			c.Start()
			g2 = append(g2, c)
		}
		w.s.At(join, func() {
			for i := 0; i < 10; i++ {
				c := transport.NewConn(w.n, transport.Config{Alg: &core.MPTCP{}, Paths: d.MultipathPaths()})
				c.Start()
				mps = append(mps, c)
			}
		})

		sum := func(conns []*transport.Conn) float64 {
			var t int64
			for _, c := range conns {
				t += c.Delivered()
			}
			return float64(t)
		}
		sampler := metrics.NewSampler(w.s, cell.dur(2*sim.Second))
		sampler.Probe("link1-tcps", func() float64 { return sum(g1) })
		sampler.Probe("link2-tcps", func() float64 { return sum(g2) })
		sampler.Probe("mptcp", func() float64 { return sum(mps) })
		sampler.Start()
		w.s.RunUntil(end)

		fig := Figure{
			Title:  "Fig. 10: aggregate throughput per group (Mb/s); MPTCP flows join at t=60s·scale",
			XLabel: "time (s)",
			YLabel: "Mb/s",
		}
		for _, name := range sampler.Names() {
			rate := sampler.Series(name).Rate()
			c := Curve{Name: name}
			for i := 0; i < rate.Len(); i++ {
				c.Pts = append(c.Pts, Point{X: rate.Times[i].Seconds(), Y: rate.Vals[i] * 1500 * 8 / 1e6})
			}
			fig.Curves = append(fig.Curves, c)
		}
		res.Figures = append(res.Figures, fig)

		// Steady state after the join: per-flow throughput by group over an
		// extension window of the same length as the post-join period.
		base1, base2, baseM := sum(g1), sum(g2), sum(mps)
		dur := end - join
		w.s.RunUntil(end + dur)
		perFlow := func(now, base float64, n int) float64 {
			return mbps(int64(now-base), dur) / float64(n)
		}
		t1 := perFlow(sum(g1), base1, 5)
		t2 := perFlow(sum(g2), base2, 15)
		tm := perFlow(sum(mps), baseM, 10)
		table := Table{
			Title: "Steady state after MPTCP joins: per-flow throughput (Mb/s); load balancing should pull the groups together",
			Cols:  []string{"group", "per-flow Mb/s"},
			Rows: [][]string{
				{"5 TCPs on link1", f2(t1)},
				{"15 TCPs on link2", f2(t2)},
				{"10 MPTCP on both", f2(tm)},
			},
		}
		res.Tables = append(res.Tables, table)
		res.Metrics["link1_perflow_mbps"] = t1
		res.Metrics["link2_perflow_mbps"] = t2
		res.Metrics["mptcp_perflow_mbps"] = tm
		// Before the join, link1 TCPs get ~20 and link2 ~6.7; perfect
		// balancing afterwards gives everyone 200/30 = 6.7.
		res.Metrics["imbalance_after"] = t1 / t2
		return res
	})[0]
}

func runServerPoisson(cfg Config) *Result {
	cfg = cfg.norm()
	end := cfg.dur(300 * sim.Second)
	phase := cfg.dur(30 * sim.Second)
	rtt := 20 * sim.Millisecond

	// The three multipath algorithms compete in one shared world, as in
	// the paper, so this is a single cell.
	return RunCells(cfg, 1, func(cell Config, _ int) *Result {
		res := newResult("table-server-poisson")
		w := newWorld(cell.Seed)
		d := topo.NewDualHomed(100, rtt/2, topo.BDPPackets(100, rtt))

		// Link 2: one long-lived TCP.
		long := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(2)})
		long.Start()

		mpConns := make([]*transport.Conn, 0, 3)
		for _, alg := range algSet() {
			c := transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: d.MultipathPaths()})
			c.Start()
			mpConns = append(mpConns, c)
		}

		// Link 1: Poisson arrivals of Pareto-sized TCP downloads, alternating
		// light (10/s) and heavy (60/s) phases.
		sizes := traffic.NewParetoMean(1.5, 200e3/1500) // mean 200 kB in packets
		pa := &traffic.PoissonArrivals{Net: w.n, Rate: 10}
		pa.Spawn = func() {
			n := int64(sizes.Sample(w.s.Rand()))
			if n < 1 {
				n = 1
			}
			c := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(1), DataPackets: n})
			c.Start()
		}
		pa.Start()
		var flip func()
		flip = func() {
			if pa.Rate == 10 {
				pa.Rate = 60
			} else {
				pa.Rate = 10
			}
			w.s.After(phase, flip)
		}
		w.s.After(phase, flip)

		rates := w.measure(mpConns, cell.dur(20*sim.Second), end)
		table := Table{
			Title: "Average multipath throughput (Mb/s); paper: MPTCP 61, COUPLED 54, EWTCP 47",
			Cols:  []string{"algorithm", "Mb/s"},
		}
		for i, alg := range algSet() {
			table.Rows = append(table.Rows, []string{alg.Name(), f1(rates[i])})
			res.Metrics[metricName(alg, "mbps")] = rates[i]
		}
		res.Tables = append(res.Tables, table)
		res.note("in heavy load EWTCP moves too little off link 1; in light load COUPLED stays trapped on link 2 after bursts clear (§3)")
		return res
	})[0]
}
