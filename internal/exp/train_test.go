package exp

import (
	"bytes"
	"strings"
	"testing"

	"mptcp/internal/sched"
)

// TestLearnedSchedulerBeatsMinRTTAndBLEST is the acceptance pin for the
// checked-in bandit model: on two topology families of the training
// corpus — the torus with a mildly binding 64-packet buffer and the
// dual-homed server under the blocking-prone 16-packet buffer — the
// frozen greedy policy must out-deliver both classical baselines the
// ROADMAP names, summed over four fixed grid seeds none of which the
// trainer saw. Everything is deterministic, so a regression here means
// the model file, the feature classifiers, or the inference path
// changed — not noise. If retraining (the pinned command in DESIGN.md
// §14) moves the numbers, the new model must still pass this test
// before being checked in.
//
// Asserted at scale 0.1 to stay in the fast tier; the same 4-seed sums
// at scale 1 (paper fidelity) are torus/buf64 145.570 vs 139.239
// (minrtt) vs 139.862 (blest) Mb/s, and dualhomed/buf16 97.522 vs
// 93.859 vs 80.949 Mb/s — the ordering this test pins.
func TestLearnedSchedulerBeatsMinRTTAndBLEST(t *testing.T) {
	for _, c := range []struct {
		name string
		buf  int64
	}{
		{"torus/buf64", 64},
		{"dualhomed/buf16", 16},
	} {
		var bandit, minrtt, blest float64
		for k := 0; k < 4; k++ {
			cfg := Config{Seed: CellSeed(42, k), Scale: 0.1}
			cfg = cfg.norm()
			cfg.Seed = CellSeed(42, k)
			episode := func(spec schedSpec) float64 {
				switch c.name {
				case "torus/buf64":
					return schedTorus(cfg, spec, newAlg("MPTCP"), c.buf).mbps
				default:
					return schedDualHomed(cfg, spec, newAlg("MPTCP"), c.buf).mbps
				}
			}
			b, err := sched.NewBandit()
			if err != nil {
				t.Fatalf("NewBandit: %v", err)
			}
			bandit += episode(banditSpec(b))
			minrtt += episode(classicSpec("minrtt"))
			blest += episode(classicSpec("blest"))
		}
		t.Logf("%s: bandit %.3f, minrtt %.3f, blest %.3f Mb/s (4-seed sum)", c.name, bandit, minrtt, blest)
		if bandit <= minrtt {
			t.Errorf("%s: bandit %.3f does not beat minrtt %.3f", c.name, bandit, minrtt)
		}
		if bandit <= blest {
			t.Errorf("%s: bandit %.3f does not beat blest %.3f", c.name, bandit, blest)
		}
	}
}

// TestTrainSchedDeterministic: two same-config training runs serialize
// byte-identical models and render byte-identical reports, and the
// result is invariant under Parallelism — the property the CI
// train-smoke job asserts end-to-end through the CLI.
func TestTrainSchedDeterministic(t *testing.T) {
	cfg := TrainConfig{Seed: 11, Scale: 0.02, Rounds: 2}
	m1, r1 := TrainSched(cfg)
	m2, r2 := TrainSched(cfg)
	if !bytes.Equal(m1.Marshal(), m2.Marshal()) {
		t.Fatal("same-seed training runs serialized different models")
	}
	var b1, b2 strings.Builder
	r1.Render(&b1)
	r2.Render(&b2)
	if b1.String() != b2.String() {
		t.Fatalf("same-seed training reports differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}

	cfg.Parallelism = 1
	m3, _ := TrainSched(cfg)
	if !bytes.Equal(m1.Marshal(), m3.Marshal()) {
		t.Fatal("training result depends on Parallelism")
	}

	other, _ := TrainSched(TrainConfig{Seed: 12, Scale: 0.02, Rounds: 2})
	if bytes.Equal(m1.Marshal(), other.Marshal()) {
		t.Fatal("different seeds trained identical models (seed unused?)")
	}
}

// TestTrainSchedPopulatesModel: even a tiny budget must leave provenance
// headers and a non-empty table behind — the trainer actually learns.
func TestTrainSchedPopulatesModel(t *testing.T) {
	m, r := TrainSched(TrainConfig{Seed: 3, Scale: 0.02, Rounds: 2})
	if m.Corpus != trainCorpusName || m.Seed != 3 {
		t.Errorf("provenance headers: corpus %q seed %d", m.Corpus, m.Seed)
	}
	wantEp := int64(2 * len(trainCorpus()))
	if m.Episodes != wantEp {
		t.Errorf("Episodes = %d, want %d", m.Episodes, wantEp)
	}
	trained := 0
	for _, n := range m.QN {
		if n > 0 {
			trained++
		}
	}
	if trained == 0 {
		t.Error("no action bucket saw any training")
	}
	if len(r.Eval) != len(trainCorpus()) {
		t.Errorf("report evaluates %d cells, want %d", len(r.Eval), len(trainCorpus()))
	}
}
