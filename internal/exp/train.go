// Offline training of the learned "bandit" scheduler.
//
// TrainSched replays the schedgrid corpus — the scheduler grid's
// topology columns crossed with the blocking-prone receive buffers,
// plus scenario-driven wifi3g episodes — with an ε-greedy exploring
// bandit (sched.NewBanditExplorer), rewards each episode by its
// multipath goodput normalized to the cell's minrtt baseline, and folds
// the rewards into the policy table with learn.Model.Update. Everything
// is derived from TrainConfig.Seed: episode worlds and exploration rngs
// use disjoint sim.MixSeed index ranges, rounds snapshot the policy so
// a round's episodes can run in parallel, and updates apply in fixed
// cell order — so two same-config runs (at any Parallelism) produce
// byte-identical serialized models. cmd/mptcp-exp -train-sched drives
// this and writes Model.Marshal to disk; the checked-in model embedded
// behind sched.New("bandit") is produced by the pinned command in
// DESIGN.md §14.

package exp

import (
	"fmt"
	"io"
	"math/rand"

	"mptcp/internal/core"
	"mptcp/internal/learn"
	"mptcp/internal/scenario"
	"mptcp/internal/sched"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

// trainCorpusName names the corpus in the model's provenance header.
const trainCorpusName = "schedgrid-v1"

// TrainConfig controls one offline training run.
type TrainConfig struct {
	// Seed derives every episode's world seed and exploration rng;
	// equal configs give byte-identical models. Zero means 1.
	Seed int64
	// Scale is the per-episode duration scale (schedgrid cell
	// durations × Scale). Zero means 0.2 — long enough for blocking
	// dynamics, short enough that a full run stays in minutes.
	Scale float64
	// Rounds is the number of passes over the corpus; each round runs
	// one ε-greedy episode per corpus cell with ε annealed toward
	// greedy. Zero means 40.
	Rounds int
	// Parallelism bounds concurrent episodes within a round (rounds
	// are sequential: each updates the policy the next explores from).
	// Zero means GOMAXPROCS; results are identical for every value.
	Parallelism int
}

func (t TrainConfig) norm() TrainConfig {
	if t.Seed == 0 {
		t.Seed = 1
	}
	if t.Scale <= 0 {
		t.Scale = 0.2
	}
	if t.Rounds <= 0 {
		t.Rounds = 40
	}
	return t
}

// trainCell is one corpus cell: a named world (topology × optional
// scenario × receive buffer) an episode runs the exploring scheduler
// in. The congestion controller is the paper's MPTCP throughout — the
// policy's features are controller-agnostic (window headroom, not
// window dynamics), and the grid's other controllers ride on the same
// table.
type trainCell struct {
	name string
	buf  int64
	run  func(cell Config, spec schedSpec, alg core.Algorithm, recvBuf int64) schedOut
}

// trainCorpus is the episode corpus: every schedgrid topology column
// under the two blocking-prone buffers (16 forces head-of-line
// blocking, 64 binds mildly), plus dynamic wifi3g episodes under the
// handover and flap scripts so the policy sees paths dying and
// recovering, not just steady-state heterogeneity.
func trainCorpus() []trainCell {
	scen := func(name string) func(Config, schedSpec, core.Algorithm, int64) schedOut {
		return func(cell Config, spec schedSpec, alg core.Algorithm, buf int64) schedOut {
			return trainWiFi3GScenario(cell, spec, alg, buf, name)
		}
	}
	return []trainCell{
		{"torus/buf16", 16, schedTorus},
		{"torus/buf64", 64, schedTorus},
		{"dualhomed/buf16", 16, schedDualHomed},
		{"dualhomed/buf64", 64, schedDualHomed},
		{"wifi3g/buf16", 16, schedWiFi3G},
		{"wifi3g/buf64", 64, schedWiFi3G},
		{"wifi3g+handover/buf16", 16, scen("handover")},
		{"wifi3g+flap/buf16", 16, scen("flap")},
	}
}

// trainWiFi3GScenario is schedWiFi3G with a network-dynamics script
// installed over the radios (the dynamics grid's wifi3g wiring, with
// the scheduler/receive-buffer axis of the schedgrid).
func trainWiFi3GScenario(cell Config, spec schedSpec, alg core.Algorithm, recvBuf int64, scen string) schedOut {
	w := newWorld(cell.Seed)
	warm, end := cell.dur(schedWarm), cell.dur(schedEnd)
	wl := busyWireless()
	mp := transport.NewConn(w.n, schedConfig(spec, alg, recvBuf, wl.Paths()))
	tcpW := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[:1]})
	tcpG := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[1:]})
	mp.Start()
	tcpW.Start()
	tcpG.Start()
	env := &scenario.Env{Sim: w.s, Net: w.n, Links: []*topo.Duplex{wl.WiFi, wl.G3}}
	env.Spawn = func(pkts int64) {
		c := transport.NewConn(w.n, transport.Config{
			Paths:       []transport.Path{topo.PathThrough(wl.WiFi)},
			DataPackets: pkts,
		})
		c.Start()
	}
	sc := scenario.MustBuild(scen, end)
	sc.MustInstall(env)
	rates := w.measure([]*transport.Conn{mp, tcpW, tcpG}, warm, end)
	out := schedOut{mbps: rates[0]}
	counters(&out, mp)
	return out
}

// Disjoint sim.MixSeed index ranges: episodes use [0, 2·rounds·cells),
// baselines and evaluations their own blocks far above.
const (
	trainBaseIdx = 1_000_000
	trainEvalIdx = 2_000_000
)

// classicSpec wraps a registered scheduler name as a schedSpec column.
func classicSpec(name string) schedSpec {
	return schedSpec{spec: name, mk: func() sched.Scheduler { return sched.MustNew(name) }}
}

// banditSpec wraps one shared Bandit instance (frozen or exploring) as
// a schedSpec column. Every connection of the episode's single-threaded
// world shares the instance: for a frozen bandit that is trivially safe
// (pure reads), for an explorer it is deterministic because all Picks
// interleave on the simulator's event order.
func banditSpec(b *sched.Bandit) schedSpec {
	return schedSpec{spec: "bandit", mk: func() sched.Scheduler { return b }}
}

// TrainEval is one corpus cell's post-training comparison: the frozen
// greedy policy against the two classical baselines the ROADMAP names,
// on a held-out evaluation seed.
type TrainEval struct {
	Cell                  string
	Bandit, MinRTT, Blest float64 // multipath Mb/s
}

// TrainReport summarizes a training run for the CLI. It contains no
// wall-clock or environment data: two same-config runs render
// identical bytes.
type TrainReport struct {
	Corpus   string
	Seed     int64
	Scale    float64
	Rounds   int
	Episodes int64
	Eval     []TrainEval
}

// Render writes the deterministic human-readable training report.
func (r *TrainReport) Render(w io.Writer) {
	fmt.Fprintf(w, "== train-sched ==\ncorpus %s seed %d scale %g rounds %d episodes %d\n",
		r.Corpus, r.Seed, r.Scale, r.Rounds, r.Episodes)
	fmt.Fprintf(w, "\n%-24s %10s %10s %10s\n", "cell (Mb/s, eval seed)", "bandit", "minrtt", "blest")
	for _, e := range r.Eval {
		fmt.Fprintf(w, "%-24s %10.3f %10.3f %10.3f\n", e.Cell, e.Bandit, e.MinRTT, e.Blest)
	}
}

// TrainSched trains the bandit policy over the corpus and returns the
// frozen model plus the evaluation report. Deterministic: equal
// TrainConfigs yield byte-identical Model.Marshal output at any
// Parallelism.
func TrainSched(cfg TrainConfig) (*learn.Model, *TrainReport) {
	cfg = cfg.norm()
	corpus := trainCorpus()
	runner := Runner{Parallelism: cfg.Parallelism}

	episode := func(ci int, seed int64, spec schedSpec) schedOut {
		cell := Config{Seed: seed, Scale: cfg.Scale}.norm()
		cell.Seed = seed // norm leaves non-zero seeds alone; keep explicit
		return corpus[ci].run(cell, spec, newAlg("MPTCP"), corpus[ci].buf)
	}

	// Per-cell minrtt baselines normalize rewards: Mb/s differs by an
	// order of magnitude across topologies, and the policy must not
	// learn "torus episodes are worth more".
	base := make([]float64, len(corpus))
	runner.Do(len(corpus), func(ci int) {
		out := episode(ci, CellSeed(cfg.Seed, trainBaseIdx+ci), classicSpec("minrtt"))
		base[ci] = out.mbps
		if base[ci] < 0.05 {
			base[ci] = 0.05
		}
	})

	model := &learn.Model{Corpus: trainCorpusName, Seed: cfg.Seed}
	for r := 0; r < cfg.Rounds; r++ {
		// Snapshot the policy: the round's episodes all explore from the
		// same frozen view, so they are order-independent and can fan
		// out; updates apply afterwards in cell order.
		frozen := model.Clone()
		eps := 0.5*(1-float64(r)/float64(cfg.Rounds)) + 0.05
		type epOut struct {
			ep     *learn.Episode
			reward float64
		}
		outs := make([]epOut, len(corpus))
		runner.Do(len(corpus), func(ci int) {
			ei := r*len(corpus) + ci
			ep := &learn.Episode{}
			rng := rand.New(rand.NewSource(sim.MixSeed(cfg.Seed, 2*ei+1)))
			expl := sched.NewBanditExplorer(frozen, rng, eps, ep)
			out := episode(ci, CellSeed(cfg.Seed, 2*ei), banditSpec(expl))
			outs[ci] = epOut{ep: ep, reward: out.mbps / base[ci]}
		})
		for ci := range outs {
			model.Update(outs[ci].ep, outs[ci].reward)
		}
	}

	// Held-out evaluation: frozen greedy policy vs minrtt and blest on
	// per-cell eval seeds none of the episodes used.
	report := &TrainReport{
		Corpus:   model.Corpus,
		Seed:     cfg.Seed,
		Scale:    cfg.Scale,
		Rounds:   cfg.Rounds,
		Episodes: model.Episodes,
		Eval:     make([]TrainEval, len(corpus)),
	}
	runner.Do(len(corpus), func(ci int) {
		seed := CellSeed(cfg.Seed, trainEvalIdx+ci)
		report.Eval[ci] = TrainEval{
			Cell:   corpus[ci].name,
			Bandit: episode(ci, seed, banditSpec(sched.NewBanditFrom(model))).mbps,
			MinRTT: episode(ci, seed, classicSpec("minrtt")).mbps,
			Blest:  episode(ci, seed, classicSpec("blest")).mbps,
		}
	})
	return model, report
}
