package exp

import (
	"fmt"
	"strings"

	"mptcp/internal/cc"
	"mptcp/internal/core"
	"mptcp/internal/model"
	"mptcp/internal/scenario"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/trace"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:  "dynamics",
		Ref: "scenario engine × §3/§5",
		Desc: "Full algorithm grid under time-varying networks: every scenario script (flap, ramp, churn, " +
			"handover) against torus, dual-homed server and WiFi+3G; per-cell throughput, recovery rate and fairness.",
		Run: runDynamics,
	})
}

// dynTopo is one topology column of the dynamics grid. build constructs
// the world's links and measured flows (all multipath flows driven by
// alg) and returns the scenario Env — links in the topology's canonical
// order, Spawn wired for churn — plus the flow set to measure and the
// slice of those flows that counts as "the multipath aggregate".
type dynTopo struct {
	name  string
	build func(w *world, alg core.Algorithm) (env *scenario.Env, all []*transport.Conn, mp []*transport.Conn)
}

func dynTopos() []dynTopo {
	return []dynTopo{
		{"torus", dynTorus},
		{"dualhomed", dynDualHomed},
		{"wifi3g", dynWiFi3G},
	}
}

// dynWarm/dynEnd are the (unscaled) measurement window of one dynamics
// cell; every scenario script is built with T = dynEnd so disturbances
// land inside the window and the final tenth is post-disturbance.
const (
	dynWarm = 10 * sim.Second
	dynEnd  = 60 * sim.Second
)

// dynOut is one cell's measurements.
type dynOut struct {
	mbps     float64 // multipath aggregate over [warm, end]
	recovery float64 // multipath aggregate over the final tenth of the run
	jain     float64 // Jain's index over all persistent flows
	churn    float64 // flows spawned by the scenario (churn script only)
	// tr is the cell's protocol trace, nil unless Config.TraceW enabled
	// tracing; runDynamics flushes the cells' tracers in cell order.
	tr *trace.Tracer
}

func runDynamics(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("dynamics")
	algs := cc.Names()
	topos := dynTopos()
	scens := scenario.Names()
	if cfg.Scenario != "" {
		found := false
		for _, s := range scens {
			if s == cfg.Scenario {
				found = true
			}
		}
		if !found {
			panic(fmt.Sprintf("exp: unknown scenario %q (have %v)", cfg.Scenario, scens))
		}
	}

	// One cell per (algorithm, topology, scenario), algorithm-major so
	// registering a new algorithm appends cells without perturbing the
	// derived seeds of existing ones. A -scenario filter selects a
	// subset of cells but keeps each cell's full-grid index as its seed
	// index, so a filtered run reproduces the corresponding cells of
	// the full grid bit-for-bit.
	type cellKey struct{ ai, ti, si, idx int }
	var sel []cellKey
	idx := 0
	for ai := range algs {
		for ti := range topos {
			for si := range scens {
				if cfg.Scenario == "" || scens[si] == cfg.Scenario {
					sel = append(sel, cellKey{ai, ti, si, idx})
				}
				idx++
			}
		}
	}
	cells := RunCells(cfg, len(sel), func(cell Config, i int) dynOut {
		k := sel[i]
		cell.Seed = CellSeed(cfg.Seed, k.idx)
		return runDynCell(cell, topos[k.ti], scens[k.si], newAlg(algs[k.ai]))
	})

	table := Table{
		Title: "Dynamics: multipath Mb/s over the run (Mb/s in the post-disturbance tail) [Jain] per algorithm × scenario × topology",
		Cols:  []string{"algorithm", "scenario"},
	}
	for _, tp := range topos {
		table.Cols = append(table.Cols, tp.name)
	}
	// Rows are one per (algorithm, scenario) with topology columns;
	// records, metrics and rows are all assembled in deterministic cell
	// order, never goroutine order.
	rowOf := map[[2]int]int{}
	for i, k := range sel {
		c := cells[i]
		name, tp, sc := algs[k.ai], topos[k.ti].name, scens[k.si]
		key := strings.ToLower(name) + "_" + tp + "_" + sc
		res.Metrics[key+"_mbps"] = c.mbps
		res.Metrics[key+"_recovery_mbps"] = c.recovery
		res.Metrics[key+"_jain"] = c.jain
		res.Records = append(res.Records, Record{
			Algorithm: name,
			Topology:  tp,
			Scenario:  sc,
			Metrics: map[string]float64{
				"mbps":           c.mbps,
				"recovery_mbps":  c.recovery,
				"jain":           c.jain,
				"churn_arrivals": c.churn,
			},
		})
		rk := [2]int{k.ai, k.si}
		ri, ok := rowOf[rk]
		if !ok {
			ri = len(table.Rows)
			rowOf[rk] = ri
			table.Rows = append(table.Rows, []string{name, sc})
		}
		table.Rows[ri] = append(table.Rows[ri],
			f1(c.mbps)+" ("+f1(c.recovery)+") ["+f2(c.jain)+"]")
	}
	res.note("every algorithm must survive flaps, ramps, churn and handover on every topology; recovery is the final tenth of the run, after the last disturbance")
	res.Tables = append(res.Tables, table)
	// Flush the cells' traces sequentially in cell order: the trace
	// bytes, like the Records above, are then identical at any
	// Parallelism. No-op (nil tracers) unless Config.TraceW is set.
	if cfg.TraceW != nil {
		for i := range cells {
			if err := cells[i].tr.Flush(cfg.TraceW); err != nil {
				res.note("trace flush failed: %v", err)
				break
			}
		}
	}
	return res
}

// runDynCell simulates one grid cell: build the topology's flows, bind
// and install the scenario script, then measure over [warm, end] with a
// post-disturbance recovery window over the final tenth. With tracing
// enabled the cell gets a private tracer (returned in dynOut for the
// grid to flush in cell order); the builders hand it to every
// connection and the scenario's scriptable links report state changes
// into it.
func runDynCell(cell Config, tp dynTopo, scen string, alg core.Algorithm) dynOut {
	var w *world
	if cell.TraceW != nil {
		w = newTracedWorld(cell.Seed, alg.Name()+"/"+tp.name+"/"+scen)
	} else {
		w = newWorld(cell.Seed)
	}
	warm, end := cell.dur(dynWarm), cell.dur(dynEnd)
	env, all, mp := tp.build(w, alg)
	if w.tr != nil {
		for _, d := range env.Links {
			d.Trace(w.tr)
		}
	}
	sc := scenario.MustBuild(scen, end)
	sc.MustInstall(env)

	w.s.RunUntil(warm)
	base := snapshot(all)
	recStart := end - end/10
	w.s.RunUntil(recStart)
	recBase := snapshot(all)
	w.s.RunUntil(end)

	rates := ratesSince(all, base, end-warm)
	recRates := ratesSince(all, recBase, end-recStart)
	var out dynOut
	for i, c := range all {
		for _, m := range mp {
			if m == c {
				out.mbps += rates[i]
				out.recovery += recRates[i]
			}
		}
	}
	out.jain = model.JainIndex(rates)
	out.churn = float64(env.ChurnArrivals)
	out.tr = w.tr
	return out
}

func snapshot(conns []*transport.Conn) []int64 {
	out := make([]int64, len(conns))
	for i, c := range conns {
		out[i] = c.Delivered()
	}
	return out
}

func ratesSince(conns []*transport.Conn, base []int64, dur sim.Time) []float64 {
	out := make([]float64, len(conns))
	for i, c := range conns {
		out[i] = mbps(c.Delivered()-base[i], dur)
	}
	return out
}

// dynTorus: §3's five-link torus with five two-path flows of the
// algorithm under test; scriptable links are the torus links A..E, and
// churn spawns single-path transfers across a random torus link.
func dynTorus(w *world, alg core.Algorithm) (*scenario.Env, []*transport.Conn, []*transport.Conn) {
	tor := topo.NewTorus([]float64{1000, 1000, 500, 1000, 1000}, 100*sim.Millisecond)
	conns := make([]*transport.Conn, 5)
	for i := range conns {
		conns[i] = transport.NewConn(w.n, transport.Config{
			Alg:    freshAlg(alg),
			Paths:  tor.FlowPaths(i),
			Tracer: w.tr,
		})
		conns[i].Start()
	}
	env := &scenario.Env{Sim: w.s, Net: w.n, Links: tor.Links}
	env.Spawn = func(pkts int64) {
		c := transport.NewConn(w.n, transport.Config{
			Paths:       []transport.Path{topo.PathThrough(tor.Links[w.s.Rand().Intn(5)])},
			DataPackets: pkts,
			Tracer:      w.tr,
		})
		c.Start()
	}
	return env, conns, conns
}

// dynDualHomed: §3's multihomed server (2 TCPs on link 1, 6 on link 2,
// 4 multipath flows across both); scriptable links are the two access
// links, and churn spawns client downloads on a random access link.
func dynDualHomed(w *world, alg core.Algorithm) (*scenario.Env, []*transport.Conn, []*transport.Conn) {
	rtt := 20 * sim.Millisecond
	d := topo.NewDualHomed(100, rtt/2, topo.BDPPackets(100, rtt))
	var all []*transport.Conn
	addTCP := func(link, n int) {
		for i := 0; i < n; i++ {
			c := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(link), Tracer: w.tr})
			c.Start()
			all = append(all, c)
		}
	}
	addTCP(1, 2)
	addTCP(2, 6)
	var mp []*transport.Conn
	for i := 0; i < 4; i++ {
		c := transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: d.MultipathPaths(), Tracer: w.tr})
		c.Start()
		all = append(all, c)
		mp = append(mp, c)
	}
	env := &scenario.Env{Sim: w.s, Net: w.n, Links: []*topo.Duplex{d.Link1, d.Link2}}
	env.Spawn = func(pkts int64) {
		c := transport.NewConn(w.n, transport.Config{
			Paths:       d.ClientPath(1 + w.s.Rand().Intn(2)),
			DataPackets: pkts,
			Tracer:      w.tr,
		})
		c.Start()
	}
	return env, all, mp
}

// dynWiFi3G: §5's busy wireless client (multipath flow under test vs a
// competing TCP per radio); scriptable links are [WiFi, 3G], and churn
// spawns short downloads over WiFi — neighbours on the same basestation.
func dynWiFi3G(w *world, alg core.Algorithm) (*scenario.Env, []*transport.Conn, []*transport.Conn) {
	wl := busyWireless()
	mp := transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: wl.Paths(), Tracer: w.tr})
	tcpW := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[:1], Tracer: w.tr})
	tcpG := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[1:], Tracer: w.tr})
	mp.Start()
	tcpW.Start()
	tcpG.Start()
	env := &scenario.Env{Sim: w.s, Net: w.n, Links: []*topo.Duplex{wl.WiFi, wl.G3}}
	env.Spawn = func(pkts int64) {
		c := transport.NewConn(w.n, transport.Config{
			Paths:       []transport.Path{topo.PathThrough(wl.WiFi)},
			DataPackets: pkts,
			Tracer:      w.tr,
		})
		c.Start()
	}
	return env, []*transport.Conn{mp, tcpW, tcpG}, []*transport.Conn{mp}
}
