package exp

import (
	"fmt"
	"strings"

	"mptcp/internal/core"
	"mptcp/internal/scenario"
	"mptcp/internal/sched"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
	"mptcp/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:  "appgrid",
		Ref: "workload layer × §5–§6",
		Desc: "Application-workload grid: every internal/workload behaviour (rpc, web, video, mice) × {minrtt, blest, " +
			"bandit, minrtt+otr+pen} × {MPTCP, OLIA} × {WiFi+3G under handover, dual-homed server} with a 16-packet shared " +
			"receive buffer; per-cell page-load time, RPC tail latency, rebuffer ratio and mouse completion time.",
		Run: runAppGrid,
	})
}

// appSchedSpecs is the scheduler axis: plain minrtt (the baseline the
// §6 countermeasures exist to fix), BLEST's HOL-blocking avoidance, the
// offline-trained bandit policy, and minrtt with both §6
// countermeasures composed on.
func appSchedSpecs() []string { return []string{"minrtt", "blest", "bandit", "minrtt+otr+pen"} }

// appAlgs is the congestion-control axis — the paper's algorithm and
// its successor, enough to show workload results are not an artifact of
// one controller.
func appAlgs() []string { return []string{"MPTCP", "OLIA"} }

// appRecvBuf is the shared receive buffer (packets) of every
// application transfer: small enough that the overbuffered 3G subflow
// head-of-line-blocks a naive scheduler — the regime where scheduling
// decides application latency.
const appRecvBuf = 16

// appEnd is the (unscaled) issuing horizon of one cell.
const appEnd = 30 * sim.Second

// appTopo is one topology column: build constructs the cell's
// background flows and returns the multipath path set application
// transfers run over, plus the scriptable links the column's scenario
// (if any) drives.
type appTopo struct {
	name     string
	scenario string // network-dynamics script installed over the links; "" = static
	build    func(w *world) (paths []transport.Path, links []*topo.Duplex)
}

func appTopos() []appTopo {
	return []appTopo{
		{"wifi3g", "handover", appWiFi3G},
		{"dualhomed", "", appDualHomed},
	}
}

// appWiFi3G: §5's busy wireless client — application transfers share
// WiFi+3G with one competing bulk TCP per radio, and the handover
// script kills WiFi mid-run.
func appWiFi3G(w *world) ([]transport.Path, []*topo.Duplex) {
	wl := busyWireless()
	tcpW := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[:1]})
	tcpG := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[1:]})
	tcpW.Start()
	tcpG.Start()
	return wl.Paths(), []*topo.Duplex{wl.WiFi, wl.G3}
}

// appDualHomed: §3's multihomed server with its background TCP load (2
// on link 1, 6 on link 2); application transfers use both access links.
func appDualHomed(w *world) ([]transport.Path, []*topo.Duplex) {
	rtt := 20 * sim.Millisecond
	d := topo.NewDualHomed(100, rtt/2, topo.BDPPackets(100, rtt))
	addTCP := func(link, n int) {
		for i := 0; i < n; i++ {
			c := transport.NewConn(w.n, transport.Config{Paths: d.ClientPath(link)})
			c.Start()
		}
	}
	addTCP(1, 2)
	addTCP(2, 6)
	return d.MultipathPaths(), []*topo.Duplex{d.Link1, d.Link2}
}

// appOut is one cell's measurements.
type appOut struct {
	stats      *workload.Stats
	incomplete int64 // transfers still in flight at the horizon
	pkts       int64 // data packets of completed transfers
	partial    int64 // packets delivered by in-flight transfers at the horizon
}

// appLatPrefix names each workload's headline latency metric in JSONL:
// the summary is the same streaming metrics.Summary, the semantics (and
// so the field name) differ per workload.
func appLatPrefix(wl string) string {
	switch wl {
	case "rpc":
		return "rpc"
	case "web":
		return "plt"
	case "video":
		return "chunk"
	case "mice":
		return "mice_fct"
	}
	return "lat"
}

func runAppGrid(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("appgrid")
	wls := workload.Names()
	specs := appSchedSpecs()
	algs := appAlgs()
	topos := appTopos()
	if cfg.Workload != "" {
		found := false
		for _, n := range wls {
			if n == cfg.Workload {
				found = true
			}
		}
		if !found {
			panic(fmt.Sprintf("exp: unknown workload %q (have %v)", cfg.Workload, wls))
		}
	}
	if cfg.Sched != "" {
		canon, err := sched.Canonical(cfg.Sched)
		if err != nil {
			panic(fmt.Sprintf("exp: bad scheduler spec %q: %v", cfg.Sched, err))
		}
		cfg.Sched = canon
		found := false
		for _, s := range specs {
			if s == cfg.Sched {
				found = true
			}
		}
		if !found {
			panic(fmt.Sprintf("exp: scheduler spec %q is not an appgrid column (have %v)", cfg.Sched, specs))
		}
	}

	// One cell per (workload, scheduler, algorithm, topology) in
	// workload-major order: registering a new workload appends its
	// cells after the existing ones. A -workload or -sched filter
	// selects a subset of cells but keeps each cell's full-grid index as
	// its seed index, so a filtered run reproduces the corresponding
	// cells of the full grid bit-for-bit.
	type cellKey struct{ wi, si, ai, ti, idx int }
	var sel []cellKey
	idx := 0
	for wi := range wls {
		for si := range specs {
			for ai := range algs {
				for ti := range topos {
					if (cfg.Workload == "" || wls[wi] == cfg.Workload) &&
						(cfg.Sched == "" || specs[si] == cfg.Sched) {
						sel = append(sel, cellKey{wi, si, ai, ti, idx})
					}
					idx++
				}
			}
		}
	}
	cells := RunCells(cfg, len(sel), func(cell Config, i int) appOut {
		k := sel[i]
		cell.Seed = CellSeed(cfg.Seed, k.idx)
		return runAppCell(cell, wls[k.wi], parseSchedSpec(specs[k.si]), newAlg(algs[k.ai]), topos[k.ti])
	})

	table := Table{
		Title: "Application workloads: completed units (headline: latency-p95 s, or rebuffer ratio for video) per workload × scheduler × algorithm × topology",
		Cols:  []string{"workload", "scheduler", "algorithm"},
	}
	for _, tp := range topos {
		table.Cols = append(table.Cols, tp.name)
	}
	// Rows are one per (workload, scheduler, algorithm) with topology
	// columns; records, metrics and rows are all assembled in
	// deterministic cell order, never goroutine order.
	rowOf := map[[3]int]int{}
	for i, k := range sel {
		c := cells[i]
		wl, spec, alg, tp := wls[k.wi], specs[k.si], algs[k.ai], topos[k.ti]
		mets := appMetrics(wl, c, cfg.dur(appEnd))
		key := fmt.Sprintf("%s_%s_%s_%s", wl, spec, strings.ToLower(alg), tp.name)
		res.Metrics[key+"_completed"] = float64(c.stats.Completed)
		if headline, ok := appHeadline(wl, mets); ok {
			res.Metrics[key+"_"+headline.name] = headline.v
		}
		res.Records = append(res.Records, Record{
			Algorithm: alg,
			Topology:  tp.name,
			Scenario:  tp.scenario,
			Scheduler: spec,
			RecvBuf:   appRecvBuf,
			Workload:  wl,
			Metrics:   mets,
		})
		rk := [3]int{k.wi, k.si, k.ai}
		ri, ok := rowOf[rk]
		if !ok {
			ri = len(table.Rows)
			rowOf[rk] = ri
			table.Rows = append(table.Rows, []string{wl, spec, alg})
		}
		cellTxt := f0(float64(c.stats.Completed))
		if h, ok := appHeadline(wl, mets); ok {
			cellTxt += " (" + fmt.Sprintf("%.3g", h.v) + ")"
		}
		table.Rows[ri] = append(table.Rows[ri], cellTxt)
	}
	res.Tables = append(res.Tables, table)
	res.note("all transfers share a %d-packet receive buffer; wifi3g runs the handover script (WiFi dies at 0.4T), dualhomed is static; latency fields are omitted when a cell completed nothing", appRecvBuf)
	return res
}

// appHeadline picks a cell's single summary number for the table and
// res.Metrics: the rebuffer ratio for video, the latency p95 otherwise.
type headlineVal struct {
	name string
	v    float64
}

func appHeadline(wl string, mets map[string]float64) (headlineVal, bool) {
	if wl == "video" {
		v, ok := mets["rebuffer_ratio"]
		return headlineVal{"rebuffer_ratio", v}, ok
	}
	name := appLatPrefix(wl) + "_p95"
	v, ok := mets[name]
	return headlineVal{name, v}, ok
}

// appMetrics assembles one cell's JSONL metrics. Latency quantiles are
// present only when the cell completed at least one unit — an absent
// field, not a fake zero, is the honest rendering of "nothing finished"
// (mirroring the fleet experiment's fct_* handling).
func appMetrics(wl string, c appOut, dur sim.Time) map[string]float64 {
	st := c.stats
	mets := map[string]float64{
		"issued":       float64(st.Issued),
		"completed":    float64(st.Completed),
		"incomplete":   float64(c.incomplete),
		"goodput_mbps": mbps(c.pkts+c.partial, dur),
	}
	if st.Latency.N() > 0 {
		p := appLatPrefix(wl)
		mets[p+"_mean"] = st.Latency.Mean()
		mets[p+"_p50"] = st.Latency.P50()
		mets[p+"_p95"] = st.Latency.P95()
		mets[p+"_p99"] = st.Latency.P99()
	}
	switch wl {
	case "video":
		mets["play_s"] = st.PlaySec
		mets["stall_s"] = st.StallSec
		mets["rebuffers"] = float64(st.Rebuffers)
		if total := st.PlaySec + st.StallSec; total > 0 {
			mets["rebuffer_ratio"] = st.StallSec / total
		}
	case "mice":
		mets["elephant_mbps"] = mbps(st.ElephantPkts, dur)
	}
	return mets
}

// runAppCell simulates one grid cell: build the topology's background
// flows, wire the workload's spawner through a ConnPool over the cell's
// multipath paths (every transfer gets the cell's scheduler, algorithm
// and shared receive buffer), install the column's scenario, install
// the workload, and run to the horizon. In-flight transfers at the
// horizon are accounted via the pool's live set — the same fix as the
// fleet's goodput undercount.
func runAppCell(cell Config, wlName string, spec schedSpec, alg core.Algorithm, tp appTopo) appOut {
	w := newWorld(cell.Seed)
	end := cell.dur(appEnd)
	paths, links := tp.build(w)
	pool := transport.NewConnPool(w.n)

	var out appOut
	spawn := func(pkts int64, done func()) {
		var c *transport.Conn
		cfg := schedConfig(spec, alg, appRecvBuf, paths)
		cfg.DataPackets = pkts
		cfg.OnComplete = func() {
			out.pkts += pkts
			pool.Put(c)
			done()
		}
		c = pool.Get(cfg)
		c.Start()
	}
	if tp.scenario != "" {
		sc := scenario.MustBuild(tp.scenario, end)
		sc.MustInstall(&scenario.Env{Sim: w.s, Net: w.n, Links: links})
	}
	st := workload.MustBuild(wlName, end).Install(&workload.Env{Sim: w.s, Spawn: spawn, End: end})
	w.s.RunUntil(end)

	out.stats = st
	out.incomplete = pool.LiveCount()
	out.partial = pool.LiveDelivered()
	return out
}
