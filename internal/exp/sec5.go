package exp

import (
	"mptcp/internal/core"
	"mptcp/internal/metrics"
	"mptcp/internal/scenario"
	"mptcp/internal/sim"
	"mptcp/internal/topo"
	"mptcp/internal/transport"
)

func init() {
	Register(&Experiment{
		ID:   "table-wireless-static",
		Ref:  "§5 static experiment",
		Desc: "Idle WiFi + 3G: single-path TCPs get ~14.4 and ~2.1 Mb/s; MPTCP gets roughly their sum (paper: 17.3).",
		Run:  runWirelessStatic,
	})
	Register(&Experiment{
		ID:   "fig15-wireless-compete",
		Ref:  "§5 Fig. 15",
		Desc: "WiFi + 3G with one competing TCP per path. Paper (Mb/s, multipath/TCP-WiFi/TCP-3G): EWTCP 1.66/3.11/1.20, COUPLED 1.41/3.49/0.97, MPTCP 2.21/2.56/0.65.",
		Run:  runFig15,
	})
	Register(&Experiment{
		ID:   "sec5-wired-sim",
		Ref:  "§5 simulation",
		Desc: "C1=250 pkt/s RTT 500 ms vs C2=500 pkt/s RTT 50 ms: paper gets S1 130, S2 315, M 305 pkt/s — M matches what a TCP would get at path 2's loss rate, not a naive 250.",
		Run:  runSec5Wired,
	})
	Register(&Experiment{
		ID:   "fig16-rtt-sweep",
		Ref:  "§5 Fig. 16",
		Desc: "Sweep RTT2 and C2 against a fixed 400 pkt/s/100 ms link 1: the ratio of M's throughput to the better of S1/S2 should stay near 1.",
		Run:  runFig16,
	})
	Register(&Experiment{
		ID:   "fig17-mobility",
		Ref:  "§5 Fig. 17 (mobile)",
		Desc: "Walk through the building: WiFi coverage drops on the stairwell, 3G congestion varies; MPTCP rebalances continuously and never stalls.",
		Run:  runFig17,
	})
}

// goodWireless reproduces the static experiment's radio conditions (lab
// bench next to the basestation).
func goodWireless() *topo.Wireless {
	return topo.NewWireless(topo.WirelessConfig{
		WiFiMbps: 16, WiFiDelay: 5 * sim.Millisecond, WiFiLoss: 0.004, WiFiBuf: 30,
		G3Mbps: 2.2, G3Delay: 30 * sim.Millisecond, G3Loss: 0.0005, G3Buf: 400,
	})
}

// busyWireless reproduces Fig. 15's conditions: heavy 2.4 GHz
// interference (the paper measured ~5 Mb/s of total WiFi capacity during
// those five minutes) and a slow, overbuffered 3G cell.
func busyWireless() *topo.Wireless {
	return topo.NewWireless(topo.WirelessConfig{
		WiFiMbps: 6, WiFiDelay: 8 * sim.Millisecond, WiFiLoss: 0.015, WiFiBuf: 20,
		G3Mbps: 2.0, G3Delay: 60 * sim.Millisecond, G3Loss: 0.0005, G3Buf: 300,
	})
}

func runWirelessStatic(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("table-wireless-static")
	warm, end := cfg.dur(10*sim.Second), cfg.dur(110*sim.Second)

	flows := []struct {
		name   string
		metric string
		alg    func() core.Algorithm
		paths  func(*topo.Wireless) []transport.Path
	}{
		{"TCP-WiFi", "tcp_wifi_mbps", func() core.Algorithm { return core.Regular{} },
			func(wl *topo.Wireless) []transport.Path { return wl.Paths()[:1] }},
		{"TCP-3G", "tcp_3g_mbps", func() core.Algorithm { return core.Regular{} },
			func(wl *topo.Wireless) []transport.Path { return wl.Paths()[1:] }},
		{"MPTCP", "mptcp_mbps", func() core.Algorithm { return &core.MPTCP{} },
			func(wl *topo.Wireless) []transport.Path { return wl.Paths() }},
	}
	table := Table{
		Title: "Idle-path throughput (Mb/s); paper: TCP-WiFi 14.4, TCP-3G 2.1, MPTCP 17.3 (the sum)",
		Cols:  []string{"flow", "Mb/s"},
	}
	cells := RunCells(cfg, len(flows), func(cell Config, i int) CellResult {
		fl := flows[i]
		w := newWorld(cell.Seed)
		wl := goodWireless()
		c := transport.NewConn(w.n, transport.Config{Alg: fl.alg(), Paths: fl.paths(wl)})
		c.Start()
		r := w.measure([]*transport.Conn{c}, warm, end)[0]
		return CellResult{
			Row:     []string{fl.name, f2(r)},
			Metrics: map[string]float64{fl.metric: r},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	m := res.Metrics
	m["sum_ratio"] = m["mptcp_mbps"] / (m["tcp_wifi_mbps"] + m["tcp_3g_mbps"])
	res.note("§2.5: with no competing traffic both access links are fully utilised, so MPTCP's fairness goals permit the full sum")
	return res
}

func runFig15(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig15-wireless-compete")
	warm, end := cfg.dur(30*sim.Second), cfg.dur(330*sim.Second)

	table := Table{
		Title: "Competing flows (Mb/s); paper: EWTCP 1.66/3.11/1.20, COUPLED 1.41/3.49/0.97, MPTCP 2.21/2.56/0.65 (multipath/TCP-WiFi/TCP-3G)",
		Cols:  []string{"algorithm", "multipath", "TCP-WiFi", "TCP-3G", "mp WiFi-share"},
	}
	cells := RunCells(cfg, len(algSet()), func(cell Config, i int) CellResult {
		alg := algSet()[i]
		w := newWorld(cell.Seed)
		wl := busyWireless()
		mp := transport.NewConn(w.n, transport.Config{Alg: freshAlg(alg), Paths: wl.Paths()})
		tcpW := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[:1]})
		tcpG := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[1:]})
		mp.Start()
		tcpW.Start()
		tcpG.Start()
		rates := w.measure([]*transport.Conn{mp, tcpW, tcpG}, warm, end)
		wifiShare := 0.0
		if d := mp.SubflowDelivered(0) + mp.SubflowDelivered(1); d > 0 {
			wifiShare = float64(mp.SubflowDelivered(0)) / float64(d)
		}
		return CellResult{
			Row: []string{alg.Name(), f2(rates[0]), f2(rates[1]), f2(rates[2]), f2(wifiShare)},
			Metrics: map[string]float64{
				metricName(alg, "mp_mbps"):      rates[0],
				metricName(alg, "tcpwifi_mbps"): rates[1],
				metricName(alg, "tcp3g_mbps"):   rates[2],
			},
		}
	})
	Collect(res, &table, cells)
	res.Tables = append(res.Tables, table)
	res.note("only MPTCP approaches the competing WiFi TCP's throughput; COUPLED hides on the 3G path, EWTCP splits half-and-half")
	return res
}

func runSec5Wired(cfg Config) *Result {
	cfg = cfg.norm()
	warm, end := cfg.dur(100*sim.Second), cfg.dur(500*sim.Second)

	// S1, S2 and M compete in one shared world: a single cell.
	return RunCells(cfg, 1, func(cell Config, _ int) *Result {
		res := newResult("sec5-wired-sim")
		w := newWorld(cell.Seed)
		l1 := topo.NewDuplexPkt("link1", 250, 250*sim.Millisecond, topo.BDPPacketsPkt(250, 500*sim.Millisecond))
		l2 := topo.NewDuplexPkt("link2", 500, 25*sim.Millisecond, topo.BDPPacketsPkt(500, 50*sim.Millisecond))
		s1 := transport.NewConn(w.n, transport.Config{Paths: []transport.Path{topo.PathThrough(l1)}})
		s2 := transport.NewConn(w.n, transport.Config{Paths: []transport.Path{topo.PathThrough(l2)}})
		m := transport.NewConn(w.n, transport.Config{
			Alg:   &core.MPTCP{},
			Paths: []transport.Path{topo.PathThrough(l1), topo.PathThrough(l2)},
		})
		s1.Start()
		s2.Start()
		m.Start()
		rates := w.measure([]*transport.Conn{s1, s2, m}, warm, end)
		toPkt := 1e6 / (8.0 * 1500)
		p1 := l1.AB.Stats.LossFraction()
		p2 := l2.AB.Stats.LossFraction()

		res.Tables = append(res.Tables, Table{
			Title: "Throughput (pkt/s) and loss; paper: S1 130, S2 315, M 305, p1 0.22%, p2 0.28%",
			Cols:  []string{"flow", "pkt/s"},
			Rows: [][]string{
				{"S1 (link1 only)", f0(rates[0] * toPkt)},
				{"S2 (link2 only)", f0(rates[1] * toPkt)},
				{"M (both links)", f0(rates[2] * toPkt)},
				{"p1 (%)", f2(p1 * 100)},
				{"p2 (%)", f2(p2 * 100)},
			},
		})
		res.Metrics["s1_pktps"] = rates[0] * toPkt
		res.Metrics["s2_pktps"] = rates[1] * toPkt
		res.Metrics["m_pktps"] = rates[2] * toPkt
		res.note("M aims for what a single-path TCP would get at path 2's loss rate (~S2), not for C2/2 = 250 pkt/s — §5's subtle fairness point")
		return res
	})[0]
}

func runFig16(cfg Config) *Result {
	cfg = cfg.norm()
	res := newResult("fig16-rtt-sweep")
	warm, end := cfg.dur(60*sim.Second), cfg.dur(360*sim.Second)
	rtts := []float64{12, 25, 50, 100, 200, 400, 800} // ms
	caps := []float64{400, 800, 1600, 3200}           // pkt/s

	fig := Figure{
		Title:  "Fig. 16: M's throughput / best(S1, S2) — one curve per C2",
		XLabel: "RTT2 (ms)",
		YLabel: "ratio",
	}
	// One cell per (C2, RTT2) pair.
	ratios := RunCells(cfg, len(caps)*len(rtts), func(cell Config, idx int) float64 {
		c2 := caps[idx/len(rtts)]
		rtt2 := rtts[idx%len(rtts)]
		w := newWorld(cell.Seed)
		l1 := topo.NewDuplexPkt("l1", 400, 50*sim.Millisecond, topo.BDPPacketsPkt(400, 100*sim.Millisecond))
		d2 := sim.Time(rtt2/2) * sim.Millisecond
		l2 := topo.NewDuplexPkt("l2", c2, d2, topo.BDPPacketsPkt(c2, sim.Time(rtt2)*sim.Millisecond))
		s1 := transport.NewConn(w.n, transport.Config{Paths: []transport.Path{topo.PathThrough(l1)}})
		s2 := transport.NewConn(w.n, transport.Config{Paths: []transport.Path{topo.PathThrough(l2)}})
		m := transport.NewConn(w.n, transport.Config{
			Alg:   &core.MPTCP{},
			Paths: []transport.Path{topo.PathThrough(l1), topo.PathThrough(l2)},
		})
		s1.Start()
		s2.Start()
		m.Start()
		rates := w.measure([]*transport.Conn{s1, s2, m}, warm, end)
		denom := rates[0]
		if rates[1] > denom {
			denom = rates[1]
		}
		if denom <= 0 {
			return 0
		}
		return rates[2] / denom
	})
	worst, best, sum, count := 2.0, 0.0, 0.0, 0.0
	for ci, c2 := range caps {
		curve := Curve{Name: "C2=" + f0(c2)}
		for ri, rtt2 := range rtts {
			ratio := ratios[ci*len(rtts)+ri]
			curve.Pts = append(curve.Pts, Point{X: rtt2, Y: ratio})
			if ratio < worst {
				worst = ratio
			}
			if ratio > best {
				best = ratio
			}
			sum += ratio
			count++
		}
		fig.Curves = append(fig.Curves, curve)
	}
	res.Figures = append(res.Figures, fig)
	res.Metrics["ratio_mean"] = sum / count
	res.Metrics["ratio_worst"] = worst
	res.Metrics["ratio_best"] = best
	res.note("paper: within a few percent of 1.0 except where link 2's bandwidth-delay product is very small (timeout-dominated)")
	return res
}

func runFig17(cfg Config) *Result {
	cfg = cfg.norm()
	// Timeline (scaled): phase 1 walk around the office, phase 2 the
	// stairwell (no WiFi, good 3G), phase 3 near a fresh basestation.
	p1 := cfg.dur(240 * sim.Second)
	p2 := cfg.dur(60 * sim.Second)
	p3 := cfg.dur(120 * sim.Second)

	// One continuous walk with shared link state: a single cell.
	return RunCells(cfg, 1, func(cell Config, _ int) *Result {
		res := newResult("fig17-mobility")
		w := newWorld(cell.Seed)
		wl := topo.NewWireless(topo.WirelessConfig{
			WiFiMbps: 10, WiFiDelay: 8 * sim.Millisecond, WiFiLoss: 0.01, WiFiBuf: 25,
			G3Mbps: 2.0, G3Delay: 50 * sim.Millisecond, G3Loss: 0.0005, G3Buf: 300,
		})
		tcpW := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[:1]})
		tcpG := transport.NewConn(w.n, transport.Config{Paths: wl.Paths()[1:]})
		mp := transport.NewConn(w.n, transport.Config{Alg: &core.MPTCP{}, Paths: wl.Paths()})
		tcpW.Start()
		tcpG.Start()
		w.s.After(cell.dur(10*sim.Second), mp.Start)

		// The walk, as a declarative scenario over [WiFi, 3G]: entering
		// the stairwell kills WiFi and improves 3G; afterwards a new
		// basestation appears with better radio. Rates are absolute Mb/s
		// (the paper's measured conditions), so the rewire onto
		// internal/scenario is bit-identical to the hand-coded closures
		// it replaced (pinned by TestScenarioRewireGolden).
		walk := scenario.Scenario{Name: "fig17-walk", Directives: []scenario.Directive{
			scenario.LinkDown{Link: 0, At: p1},
			scenario.RateRamp{Link: 1, Start: p1, To: 2.8, Abs: true},
			scenario.LinkUp{Link: 0, At: p1 + p2},
			scenario.RateRamp{Link: 0, Start: p1 + p2, To: 12, Abs: true},
			scenario.LossStep{Link: 0, At: p1 + p2, Loss: 0.004},
			scenario.RateRamp{Link: 1, Start: p1 + p2, To: 2.0, Abs: true},
		}}
		walk.MustInstall(&scenario.Env{Sim: w.s, Net: w.n, Links: []*topo.Duplex{wl.WiFi, wl.G3}})

		sampler := metrics.NewSampler(w.s, cell.dur(5*sim.Second))
		sampler.Probe("mp-wifi", func() float64 { return float64(mp.SubflowDelivered(0)) })
		sampler.Probe("mp-3g", func() float64 { return float64(mp.SubflowDelivered(1)) })
		sampler.Probe("tcp-wifi", func() float64 { return float64(tcpW.Delivered()) })
		sampler.Probe("tcp-3g", func() float64 { return float64(tcpG.Delivered()) })
		sampler.Start()
		end := p1 + p2 + p3
		w.s.RunUntil(end)

		fig := Figure{
			Title:  "Fig. 17: 5s-binned throughput while walking (WiFi outage in the middle phase)",
			XLabel: "time (s)",
			YLabel: "Mb/s",
		}
		phaseMean := func(s *metrics.Series, from, to sim.Time) float64 {
			r := s.Rate()
			var tot float64
			var n int
			for i := 0; i < r.Len(); i++ {
				if r.Times[i] > from && r.Times[i] <= to {
					tot += r.Vals[i] * 1500 * 8 / 1e6
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return tot / float64(n)
		}
		for _, name := range sampler.Names() {
			r := sampler.Series(name).Rate()
			c := Curve{Name: name}
			for i := 0; i < r.Len(); i++ {
				c.Pts = append(c.Pts, Point{X: r.Times[i].Seconds(), Y: r.Vals[i] * 1500 * 8 / 1e6})
			}
			fig.Curves = append(fig.Curves, c)
		}
		res.Figures = append(res.Figures, fig)

		wifiSeries := sampler.Series("mp-wifi")
		g3Series := sampler.Series("mp-3g")
		mpPhase1 := phaseMean(wifiSeries, 0, p1) + phaseMean(g3Series, 0, p1)
		mpPhase2 := phaseMean(wifiSeries, p1, p1+p2) + phaseMean(g3Series, p1, p1+p2)
		mpPhase3 := phaseMean(wifiSeries, p1+p2, end) + phaseMean(g3Series, p1+p2, end)
		res.Tables = append(res.Tables, Table{
			Title: "Multipath throughput by phase (Mb/s)",
			Cols:  []string{"phase", "multipath Mb/s", "of which 3G"},
			Rows: [][]string{
				{"office (WiFi+3G)", f2(mpPhase1), f2(phaseMean(g3Series, 0, p1))},
				{"stairwell (3G only)", f2(mpPhase2), f2(phaseMean(g3Series, p1, p1+p2))},
				{"new basestation", f2(mpPhase3), f2(phaseMean(g3Series, p1+p2, end))},
			},
		})
		res.Metrics["phase1_mbps"] = mpPhase1
		res.Metrics["phase2_mbps"] = mpPhase2
		res.Metrics["phase3_mbps"] = mpPhase3
		res.note("the connection survives the WiFi outage on 3G alone and immediately exploits the new basestation — the robustness story of §5")
		return res
	})[0]
}
