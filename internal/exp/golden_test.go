package exp

import "testing"

// TestEngineMetricsGolden pins experiment metrics captured on the engine
// BEFORE the zero-allocation rewrite of internal/sim (typed events,
// rearm-in-place timers, freelists). The rewrite is required to be
// behaviour-preserving: same seed, bit-identical metrics. If an
// intentional semantic change ever touches these paths, regenerate the
// literals with
//
//	go run ./cmd/mptcp-exp -run fig8-torus -scale 0.05 -seed 42 -json
//	go run ./cmd/mptcp-exp -run fig2-triangle -scale 0.1 -seed 7 -json
//
// and say why in the commit message. (Last re-pinned when CellSeed
// moved from the stride scheme to sim.MixSeed — every cell seed
// changed, not the engine semantics.)
func TestEngineMetricsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-experiment golden comparison")
	}
	cases := []struct {
		id     string
		seed   int64
		scale  float64
		golden map[string]float64
	}{
		{
			id: "fig8-torus", seed: 42, scale: 0.05,
			golden: map[string]float64{
				"coupled_jain_c100":  0.9377275851513457,
				"coupled_ratio_c100": 0.9837954837954839,
				"ewtcp_jain_c100":    0.9461317442008037,
				"ewtcp_ratio_c100":   0.8400210010500525,
				"mptcp_jain_c100":    0.9362344211144407,
				"mptcp_ratio_c100":   0.8789574951897848,
			},
		},
		{
			id: "fig2-triangle", seed: 7, scale: 0.1,
			golden: map[string]float64{
				"coupled_mean_mbps":    11.317,
				"coupled_onehop_share": 0.9918781298657577,
				"ewtcp_mean_mbps":      11.201,
				"ewtcp_onehop_share":   0.9399156213721437,
				"mptcp_mean_mbps":      11.7464,
				"mptcp_onehop_share":   0.9848095762170682,
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			e, ok := Get(tc.id)
			if !ok {
				t.Fatalf("experiment %s not registered", tc.id)
			}
			res := e.Run(Config{Seed: tc.seed, Scale: tc.scale})
			for k, want := range tc.golden {
				got, ok := res.Metrics[k]
				if !ok {
					t.Errorf("metric %s missing", k)
					continue
				}
				if got != want {
					t.Errorf("metric %s = %v, want golden %v (pre-rewrite engine)", k, got, want)
				}
			}
		})
	}
}
