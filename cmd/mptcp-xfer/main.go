// Command mptcp-xfer is a multipath file-transfer tool over the
// mptcpnet userspace MPTCP stack (UDP subflows, §6 protocol design).
//
// Receiver (binds one UDP port per subflow and prints them):
//
//	mptcp-xfer -recv -paths 2 -out /tmp/file
//
// Sender (one remote addr per subflow, comma separated):
//
//	mptcp-xfer -send file -to 127.0.0.1:7001,127.0.0.1:7002
//
// Either side can serve live introspection while the transfer runs:
//
//	mptcp-xfer -send file -to ... -debug-addr localhost:6060
//	curl -s localhost:6060/debug/vars | jq .mptcp_sender
//	go tool pprof localhost:6060/debug/pprof/profile
//
// For a loopback demo with emulated heterogeneous paths, see
// examples/mptcpnet.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"mptcp/internal/cc"
	"mptcp/internal/mptcpnet"
)

func main() {
	recv := flag.Bool("recv", false, "act as receiver")
	paths := flag.Int("paths", 2, "number of subflows (receiver)")
	out := flag.String("out", "", "output file (receiver; default stdout)")
	send := flag.String("send", "", "file to send (sender)")
	to := flag.String("to", "", "comma-separated remote addrs, one per subflow (sender)")
	// The accepted names (and the list below) come from the algorithm
	// registry, so a newly registered algorithm shows up here for free.
	algName := flag.String("alg", "MPTCP",
		"congestion control (case-insensitive): "+strings.Join(cc.Names(), ", ")+"\n"+cc.Help())
	connID := flag.Uint64("conn", 1, "connection ID (must match on both ends)")
	debugAddr := flag.String("debug-addr", "",
		"serve live introspection over HTTP on this address (e.g. localhost:6060 or :0):\n"+
			"/debug/vars has expvar counters incl. the per-subflow protocol snapshot,\n"+
			"/debug/pprof/ has CPU/heap/goroutine profiles; empty disables")
	flag.Parse()

	switch {
	case *recv:
		runReceiver(*paths, *out, *connID, *debugAddr)
	case *send != "":
		runSender(*send, *to, *algName, *connID, *debugAddr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runReceiver(paths int, out string, connID uint64, debugAddr string) {
	var conns []net.PacketConn
	for i := 0; i < paths; i++ {
		c, err := net.ListenPacket("udp", ":0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "subflow %d listening on %s\n", i, c.LocalAddr())
		conns = append(conns, c)
	}
	rx := mptcpnet.NewReceiver(connID, conns, 1024)
	if debugAddr != "" {
		startDebug(debugAddr, "mptcp_receiver", func() any {
			recvd, dup, overflow := rx.Stats()
			per := make([]int64, paths)
			for i := range per {
				per[i] = rx.SubflowReceived(i)
			}
			return map[string]any{
				"received": recvd, "dup_data": dup, "overflow": overflow,
				"corrupt": rx.Corrupted(), "subflow_received": per,
			}
		})
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	start := time.Now()
	n, err := io.Copy(w, rx)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	perPath := make([]int64, paths)
	for i := range perPath {
		perPath[i] = rx.SubflowReceived(i)
	}
	fmt.Fprintf(os.Stderr, "received %d bytes in %v (%.2f Mb/s); per-path %v\n",
		n, el.Round(time.Millisecond), float64(n)*8/el.Seconds()/1e6, perPath)
}

func runSender(file, to, algName string, connID uint64, debugAddr string) {
	alg, err := cc.New(algName) // registry lookup is case-insensitive
	if err != nil {
		log.Fatal(err)
	}
	var conns []net.PacketConn
	var remotes []net.Addr
	for _, a := range strings.Split(to, ",") {
		addr, err := net.ResolveUDPAddr("udp", strings.TrimSpace(a))
		if err != nil {
			log.Fatal(err)
		}
		c, err := net.ListenPacket("udp", ":0")
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
		remotes = append(remotes, addr)
	}
	if len(conns) == 0 {
		log.Fatal("sender needs -to with at least one address")
	}
	f, err := os.Open(file)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	tx := mptcpnet.NewSender(connID, conns, remotes, mptcpnet.Config{Alg: alg})
	if debugAddr != "" {
		// mptcpnet.Stats is one coherent snapshot (single lock
		// acquisition), so /debug/vars never shows torn counters.
		startDebug(debugAddr, "mptcp_sender", func() any { return tx.Stats() })
	}
	start := time.Now()
	n, err := io.Copy(tx, f)
	if err != nil {
		log.Fatal(err)
	}
	tx.Close()
	if err := tx.Wait(5 * time.Minute); err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	fmt.Fprintf(os.Stderr, "sent %d bytes in %v (%.2f Mb/s) with %s over %d subflows\n",
		n, el.Round(time.Millisecond), float64(n)*8/el.Seconds()/1e6, alg.Name(), len(conns))
}
