package main

import (
	"expvar"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"
)

// startDebug serves live runtime introspection on addr for the duration
// of the transfer: expvar's /debug/vars (Go runtime counters plus the
// protocol snapshot published below) and net/http/pprof's /debug/pprof/
// (CPU, heap, goroutine, mutex profiles). stats is polled on every
// /debug/vars request, so the counters are always the live values —
// there is no sampling loop to race with the transfer.
//
// The bound address is announced on stderr ("debug listening on ...")
// so callers passing ":0" can discover the port, mirroring the
// "subflow N listening on" contract the e2e test parses.
func startDebug(addr, name string, stats func() any) {
	// expvar and net/http/pprof both hang their handlers on
	// http.DefaultServeMux at init; publishing the snapshot and serving
	// the default mux is the whole job. Func's return value is
	// marshalled as JSON inside /debug/vars.
	expvar.Publish(name, expvar.Func(stats))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("debug-addr: %v", err)
	}
	fmt.Fprintf(os.Stderr, "debug listening on %s\n", ln.Addr())
	go func() {
		// The server dies with the process; transfers are the lifetime.
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("debug server: %v", err)
		}
	}()
}
