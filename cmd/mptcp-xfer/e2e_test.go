package main

// End-to-end test of the real binary: `go build` mptcp-xfer, run receiver
// and sender as separate OS processes over loopback UDP, interpose a
// chaos relay on each subflow and flap one of them (kill/heal) for the
// whole transfer. The file must arrive byte-exact — same SHA-256 — and
// both processes must exit cleanly. This pins the CLI surface (flags,
// the "listening on" stderr contract the test parses) as well as the
// stack's recovery through a real partition between real processes.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"mptcp/internal/chaos"
)

var listenRE = regexp.MustCompile(`subflow (\d+) listening on (\S+)`)

func TestE2EBinaryTransferOverFlappingRelay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "mptcp-xfer")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// ~512 KiB of seeded pseudo-random payload.
	const size = 512 << 10
	data := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(data) //nolint:errcheck
	inFile := filepath.Join(dir, "in.bin")
	if err := os.WriteFile(inFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "out.bin")

	// Receiver process: two subflow ports, announced on stderr.
	recv := exec.Command(bin, "-recv", "-paths", "2", "-out", outFile)
	recvErr, err := recv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Process.Kill() //nolint:errcheck — no-op on clean exit

	ports := make(map[int]string)
	sc := bufio.NewScanner(recvErr)
	for len(ports) < 2 && sc.Scan() {
		if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
			_, port, err := net.SplitHostPort(m[2])
			if err != nil {
				t.Fatalf("unparseable listen addr %q: %v", m[2], err)
			}
			ports[len(ports)] = port
		}
	}
	if len(ports) < 2 {
		t.Fatalf("receiver announced %d subflow ports, want 2 (scan err %v)", len(ports), sc.Err())
	}
	go func() { // keep draining so the receiver never blocks on stderr
		for sc.Scan() {
		}
	}()

	// One chaos relay per subflow. Both are rate-limited so the transfer
	// spans several flap cycles; relay 1 is the one that gets partitioned.
	var relays []*chaos.Relay
	for i := 0; i < 2; i++ {
		target, err := net.ResolveUDPAddr("udp", "127.0.0.1:"+ports[i])
		if err != nil {
			t.Fatal(err)
		}
		r, err := chaos.NewRelay(target, chaos.PathConfig{Delay: time.Millisecond, RateBps: 40e6}, int64(7000+i))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		relays = append(relays, r)
	}

	stopFlap := make(chan struct{})
	defer close(stopFlap)
	go func() {
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopFlap:
				relays[1].Path().Heal()
				return
			case <-tick.C:
				if relays[1].Path().Killed() {
					relays[1].Path().Heal()
				} else {
					relays[1].Path().Kill()
				}
			}
		}
	}()

	var toAddrs []string
	for _, r := range relays {
		_, port, err := net.SplitHostPort(r.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		toAddrs = append(toAddrs, "127.0.0.1:"+port)
	}

	send := exec.Command(bin, "-send", inFile, "-to", strings.Join(toAddrs, ","))
	var sendOut bytes.Buffer
	send.Stderr = &sendOut
	if err := send.Run(); err != nil {
		t.Fatalf("sender: %v\n%s", err, sendOut.String())
	}
	if err := recv.Wait(); err != nil {
		t.Fatalf("receiver: %v", err)
	}

	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != size {
		t.Fatalf("received %d bytes, want %d", len(got), size)
	}
	if sha256.Sum256(got) != sha256.Sum256(data) {
		t.Fatal("file corrupted in transit: SHA-256 mismatch")
	}
	if st := relays[1].Path().Stats(); st.Dropped == 0 {
		t.Error("the flapped relay never dropped a datagram — the partition was vacuous")
	} else {
		t.Logf("flapped relay: %+v; sender: %s", st, strings.TrimSpace(lastLine(sendOut.String())))
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}
