package main

// End-to-end test of the real binary: `go build` mptcp-xfer, run receiver
// and sender as separate OS processes over loopback UDP, interpose a
// chaos relay on each subflow and flap one of them (kill/heal) for the
// whole transfer. The file must arrive byte-exact — same SHA-256 — and
// both processes must exit cleanly. This pins the CLI surface (flags,
// the "listening on" stderr contract the test parses) as well as the
// stack's recovery through a real partition between real processes.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"mptcp/internal/chaos"
)

var (
	listenRE = regexp.MustCompile(`subflow (\d+) listening on (\S+)`)
	debugRE  = regexp.MustCompile(`debug listening on (\S+)`)
)

// buildXfer compiles the binary once per test into dir.
func buildXfer(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "mptcp-xfer")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestE2EBinaryTransferOverFlappingRelay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	dir := t.TempDir()
	bin := buildXfer(t, dir)

	// ~512 KiB of seeded pseudo-random payload.
	const size = 512 << 10
	data := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(data) //nolint:errcheck
	inFile := filepath.Join(dir, "in.bin")
	if err := os.WriteFile(inFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "out.bin")

	// Receiver process: two subflow ports, announced on stderr.
	recv := exec.Command(bin, "-recv", "-paths", "2", "-out", outFile)
	recvErr, err := recv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Process.Kill() //nolint:errcheck — no-op on clean exit

	ports := make(map[int]string)
	sc := bufio.NewScanner(recvErr)
	for len(ports) < 2 && sc.Scan() {
		if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
			_, port, err := net.SplitHostPort(m[2])
			if err != nil {
				t.Fatalf("unparseable listen addr %q: %v", m[2], err)
			}
			ports[len(ports)] = port
		}
	}
	if len(ports) < 2 {
		t.Fatalf("receiver announced %d subflow ports, want 2 (scan err %v)", len(ports), sc.Err())
	}
	go func() { // keep draining so the receiver never blocks on stderr
		for sc.Scan() {
		}
	}()

	// One chaos relay per subflow. Both are rate-limited so the transfer
	// spans several flap cycles; relay 1 is the one that gets partitioned.
	var relays []*chaos.Relay
	for i := 0; i < 2; i++ {
		target, err := net.ResolveUDPAddr("udp", "127.0.0.1:"+ports[i])
		if err != nil {
			t.Fatal(err)
		}
		r, err := chaos.NewRelay(target, chaos.PathConfig{Delay: time.Millisecond, RateBps: 40e6}, int64(7000+i))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		relays = append(relays, r)
	}

	stopFlap := make(chan struct{})
	defer close(stopFlap)
	go func() {
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopFlap:
				relays[1].Path().Heal()
				return
			case <-tick.C:
				if relays[1].Path().Killed() {
					relays[1].Path().Heal()
				} else {
					relays[1].Path().Kill()
				}
			}
		}
	}()

	var toAddrs []string
	for _, r := range relays {
		_, port, err := net.SplitHostPort(r.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		toAddrs = append(toAddrs, "127.0.0.1:"+port)
	}

	send := exec.Command(bin, "-send", inFile, "-to", strings.Join(toAddrs, ","))
	var sendOut bytes.Buffer
	send.Stderr = &sendOut
	if err := send.Run(); err != nil {
		t.Fatalf("sender: %v\n%s", err, sendOut.String())
	}
	if err := recv.Wait(); err != nil {
		t.Fatalf("receiver: %v", err)
	}

	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != size {
		t.Fatalf("received %d bytes, want %d", len(got), size)
	}
	if sha256.Sum256(got) != sha256.Sum256(data) {
		t.Fatal("file corrupted in transit: SHA-256 mismatch")
	}
	if st := relays[1].Path().Stats(); st.Dropped == 0 {
		t.Error("the flapped relay never dropped a datagram — the partition was vacuous")
	} else {
		t.Logf("flapped relay: %+v; sender: %s", st, strings.TrimSpace(lastLine(sendOut.String())))
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}

// TestE2EDebugEndpoint: -debug-addr serves expvar and pprof over HTTP on
// both ends of a live transfer. The receiver's endpoint is probed before
// any data flows (counters at zero, pprof answering); the sender's is
// polled mid-transfer through a rate-limited relay until the published
// protocol snapshot shows segments on the wire. The transfer must still
// arrive byte-exact — introspection is read-only.
func TestE2EDebugEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	dir := t.TempDir()
	bin := buildXfer(t, dir)

	const size = 512 << 10
	data := make([]byte, size)
	rand.New(rand.NewSource(43)).Read(data) //nolint:errcheck
	inFile := filepath.Join(dir, "in.bin")
	if err := os.WriteFile(inFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "out.bin")

	// scanAddrs reads a process's stderr until n subflow ports and one
	// debug address have been announced, then keeps draining.
	scanAddrs := func(r *bufio.Scanner, n int) (ports []string, debug string) {
		for (len(ports) < n || debug == "") && r.Scan() {
			if m := listenRE.FindStringSubmatch(r.Text()); m != nil {
				_, port, err := net.SplitHostPort(m[2])
				if err != nil {
					t.Fatalf("unparseable listen addr %q: %v", m[2], err)
				}
				ports = append(ports, port)
			}
			if m := debugRE.FindStringSubmatch(r.Text()); m != nil {
				debug = m[1]
			}
		}
		go func() {
			for r.Scan() {
			}
		}()
		return
	}

	recv := exec.Command(bin, "-recv", "-paths", "2", "-out", outFile, "-debug-addr", "127.0.0.1:0")
	recvErr, err := recv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Process.Kill() //nolint:errcheck — no-op on clean exit
	ports, recvDebug := scanAddrs(bufio.NewScanner(recvErr), 2)
	if len(ports) < 2 || recvDebug == "" {
		t.Fatalf("receiver announced ports %v, debug %q", ports, recvDebug)
	}

	// Probe the idle receiver: expvar must publish the protocol snapshot,
	// pprof must answer.
	var vars struct {
		Receiver *struct {
			Received        int64   `json:"received"`
			Corrupt         int64   `json:"corrupt"`
			SubflowReceived []int64 `json:"subflow_received"`
		} `json:"mptcp_receiver"`
	}
	if err := getJSON("http://"+recvDebug+"/debug/vars", &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Receiver == nil || len(vars.Receiver.SubflowReceived) != 2 {
		t.Fatalf("receiver /debug/vars missing protocol snapshot: %+v", vars.Receiver)
	}
	if resp, err := http.Get("http://" + recvDebug + "/debug/pprof/cmdline"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("pprof endpoint: %v (resp %+v)", err, resp)
	} else {
		resp.Body.Close()
	}

	// Rate-limited relays give the transfer a ~1s window to observe the
	// sender mid-flight.
	var toAddrs []string
	for i, p := range ports {
		target, err := net.ResolveUDPAddr("udp", "127.0.0.1:"+p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := chaos.NewRelay(target, chaos.PathConfig{Delay: time.Millisecond, RateBps: 4e6}, int64(7100+i))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		_, port, err := net.SplitHostPort(r.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		toAddrs = append(toAddrs, "127.0.0.1:"+port)
	}

	send := exec.Command(bin, "-send", inFile, "-to", strings.Join(toAddrs, ","), "-debug-addr", "127.0.0.1:0")
	sendErr, err := send.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := send.Start(); err != nil {
		t.Fatal(err)
	}
	defer send.Process.Kill() //nolint:errcheck
	_, sendDebug := scanAddrs(bufio.NewScanner(sendErr), 0)
	if sendDebug == "" {
		t.Fatal("sender never announced its debug address")
	}

	// Poll the sender mid-transfer until the snapshot shows traffic.
	deadline := time.Now().Add(10 * time.Second)
	var snap struct {
		Sender *struct {
			SegsSent    int64   `json:"SegsSent"`
			SubflowSent []int64 `json:"SubflowSent"`
		} `json:"mptcp_sender"`
	}
	for {
		if err := getJSON("http://"+sendDebug+"/debug/vars", &snap); err == nil &&
			snap.Sender != nil && snap.Sender.SegsSent > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sender snapshot never showed traffic: %+v", snap.Sender)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(snap.Sender.SubflowSent) != 2 {
		t.Errorf("sender snapshot per-subflow counters = %v, want 2 entries", snap.Sender.SubflowSent)
	}

	if err := send.Wait(); err != nil {
		t.Fatalf("sender: %v", err)
	}
	if err := recv.Wait(); err != nil {
		t.Fatalf("receiver: %v", err)
	}
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(got) != sha256.Sum256(data) {
		t.Fatal("file corrupted in transit: SHA-256 mismatch")
	}
}

// getJSON fetches url and decodes the body into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
