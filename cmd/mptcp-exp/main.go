// Command mptcp-exp runs the experiments that reproduce every table and
// figure of "Design, implementation and evaluation of congestion control
// for multipath TCP" (Wischik et al., NSDI 2011).
//
// Usage:
//
//	mptcp-exp -list
//	mptcp-exp -run fig8-torus [-scale 1.0] [-seed 42]
//	mptcp-exp -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mptcp/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	id := flag.String("run", "", "experiment ID to run (or 'all')")
	seed := flag.Int64("seed", 42, "random seed")
	scale := flag.Float64("scale", 1.0, "duration/topology scale (1.0 = paper fidelity)")
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("Experiments reproducing Wischik et al., NSDI 2011:")
		for _, e := range exp.All() {
			fmt.Printf("  %-24s %-18s %s\n", e.ID, e.Ref, e.Desc)
		}
		return
	}
	cfg := exp.Config{Seed: *seed, Scale: *scale}
	run := func(e *exp.Experiment) {
		start := time.Now()
		res := e.Run(cfg)
		res.Render(os.Stdout)
		fmt.Printf("\n  (wall time %.1fs)\n\n", time.Since(start).Seconds())
	}
	if *id == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		return
	}
	e, ok := exp.Get(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *id)
		os.Exit(1)
	}
	run(e)
}
