// Command mptcp-exp runs the experiments that reproduce every table and
// figure of "Design, implementation and evaluation of congestion control
// for multipath TCP" (Wischik et al., NSDI 2011).
//
// Usage:
//
//	mptcp-exp -list
//	mptcp-exp -run fig8-torus [-scale 1.0] [-seed 42]
//	mptcp-exp -run all [-parallel 8] [-trials 5] [-json]
//	mptcp-exp -exp dynamics [-scenario handover] [-json]
//	mptcp-exp -exp schedgrid [-sched minrtt+otr+pen] [-json]
//	mptcp-exp -exp appgrid [-workload video] [-json]
//	mptcp-exp -exp dynamics -json -trace trace.jsonl
//	mptcp-exp -exp fleet [-shards 4] -json
//	mptcp-exp -analyze [-csv out.csv] grid.jsonl trace.jsonl
//	mptcp-exp -analyze -diff A.jsonl B.jsonl
//	mptcp-exp -bench-engine BENCH_engine.json [-bench-baseline BENCH_trajectory.jsonl]
//	mptcp-exp -train-sched internal/learn/bandit.model -seed 1 -scale 0.2 [-train-rounds 40]
//
// Independent trial cells fan out across -parallel workers (default
// GOMAXPROCS); results are bit-identical for every worker count. With
// -trials N each experiment repeats N times on base seeds seed..seed+N-1.
// With -json each trial emits one machine-readable JSON record per line
// instead of the rendered report; -trace additionally streams the cells'
// protocol traces (internal/trace JSONL) to a file.
//
// -analyze is the offline half: it reads any mix of the JSONL artifacts
// above (grid cell records, trial records, protocol traces — files can
// be concatenated freely), aggregates them with streaming summaries, and
// prints deterministic fixed-width tables; -csv writes the same rows as
// CSV for plotting. Two runs over the same input render identical bytes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"mptcp/internal/exp"
	"mptcp/internal/scenario"
	"mptcp/internal/sched"
	"mptcp/internal/workload"
)

// dropNaN removes NaN-valued metrics before JSON encoding: encoding/json
// rejects NaN, and an absent field is the honest rendering of "no
// observations" (metrics.Summary's Min/Max sentinel; -analyze and
// -diff show missing fields as "-").
func dropNaN(m map[string]float64) map[string]float64 {
	for k, v := range m {
		if math.IsNaN(v) {
			delete(m, k)
		}
	}
	return m
}

// trialRecord is the JSONL shape emitted by -json, one line per
// (experiment, trial): the batch identity plus the headline metrics.
type trialRecord struct {
	ID      string             `json:"id"`
	Ref     string             `json:"ref"`
	Trial   int                `json:"trial"`
	Seed    int64              `json:"seed"`
	Scale   float64            `json:"scale"`
	WallSec float64            `json:"wall_s"`
	Metrics map[string]float64 `json:"metrics"`
	Notes   []string           `json:"notes,omitempty"`
}

// cellRecord is the JSONL shape for grid experiments (tournament,
// dynamics, schedgrid, appgrid): one line per grid cell of a trial,
// replacing that trial's aggregate line. Scenario is set only by
// scenario-grid experiments; Scheduler and RecvBuf only by scheduler-
// grid ones; Workload only by the application-workload grid. The full
// field-by-field schema is documented in DESIGN.md §"JSONL record
// schema".
type cellRecord struct {
	ID        string             `json:"id"`
	Trial     int                `json:"trial"`
	Seed      int64              `json:"seed"`
	Scale     float64            `json:"scale"`
	Algorithm string             `json:"algorithm"`
	Topology  string             `json:"topology"`
	Scenario  string             `json:"scenario,omitempty"`
	Scheduler string             `json:"scheduler,omitempty"`
	Workload  string             `json:"workload,omitempty"`
	RecvBuf   int64              `json:"recv_buf,omitempty"`
	Metrics   map[string]float64 `json:"metrics"`
}

func main() {
	list := flag.Bool("list", false, "list experiments and scenarios")
	id := flag.String("run", "", "experiment ID to run (or 'all')")
	expID := flag.String("exp", "", "alias of -run")
	seed := flag.Int64("seed", 42, "base random seed")
	scale := flag.Float64("scale", 1.0, "duration/topology scale (1.0 = paper fidelity)")
	parallel := flag.Int("parallel", 0, "max concurrent trial cells (0 = GOMAXPROCS)")
	trials := flag.Int("trials", 1, "repetitions per experiment, base seeds seed..seed+trials-1")
	scenarioID := flag.String("scenario", "", "restrict the dynamics experiment to one scenario (see -list); cell seeds match the full grid")
	schedSpec := flag.String("sched", "", "restrict the schedgrid experiment to one scheduler spec, e.g. minrtt+otr+pen (see -list); cell seeds match the full grid")
	workloadID := flag.String("workload", "", "restrict the appgrid experiment to one application workload (see -list); cell seeds match the full grid")
	jsonOut := flag.Bool("json", false, "emit one JSON record per trial instead of rendered reports")
	traceOut := flag.String("trace", "", "write per-connection protocol traces (JSONL) to FILE for experiments that support tracing")
	analyze := flag.Bool("analyze", false, "aggregate JSONL artifacts (grid records, trial records, traces) named as positional args ('-' or none = stdin) into summary tables")
	diff := flag.Bool("diff", false, "with -analyze, compare exactly two JSONL files A and B and print per-cell delta tables instead of aggregates")
	csvOut := flag.String("csv", "", "with -analyze, also write the summary rows as CSV to FILE ('-' = stdout)")
	shards := flag.Int("shards", 0, "max concurrent partition domains per cell for sharded-engine experiments (fleet); 0 = GOMAXPROCS, results identical for every value")
	trainSched := flag.String("train-sched", "", "train the learned bandit scheduler offline over the schedgrid corpus and write the serialized model to FILE (deterministic for a fixed -seed/-scale/-train-rounds)")
	trainRounds := flag.Int("train-rounds", 40, "with -train-sched, passes over the training corpus (one ε-greedy episode per corpus cell per round)")
	benchEngine := flag.String("bench-engine", "", "measure the event engine's packet-hop path (plus the sharded fleet-shaped workload) and write the record to FILE")
	benchBaseline := flag.String("bench-baseline", "", "with -bench-engine, compare against the baseline record in FILE (.jsonl = last line of a trajectory) and fail if events/sec regressed >10%")
	benchTrajectory := flag.String("bench-trajectory", "BENCH_trajectory.jsonl", "with -bench-engine, append the record as one JSONL line to FILE ('' disables)")
	benchCommit := flag.String("bench-commit", "", "with -bench-engine, commit id stamped into the record (default $GITHUB_SHA, else 'local')")
	flag.Parse()
	if *expID != "" {
		id = expID
	}

	if *analyze {
		run := runAnalyze
		if *diff {
			run = runAnalyzeDiff
		}
		if err := run(flag.Args(), *csvOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *diff {
		fmt.Fprintln(os.Stderr, "-diff requires -analyze")
		os.Exit(1)
	}
	if *scenarioID != "" {
		if _, err := scenario.Build(*scenarioID, 1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *schedSpec != "" {
		if _, _, err := sched.Parse(*schedSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *workloadID != "" {
		if _, err := workload.Build(*workloadID, 1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *trainSched != "" {
		if err := runTrainSched(*trainSched, *seed, *scale, *trainRounds, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchEngine != "" {
		commit := *benchCommit
		if commit == "" {
			if commit = os.Getenv("GITHUB_SHA"); commit == "" {
				commit = "local"
			}
		}
		if err := runEngineBench(*benchEngine, *benchBaseline, *benchTrajectory, commit); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list || *id == "" {
		fmt.Println("Experiments reproducing Wischik et al., NSDI 2011:")
		for _, e := range exp.All() {
			fmt.Printf("  %-24s %-18s %s\n", e.ID, e.Ref, e.Desc)
		}
		fmt.Println("\nNetwork-dynamics scenarios (dynamics experiment, -scenario <name>):")
		for _, s := range scenario.Infos() {
			fmt.Printf("  %-24s %s\n", s.Name, s.Desc)
		}
		fmt.Println("\nPacket schedulers (schedgrid experiment, -sched <name>[+otr][+pen]):")
		fmt.Print(sched.Help())
		fmt.Println("\nApplication workloads (appgrid experiment, -workload <name>):")
		for _, w := range workload.Infos() {
			fmt.Printf("  %-24s %s\n", w.Name, w.Desc)
		}
		return
	}
	var exps []*exp.Experiment
	if *id == "all" {
		exps = exp.All()
	} else {
		e, ok := exp.Get(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *id)
			os.Exit(1)
		}
		exps = []*exp.Experiment{e}
	}

	cfg := exp.Config{Seed: *seed, Scale: *scale, Parallelism: *parallel, Shards: *shards, Scenario: *scenarioID, Sched: *schedSpec, Workload: *workloadID}
	if *traceOut != "" {
		// Trials run concurrently and each flushes its own cells to the
		// trace writer; one traced trial keeps the file deterministic.
		if *trials > 1 {
			fmt.Fprintln(os.Stderr, "-trace requires -trials 1 (concurrent trials would interleave trace output)")
			os.Exit(1)
		}
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer tf.Close()
		cfg.TraceW = tf
	}

	// Stream each trial as soon as it (and its predecessors) finish:
	// long batches produce output while they run, in deterministic
	// (experiment, trial) order.
	enc := json.NewEncoder(os.Stdout)
	var encErr error
	exp.RunBatchStream(cfg, exps, *trials, func(tr exp.TrialResult) {
		if encErr != nil {
			return
		}
		if *jsonOut {
			// Grid experiments carry per-cell records: emit one line per
			// (algorithm × topology) cell instead of one aggregate line.
			if recs := tr.Result.Records; len(recs) > 0 {
				for _, r := range recs {
					cr := cellRecord{
						ID:        tr.ID,
						Trial:     tr.Trial,
						Seed:      tr.Seed,
						Scale:     tr.Scale,
						Algorithm: r.Algorithm,
						Topology:  r.Topology,
						Scenario:  r.Scenario,
						Scheduler: r.Scheduler,
						Workload:  r.Workload,
						RecvBuf:   r.RecvBuf,
						Metrics:   dropNaN(r.Metrics),
					}
					if err := enc.Encode(cr); err != nil {
						encErr = fmt.Errorf("encoding %s: %v", tr.ID, err)
						return
					}
				}
				return
			}
			rec := trialRecord{
				ID:      tr.ID,
				Ref:     tr.Ref,
				Trial:   tr.Trial,
				Seed:    tr.Seed,
				Scale:   tr.Scale,
				WallSec: tr.WallSec,
				Metrics: dropNaN(tr.Result.Metrics),
				Notes:   tr.Result.Notes,
			}
			if err := enc.Encode(rec); err != nil {
				encErr = fmt.Errorf("encoding %s: %v", tr.ID, err)
			}
			return
		}
		tr.Result.Render(os.Stdout)
		if *trials > 1 {
			fmt.Printf("\n  (trial %d, seed %d, wall time %.1fs)\n\n", tr.Trial, tr.Seed, tr.WallSec)
		} else {
			fmt.Printf("\n  (wall time %.1fs)\n\n", tr.WallSec)
		}
	})
	if encErr != nil {
		fmt.Fprintln(os.Stderr, encErr)
		os.Exit(1)
	}
}
