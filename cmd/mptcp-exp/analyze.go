package main

import (
	"fmt"
	"io"
	"os"

	"mptcp/internal/analyze"
)

// runAnalyze aggregates the named JSONL artifact files (stdin when none
// or "-" is given) into one analyze.Report, renders the summary tables
// to stdout, and optionally writes the same rows as CSV.
func runAnalyze(files []string, csvPath string) error {
	rep := analyze.NewReport()
	if len(files) == 0 {
		files = []string{"-"}
	}
	for _, name := range files {
		if err := readInto(rep, name); err != nil {
			return err
		}
	}
	if rep.CellLines+rep.TrialLines+rep.TraceLines == 0 {
		return fmt.Errorf("no grid, trial or trace records found in input (%d lines skipped)", rep.Skipped)
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	if csvPath != "" {
		return writeCSV(csvPath, func(w io.Writer) error { return rep.WriteCSV(w) })
	}
	return nil
}

// runAnalyzeDiff is the A/B half of -analyze: it aggregates the two
// named JSONL artifact files into separate reports and renders per-cell
// delta tables (mean, p50, p99 with absolute and relative changes), so
// two branches' grid artifacts compare without spreadsheet work.
func runAnalyzeDiff(files []string, csvPath string) error {
	if len(files) != 2 {
		return fmt.Errorf("-diff compares exactly two JSONL files, got %d", len(files))
	}
	a, b := analyze.NewReport(), analyze.NewReport()
	if err := readInto(a, files[0]); err != nil {
		return err
	}
	if err := readInto(b, files[1]); err != nil {
		return err
	}
	if a.CellLines+a.TrialLines == 0 || b.CellLines+b.TrialLines == 0 {
		return fmt.Errorf("-diff needs grid or trial records on both sides (A: %d, B: %d)",
			a.CellLines+a.TrialLines, b.CellLines+b.TrialLines)
	}
	secs := analyze.Diff(a, b)
	if err := analyze.RenderSections(os.Stdout, secs); err != nil {
		return err
	}
	if csvPath != "" {
		return writeCSV(csvPath, func(w io.Writer) error { return analyze.WriteCSVSections(w, secs) })
	}
	return nil
}

func readInto(rep *analyze.Report, name string) error {
	var in io.Reader
	if name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	if err := rep.Read(in); err != nil {
		return fmt.Errorf("reading %s: %v", name, err)
	}
	return nil
}

func writeCSV(path string, emit func(io.Writer) error) error {
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := emit(out); err != nil {
		return fmt.Errorf("writing CSV: %v", err)
	}
	return nil
}
