package main

import (
	"fmt"
	"io"
	"os"

	"mptcp/internal/analyze"
)

// runAnalyze aggregates the named JSONL artifact files (stdin when none
// or "-" is given) into one analyze.Report, renders the summary tables
// to stdout, and optionally writes the same rows as CSV.
func runAnalyze(files []string, csvPath string) error {
	rep := analyze.NewReport()
	if len(files) == 0 {
		files = []string{"-"}
	}
	for _, name := range files {
		var in io.Reader
		if name == "-" {
			in = os.Stdin
		} else {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			in = f
			defer f.Close()
		}
		if err := rep.Read(in); err != nil {
			return fmt.Errorf("reading %s: %v", name, err)
		}
	}
	if rep.CellLines+rep.TrialLines+rep.TraceLines == 0 {
		return fmt.Errorf("no grid, trial or trace records found in input (%d lines skipped)", rep.Skipped)
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	if csvPath != "" {
		var out io.Writer = os.Stdout
		if csvPath != "-" {
			f, err := os.Create(csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteCSV(out); err != nil {
			return fmt.Errorf("writing CSV: %v", err)
		}
	}
	return nil
}
