package main

import (
	"fmt"
	"os"

	"mptcp/internal/exp"
)

// runTrainSched drives the offline bandit-scheduler trainer
// (exp.TrainSched) and writes the serialized model to file. The run is
// deterministic end to end: two invocations with the same seed, scale
// and rounds produce byte-identical model files and byte-identical
// reports, which the CI train-smoke job asserts with cmp. The
// checked-in model behind sched.New("bandit") is produced by the
// pinned command documented in DESIGN.md §14:
//
//	go run ./cmd/mptcp-exp -train-sched internal/learn/bandit.model -seed 1 -scale 0.2 -train-rounds 40
func runTrainSched(file string, seed int64, scale float64, rounds, parallel int) error {
	model, report := exp.TrainSched(exp.TrainConfig{
		Seed:        seed,
		Scale:       scale,
		Rounds:      rounds,
		Parallelism: parallel,
	})
	if err := os.WriteFile(file, model.Marshal(), 0o644); err != nil {
		return fmt.Errorf("writing model: %w", err)
	}
	report.Render(os.Stdout)
	// Stderr, so stdout is exactly the deterministic report the CI
	// train-smoke job cmp-compares across runs writing different files.
	fmt.Fprintf(os.Stderr, "model written to %s\n", file)
	return nil
}
