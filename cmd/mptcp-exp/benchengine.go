package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// engineBench is the cross-commit engine-performance record uploaded by
// CI as BENCH_engine.json: one point of the perf trajectory per commit.
type engineBench struct {
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	NsPerHop     float64 `json:"ns_per_hop"`
	Hops         uint64  `json:"hops"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Timestamp    string  `json:"timestamp"`
}

// runEngineBench measures the hot packet-hop path of the event engine —
// the loop the whole evaluation rides on — and writes the JSON record to
// path. The workload is netsim.BenchRing (4 links, 256 circulating
// packets), the same harness BenchmarkEnginePacketHop runs, so the CI
// trajectory and the go-test benchmark measure the identical workload.
// With a baseline path the fresh record is compared against the
// checked-in one and an events/sec regression beyond benchTolerance
// fails the run — CI's perf gate.
func runEngineBench(path, baseline string) error {
	s := sim.New(1)
	netsim.NewBenchRing(s, 4, 256)

	const hops = 8_000_000
	var before, after runtime.MemStats
	start0 := s.Steps()
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for s.Steps()-start0 < hops {
		s.RunUntil(s.Now() + sim.Second)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	done := s.Steps() - start0
	rec := engineBench{
		EventsPerSec: float64(done) / wall.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(done),
		NsPerHop:     float64(wall.Nanoseconds()) / float64(done),
		Hops:         done,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("engine bench: %.1fM events/s, %.4f allocs/op, %.1f ns/hop (%d hops)\n",
		rec.EventsPerSec/1e6, rec.AllocsPerOp, rec.NsPerHop, rec.Hops)
	if baseline != "" {
		return checkBaseline(rec, baseline)
	}
	return nil
}

// benchTolerance is the fractional events/sec drop the perf gate
// forgives before failing: generous enough for shared-runner noise,
// tight enough that a real hot-path regression (an allocation, a lock,
// an indirect call on the packet hop) trips it.
const benchTolerance = 0.10

// checkBaseline compares a fresh engine-bench record against the
// checked-in baseline and errors if events/sec dropped more than
// benchTolerance. Improvements are reported, never fatal; the baseline
// is only rewritten deliberately (see DESIGN.md §"Perf trajectory").
func checkBaseline(rec engineBench, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %v", err)
	}
	var base engineBench
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %v", path, err)
	}
	if base.EventsPerSec <= 0 {
		return fmt.Errorf("bench baseline %s: events_per_sec missing or non-positive", path)
	}
	ratio := rec.EventsPerSec / base.EventsPerSec
	fmt.Printf("engine bench gate: %.1fM events/s vs baseline %.1fM (%.1f%%)\n",
		rec.EventsPerSec/1e6, base.EventsPerSec/1e6, 100*ratio)
	if ratio < 1-benchTolerance {
		return fmt.Errorf("engine bench regression: %.2fM events/s is %.1f%% of baseline %.2fM (gate: >=%.0f%%)",
			rec.EventsPerSec/1e6, 100*ratio, base.EventsPerSec/1e6, 100*(1-benchTolerance))
	}
	return nil
}
