package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// engineBench is the cross-commit engine-performance record uploaded by
// CI as BENCH_engine.json: one point of the perf trajectory per commit.
type engineBench struct {
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	NsPerHop     float64 `json:"ns_per_hop"`
	Hops         uint64  `json:"hops"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Timestamp    string  `json:"timestamp"`
}

// runEngineBench measures the hot packet-hop path of the event engine —
// the loop the whole evaluation rides on — and writes the JSON record to
// path. The workload is netsim.BenchRing (4 links, 256 circulating
// packets), the same harness BenchmarkEnginePacketHop runs, so the CI
// trajectory and the go-test benchmark measure the identical workload.
func runEngineBench(path string) error {
	s := sim.New(1)
	netsim.NewBenchRing(s, 4, 256)

	const hops = 8_000_000
	var before, after runtime.MemStats
	start0 := s.Steps()
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for s.Steps()-start0 < hops {
		s.RunUntil(s.Now() + sim.Second)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	done := s.Steps() - start0
	rec := engineBench{
		EventsPerSec: float64(done) / wall.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(done),
		NsPerHop:     float64(wall.Nanoseconds()) / float64(done),
		Hops:         done,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Printf("engine bench: %.1fM events/s, %.4f allocs/op, %.1f ns/hop (%d hops)\n",
		rec.EventsPerSec/1e6, rec.AllocsPerOp, rec.NsPerHop, rec.Hops)
	return nil
}
