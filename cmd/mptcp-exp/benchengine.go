package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mptcp/internal/netsim"
	"mptcp/internal/sim"
)

// engineBench is the cross-commit engine-performance record uploaded by
// CI as BENCH_engine.json and appended to BENCH_trajectory.jsonl: one
// point of the perf trajectory per commit.
type engineBench struct {
	Commit       string  `json:"commit,omitempty"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	NsPerHop     float64 `json:"ns_per_hop"`
	Hops         uint64  `json:"hops"`
	GoMaxProcs   int     `json:"gomaxprocs"`

	// Sharded engine on the fleet-shaped workload (many coupled domain
	// rings, sim.Sharded barriers): events/sec at one shard and at
	// GOMAXPROCS shards, and their ratio. Speedup ≈ 1 on a single-CPU
	// runner; the gate never penalises it.
	ShardedEPS1    float64 `json:"sharded_events_per_sec_1,omitempty"`
	ShardedEPSN    float64 `json:"sharded_events_per_sec_n,omitempty"`
	ShardedN       int     `json:"sharded_shards_n,omitempty"`
	ShardedSpeedup float64 `json:"sharded_speedup,omitempty"`

	Timestamp string `json:"timestamp"`
}

// runEngineBench measures the hot packet-hop path of the event engine —
// the loop the whole evaluation rides on — and writes the JSON record to
// path. The workload is netsim.BenchRing (4 links, 256 circulating
// packets), the same harness BenchmarkEnginePacketHop runs, so the CI
// trajectory and the go-test benchmark measure the identical workload.
// A second, fleet-shaped measurement runs the sharded engine (16 domain
// rings coupled by barrier pipes) at 1 shard and at GOMAXPROCS shards.
// With a baseline path the fresh record is compared against the
// checked-in one — the last line when the file is a .jsonl trajectory —
// and an events/sec regression beyond benchTolerance fails the run:
// CI's perf gate. Every run is also appended to trajectory (one JSONL
// line) unless that path is empty.
func runEngineBench(path, baseline, trajectory, commit string) error {
	s := sim.New(1)
	netsim.NewBenchRing(s, 4, 256)

	const hops = 8_000_000
	var before, after runtime.MemStats
	start0 := s.Steps()
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for s.Steps()-start0 < hops {
		s.RunUntil(s.Now() + sim.Second)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	done := s.Steps() - start0
	rec := engineBench{
		Commit:       commit,
		EventsPerSec: float64(done) / wall.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(done),
		NsPerHop:     float64(wall.Nanoseconds()) / float64(done),
		Hops:         done,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("engine bench: %.1fM events/s, %.4f allocs/op, %.1f ns/hop (%d hops)\n",
		rec.EventsPerSec/1e6, rec.AllocsPerOp, rec.NsPerHop, rec.Hops)

	rec.ShardedN = runtime.GOMAXPROCS(0)
	rec.ShardedEPS1 = shardedBench(1)
	if rec.ShardedN > 1 {
		rec.ShardedEPSN = shardedBench(rec.ShardedN)
	} else {
		rec.ShardedEPSN = rec.ShardedEPS1
	}
	rec.ShardedSpeedup = rec.ShardedEPSN / rec.ShardedEPS1
	fmt.Printf("sharded bench: %.1fM events/s at 1 shard, %.1fM at %d shards (%.2fx)\n",
		rec.ShardedEPS1/1e6, rec.ShardedEPSN/1e6, rec.ShardedN, rec.ShardedSpeedup)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rec); err != nil {
		return err
	}
	// Gate before appending: baseline and trajectory may be the same
	// .jsonl file, and the gate must read the last *committed* entry,
	// not the record just measured. The append happens even when the
	// gate fails — a trajectory that omits regressions lies.
	var gateErr error
	if baseline != "" {
		gateErr = checkBaseline(rec, baseline)
	}
	if trajectory != "" {
		if err := appendTrajectory(trajectory, rec); err != nil {
			return err
		}
	}
	return gateErr
}

// shardedBenchDomains x shardedBenchPop sizes the fleet-shaped workload:
// like the fleet experiment, many independent domain rings coupled by
// 50 ms barrier pipes, so the measurement includes the epoch/barrier
// overhead a real sharded experiment pays.
const (
	shardedBenchDomains = 16
	shardedBenchPop     = 64
	shardedBenchHorizon = 4 * sim.Second
)

// benchNoop absorbs cross-domain keepalive messages.
type benchNoop struct{}

func (benchNoop) OnEvent(any) {}

// shardedBench runs the fleet-shaped sharded workload to a fixed
// simulated horizon with the given shard count and returns events/sec.
// The engine's shard-count invariance means every call executes the
// identical event sequence; only wall-clock differs.
func shardedBench(shards int) float64 {
	sh := sim.NewSharded(1, shardedBenchDomains)
	sh.SetShards(shards)
	for i := 0; i < shardedBenchDomains; i++ {
		netsim.NewBenchRing(sh.Domain(i), 4, shardedBenchPop)
	}
	// Ring pipes force barrier epochs; one keepalive per domain per
	// epoch keeps the pipes non-trivially busy.
	for i := 0; i < shardedBenchDomains; i++ {
		p := sh.NewPipe(i, (i+1)%shardedBenchDomains, 50*sim.Millisecond)
		d := sh.Domain(i)
		var tick func()
		tm := d.NewTimer(func() { tick() })
		tick = func() {
			p.Send(benchNoop{}, nil)
			tm.ResetAt(d.Now() + 50*sim.Millisecond)
		}
		tm.ResetAt(d.Now() + 50*sim.Millisecond)
	}
	start := sh.Steps()
	end := sh.Domain(0).Now() + shardedBenchHorizon
	t0 := time.Now()
	sh.Run(end)
	wall := time.Since(t0)
	return float64(sh.Steps()-start) / wall.Seconds()
}

// appendTrajectory appends rec as one JSONL line to path — the
// cross-commit perf trajectory (commit, date, events/sec, sharded
// events/sec) that CI's gate reads the last entry of.
func appendTrajectory(path string, rec engineBench) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewEncoder(f).Encode(rec)
}

// benchTolerance is the fractional events/sec drop the perf gate
// forgives before failing: generous enough for shared-runner noise,
// tight enough that a real hot-path regression (an allocation, a lock,
// an indirect call on the packet hop) trips it.
const benchTolerance = 0.10

// checkBaseline compares a fresh engine-bench record against the
// checked-in baseline and errors if events/sec dropped more than
// benchTolerance. A .jsonl baseline is a trajectory: its last line is
// the baseline record. Improvements are reported, never fatal; the
// baseline is only rewritten deliberately (see DESIGN.md §"Perf
// trajectory").
func checkBaseline(rec engineBench, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %v", err)
	}
	if strings.HasSuffix(path, ".jsonl") {
		lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
		if len(lines) == 0 || len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
			return fmt.Errorf("bench baseline %s: empty trajectory", path)
		}
		raw = lines[len(lines)-1]
	}
	var base engineBench
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %v", path, err)
	}
	if base.EventsPerSec <= 0 {
		return fmt.Errorf("bench baseline %s: events_per_sec missing or non-positive", path)
	}
	ratio := rec.EventsPerSec / base.EventsPerSec
	fmt.Printf("engine bench gate: %.1fM events/s vs baseline %.1fM (%.1f%%)\n",
		rec.EventsPerSec/1e6, base.EventsPerSec/1e6, 100*ratio)
	if ratio < 1-benchTolerance {
		return fmt.Errorf("engine bench regression: %.2fM events/s is %.1f%% of baseline %.2fM (gate: >=%.0f%%)",
			rec.EventsPerSec/1e6, 100*ratio, base.EventsPerSec/1e6, 100*(1-benchTolerance))
	}
	return nil
}
