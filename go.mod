module mptcp

go 1.22
