// Package mptcp is a from-scratch Go reproduction of "Design,
// implementation and evaluation of congestion control for multipath TCP"
// (Wischik, Raiciu, Greenhalgh, Handley — NSDI 2011).
//
// The root package holds the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation, each driving
// the experiment registry in internal/exp. The library itself lives
// under internal/ (see DESIGN.md for the architecture map and the
// experiment index):
//
//   - internal/core — the coupled congestion-control algorithms (the
//     paper's contribution: REGULAR, EWTCP, COUPLED, SEMICOUPLED, MPTCP);
//   - internal/sim, internal/netsim, internal/transport — the
//     deterministic packet-level simulator and TCP/MPTCP endpoint models;
//   - internal/topo, internal/traffic, internal/metrics, internal/model —
//     the evaluation scenarios, workloads and analysis tools;
//   - internal/exp — one registered experiment per table/figure;
//   - internal/mptcpnet — a userspace MPTCP-over-UDP stack (§6's
//     protocol design over real sockets).
//
// Run `go run ./cmd/mptcp-exp -list` for the reproduction index; the
// parallel experiment runner and its deterministic seeding scheme are
// documented in DESIGN.md §3.
package mptcp
