// Package mptcp is a from-scratch Go reproduction of "Design,
// implementation and evaluation of congestion control for multipath TCP"
// (Wischik, Raiciu, Greenhalgh, Handley — NSDI 2011).
//
// The root package holds the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation, each driving
// the experiment registry in internal/exp. The library itself lives
// under internal/ (see DESIGN.md for the architecture map and the
// experiment index):
//
//   - internal/core — the coupled congestion-control algorithms (the
//     paper's contribution: REGULAR, EWTCP, COUPLED, SEMICOUPLED, MPTCP);
//   - internal/cc — the pluggable algorithm registry (named
//     constructors, case-insensitive lookup, per-algorithm metadata),
//     the hook-extended contract (OnRTTSample, OnLoss), and the
//     Linux-kernel successor family: OLIA, BALIA and the delay-based
//     wVegas;
//   - internal/sim, internal/netsim, internal/transport — the
//     deterministic packet-level simulator and TCP/MPTCP endpoint models;
//   - internal/topo, internal/traffic, internal/metrics, internal/model —
//     the evaluation topologies, workloads and analysis tools;
//   - internal/scenario — the declarative network-dynamics engine:
//     named, seedable scripts of link flaps, rate/delay schedules,
//     background interference and flow churn, runnable against any
//     topology;
//   - internal/exp — one registered experiment per table/figure, plus
//     the cross-topology algorithm tournament and the dynamics grid
//     (every algorithm × topology × scenario script);
//   - internal/mptcpnet — a userspace MPTCP-over-UDP stack (§6's
//     protocol design over real sockets).
//
// Run `go run ./cmd/mptcp-exp -list` for the reproduction index; the
// algorithm registry is documented in DESIGN.md §2 and the parallel
// experiment runner with its deterministic seeding scheme in DESIGN.md
// §4.
package mptcp
