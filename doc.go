// Package mptcp is a from-scratch Go reproduction of "Design,
// implementation and evaluation of congestion control for multipath TCP"
// (Wischik, Raiciu, Greenhalgh, Handley — NSDI 2011).
//
// The root package holds the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation, each driving
// the experiment registry in internal/exp. The library itself lives
// under internal/ (see DESIGN.md for the architecture map and the
// experiment index):
//
//   - internal/core — the coupled congestion-control algorithms (the
//     paper's contribution: REGULAR, EWTCP, COUPLED, SEMICOUPLED, MPTCP);
//   - internal/cc — the pluggable algorithm registry (named
//     constructors, case-insensitive lookup, per-algorithm metadata),
//     the hook-extended contract (OnRTTSample, OnLoss), and the
//     Linux-kernel successor family: OLIA, BALIA and the delay-based
//     wVegas;
//   - internal/sched — the pluggable packet-scheduler registry (the
//     co-equal axis to congestion control): first-fit, minRTT,
//     round-robin, cwnd-weighted, redundant and BLEST schedulers, plus
//     the §6 receive-buffer-blocking countermeasures (opportunistic
//     retransmission, subflow penalization) as composable options,
//     shared by both endpoint stacks;
//   - internal/sim, internal/netsim, internal/transport — the
//     deterministic packet-level simulator and TCP/MPTCP endpoint models;
//   - internal/topo, internal/traffic, internal/metrics, internal/model —
//     the evaluation topologies, workloads and analysis tools;
//   - internal/scenario — the declarative network-dynamics engine:
//     named, seedable scripts of link flaps, rate/delay schedules,
//     background interference and flow churn, runnable against any
//     topology;
//   - internal/exp — one registered experiment per table/figure, plus
//     the cross-topology algorithm tournament, the dynamics grid (every
//     algorithm × topology × scenario script) and the scheduler grid
//     (every scheduler spec × algorithm × topology × receive-buffer
//     constraint);
//   - internal/mptcpnet — a userspace MPTCP-over-UDP stack (§6's
//     protocol design over real sockets).
//
// Run `go run ./cmd/mptcp-exp -list` for the reproduction index; the
// algorithm registry is documented in DESIGN.md §2, the parallel
// experiment runner with its deterministic seeding scheme in DESIGN.md
// §4, and the packet-scheduler subsystem in DESIGN.md §8. README.md has
// the quickstart and the CLI flag reference.
package mptcp
